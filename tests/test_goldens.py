"""Golden-value regression tests.

These pin the *physics* of the reproduction: extraction values with
classical cross-checks, and the headline simulation numbers the
EXPERIMENTS.md narrative quotes.  A failure here means the numerical
behavior of the library changed -- intentionally or not -- and the
documented results need re-validation.

Tolerances are deliberately loose enough to survive refactoring-level
noise (solver ordering, compiler differences) but tight enough to catch
formula or stamping regressions.
"""

import numpy as np
import pytest

from repro.analysis.metrics import waveform_difference
from repro.circuit.sources import step
from repro.extraction.inductance import self_inductance_bar
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.experiments.runner import (
    build_model,
    full_spec,
    localized_spec,
    peec_spec,
    run_bus_transient,
)

#: Headline values; tolerance is relative unless noted.
GOLDENS = {
    # 1000 x 1 x 1 um copper bar (Grover/Ruehli closed form).
    "self_inductance_nH": (1.4816, 0.01),
    # Nearest-neighbor coupling coefficient of the paper's bus pitch.
    "bus_k_nearest": (0.7444, 0.01),
    # DC resistance of the paper's line.
    "line_resistance_ohm": (17.0, 0.001),
    # Ground capacitance per line (Sakurai-Tamaru, eps_r = 2, h = 1 um).
    "line_ground_cap_fF": (68.886, 0.01),
    # 5-bit bus victim noise peak under the standard testbench.
    "bus5_victim_peak_mV": (113.4, 0.03),
    # Localized-VPEC mean error relative to the noise peak (Fig. 2).
    "localized_error_of_peak": (0.185, 0.15),
}


def golden(name):
    return GOLDENS[name]


class TestExtractionGoldens:
    def test_self_inductance(self):
        value, tol = golden("self_inductance_nH")
        measured = self_inductance_bar(1000e-6, 1e-6, 1e-6) * 1e9
        assert measured == pytest.approx(value, rel=tol)

    def test_bus_coupling_coefficient(self):
        value, tol = golden("bus_k_nearest")
        parasitics = extract(aligned_bus(2))
        L = parasitics.inductance
        assert L[0, 1] / L[0, 0] == pytest.approx(value, rel=tol)

    def test_line_resistance(self):
        value, tol = golden("line_resistance_ohm")
        parasitics = extract(aligned_bus(1))
        assert parasitics.resistance[0] == pytest.approx(value, rel=tol)

    def test_ground_capacitance(self):
        value, tol = golden("line_ground_cap_fF")
        parasitics = extract(aligned_bus(1))
        assert parasitics.ground_capacitance[0] * 1e15 == pytest.approx(
            value, rel=tol
        )


class TestSimulationGoldens:
    @pytest.fixture(scope="class")
    def runs(self):
        stimulus = step(1.0, rise_time=10e-12)
        out = {}
        for label, spec in (
            ("peec", peec_spec()),
            ("full", full_spec()),
            ("localized", localized_spec()),
        ):
            out[label] = run_bus_transient(
                build_model(spec, extract(aligned_bus(5))),
                stimulus,
                400e-12,
                0.5e-12,
                [1],
            ).waveforms["far1"]
        return out

    def test_victim_peak(self, runs):
        value, tol = golden("bus5_victim_peak_mV")
        assert runs["peec"].peak * 1e3 == pytest.approx(value, rel=tol)

    def test_full_vpec_equivalence_stays_exact(self, runs):
        diff = waveform_difference(runs["peec"], runs["full"])
        assert diff.max_relative_to_peak < 1e-8

    def test_localized_error_magnitude(self, runs):
        value, tol = golden("localized_error_of_peak")
        diff = waveform_difference(runs["peec"], runs["localized"])
        assert diff.mean_relative_to_peak == pytest.approx(value, rel=tol)

    def test_speed_of_light_consistency(self):
        """LC product of the extracted line respects causality.

        The propagation velocity 1/sqrt(L'C') derived from the per-length
        self inductance and ground capacitance must not exceed c (it is
        below c/sqrt(eps_r) only approximately, since partial L is not
        loop L -- but exceeding c outright would flag an extraction bug).
        """
        parasitics = extract(aligned_bus(1))
        l_per = parasitics.inductance[0, 0] / 1000e-6
        c_per = parasitics.ground_capacitance[0] / 1000e-6
        velocity = 1.0 / np.sqrt(l_per * c_per)
        assert velocity < 3.0e8
