"""Unit tests for the VPEC effective-resistance network (eq. 6-10)."""

import numpy as np
import pytest
from scipy import sparse

from repro.vpec.effective import VpecNetwork
from repro.vpec.full import full_vpec_networks, invert_spd


def toy_network(l=1e-3):
    """A hand-checkable 2x2 network: L = [[2, 1], [1, 2]] nH."""
    L = 1e-9 * np.array([[2.0, 1.0], [1.0, 2.0]])
    S = np.linalg.inv(L)
    return VpecNetwork.from_inverse([0, 1], [l, l], S), L, S


class TestConstruction:
    def test_ghat_is_l_squared_s(self):
        network, _, S = toy_network(l=2e-3)
        assert np.allclose(network.dense_ghat(), (2e-3) ** 2 * S)

    def test_mixed_lengths_scale_rows_and_columns(self):
        L = 1e-9 * np.array([[2.0, 1.0], [1.0, 2.0]])
        S = np.linalg.inv(L)
        lengths = np.array([1e-3, 3e-3])
        network = VpecNetwork.from_inverse([0, 1], lengths, S)
        expected = np.outer(lengths, lengths) * S
        assert np.allclose(network.dense_ghat(), expected)

    def test_sparse_input_accepted(self):
        S = sparse.csr_matrix(np.array([[2.0, -0.5], [-0.5, 2.0]]))
        network = VpecNetwork.from_inverse([3, 7], [1.0, 1.0], S)
        assert network.dense_ghat()[0, 1] == pytest.approx(-0.5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            VpecNetwork(indices=[0, 1], lengths=np.ones(3), ghat=np.eye(2))
        with pytest.raises(ValueError):
            VpecNetwork(indices=[0, 1], lengths=np.ones(2), ghat=np.eye(3))


class TestEffectiveResistances:
    def test_coupling_resistance_formula(self):
        network, _, S = toy_network()
        # Rhat_01 = -1 / (l^2 S_01), eq. 10.
        expected = -1.0 / ((1e-3) ** 2 * S[0, 1])
        assert network.coupling_resistance(0, 1) == pytest.approx(expected)

    def test_coupling_resistance_positive_for_bus(self, bus5):
        network = full_vpec_networks(bus5)[0]
        for a, b, _ in network.coupling_entries():
            assert network.coupling_resistance(a, b) > 0

    def test_ground_resistance_formula(self):
        network, _, S = toy_network()
        expected = 1.0 / ((1e-3) ** 2 * (S[0, 0] + S[0, 1]))
        assert network.ground_resistances()[0] == pytest.approx(expected)

    def test_ground_conductances_are_row_sums(self):
        network, _, _ = toy_network()
        dense = network.dense_ghat()
        assert np.allclose(network.ground_conductances(), dense.sum(axis=1))

    def test_missing_coupling_raises(self):
        network = VpecNetwork(indices=[0, 1], lengths=np.ones(2), ghat=np.eye(2))
        with pytest.raises(KeyError):
            network.coupling_resistance(0, 1)

    def test_zero_row_sum_gives_infinite_ground(self):
        ghat = np.array([[1.0, -1.0], [-1.0, 1.0]])
        network = VpecNetwork(indices=[0, 1], lengths=np.ones(2), ghat=ghat)
        assert np.all(np.isinf(network.ground_resistances()))


class TestSizeStatistics:
    def test_full_network_sparse_factor_is_one(self, bus16):
        network = full_vpec_networks(bus16)[0]
        assert network.sparse_factor() == pytest.approx(1.0)
        assert network.coupling_count() == 16 * 15 // 2

    def test_coupling_entries_iterates_upper_triangle(self):
        network, _, _ = toy_network()
        entries = list(network.coupling_entries())
        assert len(entries) == 1
        a, b, _ = entries[0]
        assert (a, b) == (0, 1)

    def test_single_filament_network(self):
        network = VpecNetwork(indices=[0], lengths=np.ones(1), ghat=np.eye(1))
        assert network.sparse_factor() == 1.0
        assert network.coupling_count() == 0


class TestInvertSpd:
    def test_matches_numpy_inverse(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(6, 6))
        spd = a @ a.T + 6 * np.eye(6)
        assert np.allclose(invert_spd(spd), np.linalg.inv(spd))

    def test_result_symmetric(self):
        rng = np.random.default_rng(8)
        a = rng.normal(size=(5, 5))
        spd = a @ a.T + 5 * np.eye(5)
        inverse = invert_spd(spd)
        assert np.allclose(inverse, inverse.T)

    def test_rejects_indefinite(self):
        with pytest.raises(np.linalg.LinAlgError):
            invert_spd(np.array([[1.0, 2.0], [2.0, 1.0]]))
