"""Unit tests for the high-level VPEC flows."""

import pytest

from repro.vpec.flow import (
    full_vpec,
    localized_vpec,
    truncated_vpec,
    windowed_vpec,
)


class TestFlavors:
    def test_full(self, bus5):
        result = full_vpec(bus5)
        assert result.flavor == "full"
        assert result.sparse_factor == pytest.approx(1.0)
        assert result.build_seconds >= 0.0

    def test_gtvpec(self, bus8x2):
        result = truncated_vpec(bus8x2, nw=4, nl=1)
        assert result.flavor == "gtVPEC"
        assert result.sparse_factor < 1.0

    def test_ntvpec(self, bus16):
        result = truncated_vpec(bus16, threshold=1e-2)
        assert result.flavor == "ntVPEC"
        assert 0.0 < result.sparse_factor < 1.0

    def test_gwvpec(self, bus16):
        result = windowed_vpec(bus16, window_size=4)
        assert result.flavor == "gwVPEC"
        assert result.sparse_factor < 1.0

    def test_nwvpec(self, bus16):
        # Parallel 1000-um lines couple strongly; 0.6 lands mid-range.
        result = windowed_vpec(bus16, threshold=0.6)
        assert result.flavor == "nwVPEC"
        assert result.sparse_factor < 1.0

    def test_localized(self, bus5):
        result = localized_vpec(bus5)
        assert result.flavor == "localized"
        assert result.model.coupling_resistor_count == 4


class TestValidation:
    def test_truncated_needs_exactly_one_selection(self, bus5):
        with pytest.raises(ValueError):
            truncated_vpec(bus5)
        with pytest.raises(ValueError):
            truncated_vpec(bus5, nw=2, nl=1, threshold=0.1)
        with pytest.raises(ValueError):
            truncated_vpec(bus5, nw=2)

    def test_windowed_needs_exactly_one_selection(self, bus5):
        with pytest.raises(ValueError):
            windowed_vpec(bus5)
        with pytest.raises(ValueError):
            windowed_vpec(bus5, window_size=2, threshold=0.1)

    def test_titles_distinguish_flavors(self, bus5):
        full = full_vpec(bus5)
        local = localized_vpec(bus5)
        assert full.model.circuit.title != local.model.circuit.title
