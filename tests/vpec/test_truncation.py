"""Unit tests for tVPEC truncation and the localized baseline."""

import numpy as np
import pytest

from repro.vpec.full import full_vpec_networks
from repro.vpec.passivity import audit_network
from repro.vpec.truncation import (
    coupling_strengths,
    localize,
    localized_mask,
    truncate_geometric,
    truncate_numerical,
)


class TestCouplingStrengths:
    def test_zero_diagonal(self, bus5):
        network = full_vpec_networks(bus5)[0]
        strengths = coupling_strengths(network)
        assert np.all(np.diag(strengths) == 0.0)

    def test_nearest_neighbor_strongest(self, bus16):
        network = full_vpec_networks(bus16)[0]
        strengths = coupling_strengths(network)
        row = strengths[5]
        assert row.argmax() in (4, 6)

    def test_rejects_nonpositive_diagonal(self, bus5):
        network = full_vpec_networks(bus5)[0]
        network.ghat = -network.ghat
        with pytest.raises(ValueError):
            coupling_strengths(network)


class TestNumericalTruncation:
    def test_zero_threshold_keeps_everything(self, bus16):
        network = full_vpec_networks(bus16)[0]
        truncated = truncate_numerical(network, 0.0)
        assert truncated.coupling_count() == network.coupling_count()

    def test_huge_threshold_drops_everything(self, bus16):
        network = full_vpec_networks(bus16)[0]
        truncated = truncate_numerical(network, 1e9)
        assert truncated.coupling_count() == 0

    def test_monotone_in_threshold(self, bus16):
        network = full_vpec_networks(bus16)[0]
        counts = [
            truncate_numerical(network, threshold).coupling_count()
            for threshold in (1e-6, 1e-4, 1e-2, 1e-1)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_diagonal_preserved(self, bus16):
        network = full_vpec_networks(bus16)[0]
        truncated = truncate_numerical(network, 1e-2)
        assert np.allclose(
            np.diag(truncated.dense_ghat()), np.diag(network.dense_ghat())
        )

    def test_passivity_preserved(self, bus16):
        """The Section III guarantee: truncation keeps the model passive."""
        network = full_vpec_networks(bus16)[0]
        for threshold in (1e-4, 1e-3, 1e-2, 1e-1):
            report = audit_network(truncate_numerical(network, threshold))
            assert report.passive
            assert report.diagonally_dominant

    def test_result_symmetric(self, nonaligned16):
        network = full_vpec_networks(nonaligned16)[0]
        truncated = truncate_numerical(network, 1e-3)
        dense = truncated.dense_ghat()
        assert np.allclose(dense, dense.T)

    def test_negative_threshold_rejected(self, bus5):
        network = full_vpec_networks(bus5)[0]
        with pytest.raises(ValueError):
            truncate_numerical(network, -1.0)


class TestGeometricTruncation:
    def test_full_window_keeps_everything(self, bus8x2):
        network = full_vpec_networks(bus8x2)[0]
        truncated = truncate_geometric(network, bus8x2.system, nw=8, nl=2)
        assert truncated.coupling_count() == network.coupling_count()

    def test_window_limits_wire_distance(self, bus16):
        network = full_vpec_networks(bus16)[0]
        truncated = truncate_geometric(network, bus16.system, nw=4, nl=1)
        dense = truncated.dense_ghat()
        system = bus16.system
        for a, b, _ in truncated.coupling_entries():
            assert abs(system[a].wire - system[b].wire) < 4
        del dense

    def test_window_limits_segment_distance(self, bus8x2):
        network = full_vpec_networks(bus8x2)[0]
        truncated = truncate_geometric(network, bus8x2.system, nw=8, nl=1)
        system = bus8x2.system
        for a, b, _ in truncated.coupling_entries():
            i, j = network.indices[a], network.indices[b]
            assert system[i].segment == system[j].segment

    def test_passivity_preserved(self, bus8x2):
        network = full_vpec_networks(bus8x2)[0]
        for nw, nl in ((8, 2), (4, 2), (2, 1)):
            report = audit_network(
                truncate_geometric(network, bus8x2.system, nw, nl)
            )
            assert report.passive
            assert report.diagonally_dominant

    def test_smaller_window_sparser(self, bus16):
        network = full_vpec_networks(bus16)[0]
        wide = truncate_geometric(network, bus16.system, nw=8, nl=1)
        narrow = truncate_geometric(network, bus16.system, nw=2, nl=1)
        assert narrow.coupling_count() < wide.coupling_count()

    def test_rejects_bad_window(self, bus5):
        network = full_vpec_networks(bus5)[0]
        with pytest.raises(ValueError):
            truncate_geometric(network, bus5.system, nw=0, nl=1)


class TestLocalized:
    def test_mask_matches_adjacency(self, bus5):
        network = full_vpec_networks(bus5)[0]
        mask = localized_mask(network, bus5.system)
        assert mask[0, 1] and mask[1, 2]
        assert not mask[0, 2] and not mask[0, 4]

    def test_localized_keeps_chain_only(self, bus5):
        network = full_vpec_networks(bus5)[0]
        local = localize(network, bus5.system)
        assert local.coupling_count() == 4

    def test_localized_still_passive(self, bus16):
        network = full_vpec_networks(bus16)[0]
        report = audit_network(localize(network, bus16.system))
        assert report.passive

    def test_localized_ground_resistances_shrink(self, bus5):
        """Dropped couplings fold into the ground term (larger row sum)."""
        network = full_vpec_networks(bus5)[0]
        local = localize(network, bus5.system)
        assert np.all(
            local.ground_conductances() >= network.ground_conductances() - 1e-12
        )
