"""Integration tests of the paper's central claim: full VPEC == PEEC.

Section II-C: "the full VPEC model and the PEEC model obtain identical
waveforms in both frequency- and time-domain simulations."  These tests
verify the equivalence end-to-end through the extraction, model
construction, and simulation layers, in DC, AC, and transient analyses,
on buses and on the (irregular, mixed-direction) spiral.
"""

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis, logspace_frequencies
from repro.circuit.dc import dc_operating_point
from repro.circuit.sources import ac_unit, dc, step
from repro.circuit.transient import transient_analysis
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.peec.builder import attach_bus_testbench, attach_two_port_testbench
from repro.peec.model import build_peec
from repro.vpec.builder import build_vpec
from repro.vpec.full import full_vpec_networks


def models_for(parasitics):
    peec = build_peec(parasitics)
    vpec = build_vpec(parasitics, full_vpec_networks(parasitics))
    return peec, vpec


class TestBusEquivalence:
    def test_transient_identical(self, fresh_bus5):
        peec, _ = models_for(fresh_bus5)
        vpec = build_vpec(fresh_bus5, full_vpec_networks(fresh_bus5))
        stim = step(1.0, rise_time=10e-12)
        attach_bus_testbench(peec.skeleton, stim)
        attach_bus_testbench(vpec.skeleton, stim)
        victim_p = peec.skeleton.ports[1].far
        victim_v = vpec.skeleton.ports[1].far
        r_p = transient_analysis(peec.circuit, 300e-12, 1e-12, probe_nodes=[victim_p])
        r_v = transient_analysis(vpec.circuit, 300e-12, 1e-12, probe_nodes=[victim_v])
        w_p, w_v = r_p.voltage(victim_p), r_v.voltage(victim_v)
        assert np.max(np.abs(w_p.v - w_v.v)) < 1e-9 * max(w_p.peak, 1e-12)

    def test_ac_identical_across_ten_decades(self):
        parasitics = extract(aligned_bus(4))
        peec, vpec = models_for(parasitics)
        stim = ac_unit(1.0)
        attach_bus_testbench(peec.skeleton, stim)
        attach_bus_testbench(vpec.skeleton, stim)
        freqs = logspace_frequencies(1.0, 10e9, 4)
        node_p = peec.skeleton.ports[1].far
        node_v = vpec.skeleton.ports[1].far
        r_p = ac_analysis(peec.circuit, freqs, probe_nodes=[node_p])
        r_v = ac_analysis(vpec.circuit, freqs, probe_nodes=[node_v])
        assert np.allclose(
            r_p.voltage(node_p), r_v.voltage(node_v), rtol=1e-8, atol=1e-15
        )

    def test_dc_identical(self):
        parasitics = extract(aligned_bus(3))
        peec, vpec = models_for(parasitics)
        stim = dc(1.0)
        attach_bus_testbench(peec.skeleton, stim)
        attach_bus_testbench(vpec.skeleton, stim)
        sol_p = dc_operating_point(peec.circuit)
        sol_v = dc_operating_point(vpec.circuit)
        for wire in range(3):
            # abs tolerance ~gmin leakage: the two topologies have
            # different node counts, so the 1e-12 S regularizer shifts
            # the floating quiet lines by O(1e-10 V).
            assert sol_p.voltage(peec.skeleton.ports[wire].far) == pytest.approx(
                sol_v.voltage(vpec.skeleton.ports[wire].far), abs=1e-8
            )

    def test_aggressor_waveform_identical(self, fresh_bus5):
        peec, _ = models_for(fresh_bus5)
        vpec = build_vpec(fresh_bus5, full_vpec_networks(fresh_bus5))
        stim = step(1.0, rise_time=10e-12)
        attach_bus_testbench(peec.skeleton, stim)
        attach_bus_testbench(vpec.skeleton, stim)
        node_p = peec.skeleton.ports[0].far
        node_v = vpec.skeleton.ports[0].far
        w_p = transient_analysis(
            peec.circuit, 300e-12, 1e-12, probe_nodes=[node_p]
        ).voltage(node_p)
        w_v = transient_analysis(
            vpec.circuit, 300e-12, 1e-12, probe_nodes=[node_v]
        ).voltage(node_v)
        assert np.max(np.abs(w_p.v - w_v.v)) < 1e-9

    def test_multisegment_bus_equivalence(self, bus8x2):
        peec, vpec = models_for(bus8x2)
        stim = step(1.0, rise_time=10e-12)
        attach_bus_testbench(peec.skeleton, stim)
        attach_bus_testbench(vpec.skeleton, stim)
        node_p = peec.skeleton.ports[1].far
        node_v = vpec.skeleton.ports[1].far
        w_p = transient_analysis(
            peec.circuit, 200e-12, 1e-12, probe_nodes=[node_p]
        ).voltage(node_p)
        w_v = transient_analysis(
            vpec.circuit, 200e-12, 1e-12, probe_nodes=[node_v]
        ).voltage(node_v)
        assert np.max(np.abs(w_p.v - w_v.v)) < 1e-9

    def test_nonaligned_bus_equivalence(self, nonaligned16):
        peec, vpec = models_for(nonaligned16)
        stim = step(1.0, rise_time=10e-12)
        attach_bus_testbench(peec.skeleton, stim)
        attach_bus_testbench(vpec.skeleton, stim)
        node_p = peec.skeleton.ports[1].far
        node_v = vpec.skeleton.ports[1].far
        w_p = transient_analysis(
            peec.circuit, 200e-12, 1e-12, probe_nodes=[node_p]
        ).voltage(node_p)
        w_v = transient_analysis(
            vpec.circuit, 200e-12, 1e-12, probe_nodes=[node_v]
        ).voltage(node_v)
        assert np.max(np.abs(w_p.v - w_v.v)) < 1e-9


class TestSpiralEquivalence:
    def test_transient_identical(self, spiral_small):
        """Mixed x/y directions and traversal signs handled correctly."""
        peec, vpec = models_for(spiral_small)
        stim = step(1.0, rise_time=10e-12)
        attach_two_port_testbench(peec.skeleton, stim)
        attach_two_port_testbench(vpec.skeleton, stim)
        node_p = peec.skeleton.ports[0].far
        node_v = vpec.skeleton.ports[0].far
        w_p = transient_analysis(
            peec.circuit, 400e-12, 1e-12, probe_nodes=[node_p]
        ).voltage(node_p)
        w_v = transient_analysis(
            vpec.circuit, 400e-12, 1e-12, probe_nodes=[node_v]
        ).voltage(node_v)
        assert np.max(np.abs(w_p.v - w_v.v)) < 1e-6 * max(w_p.peak, 1.0)

    def test_ac_identical(self, spiral_small):
        peec, vpec = models_for(spiral_small)
        stim = ac_unit(1.0)
        attach_two_port_testbench(peec.skeleton, stim)
        attach_two_port_testbench(vpec.skeleton, stim)
        freqs = logspace_frequencies(1e6, 10e9, 3)
        node_p = peec.skeleton.ports[0].far
        node_v = vpec.skeleton.ports[0].far
        r_p = ac_analysis(peec.circuit, freqs, probe_nodes=[node_p])
        r_v = ac_analysis(vpec.circuit, freqs, probe_nodes=[node_v])
        assert np.allclose(
            r_p.voltage(node_p), r_v.voltage(node_v), rtol=1e-7, atol=1e-15
        )
