"""Unit tests for VPEC circuit assembly (the Fig. 1 topology)."""

import pytest

from repro.circuit.elements import (
    CCCS,
    VCCS,
    VCVS,
    Inductor,
    MutualInductance,
    VoltageSource,
)
from repro.vpec.builder import UNIT_INDUCTANCE, build_vpec
from repro.vpec.full import full_vpec_networks
from repro.vpec.truncation import truncate_numerical


class TestTopology:
    def test_per_filament_components(self, bus5):
        model = build_vpec(bus5, full_vpec_networks(bus5))
        counts = model.circuit.element_counts()
        # Per filament: sense V, VCVS, CCCS, VCCS, unit L, ground R.
        assert counts["VoltageSource"] == 5
        assert counts["VCVS"] == 5
        assert counts["CCCS"] == 5
        assert counts["VCCS"] == 5
        assert counts["Inductor"] == 5

    def test_no_mutual_inductances(self, bus5):
        """The VPEC model replaces all mutual coupling with resistors."""
        model = build_vpec(bus5, full_vpec_networks(bus5))
        assert not model.circuit.elements_of_type(MutualInductance)

    def test_unit_inductors(self, bus5):
        model = build_vpec(bus5, full_vpec_networks(bus5))
        for inductor in model.circuit.elements_of_type(Inductor):
            assert inductor.value == UNIT_INDUCTANCE

    def test_full_coupling_resistor_count(self, bus5):
        model = build_vpec(bus5, full_vpec_networks(bus5))
        assert model.coupling_resistor_count == 10

    def test_sparse_factor_full(self, bus5):
        model = build_vpec(bus5, full_vpec_networks(bus5))
        assert model.sparse_factor() == pytest.approx(1.0)

    def test_sparse_factor_truncated(self, bus16):
        networks = [
            truncate_numerical(n, 0.02) for n in full_vpec_networks(bus16)
        ]
        model = build_vpec(bus16, networks)
        assert model.sparse_factor() < 1.0
        assert model.sparse_factor() == pytest.approx(
            model.coupling_resistor_count / 120.0
        )

    def test_sense_sources_are_zero_volt(self, bus5):
        model = build_vpec(bus5, full_vpec_networks(bus5))
        for name in model.sense_names:
            source = model.circuit.element(name)
            assert isinstance(source, VoltageSource)
            assert source.stimulus.dc == 0.0

    def test_coupling_resistance_values(self, bus5):
        model = build_vpec(bus5, full_vpec_networks(bus5))
        network = model.networks[0]
        resistor = model.circuit.element("Rc0_1")
        expected = network.coupling_resistance(0, 1)
        assert resistor.value == pytest.approx(expected)

    def test_ground_resistor_values(self, bus5):
        model = build_vpec(bus5, full_vpec_networks(bus5))
        network = model.networks[0]
        resistor = model.circuit.element("Rg0")
        assert resistor.value == pytest.approx(network.ground_resistances()[0])

    def test_controlled_gains_scale_with_length(self, bus8x2):
        model = build_vpec(bus8x2, full_vpec_networks(bus8x2))
        lengths = bus8x2.system.lengths()
        vcvs = model.circuit.element("Ev0")
        cccs = model.circuit.element("Fi0")
        assert vcvs.gain == pytest.approx(lengths[0])
        assert cccs.gain == pytest.approx(lengths[0])

    def test_networks_must_cover_all_filaments(self, bus5):
        networks = full_vpec_networks(bus5)
        networks[0].indices = networks[0].indices[:-1]
        with pytest.raises(ValueError):
            build_vpec(bus5, networks)

    def test_spiral_signs_in_gains(self, spiral_small):
        model = build_vpec(spiral_small, full_vpec_networks(spiral_small))
        gains = [
            model.circuit.element(f"Ev{k}").gain
            for k in range(len(spiral_small.system))
        ]
        assert any(g < 0 for g in gains)
        assert any(g > 0 for g in gains)
