"""Tests of the Section III theory: Theorems 1-2 and Lemma 1."""

import numpy as np
import pytest

from repro.vpec.full import full_vpec_networks
from repro.vpec.passivity import (
    audit_network,
    diagonal_dominance_margin,
    is_positive_definite,
    is_strictly_diagonally_dominant,
    is_symmetric,
)


class TestMatrixPredicates:
    def test_symmetric_true(self):
        assert is_symmetric(np.array([[1.0, 2.0], [2.0, 3.0]]))

    def test_symmetric_false(self):
        assert not is_symmetric(np.array([[1.0, 2.0], [2.1, 3.0]]))

    def test_spd_true(self):
        assert is_positive_definite(np.array([[2.0, -1.0], [-1.0, 2.0]]))

    def test_spd_false_indefinite(self):
        assert not is_positive_definite(np.array([[1.0, 3.0], [3.0, 1.0]]))

    def test_spd_false_asymmetric(self):
        assert not is_positive_definite(np.array([[2.0, 0.0], [1.0, 2.0]]))

    def test_dd_true(self):
        assert is_strictly_diagonally_dominant(
            np.array([[3.0, -1.0, -1.0], [-1.0, 3.0, -1.0], [-1.0, -1.0, 3.0]])
        )

    def test_dd_false_equality(self):
        assert not is_strictly_diagonally_dominant(
            np.array([[2.0, -2.0], [-2.0, 2.0]])
        )

    def test_dominance_margin(self):
        margin = diagonal_dominance_margin(np.array([[4.0, -1.0], [-1.0, 4.0]]))
        assert margin == pytest.approx(0.75)


class TestPaperTheorems:
    def test_theorem1_ghat_spd(self, bus16):
        """Theorem 1: the VPEC circuit matrix is positive definite."""
        for network in full_vpec_networks(bus16):
            assert is_positive_definite(network.dense_ghat())

    def test_theorem2_ghat_strictly_diagonally_dominant(self, bus16):
        """Theorem 2: Ghat is strictly diagonally dominant."""
        for network in full_vpec_networks(bus16):
            assert is_strictly_diagonally_dominant(network.dense_ghat())

    def test_lemma1_effective_resistances_positive(self, bus16):
        """Lemma 1: all Rhat_ij and Rhat_i0 are positive (parallel bus)."""
        for network in full_vpec_networks(bus16):
            report = audit_network(network)
            assert report.resistances_positive

    def test_theorems_hold_for_nonaligned_bus(self, nonaligned16):
        for network in full_vpec_networks(nonaligned16):
            report = audit_network(network)
            assert report.passive
            assert report.diagonally_dominant

    def test_spiral_networks_passive(self, spiral_small):
        """Passivity (SPD) holds even for the irregular spiral.

        Lemma 1's resistance-positivity is proved for parallel filaments;
        the spiral's collinear forward couplings can flip signs, but the
        network remains SPD -- the property passivity actually needs.
        """
        for network in full_vpec_networks(spiral_small):
            assert audit_network(network).passive

    def test_audit_report_fields(self, bus5):
        report = audit_network(full_vpec_networks(bus5)[0])
        assert report.symmetric
        assert report.dominance_margin > 0
        assert report.min_ground_conductance > 0
