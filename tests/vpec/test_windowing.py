"""Unit tests for wVPEC windowing (Section V)."""

import numpy as np
import pytest

from repro.vpec.full import full_vpec_networks, invert_spd
from repro.vpec.passivity import audit_network
from repro.vpec.windowing import (
    geometric_windows,
    numerical_windows,
    symmetrize_windows,
    windowed_inverse,
    windowed_vpec_networks,
)


class TestGeometricWindows:
    def test_window_contains_self(self, bus16):
        indices, _ = bus16.inductance_blocks[next(iter(bus16.inductance_blocks))]
        windows = geometric_windows(bus16.system, indices, 4)
        for m, window in enumerate(windows):
            assert m in window

    def test_window_size_respected_up_to_symmetrization(self, bus16):
        indices = list(range(16))
        windows = geometric_windows(bus16.system, indices, 4)
        assert all(4 <= len(w) <= 8 for w in windows)

    def test_bus_window_is_index_neighborhood(self, bus16):
        indices = list(range(16))
        windows = geometric_windows(bus16.system, indices, 5)
        # Interior aggressor: window spans contiguous neighboring bits.
        window = windows[8]
        assert np.all(np.diff(window) == 1)
        assert 8 in window

    def test_full_window_is_everything(self, bus5):
        windows = geometric_windows(bus5.system, list(range(5)), 5)
        for window in windows:
            assert list(window) == [0, 1, 2, 3, 4]

    def test_rejects_bad_size(self, bus5):
        with pytest.raises(ValueError):
            geometric_windows(bus5.system, list(range(5)), 0)


class TestNumericalWindows:
    def test_threshold_zero_keeps_all(self, bus16):
        _, block = bus16.inductance_blocks[next(iter(bus16.inductance_blocks))]
        windows = numerical_windows(block, 0.0)
        assert all(len(w) == block.shape[0] for w in windows)

    def test_large_threshold_keeps_self_only(self, bus16):
        _, block = bus16.inductance_blocks[next(iter(bus16.inductance_blocks))]
        windows = numerical_windows(block, 10.0)
        for m, window in enumerate(windows):
            assert list(window) == [m]

    def test_monotone_in_threshold(self, nonaligned16):
        _, block = nonaligned16.inductance_blocks[
            next(iter(nonaligned16.inductance_blocks))
        ]
        sizes = [
            sum(len(w) for w in numerical_windows(block, threshold))
            for threshold in (0.0, 0.3, 0.6, 0.9)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_rejects_negative_threshold(self, bus5):
        _, block = bus5.inductance_blocks[next(iter(bus5.inductance_blocks))]
        with pytest.raises(ValueError):
            numerical_windows(block, -1.0)


class TestSymmetrize:
    def test_union_membership(self):
        windows = [np.array([0, 1]), np.array([1]), np.array([0, 2])]
        fixed = symmetrize_windows(windows)
        assert list(fixed[0]) == [0, 1, 2]
        assert list(fixed[1]) == [0, 1]
        assert list(fixed[2]) == [0, 2]

    def test_idempotent(self):
        windows = [np.array([0, 1]), np.array([0, 1])]
        once = symmetrize_windows(windows)
        twice = symmetrize_windows(once)
        assert all(list(a) == list(b) for a, b in zip(once, twice))


class TestWindowedInverse:
    def test_full_window_reproduces_exact_inverse(self, bus16):
        """b = N: the windowed construction equals the true inverse."""
        _, block = bus16.inductance_blocks[next(iter(bus16.inductance_blocks))]
        n = block.shape[0]
        windows = [np.arange(n)] * n
        s_prime = windowed_inverse(block, windows).toarray()
        assert np.allclose(s_prime, invert_spd(block), rtol=1e-8, atol=1e-3)

    def test_symmetric(self, bus16):
        _, block = bus16.inductance_blocks[next(iter(bus16.inductance_blocks))]
        windows = geometric_windows(bus16.system, list(range(16)), 6)
        s_prime = windowed_inverse(block, windows).toarray()
        assert np.allclose(s_prime, s_prime.T)

    def test_eq19_diagonal_dominance(self, bus16):
        """Eq. 19: the merged S' is (weakly) diagonally dominant."""
        _, block = bus16.inductance_blocks[next(iter(bus16.inductance_blocks))]
        for b in (2, 4, 8):
            windows = geometric_windows(bus16.system, list(range(16)), b)
            s_prime = windowed_inverse(block, windows).toarray()
            diag = np.abs(np.diag(s_prime))
            off = np.sum(np.abs(s_prime), axis=1) - diag
            assert np.all(diag >= off - 1e-18)

    def test_eq18_picks_smaller_magnitude(self):
        """The merge keeps the max (smaller-magnitude) estimate."""
        block = 1e-9 * np.array(
            [[2.0, 1.0, 0.5], [1.0, 2.0, 1.0], [0.5, 1.0, 2.0]]
        )
        windows = [np.array([0, 1, 2])] * 3
        merged = windowed_inverse(block, windows).toarray()
        exact = np.linalg.inv(block)
        # Full windows: both estimates equal the exact inverse entries.
        assert np.allclose(merged, exact, rtol=1e-9)

    def test_requires_self_in_window(self):
        block = np.eye(2)
        with pytest.raises(ValueError):
            windowed_inverse(block, [np.array([1]), np.array([1])])

    def test_requires_one_window_per_aggressor(self):
        block = np.eye(2)
        with pytest.raises(ValueError):
            windowed_inverse(block, [np.array([0])])

    def test_diagonal_positive(self, bus16):
        _, block = bus16.inductance_blocks[next(iter(bus16.inductance_blocks))]
        windows = geometric_windows(bus16.system, list(range(16)), 4)
        s_prime = windowed_inverse(block, windows).toarray()
        assert np.all(np.diag(s_prime) > 0)


class TestWindowedNetworks:
    def test_geometric_flavor(self, bus16):
        networks = windowed_vpec_networks(bus16, window_size=4)
        assert len(networks) == 1
        assert networks[0].sparse_factor() < 1.0

    def test_numerical_flavor(self, spiral_small):
        networks = windowed_vpec_networks(spiral_small, threshold=0.05)
        assert len(networks) == 2

    def test_passivity(self, bus16):
        for b in (2, 4, 8, 16):
            for network in windowed_vpec_networks(bus16, window_size=b):
                assert audit_network(network).passive

    def test_window_equal_to_size_matches_full(self, bus5):
        windowed = windowed_vpec_networks(bus5, window_size=5)[0]
        full = full_vpec_networks(bus5)[0]
        assert np.allclose(
            windowed.dense_ghat(), full.dense_ghat(), rtol=1e-8, atol=1e-6
        )

    def test_flavor_selection_is_exclusive(self, bus5):
        with pytest.raises(ValueError):
            windowed_vpec_networks(bus5)
        with pytest.raises(ValueError):
            windowed_vpec_networks(bus5, window_size=2, threshold=0.1)

    def test_larger_window_more_accurate(self, bus16):
        """Monotone quality: larger b approximates the inverse better."""
        exact = full_vpec_networks(bus16)[0].dense_ghat()
        errors = []
        for b in (2, 4, 8, 16):
            approx = windowed_vpec_networks(bus16, window_size=b)[0].dense_ghat()
            errors.append(np.linalg.norm(exact - approx) / np.linalg.norm(exact))
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-6


class TestIterativeWindowSolver:
    """The CG backend: residual-certified, per-window direct fallback."""

    def _windows(self, parasitics, size=4):
        indices, block = parasitics.inductance_blocks[
            next(iter(parasitics.inductance_blocks))
        ]
        return block, geometric_windows(parasitics.system, indices, size)

    def test_agrees_with_direct_within_cg_tolerance(self, nonaligned16):
        from repro.pipeline.profiling import collect

        block, windows = self._windows(nonaligned16)
        direct = windowed_inverse(block, windows, solver="direct")
        with collect() as profile:
            iterative = windowed_inverse(block, windows, solver="iterative")
        assert profile.counters["window_cg_solves"] >= 1
        assert profile.counters.get("window_cg_fallbacks", 0) == 0
        dense_direct = direct.toarray()
        np.testing.assert_allclose(
            iterative.toarray(), dense_direct, rtol=0,
            atol=1e-8 * np.abs(dense_direct).max(),
        )
        # Identical sparsity: the backend changes values at CG-tolerance
        # level, never the window structure.
        assert np.array_equal(
            (iterative.toarray() != 0), (dense_direct != 0)
        )

    def test_unconverged_windows_fall_back_to_direct(
        self, nonaligned16, monkeypatch
    ):
        import repro.health.iterative as iterative_mod
        from repro.pipeline.profiling import collect

        real = iterative_mod.stacked_jacobi_cg

        def starving(a_stack, b_stack, **kwargs):
            x, converged = real(a_stack, b_stack, **kwargs)
            converged = converged.copy()
            converged[::2] = False  # disown every other window
            return x, converged

        monkeypatch.setattr(iterative_mod, "stacked_jacobi_cg", starving)
        block, windows = self._windows(nonaligned16)
        with collect() as profile:
            patched = windowed_inverse(block, windows, solver="iterative")
        assert profile.counters["window_cg_fallbacks"] >= 1
        direct = windowed_inverse(block, windows, solver="direct")
        np.testing.assert_allclose(
            patched.toarray(), direct.toarray(), rtol=0,
            atol=1e-8 * np.abs(direct.toarray()).max(),
        )

    def test_unknown_solver_rejected(self, bus5):
        block, windows = self._windows(bus5, size=3)
        with pytest.raises(ValueError, match="solver"):
            windowed_inverse(block, windows, solver="conjugate")
