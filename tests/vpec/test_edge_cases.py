"""Degenerate-input edge cases of windowing and truncation.

Each case must still produce a symmetric, passive effective-resistance
network (Theorems 1-2 hold in the limits, not just the typical sizes):

- a single-filament system (no couplings at all);
- a geometric window larger than the bus (windowing degenerates to the
  exact full inversion);
- a truncation threshold that drops every off-diagonal (diagonal-only
  model).
"""

import numpy as np
import pytest

from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.vpec.flow import truncated_vpec, windowed_vpec
from repro.vpec.full import full_vpec_networks
from repro.vpec.passivity import audit_network
from repro.vpec.truncation import truncate_numerical
from repro.vpec.windowing import (
    geometric_windows,
    numerical_windows,
    windowed_vpec_networks,
)


@pytest.fixture(scope="module")
def bus1():
    return extract(aligned_bus(1))


def assert_symmetric_and_passive(network):
    dense = network.dense_ghat()
    np.testing.assert_allclose(dense, dense.T, rtol=0, atol=0)
    report = audit_network(network)
    assert report.symmetric
    assert report.passive


class TestSingleFilament:
    def test_full_network(self, bus1):
        networks = full_vpec_networks(bus1)
        assert len(networks) == 1
        network = networks[0]
        assert network.size == 1
        assert network.coupling_count() == 0
        assert_symmetric_and_passive(network)

    def test_windowed_network(self, bus1):
        networks = windowed_vpec_networks(bus1, window_size=1)
        assert networks[0].size == 1
        assert_symmetric_and_passive(networks[0])
        # Degenerate window == exact inversion of the 1x1 block.
        np.testing.assert_allclose(
            networks[0].dense_ghat(), full_vpec_networks(bus1)[0].dense_ghat()
        )

    def test_built_models(self, bus1):
        windowed = windowed_vpec(bus1, window_size=1)
        truncated = truncated_vpec(bus1, threshold=1e-6)
        for result in (windowed, truncated):
            assert result.model.coupling_resistor_count == 0
            assert result.sparse_factor == 1.0  # nothing to sparsify


class TestOversizedWindow:
    def test_window_clamps_to_system_size(self, bus5):
        (indices, _block) = next(iter(bus5.inductance_blocks.values()))
        windows = geometric_windows(bus5.system, indices, window_size=999)
        for window in windows:
            assert window.size == len(indices)

    def test_oversized_window_equals_full_inversion(self, bus5):
        windowed = windowed_vpec_networks(bus5, window_size=999)
        full = full_vpec_networks(bus5)
        assert len(windowed) == len(full)
        for w_net, f_net in zip(windowed, full):
            assert list(w_net.indices) == list(f_net.indices)
            np.testing.assert_allclose(
                w_net.dense_ghat(), f_net.dense_ghat(), rtol=1e-10, atol=1e-30
            )
            assert_symmetric_and_passive(w_net)


class TestDropAllCouplings:
    def test_threshold_above_max_strength_drops_everything(self, bus5):
        for network in full_vpec_networks(bus5):
            truncated = truncate_numerical(network, threshold=1.0)
            dense = truncated.dense_ghat()
            off = dense[~np.eye(dense.shape[0], dtype=bool)]
            assert np.all(off == 0.0)
            assert truncated.coupling_count() == 0
            # Diagonal survives untouched.
            np.testing.assert_array_equal(
                np.diag(dense), np.diag(network.dense_ghat())
            )
            assert_symmetric_and_passive(truncated)

    def test_numerical_windows_collapse_to_self(self, bus5):
        for _indices, block in bus5.inductance_blocks.values():
            windows = numerical_windows(block, threshold=1e9)
            for m, window in enumerate(windows):
                assert window.tolist() == [m]

    def test_diagonal_only_wvpec_is_passive(self, bus5):
        result = windowed_vpec(bus5, threshold=1e9)
        assert result.model.coupling_resistor_count == 0
        for network in result.model.networks:
            assert_symmetric_and_passive(network)
