"""Property-based tests of the metric and GMD kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.metrics import waveform_difference
from repro.circuit.waveform import Waveform
from repro.extraction.inductance import gmd_rectangles


@st.composite
def waveform(draw, size=st.integers(min_value=2, max_value=40)):
    n = draw(size)
    values = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(
                min_value=-10.0, max_value=10.0, allow_nan=False
            ),
        )
    )
    return Waveform(np.linspace(0.0, 1.0, n), values)


class TestMetricProperties:
    @given(waveform())
    @settings(max_examples=50, deadline=None)
    def test_self_difference_is_zero(self, wave):
        diff = waveform_difference(wave, wave)
        assert diff.mean_abs == 0.0
        assert diff.max_abs == 0.0

    @given(waveform(), st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=50, deadline=None)
    def test_constant_offset_measured_exactly(self, wave, offset):
        shifted = Waveform(wave.t.copy(), wave.v + offset)
        diff = waveform_difference(wave, shifted)
        assert diff.mean_abs == pytest.approx(abs(offset), abs=1e-12)
        assert diff.std_abs == pytest.approx(0.0, abs=1e-9)

    @given(waveform(), st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=50, deadline=None)
    def test_difference_scales_linearly(self, wave, scale):
        doubled = Waveform(wave.t.copy(), wave.v * (1.0 + scale))
        base = waveform_difference(wave, Waveform(wave.t.copy(), wave.v * 2.0))
        scaled = waveform_difference(wave, doubled)
        assert scaled.mean_abs == pytest.approx(
            base.mean_abs * scale, rel=1e-9, abs=1e-12
        )

    @given(waveform())
    @settings(max_examples=50, deadline=None)
    def test_mean_bounded_by_max(self, wave):
        other = Waveform(wave.t.copy(), np.flip(wave.v))
        diff = waveform_difference(wave, other)
        assert diff.mean_abs <= diff.max_abs + 1e-15


@st.composite
def cross_section_pair(draw):
    def dim():
        return draw(st.floats(min_value=0.1e-6, max_value=5e-6))

    w1, t1, w2, t2 = dim(), dim(), dim(), dim()
    # Keep the sections separated along the width axis.
    gap = draw(st.floats(min_value=0.05e-6, max_value=10e-6))
    offset_w = (w1 + w2) / 2.0 + gap
    offset_t = draw(st.floats(min_value=0.0, max_value=5e-6))
    return w1, t1, w2, t2, offset_w, offset_t


class TestGmdProperties:
    @given(cross_section_pair())
    @settings(max_examples=60, deadline=None)
    def test_symmetric_under_swap(self, pair):
        w1, t1, w2, t2, dw, dt = pair
        forward = gmd_rectangles(w1, t1, w2, t2, dw, dt)
        backward = gmd_rectangles(w2, t2, w1, t1, dw, dt)
        assert forward == pytest.approx(backward, rel=1e-9)

    @given(cross_section_pair(), st.floats(min_value=1.2, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_separation(self, pair, factor):
        w1, t1, w2, t2, dw, dt = pair
        near = gmd_rectangles(w1, t1, w2, t2, dw, dt)
        far = gmd_rectangles(w1, t1, w2, t2, dw * factor, dt * factor)
        assert far > near

    @given(cross_section_pair())
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_extreme_distances(self, pair):
        w1, t1, w2, t2, dw, dt = pair
        center = float(np.hypot(dw, dt))
        diag = float(
            np.hypot(dw + (w1 + w2) / 2, abs(dt) + (t1 + t2) / 2)
        )
        g = gmd_rectangles(w1, t1, w2, t2, dw, dt)
        assert 0 < g <= diag
        # The GMD of separated convex sections exceeds the face gap.
        face_gap = max(dw - (w1 + w2) / 2.0, 0.0)
        assert g >= face_gap
        del center

    @given(cross_section_pair())
    @settings(max_examples=30, deadline=None)
    def test_far_limit_is_center_distance(self, pair):
        w1, t1, w2, t2, _, _ = pair
        distance = 200e-6
        g = gmd_rectangles(w1, t1, w2, t2, distance, 0.0)
        assert g == pytest.approx(distance, rel=1e-3)
