"""run_suite on a shrunken workload: shape of results, seed variants."""

import pytest

from repro.bench.runner import DEFAULT_KERNELS, SEED_KERNELS, run_suite


@pytest.fixture(scope="module")
def small_suite():
    return run_suite(size=8, window=2, repeats=1, include_seed=True)


class TestRunSuite:
    def test_one_result_per_kernel_plus_seed_variants(self, small_suite):
        keys = {(r.kernel, r.variant) for r in small_suite}
        expected = {(k, "vectorized") for k in DEFAULT_KERNELS}
        expected |= {(k, "seed") for k in SEED_KERNELS}
        assert keys == expected

    def test_seed_and_vectorized_checksums_agree(self, small_suite):
        by_key = {(r.kernel, r.variant): r for r in small_suite}
        for kernel in SEED_KERNELS:
            assert (
                by_key[(kernel, "seed")].checksum
                == by_key[(kernel, "vectorized")].checksum
            )

    def test_records_workload_size(self, small_suite):
        assert all(r.size == 8 for r in small_suite)

    def test_times_are_positive(self, small_suite):
        assert all(r.seconds > 0 for r in small_suite)

    def test_kernel_subset_selection(self):
        results = run_suite(
            kernels=("symmetrize_windows_bus1024",), size=8, window=2, repeats=1
        )
        assert [r.kernel for r in results] == ["symmetrize_windows_bus1024"]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernels"):
            run_suite(kernels=("no_such_kernel",), size=8)
