"""Regression verdicts: checksum mismatches fail, slowdowns only warn."""

import pytest

from repro.bench.regression import check_results
from repro.bench.results import BenchResult


def result(kernel="k", variant="vectorized", size=8, seconds=0.01, checksum="aa"):
    return BenchResult(
        kernel=kernel,
        variant=variant,
        size=size,
        seconds=seconds,
        checksum=checksum,
    )


class TestCheckResults:
    def test_matching_entry_is_ok(self):
        report = check_results([result()], [result(seconds=0.009)])
        assert report.ok
        assert report.comparisons[0].status == "ok"

    def test_checksum_mismatch_fails(self):
        report = check_results([result(checksum="aa")], [result(checksum="bb")])
        assert not report.ok
        assert report.failures[0].status == "checksum-mismatch"

    def test_slowdown_within_tolerance_is_ok(self):
        report = check_results(
            [result(seconds=0.014)], [result(seconds=0.01)], time_tolerance=1.5
        )
        assert report.comparisons[0].status == "ok"

    def test_slowdown_beyond_tolerance_warns_but_passes(self):
        report = check_results(
            [result(seconds=0.02)], [result(seconds=0.01)], time_tolerance=1.5
        )
        assert report.ok  # warnings never fail the check
        assert report.warnings[0].status == "time-regression"

    def test_unknown_kernel_is_new(self):
        report = check_results([result(kernel="fresh")], [result()])
        assert report.ok
        assert report.comparisons[0].status == "new"

    def test_latest_committed_entry_wins(self):
        committed = [result(checksum="old"), result(checksum="aa")]
        report = check_results([result(checksum="aa")], committed)
        assert report.ok

    def test_variants_compared_independently(self):
        committed = [
            result(variant="seed", checksum="ss"),
            result(variant="vectorized", checksum="vv"),
        ]
        fresh = [
            result(variant="seed", checksum="ss"),
            result(variant="vectorized", checksum="xx"),
        ]
        report = check_results(fresh, committed)
        assert len(report.failures) == 1
        assert report.failures[0].result.variant == "vectorized"

    def test_tolerance_must_be_positive(self):
        with pytest.raises(ValueError):
            check_results([], [], time_tolerance=0.0)
