"""BenchResult records, checksums, and trajectory round-trips."""

import json

import numpy as np
import pytest

from repro.bench.results import (
    SCHEMA_VERSION,
    BenchResult,
    array_checksum,
    load_trajectory,
    save_trajectory,
)


class TestArrayChecksum:
    def test_deterministic(self):
        data = np.linspace(-1.0, 1.0, 101)
        assert array_checksum(data) == array_checksum(data.copy())

    def test_tolerates_last_ulp_jitter(self):
        data = np.linspace(-1.0, 1.0, 101)
        jittered = data * (1.0 + 1e-15)
        assert array_checksum(data) == array_checksum(jittered)

    def test_detects_real_changes(self):
        data = np.linspace(-1.0, 1.0, 101)
        changed = data.copy()
        changed[3] *= 1.001
        assert array_checksum(data) != array_checksum(changed)

    def test_shape_independent_but_size_sensitive(self):
        data = np.arange(12, dtype=float)
        assert array_checksum(data) == array_checksum(data.reshape(3, 4))
        assert array_checksum(data) != array_checksum(data[:-1])

    def test_multiple_arrays_and_empty(self):
        a = np.ones(3)
        b = np.zeros(0)
        assert array_checksum(a, b) != array_checksum(a)
        assert array_checksum(b) == array_checksum(np.zeros(0))


class TestTrajectoryIO:
    def _result(self, **overrides):
        base = dict(
            kernel="extraction_bus1024",
            variant="vectorized",
            size=1024,
            seconds=0.01,
            checksum="abc123",
        )
        base.update(overrides)
        return BenchResult(**base)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        results = [self._result(), self._result(variant="seed", seconds=0.2)]
        save_trajectory(path, results)
        assert load_trajectory(path) == results

    def test_missing_file_is_empty(self, tmp_path):
        assert load_trajectory(tmp_path / "nope.json") == []

    def test_schema_is_versioned(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        save_trajectory(path, [self._result()])
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            load_trajectory(path)

    def test_key_excludes_timing(self):
        fast = self._result(seconds=0.001)
        slow = self._result(seconds=9.0)
        assert fast.key == slow.key
