"""Smoke tests of the simulation-backend bench suite (small workloads)."""

import pytest

from repro.bench.sim import SIM_KERNELS, run_sim_suite


class TestRunSimSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return run_sim_suite(size=8, sim_size=8, repeats=1, include_seed=True)

    def test_every_kernel_has_both_variants(self, results):
        keys = {(r.kernel, r.variant) for r in results}
        assert keys == {
            (kernel, variant)
            for kernel in SIM_KERNELS
            for variant in ("columnar", "seed")
        }

    def test_columnar_and_seed_checksums_match(self, results):
        by_kernel = {}
        for result in results:
            by_kernel.setdefault(result.kernel, {})[result.variant] = result
        for kernel, variants in by_kernel.items():
            assert variants["columnar"].checksum == variants["seed"].checksum, (
                f"{kernel}: columnar and seed outputs diverge"
            )

    def test_sizes_recorded(self, results):
        for result in results:
            assert result.size == 8
            assert result.seconds > 0

    def test_kernel_subset_and_unknown(self):
        subset = run_sim_suite(
            kernels=("transient_bus64",), size=8, sim_size=8, repeats=1
        )
        assert [r.kernel for r in subset] == ["transient_bus64"]
        with pytest.raises(ValueError, match="unknown kernels"):
            run_sim_suite(kernels=("nope",))
