"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; each contains its own
assertions (waveform equivalence, passivity outcomes, accuracy bounds),
so executing them is a meaningful end-to-end test, not just an import
check.  They run in-process via runpy to share the warmed interpreter.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_complete():
    """The README promises at least a quickstart plus domain scripts."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert "OK" in out or "PASS" in out or "Reading the table" in out
