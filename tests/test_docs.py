"""Documentation integrity tests.

The docs are deliverables: the generated API reference must be
regenerable and in sync with the code, and the hand-written docs must
reference files that actually exist.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).parent.parent
DOCS = REPO / "docs"


class TestApiReference:
    def test_generator_runs(self, capsys, tmp_path, monkeypatch):
        import tools.generate_api_docs as generator

        monkeypatch.setattr(generator, "OUTPUT", tmp_path / "api.md")
        assert generator.main() == 0
        text = (tmp_path / "api.md").read_text()
        for name in ("aligned_bus", "full_vpec", "transient_analysis"):
            assert name in text

    def test_checked_in_reference_covers_packages(self):
        text = (DOCS / "api.md").read_text()
        for package in (
            "repro.geometry",
            "repro.extraction",
            "repro.circuit",
            "repro.vpec",
            "repro.mor",
            "repro.noise",
        ):
            assert f"## `{package}`" in text


class TestCrossReferences:
    @pytest.mark.parametrize(
        "doc", ["theory.md", "architecture.md", "cli.md", "noise.md"]
    )
    def test_doc_exists_and_nonempty(self, doc):
        path = DOCS / doc
        assert path.exists()
        assert len(path.read_text()) > 500

    def test_design_md_module_paths_exist(self):
        """Every `repro/...py` path DESIGN.md names must exist."""
        text = (REPO / "DESIGN.md").read_text()
        for match in re.finditer(r"`(repro/[\w/]+\.py)`", text):
            assert (REPO / "src" / match.group(1)).exists(), match.group(1)

    def test_design_md_bench_targets_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for match in re.finditer(r"`(benchmarks/[\w/]+\.py)", text):
            assert (REPO / match.group(1)).exists(), match.group(1)

    def test_readme_mentions_all_example_scripts(self):
        readme = (REPO / "README.md").read_text()
        for example in ("quickstart.py",):
            assert example in readme
