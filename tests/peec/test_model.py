"""Unit tests for the PEEC model builder."""

import numpy as np
import pytest

from repro.circuit.elements import Inductor, MutualInductance
from repro.circuit.sources import dc
from repro.circuit.ac import ac_analysis
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.geometry.spiral import square_spiral
from repro.peec.model import build_peec


class TestStructure:
    def test_one_inductor_per_filament(self, bus5):
        model = build_peec(bus5)
        assert len(model.circuit.elements_of_type(Inductor)) == 5
        assert len(model.inductor_names) == 5

    def test_dense_mutual_count(self, bus5):
        model = build_peec(bus5)
        assert model.mutual_count == 10  # 5 choose 2
        assert len(model.circuit.elements_of_type(MutualInductance)) == 10

    def test_inductor_values_match_extraction(self, bus5):
        model = build_peec(bus5)
        for k, name in enumerate(model.inductor_names):
            inductor = model.circuit.element(name)
            assert inductor.value == pytest.approx(bus5.inductance[k, k])

    def test_mutual_values_match_extraction(self, bus5):
        model = build_peec(bus5)
        mutual = model.circuit.element("K0_1")
        assert mutual.value == pytest.approx(bus5.inductance[0, 1])

    def test_spiral_mutual_only_within_axis_groups(self):
        parasitics = extract(square_spiral(turns=2, total_segments=20))
        model = build_peec(parasitics)
        groups = parasitics.system.indices_by_axis()
        group_of = {}
        for axis, indices in groups.items():
            for i in indices:
                group_of[i] = axis
        for mutual in model.circuit.elements_of_type(MutualInductance):
            i = int(mutual.inductor1[2:])
            j = int(mutual.inductor2[2:])
            assert group_of[i] is group_of[j]

    def test_spiral_signs_applied(self):
        # Opposite legs of a turn carry opposite currents: at least one
        # mutual must be stamped negative.
        parasitics = extract(square_spiral(turns=2, total_segments=20))
        model = build_peec(parasitics)
        values = [m.value for m in model.circuit.elements_of_type(MutualInductance)]
        assert any(v < 0 for v in values)
        assert any(v > 0 for v in values)


class TestElectricalEquivalence:
    def test_two_filament_loop_inductance(self):
        """A go-and-return pair driven differentially sees L1+L2-2M."""
        parasitics = extract(aligned_bus(2, length=500e-6))
        model = build_peec(parasitics)
        circuit = model.circuit
        ports = model.skeleton.ports
        from repro.circuit.sources import ac_unit

        # Drive wire 0 near end; tie far ends together; ground wire 1 near.
        circuit.add_voltage_source(ports[0].near, "0", ac_unit(), name="Vd")
        circuit.add_resistor(ports[0].far, ports[1].far, 1e-3, name="Rtie")
        circuit.add_resistor(ports[1].near, "0", 1e-3, name="Rret")

        l_loop = (
            parasitics.inductance[0, 0]
            + parasitics.inductance[1, 1]
            - 2 * parasitics.inductance[0, 1]
        )
        r_loop = float(parasitics.resistance.sum()) + 2e-3
        f = 1e9
        result = ac_analysis(circuit, [f, 2e9], probe_branches=["Vd"], probe_nodes=[])
        i_meas = -result.branch_currents["Vd"][0]
        z_expected = r_loop + 1j * 2 * np.pi * f * l_loop
        # Capacitive loading makes this approximate; 5% is tight enough
        # to confirm the mutual stamp's sign and magnitude.
        assert abs(1.0 / i_meas) == pytest.approx(abs(z_expected), rel=0.05)

    def test_dc_path_through_bus_line(self, fresh_bus5):
        model = build_peec(fresh_bus5)
        circuit = model.circuit
        ports = model.skeleton.ports
        circuit.add_voltage_source(ports[0].near, "0", dc(1.0), name="Vd")
        circuit.add_resistor(ports[0].far, "0", 17.0, name="Rload")
        from repro.circuit.dc import dc_operating_point

        sol = dc_operating_point(circuit)
        # Line resistance 17 ohm + load 17 ohm: divider at 0.5.
        assert sol.voltage(ports[0].far) == pytest.approx(0.5, rel=1e-6)
