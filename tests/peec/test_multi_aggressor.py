"""Tests for the simultaneous-switching (multi-aggressor) testbench."""

import numpy as np
import pytest

from repro.circuit.sources import step
from repro.circuit.transient import transient_analysis
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.peec.builder import (
    attach_bus_testbench,
    attach_multi_aggressor_testbench,
    build_skeleton,
)
from repro.peec.model import build_peec


def victim_wave(drives, bits=5, victim=2, t_stop=200e-12):
    model = build_peec(extract(aligned_bus(bits)))
    attach_multi_aggressor_testbench(model.skeleton, drives)
    node = model.skeleton.ports[victim].far
    result = transient_analysis(
        model.circuit, t_stop, 1e-12, probe_nodes=[node]
    )
    return result.voltage(node)


class TestStructure:
    def test_sources_per_aggressor(self, fresh_bus5):
        skeleton = build_skeleton(fresh_bus5)
        rise = step(1.0, rise_time=10e-12)
        attach_multi_aggressor_testbench(skeleton, {0: rise, 4: rise})
        names = {e.name for e in skeleton.circuit}
        assert {"Vdrv0", "Vdrv4"} <= names
        assert "Vdrv2" not in names

    def test_single_aggressor_equals_standard_testbench(self):
        rise = step(1.0, rise_time=10e-12)
        multi = victim_wave({0: rise})
        single_model = build_peec(extract(aligned_bus(5)))
        attach_bus_testbench(single_model.skeleton, rise, aggressor=0)
        node = single_model.skeleton.ports[2].far
        single = transient_analysis(
            single_model.circuit, 200e-12, 1e-12, probe_nodes=[node]
        ).voltage(node)
        assert np.allclose(multi.v, single.v, atol=1e-12)

    def test_validation(self, fresh_bus5):
        skeleton = build_skeleton(fresh_bus5)
        with pytest.raises(ValueError):
            attach_multi_aggressor_testbench(skeleton, {})
        with pytest.raises(ValueError):
            attach_multi_aggressor_testbench(
                skeleton, {42: step(1.0, 10e-12)}
            )


class TestSuperposition:
    def test_two_aggressors_superpose(self):
        """Linearity: the symmetric pair's noise is the sum of each."""
        rise = step(1.0, rise_time=10e-12)
        both = victim_wave({1: rise, 3: rise})
        left = victim_wave({1: rise})
        right = victim_wave({3: rise})
        assert np.allclose(both.v, left.v + right.v, atol=1e-9)

    def test_in_phase_neighbors_worse_than_one(self):
        rise = step(1.0, rise_time=10e-12)
        both = victim_wave({1: rise, 3: rise})
        one = victim_wave({1: rise})
        assert both.peak > 1.5 * one.peak

    def test_anti_phase_cancels_on_symmetric_victim(self):
        rising = step(1.0, rise_time=10e-12)
        falling = step(0.0, rise_time=10e-12, v_initial=1.0)
        waves = victim_wave({1: rising, 3: falling})
        single = victim_wave({1: rising})
        # The symmetric victim sees near-perfect cancellation.
        assert waves.peak < 0.05 * single.peak
