"""Unit tests for the shared electrical skeleton and testbenches."""

import numpy as np
import pytest

from repro.circuit.elements import Capacitor, Resistor, VoltageSource
from repro.circuit.sources import step
from repro.extraction.parasitics import extract
from repro.geometry.spiral import square_spiral
from repro.peec.builder import (
    attach_bus_testbench,
    attach_two_port_testbench,
    build_skeleton,
)


class TestSkeletonStructure:
    def test_one_resistor_per_filament(self, bus5):
        skeleton = build_skeleton(bus5)
        resistors = skeleton.circuit.elements_of_type(Resistor)
        assert len(resistors) == 5

    def test_slots_are_open(self, bus5):
        # No element spans any slot yet: each slot node pair is distinct.
        skeleton = build_skeleton(bus5)
        for a, b in skeleton.slot_nodes:
            assert a != b

    def test_ports_per_wire(self, bus5):
        skeleton = build_skeleton(bus5)
        assert set(skeleton.ports) == {0, 1, 2, 3, 4}
        for ports in skeleton.ports.values():
            assert ports.near != ports.far

    def test_series_segments_share_nodes(self, bus8x2):
        skeleton = build_skeleton(bus8x2)
        system = bus8x2.system
        # Segment 0's slot output feeds segment 1's resistor input chain:
        # the far port of the wire equals segment 1's slot output.
        members = system.wire_filaments(0)
        last_slot = skeleton.slot_nodes[members[-1]]
        assert skeleton.ports[0].far == last_slot[1]

    def test_bus_signs_all_positive(self, bus8x2):
        assert np.all(build_skeleton(bus8x2).signs == 1.0)

    def test_spiral_signs_mixed(self):
        parasitics = extract(square_spiral(turns=2, total_segments=20))
        skeleton = build_skeleton(parasitics)
        assert set(np.unique(skeleton.signs)) == {-1.0, 1.0}

    def test_spiral_single_wire_connected(self):
        parasitics = extract(square_spiral(turns=2, total_segments=20))
        skeleton = build_skeleton(parasitics)
        assert set(skeleton.ports) == {0}

    def test_ground_capacitors_present(self, bus5):
        skeleton = build_skeleton(bus5)
        caps = skeleton.circuit.elements_of_type(Capacitor)
        ground_caps = [c for c in caps if c.n2 == "0"]
        assert len(ground_caps) >= 5

    def test_coupling_capacitors_split_in_two(self, bus5):
        skeleton = build_skeleton(bus5)
        caps = skeleton.circuit.elements_of_type(Capacitor)
        coupling = [c for c in caps if c.n2 != "0"]
        # 4 adjacent pairs, each split across the two endpoint pairs.
        assert len(coupling) == 8

    def test_total_ground_capacitance_preserved(self, bus5):
        skeleton = build_skeleton(bus5)
        caps = skeleton.circuit.elements_of_type(Capacitor)
        total = sum(c.value for c in caps if c.n2 == "0")
        assert total == pytest.approx(float(bus5.ground_capacitance.sum()))

    def test_total_coupling_capacitance_preserved(self, bus5):
        skeleton = build_skeleton(bus5)
        caps = skeleton.circuit.elements_of_type(Capacitor)
        total = sum(c.value for c in caps if c.n2 != "0")
        assert total == pytest.approx(
            sum(bus5.coupling_capacitance.values())
        )


class TestTestbenches:
    def test_bus_testbench_drives_aggressor_only(self, fresh_bus5):
        skeleton = build_skeleton(fresh_bus5)
        attach_bus_testbench(skeleton, step(1.0, 10e-12), aggressor=2)
        sources = skeleton.circuit.elements_of_type(VoltageSource)
        assert [s.name for s in sources] == ["Vdrv2"]

    def test_bus_testbench_loads_every_far_end(self, fresh_bus5):
        skeleton = build_skeleton(fresh_bus5)
        attach_bus_testbench(skeleton, step(1.0, 10e-12))
        names = {e.name for e in skeleton.circuit}
        assert all(f"CL{w}" in names for w in range(5))
        assert all(f"Rd{w}" in names for w in range(5))

    def test_bus_testbench_rejects_missing_wire(self, fresh_bus5):
        skeleton = build_skeleton(fresh_bus5)
        with pytest.raises(ValueError):
            attach_bus_testbench(skeleton, step(1.0, 10e-12), aggressor=99)

    def test_two_port_returns_nodes(self):
        parasitics = extract(square_spiral(turns=2, total_segments=20))
        skeleton = build_skeleton(parasitics)
        near, far = attach_two_port_testbench(skeleton, step(1.0, 10e-12))
        assert near == skeleton.ports[0].near
        assert far == skeleton.ports[0].far

    def test_zero_load_capacitance_skipped(self, fresh_bus5):
        skeleton = build_skeleton(fresh_bus5)
        attach_bus_testbench(skeleton, step(1.0, 10e-12), load_capacitance=0.0)
        names = {e.name for e in skeleton.circuit}
        assert "CL0" not in names
