"""Unit tests for the bus generators."""

import pytest

from repro.geometry.bus import aligned_bus, nonaligned_bus
from repro.geometry.filament import Axis


class TestAlignedBus:
    def test_filament_count(self):
        assert len(aligned_bus(8, segments_per_line=4)) == 32

    def test_paper_default_dimensions(self):
        bus = aligned_bus(5)
        f = bus[0]
        assert f.length == pytest.approx(1000e-6)
        assert f.width == pytest.approx(1e-6)
        assert f.thickness == pytest.approx(1e-6)

    def test_pitch_is_width_plus_spacing(self):
        bus = aligned_bus(3, width=1e-6, spacing=2e-6)
        assert bus[1].origin[1] - bus[0].origin[1] == pytest.approx(3e-6)

    def test_segments_partition_line(self):
        bus = aligned_bus(1, segments_per_line=4, length=1000e-6)
        spans = [bus[i].axial_span for i in range(4)]
        assert spans[0][0] == pytest.approx(0.0)
        assert spans[-1][1] == pytest.approx(1000e-6)
        for k in range(3):
            assert spans[k][1] == pytest.approx(spans[k + 1][0])

    def test_all_along_x(self):
        assert all(f.axis is Axis.X for f in aligned_bus(4, segments_per_line=2))

    def test_wire_assignment(self):
        bus = aligned_bus(3, segments_per_line=2)
        assert sorted({f.wire for f in bus}) == [0, 1, 2]
        assert bus.segments_per_wire() == {0: 2, 1: 2, 2: 2}

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            aligned_bus(0)

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            aligned_bus(4, segments_per_line=0)

    def test_no_overlaps(self):
        aligned_bus(6, segments_per_line=3).validate_no_overlaps()

    def test_name_default(self):
        assert aligned_bus(7).name == "aligned_bus_7x1"


class TestNonalignedBus:
    def test_deterministic_for_seed(self):
        a = nonaligned_bus(8, seed=42)
        b = nonaligned_bus(8, seed=42)
        assert [f.origin for f in a] == [f.origin for f in b]

    def test_seed_changes_layout(self):
        a = nonaligned_bus(8, seed=1)
        b = nonaligned_bus(8, seed=2)
        assert [f.origin for f in a] != [f.origin for f in b]

    def test_spacing_varies(self):
        bus = nonaligned_bus(16, seed=3)
        gaps = {
            round(bus[k + 1].origin[1] - bus[k].origin[1], 12) for k in range(15)
        }
        assert len(gaps) > 1

    def test_offsets_vary_when_enabled(self):
        bus = nonaligned_bus(16, seed=3, offset_jitter=0.1)
        starts = {round(f.origin[0], 12) for f in bus}
        assert len(starts) > 1

    def test_offsets_disabled_by_default(self):
        bus = nonaligned_bus(16, seed=3)
        starts = {round(f.origin[0], 12) for f in bus}
        assert starts == {0.0}

    def test_zero_jitter_reduces_to_aligned(self):
        bus = nonaligned_bus(4, spacing_jitter=0.0, offset_jitter=0.0)
        ref = aligned_bus(4)
        for f, g in zip(bus, ref):
            assert f.origin == pytest.approx(g.origin)

    def test_jitter_bounds_validated(self):
        with pytest.raises(ValueError):
            nonaligned_bus(4, spacing_jitter=1.5)
        with pytest.raises(ValueError):
            nonaligned_bus(4, offset_jitter=-0.1)

    def test_no_overlaps(self):
        nonaligned_bus(12, seed=9).validate_no_overlaps()
