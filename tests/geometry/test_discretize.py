"""Unit tests for the frequency-driven discretization rules."""

import math

import pytest

from repro.constants import COPPER_RESISTIVITY, LOW_K_EPS_R, MAX_FREQUENCY
from repro.geometry.bus import aligned_bus
from repro.geometry.discretize import (
    segments_per_wavelength_rule,
    skin_depth,
    subdivide_filament,
    wavelength,
)


class TestSkinDepth:
    def test_copper_at_10ghz(self):
        # Classical value: ~0.66 um for copper at 10 GHz.
        delta = skin_depth(COPPER_RESISTIVITY, 10e9)
        assert delta == pytest.approx(0.656e-6, rel=0.02)

    def test_scales_with_inverse_sqrt_frequency(self):
        d1 = skin_depth(COPPER_RESISTIVITY, 1e9)
        d4 = skin_depth(COPPER_RESISTIVITY, 4e9)
        assert d1 / d4 == pytest.approx(2.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            skin_depth(COPPER_RESISTIVITY, 0.0)


class TestWavelength:
    def test_vacuum(self):
        assert wavelength(1e9) == pytest.approx(0.2998, rel=1e-3)

    def test_dielectric_slows_wave(self):
        assert wavelength(1e9, eps_r=4.0) == pytest.approx(
            wavelength(1e9) / 2.0
        )

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            wavelength(-1.0)


class TestSegmentationRule:
    def test_paper_bus_is_single_segment(self):
        # 1000 um at 10 GHz in low-k: tenth-wavelength ~2.1 mm > 1000 um.
        assert segments_per_wavelength_rule(1000e-6, MAX_FREQUENCY, LOW_K_EPS_R) == 1

    def test_long_line_splits(self):
        count = segments_per_wavelength_rule(10e-3, MAX_FREQUENCY, LOW_K_EPS_R)
        lam = wavelength(MAX_FREQUENCY, LOW_K_EPS_R)
        assert count == math.ceil(10e-3 / (0.1 * lam))
        assert count >= 4

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            segments_per_wavelength_rule(1e-3, 1e9, fraction=0.0)

    def test_length_validated(self):
        with pytest.raises(ValueError):
            segments_per_wavelength_rule(0.0, 1e9)


class TestSubdivide:
    def test_identity(self):
        f = aligned_bus(1)[0]
        assert subdivide_filament(f, 1) == [f]

    def test_pieces_partition_length(self):
        f = aligned_bus(1)[0]
        pieces = subdivide_filament(f, 4)
        assert len(pieces) == 4
        assert sum(p.length for p in pieces) == pytest.approx(f.length)
        for k in range(3):
            assert pieces[k].axial_span[1] == pytest.approx(
                pieces[k + 1].axial_span[0]
            )

    def test_segment_numbering_stays_gap_free(self):
        bus = aligned_bus(1, segments_per_line=2)
        pieces = [q for f in bus for q in subdivide_filament(f, 3)]
        assert sorted(p.segment for p in pieces) == list(range(6))

    def test_rejects_zero_pieces(self):
        with pytest.raises(ValueError):
            subdivide_filament(aligned_bus(1)[0], 0)
