"""Unit tests for the two-layer crossbar generator and crossings."""

import numpy as np
import pytest

from repro.extraction.parasitics import extract
from repro.geometry.crossbar import crossbar
from repro.geometry.filament import Axis


class TestCrossbarGeometry:
    def test_wire_counts(self):
        system = crossbar(4, 3)
        assert len(system) == 7
        groups = system.indices_by_axis()
        assert len(groups[Axis.X]) == 4
        assert len(groups[Axis.Y]) == 3

    def test_layers_do_not_touch(self):
        crossbar(3, 3).validate_no_overlaps()

    def test_every_pair_crosses_once(self):
        system = crossbar(4, 3)
        crossings = system.crossing_pairs()
        assert len(crossings) == 12
        pairs = {(i, j) for i, j, _, _ in crossings}
        assert len(pairs) == 12

    def test_crossing_area_is_width_squared(self):
        system = crossbar(2, 2, width=1e-6)
        for _, _, area, _ in system.crossing_pairs():
            assert area == pytest.approx(1e-12)

    def test_crossing_gap_is_layer_gap(self):
        system = crossbar(2, 2, layer_gap=0.7e-6)
        for _, _, _, gap in system.crossing_pairs():
            assert gap == pytest.approx(0.7e-6)

    def test_rejects_empty_layer(self):
        with pytest.raises(ValueError):
            crossbar(0, 3)


class TestCrossbarExtraction:
    def test_no_interlayer_inductive_coupling(self):
        parasitics = extract(crossbar(3, 3))
        groups = parasitics.system.indices_by_axis()
        block = parasitics.inductance[
            np.ix_(groups[Axis.X], groups[Axis.Y])
        ]
        assert np.all(block == 0.0)

    def test_two_inductance_blocks(self):
        parasitics = extract(crossbar(3, 2))
        assert len(parasitics.inductance_blocks) == 2

    def test_crossing_capacitance_extracted(self):
        parasitics = extract(crossbar(2, 2))
        groups = parasitics.system.indices_by_axis()
        cross_pairs = {
            (min(i, j), max(i, j))
            for i in groups[Axis.X]
            for j in groups[Axis.Y]
        }
        found = cross_pairs & set(parasitics.coupling_capacitance)
        assert found == cross_pairs
        for pair in found:
            assert parasitics.coupling_capacitance[pair] > 0

    def test_crossing_capacitance_scales_with_gap(self):
        tight = extract(crossbar(1, 1, layer_gap=0.25e-6))
        loose = extract(crossbar(1, 1, layer_gap=1.0e-6))
        c_tight = next(iter(tight.coupling_capacitance.values()))
        c_loose = next(iter(loose.coupling_capacitance.values()))
        assert c_tight == pytest.approx(4.0 * c_loose, rel=1e-6)


class TestCrossbarModels:
    def test_vpec_matches_peec(self):
        """Two magnetic circuits + crossing caps: VPEC still == PEEC."""
        from repro.circuit.sources import step
        from repro.circuit.transient import transient_analysis
        from repro.peec import attach_bus_testbench, build_peec
        from repro.vpec.builder import build_vpec
        from repro.vpec.full import full_vpec_networks

        p_peec, p_vpec = extract(crossbar(3, 3)), extract(crossbar(3, 3))
        peec = build_peec(p_peec)
        vpec = build_vpec(p_vpec, full_vpec_networks(p_vpec))
        stim = step(1.0, rise_time=10e-12)
        attach_bus_testbench(peec.skeleton, stim)
        attach_bus_testbench(vpec.skeleton, stim)
        # Observe a victim on the *other* layer (coupled only through
        # the crossing capacitance).
        victim_p = peec.skeleton.ports[4].far
        victim_v = vpec.skeleton.ports[4].far
        w_p = transient_analysis(
            peec.circuit, 200e-12, 1e-12, probe_nodes=[victim_p]
        ).voltage(victim_p)
        w_v = transient_analysis(
            vpec.circuit, 200e-12, 1e-12, probe_nodes=[victim_v]
        ).voltage(victim_v)
        assert w_p.peak > 1e-4  # the layers really couple
        assert np.max(np.abs(w_p.v - w_v.v)) < 1e-9
