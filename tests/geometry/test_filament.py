"""Unit tests for the rectangular filament primitive."""

import pytest

from repro.geometry.filament import Axis, Filament


def make(axis=Axis.X, origin=(0.0, 0.0, 0.0), length=10e-6, width=1e-6, thickness=2e-6):
    return Filament(origin=origin, length=length, width=width, thickness=thickness, axis=axis)


class TestConstruction:
    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            make(length=0.0)

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            make(width=-1e-6)

    def test_rejects_zero_thickness(self):
        with pytest.raises(ValueError):
            make(thickness=0.0)

    def test_is_frozen(self):
        f = make()
        with pytest.raises(AttributeError):
            f.length = 5e-6


class TestDerivedGeometry:
    def test_cross_section_area(self):
        assert make().cross_section_area == pytest.approx(2e-12)

    def test_volume(self):
        assert make().volume == pytest.approx(10e-6 * 2e-12)

    def test_center_x_axis(self):
        f = make(axis=Axis.X)
        assert f.center == pytest.approx((5e-6, 0.5e-6, 1e-6))

    def test_center_y_axis(self):
        f = make(axis=Axis.Y)
        # width spans x, thickness spans z
        assert f.center == pytest.approx((0.5e-6, 5e-6, 1e-6))

    def test_center_z_axis(self):
        f = make(axis=Axis.Z)
        assert f.center == pytest.approx((0.5e-6, 1e-6, 5e-6))

    def test_start_end_along_axis(self):
        f = make(axis=Axis.X)
        assert f.start[0] == pytest.approx(0.0)
        assert f.end[0] == pytest.approx(10e-6)
        assert f.start[1:] == pytest.approx(f.end[1:])

    def test_axial_span(self):
        f = make(origin=(2e-6, 0, 0))
        assert f.axial_span == pytest.approx((2e-6, 12e-6))

    def test_axis_unit_vectors(self):
        assert Axis.X.unit == (1.0, 0.0, 0.0)
        assert Axis.Y.unit == (0.0, 1.0, 0.0)
        assert Axis.Z.unit == (0.0, 0.0, 1.0)


class TestPairwiseRelations:
    def test_parallel_same_axis(self):
        assert make(axis=Axis.X).is_parallel_to(make(axis=Axis.X))

    def test_not_parallel_different_axis(self):
        assert not make(axis=Axis.X).is_parallel_to(make(axis=Axis.Y))

    def test_lateral_distance(self):
        a = make()
        b = make(origin=(0.0, 3e-6, 4e-6))
        assert a.lateral_distance_to(b) == pytest.approx(5e-6)

    def test_lateral_distance_requires_parallel(self):
        with pytest.raises(ValueError):
            make(axis=Axis.X).lateral_distance_to(make(axis=Axis.Y))

    def test_longitudinal_offset(self):
        a = make()
        b = make(origin=(7e-6, 3e-6, 0.0))
        assert a.longitudinal_offset_to(b) == pytest.approx(7e-6)

    def test_longitudinal_offset_requires_parallel(self):
        with pytest.raises(ValueError):
            make(axis=Axis.X).longitudinal_offset_to(make(axis=Axis.Z))

    def test_overlap_detected(self):
        a = make()
        b = make(origin=(5e-6, 0.0, 0.0))
        assert a.overlaps(b)

    def test_touching_not_overlapping(self):
        a = make()
        b = make(origin=(10e-6, 0.0, 0.0))
        assert not a.overlaps(b)

    def test_disjoint_lateral(self):
        a = make()
        b = make(origin=(0.0, 5e-6, 0.0))
        assert not a.overlaps(b)


class TestTransformations:
    def test_translated(self):
        f = make().translated(dy=2e-6, dz=-1e-6)
        assert f.origin == pytest.approx((0.0, 2e-6, -1e-6))
        assert f.length == 10e-6

    def test_with_wire(self):
        f = make().with_wire(3, 7)
        assert (f.wire, f.segment) == (3, 7)

    def test_translation_preserves_lateral_distance(self):
        a = make()
        b = make(origin=(0.0, 3e-6, 0.0))
        d0 = a.lateral_distance_to(b)
        assert a.translated(dx=5e-6).lateral_distance_to(
            b.translated(dx=5e-6)
        ) == pytest.approx(d0)
