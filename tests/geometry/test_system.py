"""Unit tests for FilamentSystem: wires, adjacency, validation."""

import pytest

from repro.geometry.bus import aligned_bus, nonaligned_bus
from repro.geometry.filament import Axis, Filament
from repro.geometry.spiral import square_spiral
from repro.geometry.system import FilamentSystem, _merge_interval, _uncovered_length


def line(y, wire, segment=0, x0=0.0, length=100e-6):
    return Filament(
        origin=(x0, y, 0.0),
        length=length,
        width=1e-6,
        thickness=1e-6,
        axis=Axis.X,
        wire=wire,
        segment=segment,
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FilamentSystem([])

    def test_gapped_segments_rejected(self):
        with pytest.raises(ValueError):
            FilamentSystem([line(0, 0, segment=0), line(0, 0, segment=2)])

    def test_wire_filaments_in_segment_order(self):
        system = FilamentSystem(
            [line(0, 0, segment=1, x0=100e-6), line(0, 0, segment=0)]
        )
        ordered = system.wire_filaments(0)
        assert [system[i].segment for i in ordered] == [0, 1]

    def test_len_and_iteration(self):
        system = aligned_bus(4)
        assert len(system) == 4
        assert len(list(system)) == 4

    def test_wire_ids_sorted(self):
        assert aligned_bus(3).wire_ids == [0, 1, 2]

    def test_segments_per_wire(self):
        system = aligned_bus(3, segments_per_line=4)
        assert system.segments_per_wire() == {0: 4, 1: 4, 2: 4}


class TestBulkArrays:
    def test_lengths(self):
        system = aligned_bus(2, segments_per_line=2, length=1000e-6)
        assert system.lengths() == pytest.approx([500e-6] * 4)

    def test_uniform_segment_length(self):
        assert aligned_bus(3).uniform_segment_length() == pytest.approx(1000e-6)

    def test_uniform_segment_length_rejects_mixed(self):
        mixed = FilamentSystem([line(0, 0, length=10e-6), line(3e-6, 1, length=20e-6)])
        with pytest.raises(ValueError):
            mixed.uniform_segment_length()

    def test_indices_by_axis_bus(self):
        groups = aligned_bus(4).indices_by_axis()
        assert set(groups) == {Axis.X}
        assert groups[Axis.X] == [0, 1, 2, 3]

    def test_indices_by_axis_spiral(self):
        groups = square_spiral(turns=2, total_segments=16).indices_by_axis()
        assert set(groups) == {Axis.X, Axis.Y}
        total = sum(len(v) for v in groups.values())
        assert total == 16


class TestAdjacency:
    def test_bus_chain(self):
        assert aligned_bus(5).adjacent_pairs() == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_multisegment_pairs_match_segments(self):
        system = aligned_bus(4, segments_per_line=3)
        pairs = system.adjacent_pairs()
        assert len(pairs) == 3 * 3  # 3 neighbor-bit pairs x 3 segments
        for i, j in pairs:
            assert system[i].segment == system[j].segment
            assert abs(system[i].wire - system[j].wire) == 1

    def test_shadowing_blocks_far_pair(self):
        # Three stacked lines: 0-2 is shadowed by 1.
        system = FilamentSystem([line(0, 0), line(3e-6, 1), line(6e-6, 2)])
        assert (0, 2) not in system.adjacent_pairs()

    def test_partial_shadow_exposes_far_pair(self):
        # Middle line only covers half the span: 0-2 visible over the rest.
        system = FilamentSystem(
            [line(0, 0), line(3e-6, 1, length=50e-6), line(6e-6, 2)]
        )
        assert (0, 2) in system.adjacent_pairs()

    def test_no_axial_overlap_no_pair(self):
        system = FilamentSystem([line(0, 0), line(3e-6, 1, x0=200e-6)])
        assert system.adjacent_pairs() == []

    def test_spiral_turn_to_turn_coupling_exists(self):
        system = square_spiral(turns=2, total_segments=16)
        assert len(system.adjacent_pairs()) > 0

    def test_nonaligned_bus_has_at_least_chain(self):
        system = nonaligned_bus(8)
        pairs = system.adjacent_pairs()
        chain = {(b, b + 1) for b in range(7)}
        found = {(system[i].wire, system[j].wire) for i, j in pairs}
        assert chain <= found


class TestValidation:
    def test_no_overlaps_passes_for_bus(self):
        aligned_bus(4).validate_no_overlaps()

    def test_overlap_detected(self):
        with pytest.raises(ValueError):
            FilamentSystem([line(0, 0), line(0.5e-6, 1)]).validate_no_overlaps()


class TestIntervalHelpers:
    def test_merge_disjoint(self):
        assert _merge_interval([(0, 1)], (2, 3)) == [(0, 1), (2, 3)]

    def test_merge_overlapping(self):
        assert _merge_interval([(0, 2)], (1, 3)) == [(0, 3)]

    def test_merge_bridging(self):
        assert _merge_interval([(0, 1), (2, 3)], (0.5, 2.5)) == [(0, 3)]

    def test_uncovered_full(self):
        assert _uncovered_length((0, 10), []) == 10

    def test_uncovered_partial(self):
        assert _uncovered_length((0, 10), [(2, 5)]) == 7

    def test_uncovered_none(self):
        assert _uncovered_length((0, 10), [(0, 10)]) == 0
