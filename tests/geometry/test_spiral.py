"""Unit tests for the square-spiral generator."""

import math

import pytest

from repro.geometry.filament import Axis
from repro.geometry.spiral import spiral_path_points, square_spiral


class TestSquareSpiral:
    def test_paper_segment_count(self):
        assert len(square_spiral(turns=3, total_segments=92)) == 92

    def test_single_wire(self):
        spiral = square_spiral(turns=2, total_segments=20)
        assert spiral.wire_ids == [0]
        assert spiral.segments_per_wire() == {0: 20}

    def test_alternating_axes_present(self):
        groups = square_spiral(turns=2, total_segments=20).indices_by_axis()
        assert Axis.X in groups and Axis.Y in groups

    def test_path_is_connected(self):
        spiral = square_spiral(turns=3, total_segments=92)
        points = spiral_path_points(spiral)
        assert len(points) == len(spiral) + 1

    def test_path_length_matches_filament_lengths(self):
        spiral = square_spiral(turns=2, total_segments=24)
        points = spiral_path_points(spiral)
        path = sum(math.dist(a, b) for a, b in zip(points, points[1:]))
        assert path == pytest.approx(float(spiral.lengths().sum()), rel=1e-9)

    def test_winds_inward(self):
        spiral = square_spiral(turns=3, total_segments=48, outer_dimension=200e-6)
        points = spiral_path_points(spiral)
        first_leg = math.dist(points[0], points[1])
        # The spiral's inner legs are shorter than the outer ones.
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert max(xs) - min(xs) <= 200e-6 + 1e-12
        assert max(ys) - min(ys) <= 200e-6 + 1e-12
        del first_leg

    def test_requires_room_to_wind(self):
        with pytest.raises(ValueError):
            square_spiral(turns=5, outer_dimension=10e-6, width=2e-6, spacing=2e-6)

    def test_requires_enough_segments(self):
        with pytest.raises(ValueError):
            square_spiral(turns=3, total_segments=4)

    def test_rejects_zero_turns(self):
        with pytest.raises(ValueError):
            square_spiral(turns=0)

    def test_segment_counts_proportional_to_leg_length(self):
        spiral = square_spiral(turns=2, total_segments=40)
        by_axis = spiral.indices_by_axis()
        # Both directions get a meaningful share of the segments.
        assert min(len(v) for v in by_axis.values()) >= 10
