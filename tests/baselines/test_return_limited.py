"""Tests for the return-limited baseline (Shepard-Tian, ref [8])."""

import numpy as np
import pytest

from repro.baselines.return_limited import (
    build_reduced_peec,
    exact_shielded_inductance,
    return_limited_inductance,
    signal_only_system,
)
from repro.circuit.sources import step
from repro.circuit.transient import transient_analysis
from repro.extraction.parasitics import extract
from repro.geometry.bus import shielded_bus
from repro.peec.builder import attach_bus_testbench


@pytest.fixture(scope="module")
def dense_shields():
    system, signals, shields = shielded_bus(6, shields_every=1)
    return extract(system), signals, shields


@pytest.fixture(scope="module")
def sparse_shields():
    system, signals, shields = shielded_bus(6, shields_every=6)
    return extract(system), signals, shields


class TestShieldedBusGeometry:
    def test_layout_counts(self):
        system, signals, shields = shielded_bus(6, shields_every=2)
        assert len(signals) == 6
        assert len(shields) == 4  # edges + two interior
        assert len(system) == 10

    def test_every_signal_between_shields(self):
        system, signals, shields = shielded_bus(4, shields_every=1)
        ys = {w: system[system.wire_filaments(w)[0]].center[1] for w in range(len(system.wire_ids))}
        for s in signals:
            assert any(ys[g] < ys[s] for g in shields)
            assert any(ys[g] > ys[s] for g in shields)

    def test_shield_width_default(self):
        system, signals, shields = shielded_bus(2, shields_every=1)
        shield_f = system[system.wire_filaments(shields[0])[0]]
        signal_f = system[system.wire_filaments(signals[0])[0]]
        assert shield_f.width == pytest.approx(2 * signal_f.width)

    def test_validation(self):
        with pytest.raises(ValueError):
            shielded_bus(0, 1)
        with pytest.raises(ValueError):
            shielded_bus(4, 0)


class TestExactReduction:
    def test_spd(self, dense_shields):
        parasitics, signals, shields = dense_shields
        reduced = exact_shielded_inductance(parasitics, signals, shields)
        assert np.all(np.linalg.eigvalsh(reduced) > 0)

    def test_smaller_than_partial(self, dense_shields):
        """Ideal returns always reduce the effective self inductance."""
        parasitics, signals, shields = dense_shields
        reduced = exact_shielded_inductance(parasitics, signals, shields)
        system = parasitics.system
        for row, wire in enumerate(signals):
            partial = parasitics.inductance[
                system.wire_filaments(wire)[0], system.wire_filaments(wire)[0]
            ]
            assert reduced[row, row] < partial

    def test_dense_shields_kill_far_coupling(self, dense_shields):
        parasitics, signals, shields = dense_shields
        reduced = exact_shielded_inductance(parasitics, signals, shields)
        near = abs(reduced[0, 1])
        far = abs(reduced[0, 5])
        assert far < 0.2 * near


class TestReturnLimited:
    def test_matches_exact_when_dense(self, dense_shields):
        parasitics, signals, shields = dense_shields
        exact = exact_shielded_inductance(parasitics, signals, shields)
        approx, _ = return_limited_inductance(parasitics, signals, shields)
        error = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert error < 0.25

    def test_degrades_when_sparse(self, dense_shields, sparse_shields):
        """The paper's claim: accuracy is lost with a sparse P/G grid."""

        def relative_error(bundle):
            parasitics, signals, shields = bundle
            exact = exact_shielded_inductance(parasitics, signals, shields)
            approx, _ = return_limited_inductance(parasitics, signals, shields)
            return np.linalg.norm(approx - exact) / np.linalg.norm(exact)

        assert relative_error(sparse_shields) > 2.0 * relative_error(
            dense_shields
        )

    def test_mask_reflects_shield_bays(self, sparse_shields):
        parasitics, signals, shields = sparse_shields
        _, mask = return_limited_inductance(parasitics, signals, shields)
        # One big bay: every signal shares it.
        assert np.all(mask)

    def test_mask_blocks_cross_bay(self, dense_shields):
        parasitics, signals, shields = dense_shields
        _, mask = return_limited_inductance(parasitics, signals, shields)
        assert not mask[0, 5]

    def test_requires_shields(self, dense_shields):
        parasitics, signals, _ = dense_shields
        with pytest.raises(ValueError):
            return_limited_inductance(parasitics, signals, [])


class TestReducedModels:
    def test_signal_only_system(self, dense_shields):
        parasitics, signals, _ = dense_shields
        reduced = signal_only_system(parasitics, signals)
        assert len(reduced) == len(signals)
        assert reduced.wire_ids == list(range(len(signals)))

    def test_waveform_error_grows_with_sparse_shields(self):
        def victim_error(shields_every):
            system, signals, shields = shielded_bus(6, shields_every)
            parasitics = extract(system)
            exact = exact_shielded_inductance(parasitics, signals, shields)
            approx, _ = return_limited_inductance(parasitics, signals, shields)
            waves = []
            for matrix, label in ((exact, "exact"), (approx, "rl")):
                model = build_reduced_peec(parasitics, signals, matrix, label)
                attach_bus_testbench(model.skeleton, step(1.0, 10e-12))
                victim = model.skeleton.ports[1].far
                waves.append(
                    transient_analysis(
                        model.circuit, 200e-12, 1e-12, probe_nodes=[victim]
                    ).voltage(victim)
                )
            return float(np.max(np.abs(waves[0].v - waves[1].v)))

        assert victim_error(6) > 1.5 * victim_error(1)
