"""Tests for the shift-truncation baseline (Krauter-Pileggi, ref [9])."""

import numpy as np
import pytest

from repro.baselines.shift_truncation import (
    build_shift_truncated_peec,
    shift_truncated_inductance,
)
from repro.circuit.sources import step
from repro.circuit.transient import transient_analysis
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.peec.builder import attach_bus_testbench
from repro.peec.model import build_peec


class TestMatrixProperties:
    def test_positive_semidefinite(self, bus16):
        """The selling point of [9]: stability is guaranteed."""
        for r0 in (5e-6, 20e-6, 100e-6):
            shifted = shift_truncated_inductance(bus16, r0)
            eigenvalues = np.linalg.eigvalsh(shifted)
            assert eigenvalues.min() > -1e-18 * abs(eigenvalues.max())

    def test_sparsity_grows_as_shell_shrinks(self, bus16):
        def kept(r0):
            shifted = shift_truncated_inductance(bus16, r0)
            return np.count_nonzero(shifted) - 16

        assert kept(4e-6) < kept(20e-6) < kept(100e-6)

    def test_shell_beyond_bus_keeps_all_pairs(self, bus5):
        shifted = shift_truncated_inductance(bus5, 1e-3)
        off = shifted[~np.eye(5, dtype=bool)]
        assert np.count_nonzero(off) == 20

    def test_diagonal_reduced_by_shell_mutual(self, bus5):
        shifted = shift_truncated_inductance(bus5, 50e-6)
        assert np.all(np.diag(shifted) < np.diag(bus5.inductance))

    def test_shell_inside_conductor_rejected(self, bus5):
        # A shell tighter than the conductor's own GMD would shift the
        # diagonal negative (the shell mutual exceeds the self
        # inductance) -- nonphysical, so it must raise.
        with pytest.raises(ValueError):
            shift_truncated_inductance(bus5, 0.3e-6)

    def test_nonpositive_radius_rejected(self, bus5):
        with pytest.raises(ValueError):
            shift_truncated_inductance(bus5, 0.0)


class TestAccuracyBehavior:
    def test_simulates_stably(self, fresh_bus5):
        model = build_shift_truncated_peec(fresh_bus5, 30e-6)
        attach_bus_testbench(model.skeleton, step(1.0, rise_time=10e-12))
        victim = model.skeleton.ports[1].far
        result = transient_analysis(
            model.circuit, 200e-12, 1e-12, probe_nodes=[victim]
        )
        assert result.voltage(victim).peak < 1.0  # bounded, no blow-up

    def test_accuracy_depends_strongly_on_radius(self):
        """The paper's criticism: r0 is hard to choose.

        Sweeping the shell radius swings the victim noise peak by tens
        of percent -- there is no safe default, unlike the VPEC
        truncations whose error shrinks monotonically as more coupling
        is kept.
        """
        reference_model = build_peec(extract(aligned_bus(8)))
        attach_bus_testbench(reference_model.skeleton, step(1.0, 10e-12))
        victim = reference_model.skeleton.ports[1].far
        reference = transient_analysis(
            reference_model.circuit, 200e-12, 1e-12, probe_nodes=[victim]
        ).voltage(victim)

        errors = []
        for r0 in (6e-6, 12e-6, 24e-6, 48e-6):
            model = build_shift_truncated_peec(extract(aligned_bus(8)), r0)
            attach_bus_testbench(model.skeleton, step(1.0, 10e-12))
            node = model.skeleton.ports[1].far
            wave = transient_analysis(
                model.circuit, 200e-12, 1e-12, probe_nodes=[node]
            ).voltage(node)
            errors.append(abs(wave.peak - reference.peak) / reference.peak)
        assert max(errors) > 0.15  # some radii are badly wrong
        assert min(errors) < max(errors) / 2  # ... and some much better
