"""Property-based tests (hypothesis) of the core invariants.

Random non-overlapping parallel-wire geometries and random SPD matrices
exercise the chain of guarantees the paper's sparsifications rest on:

- extraction: ``L`` symmetric positive definite, mutual bounded by the
  geometric mean of the selfs, monotone decay with distance;
- inversion: ``Ghat`` symmetric positive definite and strictly
  diagonally dominant with positive effective resistances;
- truncation: any keep-mask applied to a strictly diagonally dominant
  SPD matrix leaves it SPD;
- windowing: ``S'`` symmetric, diagonally dominant (eq. 19), exact when
  the window covers everything;
- circuit: the simulator is linear in its sources.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.extraction.inductance import (
    mutual_parallel_filaments,
    partial_inductance_matrix,
    self_inductance_bar,
)
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.geometry.filament import Axis, Filament
from repro.geometry.system import FilamentSystem
from repro.vpec.effective import VpecNetwork
from repro.vpec.full import full_vpec_networks, invert_spd
from repro.vpec.passivity import (
    is_positive_definite,
    is_strictly_diagonally_dominant,
)
from repro.vpec.truncation import truncate_numerical
from repro.vpec.windowing import geometric_windows, windowed_inverse


# ----------------------------------------------------------------------
# Geometry strategies
# ----------------------------------------------------------------------
@st.composite
def parallel_wire_system(draw):
    """2-8 coplanar parallel wires with random widths and gaps.

    Gaps are kept at or above half the larger neighbor's cross-section
    dimension (width or thickness): the one-filament-per-conductor
    closed forms (and the diagonal dominance of ``L^-1`` they produce)
    are valid for conductors that are not nearly merged -- FastHenry
    resolves tighter cases by volume discretization, and the paper's
    Theorem-2 proof likewise assumes an adequate discretization.
    Typical DRC spacing satisfies this easily.
    """
    count = draw(st.integers(min_value=2, max_value=8))
    length = draw(st.floats(min_value=50e-6, max_value=2000e-6))
    filaments = []
    y = 0.0
    previous_dim = None
    for wire in range(count):
        width = draw(st.floats(min_value=0.2e-6, max_value=3e-6))
        thickness = draw(st.floats(min_value=0.2e-6, max_value=2e-6))
        dim = max(width, thickness)
        reference = max(dim, previous_dim or dim)
        gap = draw(st.floats(min_value=0.5, max_value=8.0)) * reference
        filaments.append(
            Filament(
                origin=(0.0, y, 0.0),
                length=length,
                width=width,
                thickness=thickness,
                axis=Axis.X,
                wire=wire,
            )
        )
        y += width + gap
        previous_dim = dim
    return FilamentSystem(filaments, name="hypothesis")


@st.composite
def uniform_bus_system(draw):
    """2-10 identical parallel wires at a uniform pitch (a random bus)."""
    count = draw(st.integers(min_value=2, max_value=10))
    width = draw(st.floats(min_value=0.3e-6, max_value=3e-6))
    thickness = draw(st.floats(min_value=0.3e-6, max_value=2e-6))
    spacing = draw(st.floats(min_value=0.5, max_value=8.0)) * max(width, thickness)
    length = draw(st.floats(min_value=50e-6, max_value=2000e-6))
    return aligned_bus(
        count, length=length, width=width, thickness=thickness, spacing=spacing
    )


@st.composite
def spd_matrix(draw):
    """A random SPD, strictly diagonally dominant matrix (a Ghat stand-in)."""
    n = draw(st.integers(min_value=2, max_value=10))
    off = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=n * n,
            max_size=n * n,
        )
    )
    m = -np.abs(np.array(off).reshape(n, n))
    m = (m + m.T) / 2.0
    np.fill_diagonal(m, 0.0)
    slack = draw(st.floats(min_value=0.01, max_value=2.0))
    np.fill_diagonal(m, np.sum(np.abs(m), axis=1) + slack)
    return m


# ----------------------------------------------------------------------
# Extraction invariants
# ----------------------------------------------------------------------
class TestExtractionProperties:
    @given(parallel_wire_system())
    @settings(max_examples=40, deadline=None)
    def test_l_matrix_spd(self, system):
        L = partial_inductance_matrix(system)
        assert np.allclose(L, L.T)
        assert np.all(np.linalg.eigvalsh(L) > 0)

    @given(parallel_wire_system())
    @settings(max_examples=40, deadline=None)
    def test_mutual_bounded_by_geometric_mean(self, system):
        L = partial_inductance_matrix(system)
        n = L.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                assert abs(L[i, j]) < np.sqrt(L[i, i] * L[j, j])

    @given(
        st.floats(min_value=10e-6, max_value=1000e-6),
        st.floats(min_value=1e-6, max_value=10e-6),
        st.floats(min_value=1.1, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_mutual_decays_with_distance(self, length, distance, factor):
        near = mutual_parallel_filaments(length, length, distance)
        far = mutual_parallel_filaments(length, length, distance * factor)
        assert near > far > 0

    @given(
        st.floats(min_value=10e-6, max_value=2000e-6),
        st.floats(min_value=0.1e-6, max_value=3e-6),
        st.floats(min_value=0.1e-6, max_value=3e-6),
    )
    @settings(max_examples=50, deadline=None)
    def test_self_inductance_positive(self, length, width, thickness):
        assert self_inductance_bar(length, width, thickness) > 0


# ----------------------------------------------------------------------
# VPEC invariants (Theorems 1-2, Lemma 1)
# ----------------------------------------------------------------------
class TestVpecProperties:
    @given(parallel_wire_system())
    @settings(max_examples=25, deadline=None)
    def test_ghat_spd_and_dominant(self, system):
        parasitics = extract(system)
        for network in full_vpec_networks(parasitics):
            ghat = network.dense_ghat()
            assert is_positive_definite(ghat)
            assert is_strictly_diagonally_dominant(ghat)

    @given(uniform_bus_system())
    @settings(max_examples=40, deadline=None)
    def test_effective_resistances_positive_uniform(self, system):
        """Lemma 1 for like-sized parallel conductors (the bus setting).

        Dominant couplings are strictly negative conductances (positive
        resistances); far-pair entries may flip to values below 0.1% of
        the diagonal -- the discretization noise the paper's "with
        sufficient discretizations" caveat refers to.  Ground
        conductances are strictly positive.  (Strict positivity on the
        paper's concrete structures is asserted in test_passivity.py.)
        """
        parasitics = extract(system)
        for network in full_vpec_networks(parasitics):
            ghat = network.dense_ghat()
            diag = np.diag(ghat)
            mask = ~np.eye(ghat.shape[0], dtype=bool)
            relative = ghat / diag[:, None]
            assert np.all(relative[mask] <= 1e-3)
            # Nearest-neighbor couplings are always strictly negative.
            first_off = np.diag(ghat, k=1)
            assert np.all(first_off < 0)
            assert np.all(network.ground_conductances() > 0)

    @given(parallel_wire_system())
    @settings(max_examples=25, deadline=None)
    def test_effective_resistances_nearly_positive_heterogeneous(self, system):
        """Lemma 1, up to discretization noise, for mixed cross sections.

        Far-pair entries of ``L^-1`` can flip to small positive values at
        one filament per conductor (the paper notes negativity holds
        "with sufficient discretizations"), so positivity is asserted
        relative to each row's diagonal; ground conductances stay
        strictly positive.
        """
        parasitics = extract(system)
        for network in full_vpec_networks(parasitics):
            ghat = network.dense_ghat()
            diag = np.diag(ghat)
            mask = ~np.eye(ghat.shape[0], dtype=bool)
            relative = ghat / diag[:, None]
            assert np.all(relative[mask] <= 1e-2)
            assert np.all(network.ground_conductances() > 0)

    @given(spd_matrix(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_truncation_preserves_spd(self, ghat, threshold):
        """Any strength-threshold truncation of a DD SPD matrix stays SPD."""
        network = VpecNetwork(
            indices=list(range(ghat.shape[0])),
            lengths=np.ones(ghat.shape[0]),
            ghat=ghat,
        )
        truncated = truncate_numerical(network, threshold)
        assert is_positive_definite(truncated.dense_ghat())

    @given(spd_matrix())
    @settings(max_examples=40, deadline=None)
    def test_inversion_roundtrip(self, matrix):
        inverse = invert_spd(matrix)
        assert np.allclose(matrix @ inverse, np.eye(matrix.shape[0]), atol=1e-8)


class TestWindowingProperties:
    @given(parallel_wire_system(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_windowed_inverse_symmetric_dd(self, system, window_size):
        parasitics = extract(system)
        for indices, block in parasitics.inductance_blocks.values():
            windows = geometric_windows(
                parasitics.system, indices, min(window_size, len(indices))
            )
            s_prime = windowed_inverse(block, windows).toarray()
            assert np.allclose(s_prime, s_prime.T)
            diag = np.abs(np.diag(s_prime))
            off = np.sum(np.abs(s_prime), axis=1) - diag
            assert np.all(diag >= off - 1e-15 * diag)

    @given(parallel_wire_system())
    @settings(max_examples=20, deadline=None)
    def test_full_window_exact(self, system):
        parasitics = extract(system)
        for indices, block in parasitics.inductance_blocks.values():
            n = len(indices)
            windows = [np.arange(n)] * n
            s_prime = windowed_inverse(block, windows).toarray()
            exact = invert_spd(block)
            assert np.allclose(s_prime, exact, rtol=1e-7, atol=1e-4)


# ----------------------------------------------------------------------
# Simulator linearity
# ----------------------------------------------------------------------
class TestSimulatorProperties:
    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_dc_linearity_in_source(self, v1, scale):
        from repro.circuit.dc import dc_operating_point
        from repro.circuit.netlist import Circuit
        from repro.circuit.sources import dc

        def solve(v):
            c = Circuit()
            c.add_voltage_source("in", "0", dc(v), name="V1")
            c.add_resistor("in", "m", 1e3)
            c.add_resistor("m", "0", 2e3)
            return dc_operating_point(c).voltage("m")

        assert solve(v1 * scale) == pytest.approx(solve(v1) * scale, rel=1e-9)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_bus_victim_scales_with_drive(self, bits):
        from repro.circuit.transient import transient_analysis
        from repro.circuit.sources import step
        from repro.peec.builder import attach_bus_testbench
        from repro.peec.model import build_peec

        parasitics = extract(aligned_bus(bits, length=200e-6))

        def noise(amplitude):
            model = build_peec(parasitics)
            attach_bus_testbench(model.skeleton, step(amplitude, 10e-12))
            victim = model.skeleton.ports[1].far
            result = transient_analysis(
                model.circuit, 100e-12, 1e-12, probe_nodes=[victim]
            )
            return result.voltage(victim).peak

        assert noise(2.0) == pytest.approx(2.0 * noise(1.0), rel=1e-6)
