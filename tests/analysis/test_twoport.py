"""Unit tests for network-parameter measurement."""

import numpy as np
import pytest

from repro.analysis.twoport import measure_z_parameters
from repro.circuit.netlist import Circuit


def series_resistor(r=100.0):
    def factory():
        circuit = Circuit("r2port")
        circuit.add_resistor("p1", "p2", r)
        # Shunts keep both ports well-defined at DC-ish frequencies.
        circuit.add_resistor("p1", "0", 1e9)
        circuit.add_resistor("p2", "0", 1e9)
        return circuit

    return factory


def shunt_inductor(l=1e-9):
    def factory():
        circuit = Circuit("l1port")
        circuit.add_inductor("p1", "0", l, name="L1")
        circuit.add_resistor("p1", "0", 1e9)
        return circuit

    return factory


class TestZParameters:
    def test_series_resistor_z_matrix(self):
        params = measure_z_parameters(
            series_resistor(100.0), [("p1", "0"), ("p2", "0")], [1e6]
        )
        # A floating series resistor is cleanest in admittance form:
        # Y11 = 1/R + shunt, Y12 = -1/R.
        y = params.y()[0]
        assert y[0, 0] == pytest.approx(1 / 100.0 + 1e-9, rel=1e-3)
        assert y[0, 1] == pytest.approx(-1 / 100.0, rel=1e-3)

    def test_shunt_inductor_impedance(self):
        f = 1e9
        params = measure_z_parameters(shunt_inductor(1e-9), [("p1", "0")], [f])
        expected = 1j * 2 * np.pi * f * 1e-9
        assert params.z[0, 0, 0] == pytest.approx(expected, rel=1e-6)

    def test_input_inductance(self):
        params = measure_z_parameters(
            shunt_inductor(2e-9), [("p1", "0")], [1e8, 1e9]
        )
        assert np.allclose(params.input_inductance(), 2e-9, rtol=1e-6)

    def test_quality_factor_of_ideal_inductor_is_huge(self):
        params = measure_z_parameters(shunt_inductor(), [("p1", "0")], [1e9])
        assert params.quality_factor()[0] > 1e6

    def test_reciprocity(self):
        params = measure_z_parameters(
            series_resistor(), [("p1", "0"), ("p2", "0")], [1e6, 1e9]
        )
        assert np.allclose(params.z[:, 0, 1], params.z[:, 1, 0], rtol=1e-9)

    def test_needs_ports(self):
        with pytest.raises(ValueError):
            measure_z_parameters(series_resistor(), [], [1e6])


class TestSParameters:
    def test_matched_load_s11(self):
        def factory():
            circuit = Circuit("match")
            circuit.add_resistor("p1", "0", 50.0)
            return circuit

        params = measure_z_parameters(factory, [("p1", "0")], [1e9])
        assert abs(params.s()[0, 0, 0]) < 1e-9

    def test_open_port_s11_is_plus_one(self):
        def factory():
            circuit = Circuit("open")
            circuit.add_resistor("p1", "0", 1e12)
            return circuit

        params = measure_z_parameters(factory, [("p1", "0")], [1e9])
        assert params.s()[0, 0, 0] == pytest.approx(1.0, rel=1e-6)

    def test_short_port_s11_is_minus_one(self):
        def factory():
            circuit = Circuit("short")
            circuit.add_resistor("p1", "0", 1e-6)
            return circuit

        params = measure_z_parameters(factory, [("p1", "0")], [1e9])
        assert params.s()[0, 0, 0] == pytest.approx(-1.0, rel=1e-6)

    def test_s_passivity_of_passive_network(self):
        params = measure_z_parameters(
            series_resistor(), [("p1", "0"), ("p2", "0")], [1e8, 1e9]
        )
        for s in params.s():
            singular_values = np.linalg.svd(s, compute_uv=False)
            assert np.all(singular_values <= 1.0 + 1e-9)


class TestSpiralNetwork:
    def test_spiral_two_port(self):
        """The RF deliverable: Z/Q of the spiral through its two ports."""
        from repro.extraction.parasitics import extract
        from repro.geometry.spiral import square_spiral
        from repro.peec.model import build_peec

        def factory():
            return build_peec(
                extract(square_spiral(turns=2, total_segments=20))
            ).circuit

        # Recover the port node names once, then rebuild per measurement.
        reference = build_peec(
            extract(square_spiral(turns=2, total_segments=20))
        )
        near = reference.skeleton.ports[0].near
        far = reference.skeleton.ports[0].far
        params = measure_z_parameters(
            factory, [(near, "0"), (far, "0")], [1e8, 1e9]
        )
        assert np.allclose(params.z[:, 0, 1], params.z[:, 1, 0], rtol=1e-6)
        # Between the ports sits the spiral's series R + L.
        series = params.z[:, 0, 0] - params.z[:, 0, 1]
        assert np.all(np.real(series) > 0)
        l_series = np.imag(series) / (2 * np.pi * params.frequencies)
        assert 0.5e-9 < l_series[0] < 20e-9
