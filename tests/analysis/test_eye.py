"""Unit tests for the eye-diagram analysis."""

import numpy as np
import pytest

from repro.analysis.eye import (
    bit_stream_stimulus,
    channel_eye,
    eye_metrics,
    prbs_bits,
)
from repro.circuit.waveform import Waveform
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.peec.model import build_peec


class TestPrbs:
    def test_deterministic(self):
        assert np.array_equal(prbs_bits(32, seed=5), prbs_bits(32, seed=5))

    def test_seed_changes_sequence(self):
        assert not np.array_equal(prbs_bits(32, seed=5), prbs_bits(32, seed=9))

    def test_balanced_over_full_period(self):
        bits = prbs_bits(127)
        # PRBS-7: 64 ones, 63 zeros per period.
        assert bits.sum() == 64

    def test_full_period_repeats(self):
        bits = prbs_bits(254)
        assert np.array_equal(bits[:127], bits[127:])

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            prbs_bits(8, seed=0)

    def test_count_validated(self):
        with pytest.raises(ValueError):
            prbs_bits(0)


class TestBitStream:
    def test_levels_and_edges(self):
        stim = bit_stream_stimulus([0, 1, 1, 0], 100e-12, 10e-12)
        assert stim.at(50e-12) == 0.0
        assert stim.at(105e-12) == pytest.approx(0.5)  # mid-transition
        assert stim.at(150e-12) == 1.0
        assert stim.at(250e-12) == 1.0  # no edge between equal bits
        assert stim.at(305e-12) == pytest.approx(0.5)
        assert stim.at(390e-12) == 0.0

    def test_holds_last_bit(self):
        stim = bit_stream_stimulus([1, 0], 100e-12, 10e-12)
        assert stim.at(1e-9) == 0.0

    def test_dc_start_matches_first_bit(self):
        assert bit_stream_stimulus([1, 0], 1e-10, 1e-11).dc == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bit_stream_stimulus([1], 1e-10, 2e-10)  # rise > bit
        with pytest.raises(ValueError):
            bit_stream_stimulus([], 1e-10, 1e-11)


class TestEyeMetrics:
    def make_clean_wave(self, bits, bit_time=100e-12, swing=1.0):
        stim = bit_stream_stimulus(bits, bit_time, 10e-12, v_high=swing)
        t = np.arange(0, len(bits) * bit_time, 1e-12)
        return Waveform(t, np.array([stim.at(x) for x in t]))

    def test_clean_eye_fully_open(self):
        bits = prbs_bits(24)
        wave = self.make_clean_wave(bits)
        eye = eye_metrics(wave, bits, 100e-12)
        assert eye.is_open
        assert eye.height == pytest.approx(1.0, abs=1e-9)

    def test_noise_closes_eye_proportionally(self):
        bits = prbs_bits(24)
        wave = self.make_clean_wave(bits)
        rng = np.random.default_rng(3)
        noisy = Waveform(wave.t, wave.v + rng.uniform(-0.2, 0.2, wave.t.size))
        eye = eye_metrics(noisy, bits, 100e-12)
        assert 0.4 < eye.height < 1.0

    def test_too_short_rejected(self):
        bits = [0, 1, 0]
        wave = self.make_clean_wave(bits)
        with pytest.raises(ValueError):
            eye_metrics(wave, bits, 100e-12, skip_bits=2)

    def test_constant_pattern_rejected(self):
        bits = [1] * 10
        wave = self.make_clean_wave(bits)
        with pytest.raises(ValueError):
            eye_metrics(wave, bits, 100e-12)

    def test_bad_phase_rejected(self):
        bits = prbs_bits(10)
        wave = self.make_clean_wave(bits)
        with pytest.raises(ValueError):
            eye_metrics(wave, bits, 100e-12, sample_phase=2e-10)


class TestChannelEye:
    def test_quiet_channel_eye_open(self):
        model = build_peec(extract(aligned_bus(4)))
        bits = prbs_bits(16)
        eye = channel_eye(model.skeleton, victim=1, victim_bits=bits)
        assert eye.is_open
        assert eye.height > 0.5

    def test_aggressors_shrink_the_eye(self):
        bits = prbs_bits(16)
        noise_bits = prbs_bits(16, seed=0b1010101)

        quiet = channel_eye(
            build_peec(extract(aligned_bus(4))).skeleton,
            victim=1,
            victim_bits=bits,
        )
        noisy = channel_eye(
            build_peec(extract(aligned_bus(4))).skeleton,
            victim=1,
            victim_bits=bits,
            aggressor_bits={0: noise_bits, 2: noise_bits},
        )
        assert noisy.height < quiet.height

    def test_vpec_channel_matches_peec(self):
        from repro.vpec.flow import full_vpec

        bits = prbs_bits(12)
        noise = prbs_bits(12, seed=0b0110011)
        peec_eye = channel_eye(
            build_peec(extract(aligned_bus(3))).skeleton,
            victim=1,
            victim_bits=bits,
            aggressor_bits={0: noise},
        )
        vpec_eye = channel_eye(
            full_vpec(extract(aligned_bus(3))).model.skeleton,
            victim=1,
            victim_bits=bits,
            aggressor_bits={0: noise},
        )
        assert vpec_eye.height == pytest.approx(peec_eye.height, abs=1e-6)
