"""Unit tests for the crosstalk reporting layer."""

import pytest

from repro.analysis.signal_integrity import crosstalk_report
from repro.circuit.sources import step
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.peec.model import build_peec
from repro.vpec.flow import windowed_vpec


def make_report(bits=6, aggressor=0, **kwargs):
    model = build_peec(extract(aligned_bus(bits)))
    return crosstalk_report(
        model.skeleton,
        step(1.0, rise_time=10e-12),
        aggressor=aggressor,
        t_stop=200e-12,
        **kwargs,
    )


class TestCrosstalkReport:
    def test_all_victims_reported(self):
        report = make_report()
        assert sorted(v.wire for v in report.victims) == [1, 2, 3, 4, 5]

    def test_worst_victim_is_near_the_aggressor(self):
        # Inductive coupling is long range, so the peak is NOT always
        # the immediate neighbor (capacitive intuition) -- but it stays
        # within the aggressor's vicinity.
        report = make_report()
        assert report.worst().wire in (1, 2)

    def test_noise_spreads_far(self):
        """The paper's motivation: inductive noise barely decays.

        The farthest victim still sees a large fraction of the worst
        victim's noise -- which is why adjacent-only (localized) models
        fail and why truncation windows must be wide.
        """
        report = make_report()
        assert report.victim(5).peak > 0.5 * report.worst().peak

    def test_failing_threshold(self):
        report = make_report()
        assert report.failing(0.9) == []
        assert len(report.failing(0.001)) == 5

    def test_victim_subset(self):
        report = make_report(victims=[2, 4])
        assert sorted(v.wire for v in report.victims) == [2, 4]

    def test_aggressor_timing_extracted(self):
        report = make_report()
        assert report.aggressor_delay is not None
        assert 0 < report.aggressor_delay < 200e-12
        assert report.aggressor_slew is not None
        assert report.aggressor_slew > 0

    def test_middle_aggressor(self):
        report = make_report(aggressor=3)
        assert report.aggressor == 3
        # Symmetric neighbors see comparable noise.
        assert report.victim(2).peak == pytest.approx(
            report.victim(4).peak, rel=0.05
        )

    def test_unknown_victim_lookup(self):
        report = make_report()
        with pytest.raises(KeyError):
            report.victim(99)

    def test_table_renders(self):
        report = make_report()
        text = report.to_table()
        assert "noise peak" in text
        assert "aggressor 50% delay" in text

    def test_works_on_vpec_models(self):
        model = windowed_vpec(extract(aligned_bus(6)), window_size=4).model
        report = crosstalk_report(
            model.skeleton,
            step(1.0, rise_time=10e-12),
            t_stop=200e-12,
        )
        assert report.worst().wire == 1

    def test_peec_and_vpec_reports_agree(self):
        peec_report = make_report(bits=5)
        from repro.vpec.flow import full_vpec

        vpec_model = full_vpec(extract(aligned_bus(5))).model
        vpec_report = crosstalk_report(
            vpec_model.skeleton, step(1.0, rise_time=10e-12), t_stop=200e-12
        )
        assert vpec_report.worst().peak == pytest.approx(
            peec_report.worst().peak, rel=1e-6
        )
