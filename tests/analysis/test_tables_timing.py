"""Unit tests for table formatting and timing helpers."""

import time

import pytest

from repro.analysis.tables import format_table
from repro.analysis.timing import Timer, time_call


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert lines[2].split() == ["1", "2"]

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_column_width_adapts(self):
        text = format_table(["h"], [["wide-cell"]])
        separator = text.splitlines()[1]
        assert len(separator) >= len("wide-cell")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestTiming:
    def test_timer_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0.0
