"""Unit tests for corner / Monte Carlo variation analysis."""

import numpy as np
import pytest

from repro.analysis.variation import (
    FAST,
    SLOW,
    TYPICAL,
    GeometryCorner,
    GeometryVariation,
    analyze_corner,
    monte_carlo,
)
from repro.experiments.runner import gw_spec, peec_spec


class TestCorners:
    def test_apply_preserves_pitch(self):
        corner = GeometryCorner(etch=0.1)
        w, s, t = corner.apply(1e-6, 2e-6, 1e-6)
        assert w + s == pytest.approx(3e-6)
        assert w == pytest.approx(1.1e-6)

    def test_collapse_rejected(self):
        with pytest.raises(ValueError):
            GeometryCorner(etch=3.0).apply(1e-6, 2e-6, 1e-6)

    def test_slow_corner_has_more_noise_than_fast(self):
        model = peec_spec()
        slow = analyze_corner(SLOW, 5, model, t_stop=150e-12)
        fast = analyze_corner(FAST, 5, model, t_stop=150e-12)
        assert slow.worst().peak > fast.worst().peak

    def test_typical_between_extremes(self):
        model = peec_spec()
        peaks = {
            name: analyze_corner(c, 5, model, t_stop=150e-12).worst().peak
            for name, c in (("fast", FAST), ("typ", TYPICAL), ("slow", SLOW))
        }
        assert peaks["fast"] < peaks["typ"] < peaks["slow"]


class TestMonteCarlo:
    def test_deterministic_for_seed(self):
        variation = GeometryVariation(etch_sigma=0.03, thickness_sigma=0.03)
        a = monte_carlo(variation, 4, peec_spec(), samples=4, seed=7, t_stop=100e-12)
        b = monte_carlo(variation, 4, peec_spec(), samples=4, seed=7, t_stop=100e-12)
        assert np.allclose(a.worst_noise, b.worst_noise)

    def test_summary_statistics(self):
        variation = GeometryVariation(etch_sigma=0.03)
        result = monte_carlo(
            variation, 4, peec_spec(), samples=6, seed=1, t_stop=100e-12
        )
        summary = result.summary()
        assert result.samples == 6
        assert summary["noise_std"] > 0
        assert summary["noise_p95"] >= summary["noise_mean"]
        assert summary["delay_spread"] >= 0

    def test_zero_variation_gives_zero_spread(self):
        variation = GeometryVariation(etch_sigma=0.0, thickness_sigma=0.0)
        result = monte_carlo(
            variation, 4, peec_spec(), samples=3, seed=2, t_stop=100e-12
        )
        assert np.ptp(result.worst_noise) == pytest.approx(0.0, abs=1e-15)

    def test_works_on_sparsified_model(self):
        variation = GeometryVariation(etch_sigma=0.05)
        result = monte_carlo(
            variation, 6, gw_spec(4), samples=3, seed=3, t_stop=100e-12
        )
        assert np.all(result.worst_noise > 0)

    def test_sample_count_validated(self):
        with pytest.raises(ValueError):
            monte_carlo(GeometryVariation(), 4, peec_spec(), samples=0)
