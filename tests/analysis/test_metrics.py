"""Unit tests for waveform metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    delay_crossing,
    delay_difference,
    waveform_difference,
)
from repro.circuit.waveform import Waveform


def wave(values, t_stop=1.0):
    values = np.asarray(values, dtype=float)
    return Waveform(np.linspace(0.0, t_stop, values.size), values)


class TestWaveformDifference:
    def test_identical_waveforms(self):
        w = wave([0.0, 1.0, 0.5, 0.2])
        diff = waveform_difference(w, w)
        assert diff.mean_abs == 0.0
        assert diff.std_abs == 0.0
        assert diff.max_abs == 0.0

    def test_constant_offset(self):
        a = wave([0.0, 1.0, 2.0])
        b = wave([0.1, 1.1, 2.1])
        diff = waveform_difference(a, b)
        assert diff.mean_abs == pytest.approx(0.1)
        assert diff.std_abs == pytest.approx(0.0, abs=1e-12)
        assert diff.max_abs == pytest.approx(0.1)

    def test_reference_peak(self):
        a = wave([0.0, -2.0, 1.0])
        diff = waveform_difference(a, a)
        assert diff.reference_peak == pytest.approx(2.0)

    def test_relative_to_peak(self):
        a = wave([0.0, 2.0])
        b = wave([0.0, 1.0])
        diff = waveform_difference(a, b)
        assert diff.max_relative_to_peak == pytest.approx(0.5)
        assert diff.mean_relative_to_peak == pytest.approx(0.25)

    def test_resamples_candidate(self):
        reference = wave([0.0, 0.5, 1.0])  # t = 0, .5, 1
        candidate = Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        diff = waveform_difference(reference, candidate)
        assert diff.max_abs == pytest.approx(0.0, abs=1e-12)

    def test_zero_peak_edge_case(self):
        a = wave([0.0, 0.0])
        b = wave([0.0, 1.0])
        diff = waveform_difference(a, b)
        assert diff.mean_relative_to_peak == float("inf")


class TestDelay:
    def test_crossing_interpolates(self):
        w = wave([0.0, 1.0], t_stop=2.0)
        assert delay_crossing(w, 0.5) == pytest.approx(1.0)

    def test_crossing_falling(self):
        w = wave([1.0, 0.0], t_stop=2.0)
        assert delay_crossing(w, 0.5, rising=False) == pytest.approx(1.0)

    def test_never_crosses_raises(self):
        w = wave([0.0, 0.1])
        with pytest.raises(ValueError):
            delay_crossing(w, 0.5)

    def test_crossing_at_first_sample(self):
        w = wave([1.0, 1.0])
        assert delay_crossing(w, 0.5) == 0.0

    def test_delay_difference_relative(self):
        reference = wave([0.0, 1.0], t_stop=2.0)  # crosses 0.5 at t=1
        candidate = Waveform(
            np.array([0.0, 1.0, 2.0]), np.array([0.0, 0.0, 2.0])
        )  # crosses 0.5 at t=1.25
        assert delay_difference(reference, candidate, 0.5) == pytest.approx(0.25)

    def test_delay_difference_identical(self):
        w = wave([0.0, 1.0])
        assert delay_difference(w, w, 0.5) == 0.0
