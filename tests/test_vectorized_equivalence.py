"""Equivalence of the vectorized kernels with scalar reference paths.

PR 4 rewrote the extraction and windowing hot loops as vectorized /
deduplicated kernels under the contract that every rewrite stays within
1e-12 of the scalar computation (bit-for-bit where the kernel only
reorders identical solves).  The scalar references live here, in the
test module, written as the obvious per-pair loops over the same
closed-form primitives -- an executable specification independent of
the shipped fast paths.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuit.transient import _record
from repro.extraction.inductance import (
    _COLLINEAR_TOL,
    _GMD_CUTOFF,
    clear_gmd_cache,
    gmd_rectangles,
    mutual_collinear_filaments,
    mutual_parallel_filaments,
    partial_inductance_matrix,
    self_inductance_bar,
)
from repro.geometry.bus import aligned_bus
from repro.geometry.filament import Axis, Filament
from repro.geometry.system import FilamentSystem
from repro.pipeline.profiling import collect
from repro.vpec.windowing import windowed_inverse

RELATIVE_TOLERANCE = 1e-12


# ----------------------------------------------------------------------
# Scalar reference implementations (the specification)
# ----------------------------------------------------------------------


def reference_partial_inductance(system, gmd_correction=True):
    """Per-pair scalar loop over the closed forms, both directions
    averaged exactly as the pre-vectorization kernel did."""
    n = len(system)
    matrix = np.zeros((n, n))
    for axis, indices in system.indices_by_axis().items():
        perp = [k for k in range(3) if k != axis.value]
        for i in indices:
            f = system[i]
            matrix[i, i] = self_inductance_bar(f.length, f.width, f.thickness)
        for pos, i in enumerate(indices):
            for j in indices[pos + 1 :]:
                fi, fj = system[i], system[j]
                dy = fi.center[perp[0]] - fj.center[perp[0]]
                dz = fi.center[perp[1]] - fj.center[perp[1]]
                distance = math.hypot(dy, dz)
                offset = fj.axial_span[0] - fi.axial_span[0]
                if distance > _COLLINEAR_TOL:
                    eff = distance
                    pair_dim = max(
                        max(fi.width, fi.thickness), max(fj.width, fj.thickness)
                    )
                    if gmd_correction and distance < _GMD_CUTOFF * pair_dim:
                        eff = gmd_rectangles(
                            fi.width,
                            fi.thickness,
                            fj.width,
                            fj.thickness,
                            abs(dy),
                            abs(dz),
                        )
                    forward = mutual_parallel_filaments(
                        fi.length, fj.length, eff, offset
                    )
                    backward = mutual_parallel_filaments(
                        fj.length, fi.length, eff, -offset
                    )
                else:
                    forward = mutual_collinear_filaments(
                        fi.length, fj.length, offset
                    )
                    backward = mutual_collinear_filaments(
                        fj.length, fi.length, -offset
                    )
                matrix[i, j] = matrix[j, i] = (forward + backward) / 2.0
    return matrix


def reference_windowed_inverse(block, windows, merge="max"):
    """One scalar solve per window, dict-of-lists eq. 18 merge."""
    n = block.shape[0]
    dense = np.zeros((n, n))
    estimates = {}
    for m, window in enumerate(windows):
        window = np.asarray(window, dtype=int)
        sub = block[np.ix_(window, window)]
        rhs = np.zeros(window.size)
        rhs[int(np.nonzero(window == m)[0][0])] = 1.0
        solution = np.linalg.solve(sub, rhs)
        for position, neighbor in enumerate(window):
            value = float(solution[position])
            if neighbor == m:
                dense[m, m] = value
            else:
                key = (min(m, int(neighbor)), max(m, int(neighbor)))
                estimates.setdefault(key, []).append(value)
    for (a, b), values in estimates.items():
        if merge == "max":
            value = max(values)
        elif merge == "min":
            value = min(values)
        else:
            value = sum(values) / len(values)
        dense[a, b] = dense[b, a] = value
    return dense


# ----------------------------------------------------------------------
# Geometry and window strategies
# ----------------------------------------------------------------------


@st.composite
def random_wire_system(draw):
    """2-7 parallel wires, mixed cross sections, optional segmentation."""
    count = draw(st.integers(min_value=2, max_value=7))
    length = draw(st.floats(min_value=50e-6, max_value=1500e-6))
    filaments = []
    y = 0.0
    for wire in range(count):
        width = draw(st.floats(min_value=0.2e-6, max_value=3e-6))
        thickness = draw(st.floats(min_value=0.2e-6, max_value=2e-6))
        gap = draw(st.floats(min_value=0.5, max_value=8.0)) * max(
            width, thickness
        )
        filaments.append(
            Filament(
                origin=(0.0, y, 0.0),
                length=length,
                width=width,
                thickness=thickness,
                axis=Axis.X,
                wire=wire,
            )
        )
        y += width + gap
    return FilamentSystem(filaments, name="equivalence")


@st.composite
def random_bus_system(draw):
    """A uniform bus (the lattice fast path), optionally segmented."""
    count = draw(st.integers(min_value=2, max_value=9))
    segments = draw(st.integers(min_value=1, max_value=3))
    width = draw(st.floats(min_value=0.3e-6, max_value=3e-6))
    thickness = draw(st.floats(min_value=0.3e-6, max_value=2e-6))
    spacing = draw(st.floats(min_value=0.5, max_value=8.0)) * max(
        width, thickness
    )
    length = draw(st.floats(min_value=50e-6, max_value=1500e-6))
    return aligned_bus(
        count,
        length=length,
        width=width,
        thickness=thickness,
        spacing=spacing,
        segments_per_line=segments,
    )


@st.composite
def spd_block_with_windows(draw):
    """A random SPD matrix plus a valid random window per aggressor."""
    n = draw(st.integers(min_value=2, max_value=10))
    off = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=n * n,
                max_size=n * n,
            )
        )
    ).reshape(n, n)
    block = -(np.abs(off) + np.abs(off).T) / 2.0
    np.fill_diagonal(block, 0.0)
    np.fill_diagonal(block, np.sum(np.abs(block), axis=1) + 0.5)
    windows = []
    for m in range(n):
        members = draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
        )
        members.add(m)
        windows.append(np.array(sorted(members), dtype=int))
    return block, windows


def relative_error(a, b):
    scale = np.max(np.abs(a))
    if scale == 0.0:
        return np.max(np.abs(a - b))
    return np.max(np.abs(a - b)) / scale


# ----------------------------------------------------------------------
# Extraction equivalence
# ----------------------------------------------------------------------


class TestExtractionEquivalence:
    @given(random_wire_system(), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_general_path_matches_reference(self, system, gmd):
        clear_gmd_cache()
        assert (
            relative_error(
                reference_partial_inductance(system, gmd),
                partial_inductance_matrix(system, gmd),
            )
            < RELATIVE_TOLERANCE
        )

    @given(random_bus_system(), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_lattice_path_matches_reference(self, system, gmd):
        clear_gmd_cache()
        assert (
            relative_error(
                reference_partial_inductance(system, gmd),
                partial_inductance_matrix(system, gmd),
            )
            < RELATIVE_TOLERANCE
        )

    def test_gmd_cutoff_boundary_bus(self):
        # The default bus geometry puts next-nearest neighbors exactly at
        # the GMD cutoff, where per-pair float distances straddle the
        # threshold within one lattice displacement class -- the case the
        # per-pair patch-up in the lattice path exists for.
        clear_gmd_cache()
        system = aligned_bus(32, segments_per_line=8)
        assert (
            relative_error(
                reference_partial_inductance(system, True),
                partial_inductance_matrix(system, True),
            )
            < RELATIVE_TOLERANCE
        )

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=10e-6, max_value=1000e-6),
                st.floats(min_value=10e-6, max_value=1000e-6),
                st.floats(min_value=1e-6, max_value=500e-6),
            ),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_collinear_vectorized_matches_scalar(self, triples):
        len_a = np.array([t[0] for t in triples])
        len_b = np.array([t[1] for t in triples])
        # Guarantee a positive axial gap so the pair is truly collinear.
        offset = len_a + np.array([t[2] for t in triples])
        vectorized = mutual_collinear_filaments(len_a, len_b, offset)
        scalar = np.array(
            [
                mutual_collinear_filaments(
                    float(la), float(lb), float(off)
                )
                for la, lb, off in zip(len_a, len_b, offset)
            ]
        )
        assert relative_error(scalar, vectorized) < RELATIVE_TOLERANCE

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=10e-6, max_value=1000e-6),
                st.floats(min_value=0.2e-6, max_value=3e-6),
                st.floats(min_value=0.2e-6, max_value=2e-6),
            ),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_self_inductance_vectorized_matches_scalar(self, triples):
        lengths = np.array([t[0] for t in triples])
        widths = np.array([t[1] for t in triples])
        thicknesses = np.array([t[2] for t in triples])
        vectorized = self_inductance_bar(lengths, widths, thicknesses)
        scalar = np.array(
            [
                self_inductance_bar(float(ln), float(w), float(t))
                for ln, w, t in zip(lengths, widths, thicknesses)
            ]
        )
        assert relative_error(scalar, vectorized) < RELATIVE_TOLERANCE


# ----------------------------------------------------------------------
# Windowing equivalence
# ----------------------------------------------------------------------


class TestWindowingEquivalence:
    @given(spd_block_with_windows(), st.sampled_from(["max", "min", "mean"]))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference(self, block_windows, merge):
        block, windows = block_windows
        reference = reference_windowed_inverse(block, windows, merge)
        produced = windowed_inverse(block, windows, merge=merge).toarray()
        assert relative_error(reference, produced) < RELATIVE_TOLERANCE

    @given(spd_block_with_windows(), st.sampled_from(["max", "min", "mean"]))
    @settings(max_examples=50, deadline=None)
    def test_dedup_is_bit_identical(self, block_windows, merge):
        block, windows = block_windows
        deduped = windowed_inverse(block, windows, merge=merge)
        plain = windowed_inverse(block, windows, merge=merge, dedup=False)
        assert (deduped != plain).nnz == 0

    def test_dedup_hits_on_translation_invariant_bus(self):
        system = aligned_bus(32)
        block = partial_inductance_matrix(system)
        from repro.vpec.windowing import geometric_windows

        windows = geometric_windows(system, list(range(32)), 4)
        with collect() as profile:
            deduped = windowed_inverse(block, windows)
        plain = windowed_inverse(block, windows, dedup=False)
        assert profile.counters["window_dedup_hits"] > 0
        assert (deduped != plain).nnz == 0


# ----------------------------------------------------------------------
# Transient recording equivalence
# ----------------------------------------------------------------------


class TestRecordEquivalence:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_loop(self, nodes, branches, seed):
        rng = np.random.default_rng(seed)
        size = nodes + branches + 1
        x = rng.normal(size=size)
        node_rows = rng.integers(-1, size, size=nodes)
        branch_rows = rng.integers(0, size, size=branches)
        volt = np.zeros((nodes, 3))
        curr = np.zeros((branches, 3))
        _record(volt, curr, 1, x, node_rows, branch_rows)
        expected_volt = np.zeros((nodes, 3))
        expected_curr = np.zeros((branches, 3))
        for pos, row in enumerate(node_rows):
            expected_volt[pos, 1] = x[row] if row >= 0 else 0.0
        for pos, row in enumerate(branch_rows):
            expected_curr[pos, 1] = x[row]
        np.testing.assert_array_equal(volt, expected_volt)
        np.testing.assert_array_equal(curr, expected_curr)
