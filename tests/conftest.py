"""Shared fixtures: small extracted systems reused across test modules.

Extraction of the small reference structures is deterministic, so the
fixtures are session-scoped; tests must not mutate them (builders that
attach testbenches get fresh copies via the factory fixtures).

Randomness is scoped per test: the ``rng`` fixture derives an
independent deterministic stream from each test's node id, the global
(legacy) numpy RNG state is snapshotted and restored around every test
so a stray ``np.random.*`` call cannot bleed into later tests, and the
hypothesis profile is derandomized so property suites replay the same
deterministic example stream on every run.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.extraction.parasitics import Parasitics, extract
from repro.geometry.bus import aligned_bus, nonaligned_bus
from repro.geometry.spiral import square_spiral

try:  # hypothesis is an optional test dependency
    from hypothesis import settings as _hypothesis_settings

    _hypothesis_settings.register_profile(
        "repro", derandomize=True, deadline=None
    )
    _hypothesis_settings.load_profile("repro")
except ImportError:  # pragma: no cover - exercised without hypothesis
    pass


@pytest.fixture(autouse=True)
def _isolate_global_rng():
    """Restore the legacy global numpy RNG state after every test."""
    state = np.random.get_state()
    yield
    np.random.set_state(state)


@pytest.fixture()
def rng(request: pytest.FixtureRequest) -> np.random.Generator:
    """Deterministic per-test generator, independent across tests.

    The seed is derived from the test's node id, so every test gets its
    own reproducible stream regardless of execution order or which
    other tests ran before it.
    """
    digest = hashlib.sha256(request.node.nodeid.encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


@pytest.fixture(scope="session")
def bus5() -> Parasitics:
    """The paper's 5-bit aligned bus (Section II-C), extracted."""
    return extract(aligned_bus(5))


@pytest.fixture(scope="session")
def bus8x2() -> Parasitics:
    """A small multi-segment bus: 8 bits, 2 segments per line."""
    return extract(aligned_bus(8, segments_per_line=2))


@pytest.fixture(scope="session")
def bus16() -> Parasitics:
    """A 16-bit aligned bus, one segment per line."""
    return extract(aligned_bus(16))


@pytest.fixture(scope="session")
def nonaligned16() -> Parasitics:
    """A 16-bit nonaligned bus (numerical-truncation workload)."""
    return extract(nonaligned_bus(16))


@pytest.fixture(scope="session")
def spiral_small() -> Parasitics:
    """A small spiral (2 turns, 24 segments) for irregular-layout tests."""
    return extract(square_spiral(turns=2, total_segments=24))


@pytest.fixture()
def fresh_bus5() -> Parasitics:
    """Per-test extraction of the 5-bit bus (safe to mutate / attach)."""
    return extract(aligned_bus(5))
