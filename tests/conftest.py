"""Shared fixtures: small extracted systems reused across test modules.

Extraction of the small reference structures is deterministic, so the
fixtures are session-scoped; tests must not mutate them (builders that
attach testbenches get fresh copies via the factory fixtures).
"""

from __future__ import annotations

import pytest

from repro.extraction.parasitics import Parasitics, extract
from repro.geometry.bus import aligned_bus, nonaligned_bus
from repro.geometry.spiral import square_spiral


@pytest.fixture(scope="session")
def bus5() -> Parasitics:
    """The paper's 5-bit aligned bus (Section II-C), extracted."""
    return extract(aligned_bus(5))


@pytest.fixture(scope="session")
def bus8x2() -> Parasitics:
    """A small multi-segment bus: 8 bits, 2 segments per line."""
    return extract(aligned_bus(8, segments_per_line=2))


@pytest.fixture(scope="session")
def bus16() -> Parasitics:
    """A 16-bit aligned bus, one segment per line."""
    return extract(aligned_bus(16))


@pytest.fixture(scope="session")
def nonaligned16() -> Parasitics:
    """A 16-bit nonaligned bus (numerical-truncation workload)."""
    return extract(nonaligned_bus(16))


@pytest.fixture(scope="session")
def spiral_small() -> Parasitics:
    """A small spiral (2 turns, 24 segments) for irregular-layout tests."""
    return extract(square_spiral(turns=2, total_segments=24))


@pytest.fixture()
def fresh_bus5() -> Parasitics:
    """Per-test extraction of the 5-bit bus (safe to mutate / attach)."""
    return extract(aligned_bus(5))
