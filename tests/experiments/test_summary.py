"""Tests for the quick reproduction summary."""

from repro.cli import main
from repro.experiments.summary import quick_checks, quick_report


class TestQuickChecks:
    def test_all_claims_hold(self):
        checks = quick_checks()
        failed = [c.claim for c in checks if not c.holds]
        assert not failed, f"claims regressed: {failed}"

    def test_every_experiment_covered(self):
        experiments = {c.experiment for c in quick_checks()}
        assert experiments == {
            "Fig. 2",
            "Table II",
            "Table III",
            "Fig. 4",
            "Table IV",
            "Figs. 6-7",
            "Health",
        }

    def test_report_formatting(self):
        text = quick_report()
        assert "claims hold" in text
        assert "[PASS]" in text

    def test_cli_report_exit_code(self, capsys):
        assert main(["report"]) == 0
        assert "[PASS]" in capsys.readouterr().out
