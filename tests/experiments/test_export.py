"""Unit tests for the CSV exporters."""

import numpy as np
import pytest

from repro.circuit.waveform import Waveform
from repro.experiments.export import (
    fig4_to_csv,
    fig8_to_csv,
    parse_csv_floats,
    series_to_csv,
    waveforms_to_csv,
)
from repro.experiments.fig4_extraction import Fig4Point
from repro.experiments.fig8_scaling import Fig8Point


def wave(values):
    values = np.asarray(values, dtype=float)
    return Waveform(np.linspace(0, 1, values.size), values)


class TestWaveformCsv:
    def test_header_and_rows(self):
        text = waveforms_to_csv({"a": wave([0, 1, 2]), "b": wave([2, 1, 0])})
        lines = text.splitlines()
        assert lines[0] == "t,a,b"
        assert len(lines) == 4

    def test_round_trip(self):
        source = {"a": wave([0.0, 0.5, 1.0])}
        columns = parse_csv_floats(waveforms_to_csv(source))
        assert np.allclose(columns["a"], [0.0, 0.5, 1.0])
        assert np.allclose(columns["t"], [0.0, 0.5, 1.0])

    def test_resamples_mismatched_axes(self):
        a = wave([0.0, 1.0])  # t = 0, 1
        b = Waveform(np.array([0.0, 0.5, 1.0]), np.array([0.0, 0.5, 1.0]))
        columns = parse_csv_floats(waveforms_to_csv({"a": a, "b": b}))
        assert np.allclose(columns["b"], [0.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            waveforms_to_csv({})


class TestScalingCsv:
    def test_fig4(self):
        points = [Fig4Point(8, 0.5, 0.25), Fig4Point(16, 1.0, 0.3)]
        columns = parse_csv_floats(fig4_to_csv(points))
        assert np.allclose(columns["bits"], [8, 16])
        assert np.allclose(columns["windowing_seconds"], [0.25, 0.3])

    def test_fig8(self):
        points = [
            Fig8Point("PEEC", 8, 0.1, 0.2, 100, 2048),
            Fig8Point("gwVPEC(b=8)", 8, 0.05, 0.1, 50, 1024),
        ]
        text = fig8_to_csv(points)
        assert "PEEC,8," in text
        assert "total_seconds" in text.splitlines()[0]

    def test_generic_series(self):
        text = series_to_csv(["x", "y"], [[1, 2.5], [3, 4.0]])
        columns = parse_csv_floats(text)
        assert np.allclose(columns["y"], [2.5, 4.0])

    def test_generic_series_validates_width(self):
        with pytest.raises(ValueError):
            series_to_csv(["x"], [[1, 2]])

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_csv_floats("")
