"""Section VI's delay criterion: sparsified VPEC within 3% of PEEC.

"In all the simulation, the wVPEC model has a very small waveform
difference (less than 3%) in terms of delay when compared to the PEEC
model."  Verified on the aggressor's 50% crossing over a bus-size sweep.
"""

import pytest

from repro.analysis.metrics import delay_difference
from repro.circuit.sources import step
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.experiments.runner import (
    build_model,
    gw_spec,
    nt_spec,
    peec_spec,
    run_bus_transient,
)


@pytest.mark.parametrize("bits", [8, 16, 32, 64])
def test_gwvpec_delay_within_3_percent(bits):
    parasitics = extract(aligned_bus(bits))
    stimulus = step(1.0, rise_time=10e-12)
    peec = run_bus_transient(
        build_model(peec_spec(), parasitics), stimulus, 200e-12, 1e-12, [0]
    )
    gw = run_bus_transient(
        build_model(gw_spec(8), parasitics), stimulus, 200e-12, 1e-12, [0]
    )
    error = delay_difference(
        peec.waveforms["far0"], gw.waveforms["far0"], level=0.5
    )
    assert error < 0.03


def test_ntvpec_delay_within_3_percent():
    parasitics = extract(aligned_bus(32))
    stimulus = step(1.0, rise_time=10e-12)
    peec = run_bus_transient(
        build_model(peec_spec(), parasitics), stimulus, 200e-12, 1e-12, [0]
    )
    nt = run_bus_transient(
        build_model(nt_spec(1e-3), parasitics), stimulus, 200e-12, 1e-12, [0]
    )
    error = delay_difference(
        peec.waveforms["far0"], nt.waveforms["far0"], level=0.5
    )
    assert error < 0.03
