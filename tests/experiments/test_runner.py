"""Unit tests for the experiment runner plumbing."""

import pytest

from repro.circuit.sources import step
from repro.experiments.runner import (
    ModelSpec,
    build_model,
    full_spec,
    gt_spec,
    gw_spec,
    localized_spec,
    nt_spec,
    nw_spec,
    peec_spec,
    run_bus_ac,
    run_bus_transient,
    run_two_port_transient,
)


class TestModelSpec:
    def test_labels(self):
        assert peec_spec().label == "PEEC"
        assert full_spec().label == "full VPEC"
        assert localized_spec().label == "localized VPEC"
        assert gt_spec(8, 2).label == "gtVPEC(8,2)"
        assert nt_spec(1e-4).label == "ntVPEC(0.0001)"
        assert gw_spec(8).label == "gwVPEC(b=8)"
        assert nw_spec(1.5e-4).label == "nwVPEC(0.00015)"

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelSpec("bogus")
        with pytest.raises(ValueError):
            ModelSpec("gt", nw=0, nl=1)
        with pytest.raises(ValueError):
            ModelSpec("gw")
        with pytest.raises(ValueError):
            ModelSpec("nt")

    def test_solver_validation(self):
        assert gw_spec(8, solver="iterative").solver == "iterative"
        assert nw_spec(1e-4, solver="iterative").solver == "iterative"
        with pytest.raises(ValueError, match="solver"):
            ModelSpec("gw", window=8, solver="magic")
        # Only the windowed kinds have window solves to route.
        with pytest.raises(ValueError, match="windowed"):
            ModelSpec("full", solver="iterative")
        with pytest.raises(ValueError, match="windowed"):
            ModelSpec("peec", solver="iterative")

    def test_solver_changes_the_model_key(self, fresh_bus5):
        from repro.experiments.runner import model_key

        direct = model_key(gw_spec(4), fresh_bus5)
        iterative = model_key(gw_spec(4, solver="iterative"), fresh_bus5)
        assert direct != iterative


class TestBuildModel:
    @pytest.mark.parametrize(
        "spec_factory",
        [
            peec_spec,
            full_spec,
            localized_spec,
            lambda: gt_spec(3, 1),
            lambda: nt_spec(1e-2),
            lambda: gw_spec(3),
            lambda: nw_spec(0.6),
        ],
    )
    def test_all_flavors_build(self, fresh_bus5, spec_factory):
        built = build_model(spec_factory(), fresh_bus5)
        assert built.element_count() > 0
        assert built.netlist_bytes() > 0
        assert 0.0 < built.sparse_factor <= 1.0

    def test_sparse_factor_reflects_truncation(self, fresh_bus5):
        built = build_model(gt_spec(2, 1), fresh_bus5)
        assert built.sparse_factor == pytest.approx(4 / 10)


class TestRuns:
    def test_bus_transient_waveform_keys(self, fresh_bus5):
        built = build_model(peec_spec(), fresh_bus5)
        run = run_bus_transient(
            built, step(1.0, 10e-12), 100e-12, 1e-12, observe_bits=[1, 3]
        )
        assert set(run.waveforms) == {"far1", "far3"}
        assert run.sim_seconds > 0
        assert run.total_seconds >= run.sim_seconds

    def test_bus_ac_magnitudes(self, fresh_bus5):
        from repro.circuit.sources import ac_unit

        built = build_model(full_spec(), fresh_bus5)
        run = run_bus_ac(
            built, ac_unit(1.0), [1e6, 1e9], observe_bits=[1]
        )
        wave = run.waveforms["far1"]
        assert len(wave) == 2
        assert all(v >= 0 for v in wave.v)

    def test_two_port(self, spiral_small):
        from repro.extraction.parasitics import extract
        from repro.geometry.spiral import square_spiral

        parasitics = extract(square_spiral(turns=2, total_segments=24))
        built = build_model(peec_spec(), parasitics)
        run = run_two_port_transient(
            built, step(1.0, 10e-12), 100e-12, 1e-12
        )
        assert "out" in run.waveforms


class TestStageTimings:
    """Regression: the pipeline stages are populated by real runs."""

    def test_transient_job_populates_core_stages(self):
        from repro.experiments.jobs import SimJob, geometry_spec, execute_job
        from repro.pipeline.profiling import CORE_STAGES

        job = SimJob(
            geometry=geometry_spec("aligned_bus", bits=5),
            model=gw_spec(2),
            t_stop=50e-12,
            dt=1e-12,
            observe_bits=(1,),
        )
        profile = execute_job(job).profile
        # A gwVPEC transient exercises every core stage except the full
        # inversion (windowing replaces it).
        for name in ("extract", "sparsify", "stamp", "solve"):
            assert profile.calls[name] >= 1
            assert profile.seconds[name] >= 0.0
        assert set(profile.seconds) <= set(CORE_STAGES)
        assert profile.counters["extracted_filaments"] == 5
        assert profile.counters["transient_steps"] == 50
        assert profile.counters["stamped_elements"] > 0
        # Kernel-dedup counters: the GMD quadrature runs at most once per
        # distance class (the module-level cache may already hold them
        # all, so only the *sum* is guaranteed), and the uniform bus has
        # translation-identical windows for the windowed inverse.
        assert (
            profile.counters["gmd_unique_evals"]
            + profile.counters["gmd_cache_hits"]
        ) >= 1
        assert profile.counters["window_dedup_hits"] >= 1

    def test_inversion_models_record_invert_stage(self, fresh_bus5):
        from repro.pipeline.profiling import collect

        with collect() as profile:
            build_model(full_spec(), fresh_bus5)
        assert profile.calls["invert"] == 1
        assert profile.calls["stamp"] == 1
        assert profile.seconds["invert"] >= 0.0

    def test_fig8_points_have_nonnegative_timings(self):
        from repro.experiments.fig8_scaling import run_fig8

        points = run_fig8(
            dense_sizes=(5,), sparse_only_sizes=(), window_size=2,
            t_stop=50e-12, dt=1e-12,
        )
        assert len(points) == 3
        for point in points:
            assert point.build_seconds >= 0.0
            assert point.sim_seconds > 0.0
            assert point.total_seconds >= point.sim_seconds
