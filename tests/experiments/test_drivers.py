"""Integration tests: scaled-down runs of every experiment driver.

Each test runs the corresponding table/figure driver on a smaller
workload and asserts the paper's *qualitative* claims (who wins, in
which direction); the full-size numbers live in the benchmark harness.
"""

import pytest

from repro.experiments.fig2_accuracy import run_fig2
from repro.experiments.fig4_extraction import run_fig4
from repro.experiments.fig7_spiral import run_fig7, threshold_for_kept_ratio
from repro.experiments.fig8_scaling import run_fig8, series, speedup_at
from repro.experiments.table2_gtvpec import run_table2
from repro.experiments.table3_ntvpec import run_table3
from repro.experiments.table4_windowing import run_table4


@pytest.fixture(scope="module")
def fig2_result():
    return run_fig2(bits=5, t_stop=200e-12, dt=1e-12, points_per_decade=3)


class TestFig2:
    def test_full_vpec_identical_to_peec(self, fig2_result):
        diff = fig2_result.transient_diff["full VPEC"]
        assert diff.max_relative_to_peak < 1e-6

    def test_localized_vpec_visibly_wrong(self, fig2_result):
        diff = fig2_result.transient_diff["localized VPEC"]
        assert diff.mean_relative_to_peak > 0.05  # paper: ~15%

    def test_full_vpec_identical_in_frequency_domain(self, fig2_result):
        assert fig2_result.ac_diff["full VPEC"].max_relative_to_peak < 1e-6

    def test_localized_vpec_diverges_at_high_frequency(self, fig2_result):
        high = fig2_result.ac_high_band_diff["localized VPEC"]
        low = fig2_result.ac_diff["localized VPEC"]
        assert high.mean_relative_to_peak > 0.02
        assert high.mean_abs >= low.mean_abs * 0.5


class TestTable2:
    def test_rows_and_tradeoff(self):
        rows = run_table2(
            bits=8,
            segments_per_line=2,
            windows=((8, 2), (4, 1), (2, 1)),
            t_stop=150e-12,
            dt=1e-12,
        )
        assert rows[0].label == "full VPEC"
        # Sparser windows -> monotonically smaller sparse factors.
        factors = [r.sparse_factor for r in rows[1:]]
        assert factors == sorted(factors, reverse=True)
        # The untruncated window reproduces the full model exactly.
        assert rows[1].diff.max_abs < 1e-9
        # Aggressive truncation introduces nonzero but bounded error
        # (nearest-bit-only on an 8-bit bus is the extreme setting).
        assert 0 < rows[-1].diff.mean_abs < 0.5 * rows[-1].noise_peak
        # Error grows as the window shrinks.
        errors = [r.diff.mean_abs for r in rows[1:]]
        assert errors == sorted(errors)


class TestTable3:
    def test_rows(self):
        rows = run_table3(
            bits=12, thresholds=(1e-3, 1e-1), t_stop=150e-12, dt=1e-12
        )
        labels = [r.label for r in rows]
        assert labels[0] == "PEEC"
        assert labels[1] == "full VPEC"
        # Full VPEC matches PEEC on the victim waveform.
        assert rows[1].diff.max_relative_to_peak < 1e-6
        # Higher threshold -> sparser model, larger error.
        assert rows[3].sparse_factor < rows[2].sparse_factor
        assert rows[3].diff.mean_abs >= rows[2].diff.mean_abs


class TestFig4:
    def test_windowing_scales_better(self):
        # The O(N^3) inversion overtakes the O(N b^3) windowing between
        # a few hundred and ~1000 bits on modern LAPACK (the paper's
        # 2003 hardware crossed earlier); assert the crossover shape.
        points = run_fig4(sizes=(128, 1024))
        assert [p.bits for p in points] == [128, 1024]
        big = points[-1]
        assert big.windowing_seconds < big.truncation_seconds
        t_growth = big.truncation_seconds / points[0].truncation_seconds
        w_growth = big.windowing_seconds / max(
            points[0].windowing_seconds, 1e-9
        )
        assert t_growth > w_growth


class TestTable4:
    def test_windowing_more_accurate_at_far_victim(self):
        result = run_table4(
            bits=32,
            window_sizes=(16, 8),
            observe_bits=(1, 15),
            t_stop=150e-12,
            dt=1e-12,
        )
        # Paper's Table IV claim: at matched sparsity, gwVPEC beats
        # gtVPEC at the distant victim for every window size.
        for row in result.rows:
            assert row.accuracy_gain(15) > 1.0
        # And the near victim is accurate for both.
        for row in result.rows:
            peak = result.noise_peak[1]
            assert row.gw_diff[1].mean_abs < 0.25 * peak

    def test_sparsities_comparable(self):
        result = run_table4(
            bits=32,
            window_sizes=(8,),
            observe_bits=(1, 15),
            t_stop=100e-12,
            dt=1e-12,
        )
        row = result.rows[0]
        assert row.gw_sparse_factor == pytest.approx(
            row.gt_sparse_factor, rel=0.5
        )


class TestFig7:
    def test_spiral_models_agree(self):
        result = run_fig7(
            turns=2, total_segments=24, t_stop=300e-12, dt=1e-12
        )
        assert result.diff_vs_peec["full VPEC"].max_relative_to_peak < 1e-5
        # nwVPEC stays within a few percent of PEEC (paper: "virtually
        # identical").
        assert result.diff_vs_peec["nwVPEC"].mean_relative_to_peak < 0.05
        assert 0.0 < result.sparse_factor < 1.0

    def test_threshold_for_kept_ratio(self, spiral_small):
        threshold = threshold_for_kept_ratio(spiral_small, 0.5)
        assert threshold > 0
        with pytest.raises(ValueError):
            threshold_for_kept_ratio(spiral_small, 0.0)


class TestFig8:
    def test_scaling_series(self):
        points = run_fig8(
            dense_sizes=(8, 16),
            sparse_only_sizes=(32,),
            window_size=4,
            t_stop=100e-12,
            dt=1e-12,
        )
        peec = series(points, "PEEC")
        gw = series(points, "gwVPEC(b=4)")
        assert [p.bits for p in peec] == [8, 16]
        assert [p.bits for p in gw] == [8, 16, 32]
        # Model size: full VPEC netlist is larger than gwVPEC's.
        full = series(points, "full VPEC")
        assert full[-1].netlist_bytes > gw[1].netlist_bytes
        assert speedup_at(points, 16, "gwVPEC(b=4)") is not None
        assert speedup_at(points, 999, "gwVPEC(b=4)") is None
