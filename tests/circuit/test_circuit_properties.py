"""Property-based tests of the circuit engine over random RLC networks.

A hypothesis strategy generates random connected RLC networks with one
driving source; the properties below must hold for *every* such
network:

- writer -> parser -> writer is byte-stable, and the reparsed circuit
  produces the identical DC operating point;
- AC at (near) zero frequency equals the DC solve;
- transient from the DC operating point of a DC-driven network stays at
  the operating point (equilibrium is preserved by the integrator);
- scaling the only source scales every node voltage (linearity).
"""

import numpy as np
import pytest
from hypothesis import given, seed, settings, strategies as st

from repro.circuit.ac import ac_analysis
from repro.circuit.dc import dc_operating_point
from repro.circuit.netlist import Circuit
from repro.circuit.sources import Stimulus, dc
from repro.circuit.spice_parser import parse_spice
from repro.circuit.spice_writer import write_spice
from repro.circuit.transient import transient_analysis


@st.composite
def random_rlc(draw):
    """A random connected ladder/mesh of 2-6 nodes with R, C, L elements.

    Every node is chained to the previous one by a resistor (guaranteed
    connectivity and a DC path), then extra R/L/C elements are sprinkled
    between random node pairs.  Node 'n0' is driven by a voltage source.
    """
    node_count = draw(st.integers(min_value=2, max_value=6))
    nodes = [f"n{k}" for k in range(node_count)]
    circuit = Circuit("hypothesis")
    drive = draw(st.floats(min_value=0.1, max_value=10.0))
    circuit.add_voltage_source(nodes[0], "0", dc(drive), name="V1")
    for k in range(1, node_count):
        value = draw(st.floats(min_value=1.0, max_value=1e5))
        circuit.add_resistor(nodes[k - 1], nodes[k], value, name=f"Rchain{k}")
    circuit.add_resistor(nodes[-1], "0", draw(st.floats(1.0, 1e5)), name="Rterm")

    extra_count = draw(st.integers(min_value=0, max_value=6))
    interior = nodes[1:]  # inductors here cannot close a V-L loop
    inductor_root = {node: node for node in interior}

    def find(node: str) -> str:
        while inductor_root[node] != node:
            node = inductor_root[node]
        return node

    for idx in range(extra_count):
        kind = draw(st.sampled_from("RCL"))
        if kind == "L":
            # Inductor loops (any cycle of pure V/L branches) make the DC
            # current split indeterminate -- a netlist error in any SPICE,
            # not an engine property.  Inductors therefore stay between
            # interior nodes (no V-L loop) and must form a forest (no L-L
            # loop), tracked by union-find.
            if len(interior) < 2:
                continue
            a = interior[draw(st.integers(0, len(interior) - 1))]
            b = interior[draw(st.integers(0, len(interior) - 1))]
            if a == b or find(a) == find(b):
                continue
            inductor_root[find(a)] = find(b)
            circuit.add_inductor(
                a, b, draw(st.floats(1e-12, 1e-6)), name=f"Lx{idx}"
            )
            continue
        a = nodes[draw(st.integers(0, node_count - 1))]
        pool = nodes + ["0"]
        b = pool[draw(st.integers(0, len(pool) - 1))]
        if a == b:
            continue
        if kind == "R":
            circuit.add_resistor(a, b, draw(st.floats(1.0, 1e6)), name=f"Rx{idx}")
        else:
            circuit.add_capacitor(
                a, b, draw(st.floats(1e-15, 1e-9)), name=f"Cx{idx}"
            )
    return circuit


class TestParserProperties:
    @given(random_rlc())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_byte_stable(self, circuit):
        text = write_spice(circuit)
        assert write_spice(parse_spice(text).circuit) == text

    @given(random_rlc())
    @settings(max_examples=25, deadline=None)
    def test_round_trip_same_dc(self, circuit):
        reparsed = parse_spice(write_spice(circuit)).circuit
        original = dc_operating_point(circuit)
        recovered = dc_operating_point(reparsed)
        for node in circuit.nodes:
            # The writer emits values at %.6g, so the reparsed circuit's
            # element values (hence voltages) are quantized at ~1e-6.
            assert recovered.voltage(node) == pytest.approx(
                original.voltage(node), rel=1e-4, abs=1e-9
            )


def clone_with_source(circuit: Circuit, stimulus) -> Circuit:
    """Rebuild a circuit element-for-element with a replaced V1 drive."""
    clone = Circuit(circuit.title)
    for element in circuit:
        if element.name == "V1":
            clone.add(type(element)("V1", element.n1, element.n2, stimulus))
        else:
            clone.add(element)
    return clone


class TestEngineProperties:
    @given(random_rlc())
    @seed(2026)
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_ac_low_frequency_matches_dc(self, circuit):
        # AC uses Stimulus.ac: rebuild the drive with an AC phasor equal
        # to its DC value so the comparison is meaningful.
        level = circuit.element("V1").stimulus.dc
        patched = clone_with_source(circuit, Stimulus(dc=level, ac=level))
        dc_solution = dc_operating_point(patched)
        probe = 1e-3  # Hz
        ac_solution = ac_analysis(patched, [probe], probe_nodes=patched.nodes)
        for node in patched.nodes:
            phasor = ac_solution.voltage(node)[0]
            # At omega -> 0 the real part converges to the DC solution;
            # the imaginary part is a first-order O(omega * R * C) leak
            # (up to ~2 pi * 1e-3 * 1e6 * 1e-9 ~ 6e-6 V with this
            # strategy's extreme R/C draws), so it gets its own bound
            # rather than being folded into the DC comparison.
            assert phasor.real == pytest.approx(
                dc_solution.voltage(node), rel=1e-5, abs=1e-9
            )
            assert abs(phasor.imag) <= 1e-4 * (1.0 + abs(phasor.real))

    @given(random_rlc())
    @settings(max_examples=20, deadline=None)
    def test_equilibrium_preserved(self, circuit):
        # Tolerance: the trapezoidal rule is only marginally stable, so
        # the DC solve's machine-precision residual rings as a tiny
        # non-decaying alternation; allow it while catching real drift.
        result = transient_analysis(circuit, 1e-9, 1e-11)
        for node in circuit.nodes:
            wave = result.voltage(node)
            assert np.allclose(
                wave.v, wave.v[0], atol=1e-7 + 1e-5 * abs(wave.v[0])
            )

    @given(random_rlc(), st.floats(min_value=0.2, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_dc_linearity(self, circuit, scale):
        source = circuit.element("V1")
        base = dc_operating_point(circuit)
        scaled_circuit = clone_with_source(
            circuit, dc(source.stimulus.dc * scale)
        )
        scaled = dc_operating_point(scaled_circuit)
        for node in circuit.nodes:
            assert scaled.voltage(node) == pytest.approx(
                base.voltage(node) * scale, rel=1e-6, abs=1e-12
            )
