"""Unit tests for the SPICE netlist parser (and writer round-trips)."""

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis
from repro.circuit.dc import dc_operating_point
from repro.circuit.elements import (
    CCCS,
    Capacitor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.sources import ac_unit, dc, step
from repro.circuit.spice_parser import SpiceParseError, parse_spice, parse_value
from repro.circuit.spice_writer import write_spice
from repro.circuit.transient import transient_analysis


class TestValueParsing:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("10", 10.0),
            ("1.5k", 1.5e3),
            ("10p", 1e-11),
            ("3meg", 3e6),
            ("2n", 2e-9),
            ("4.7u", 4.7e-6),
            ("100f", 1e-13),
            ("1e-12", 1e-12),
            ("-3.3", -3.3),
            ("2.2K", 2.2e3),
            ("1pF", 1e-12),  # trailing unit letters ignored, as in SPICE
        ],
    )
    def test_values(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_value("abc")
        with pytest.raises(ValueError):
            parse_value("")


class TestBasicCards:
    def test_rc_parse(self):
        parsed = parse_spice(
            "* test\nV1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1p\n.end\n"
        )
        circuit = parsed.circuit
        assert circuit.title == "test"
        assert isinstance(circuit.element("R1"), Resistor)
        assert circuit.element("R1").value == pytest.approx(1e3)
        assert isinstance(circuit.element("C1"), Capacitor)
        assert isinstance(circuit.element("V1"), VoltageSource)

    def test_mutual_converted_to_henries(self):
        parsed = parse_spice(
            "* k\nL1 a 0 1n\nL2 b 0 4n\nK1 L1 L2 0.5\n.end\n"
        )
        mutual = parsed.circuit.element("K1")
        assert isinstance(mutual, MutualInductance)
        assert mutual.value == pytest.approx(0.5 * np.sqrt(1e-9 * 4e-9))

    def test_k_card_before_inductors(self):
        # SPICE allows any card order; the parser defers couplings.
        parsed = parse_spice(
            "* k\nK1 L1 L2 0.5\nL1 a 0 1n\nL2 b 0 4n\n.end\n"
        )
        assert "K1" in parsed.circuit

    def test_controlled_sources(self):
        parsed = parse_spice(
            "* ctl\n"
            "V1 in 0 DC 1\n"
            "R1 in 0 1k\n"
            "E1 a 0 in 0 2.0\n"
            "G1 b 0 in 0 0.5\n"
            "F1 c 0 V1 1.5\n"
            "H1 d 0 V1 10\n"
            "R2 a 0 1\nR3 b 0 1\nR4 c 0 1\nR5 d 0 1\n"
            ".end\n"
        )
        assert isinstance(parsed.circuit.element("F1"), CCCS)
        assert parsed.circuit.element("E1").gain == 2.0

    def test_continuation_lines(self):
        parsed = parse_spice("* c\nR1 a\n+ 0\n+ 2k\n.end\n")
        assert parsed.circuit.element("R1").value == pytest.approx(2e3)

    def test_comments_and_blanks_skipped(self):
        parsed = parse_spice("* t\n\n* a comment\nR1 a 0 1\n.end\n")
        assert len(parsed.circuit) == 1

    def test_dot_cards_warn(self):
        parsed = parse_spice("* t\nR1 a 0 1\n.tran 1p 1n\n.end\n")
        assert any(".tran" in w for w in parsed.warnings)


class TestSourceSpecs:
    def test_bare_dc_number(self):
        parsed = parse_spice("* t\nV1 a 0 2.5\nR1 a 0 1\n.end\n")
        assert parsed.circuit.element("V1").stimulus.dc == 2.5

    def test_ac_with_phase(self):
        parsed = parse_spice("* t\nV1 a 0 AC 2 90\nR1 a 0 1\n.end\n")
        phasor = parsed.circuit.element("V1").stimulus.ac
        assert abs(phasor) == pytest.approx(2.0)
        assert phasor.real == pytest.approx(0.0, abs=1e-12)

    def test_pwl(self):
        parsed = parse_spice(
            "* t\nV1 a 0 PWL(0 0 1e-11 1)\nR1 a 0 1\n.end\n"
        )
        stim = parsed.circuit.element("V1").stimulus
        assert stim.at(0.0) == 0.0
        assert stim.at(5e-12) == pytest.approx(0.5)
        assert stim.at(1e-9) == 1.0

    def test_pulse(self):
        parsed = parse_spice(
            "* t\nV1 a 0 PULSE(0 1 0 1e-11 1e-11 5e-10)\nR1 a 0 1\n.end\n"
        )
        stim = parsed.circuit.element("V1").stimulus
        assert stim.at(1e-10) == 1.0

    def test_malformed_pwl_raises(self):
        with pytest.raises(SpiceParseError):
            parse_spice("* t\nV1 a 0 PWL(0 0 0 1)\nR1 a 0 1\n.end\n")


class TestErrors:
    def test_missing_field(self):
        with pytest.raises(SpiceParseError):
            parse_spice("* t\nR1 a 0\n.end\n")

    def test_unknown_kind(self):
        with pytest.raises(SpiceParseError):
            parse_spice("* t\nQ1 a b c model\n.end\n")

    def test_bad_mutual_reference(self):
        with pytest.raises(SpiceParseError):
            parse_spice("* t\nK1 L1 L2 0.5\n.end\n")

    def test_error_carries_location(self):
        with pytest.raises(SpiceParseError) as info:
            parse_spice("* t\nR1 a 0 1\nR2 b 0 oops\n.end\n")
        assert info.value.line_number == 3


class TestRoundTrip:
    def build_reference(self) -> Circuit:
        circuit = Circuit("roundtrip")
        circuit.add_voltage_source("in", "0", step(1.0, rise_time=10e-12), name="V1")
        circuit.add_resistor("in", "a", 50.0, name="R1")
        circuit.add_inductor("a", "b", 1e-9, name="L1")
        circuit.add_inductor("c", "0", 2e-9, name="L2")
        circuit.add_mutual("L1", "L2", 0.4e-9, name="K1")
        circuit.add_capacitor("b", "0", 1e-12, name="C1")
        circuit.add_resistor("c", "0", 75.0, name="R2")
        circuit.add_vcvs("d", "0", "b", "0", 2.0, name="E1")
        circuit.add_resistor("d", "0", 1e3, name="R3")
        return circuit

    def test_write_parse_write_stable(self):
        original = self.build_reference()
        text = write_spice(original)
        reparsed = parse_spice(text).circuit
        assert write_spice(reparsed) == text

    def test_simulation_equivalence_after_round_trip(self):
        original = self.build_reference()
        reparsed = parse_spice(write_spice(original)).circuit
        r1 = transient_analysis(original, 2e-9, 1e-12, probe_nodes=["b"])
        r2 = transient_analysis(reparsed, 2e-9, 1e-12, probe_nodes=["b"])
        assert np.allclose(r1.voltage("b").v, r2.voltage("b").v, atol=1e-12)

    def test_dc_equivalence_after_round_trip(self):
        circuit = Circuit("dc")
        circuit.add_voltage_source("in", "0", dc(2.0), name="V1")
        circuit.add_resistor("in", "m", 1e3, name="R1")
        circuit.add_resistor("m", "0", 1e3, name="R2")
        reparsed = parse_spice(write_spice(circuit)).circuit
        assert dc_operating_point(reparsed).voltage("m") == pytest.approx(1.0)

    def test_ac_equivalence_after_round_trip(self):
        circuit = Circuit("ac")
        circuit.add_voltage_source("in", "0", ac_unit(1.0), name="V1")
        circuit.add_resistor("in", "out", 1e3, name="R1")
        circuit.add_capacitor("out", "0", 1e-12, name="C1")
        reparsed = parse_spice(write_spice(circuit)).circuit
        f = [1e8, 1e9]
        v1 = ac_analysis(circuit, f, probe_nodes=["out"]).voltage("out")
        v2 = ac_analysis(reparsed, f, probe_nodes=["out"]).voltage("out")
        assert np.allclose(v1, v2)

    def test_peec_model_round_trips(self, fresh_bus5):
        from repro.peec import build_peec

        model = build_peec(fresh_bus5)
        text = write_spice(model.circuit)
        reparsed = parse_spice(text).circuit
        # Mutual coefficients are re-quantized through text; compare the
        # netlists at the emitted precision.
        assert write_spice(reparsed) == text
