"""Unit tests for AC analysis against analytic transfer functions."""

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis, logspace_frequencies
from repro.circuit.netlist import Circuit
from repro.circuit.sources import ac_unit, dc


def rc_lowpass(r=1e3, c=1e-12):
    circuit = Circuit()
    circuit.add_voltage_source("in", "0", ac_unit(), name="V1")
    circuit.add_resistor("in", "out", r)
    circuit.add_capacitor("out", "0", c)
    return circuit


class TestFrequencyGrid:
    def test_logspace_endpoints(self):
        f = logspace_frequencies(1.0, 1e9, 10)
        assert f[0] == pytest.approx(1.0)
        assert f[-1] == pytest.approx(1e9)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            logspace_frequencies(10.0, 1.0)
        with pytest.raises(ValueError):
            logspace_frequencies(0.0, 1.0)


class TestAcAnalysis:
    def test_rc_lowpass_matches_analytic(self):
        r, c = 1e3, 1e-12
        freqs = logspace_frequencies(1e6, 1e12, 5)
        result = ac_analysis(rc_lowpass(r, c), freqs, probe_nodes=["out"])
        measured = result.voltage("out")
        expected = 1.0 / (1.0 + 1j * 2 * np.pi * freqs * r * c)
        assert np.allclose(measured, expected, rtol=1e-9)

    def test_corner_frequency_minus_3db(self):
        r, c = 1e3, 1e-12
        f_c = 1.0 / (2 * np.pi * r * c)
        result = ac_analysis(rc_lowpass(r, c), [f_c], probe_nodes=["out"])
        assert abs(result.voltage("out")[0]) == pytest.approx(1 / np.sqrt(2), rel=1e-9)

    def test_inductor_impedance(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", ac_unit(), name="V1")
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_inductor("out", "0", 1e-6, name="L1")
        f = 100.0 / (2 * np.pi * 1e-6)  # |Z_L| = R at this frequency
        result = ac_analysis(circuit, [f], probe_nodes=["out"])
        assert abs(result.voltage("out")[0]) == pytest.approx(1 / np.sqrt(2), rel=1e-9)

    def test_series_rlc_resonance_peak(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", ac_unit(), name="V1")
        circuit.add_resistor("in", "a", 1.0)
        circuit.add_inductor("a", "b", 1e-6, name="L1")
        circuit.add_capacitor("b", "0", 1e-12)
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-12))
        q = np.sqrt(1e-6 / 1e-12) / 1.0
        result = ac_analysis(circuit, [f0], probe_nodes=["b"])
        assert abs(result.voltage("b")[0]) == pytest.approx(q, rel=1e-6)

    def test_quiet_dc_source_has_no_ac_response(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", dc(1.0), name="V1")
        circuit.add_resistor("in", "out", 1e3)
        circuit.add_resistor("out", "0", 1e3)
        result = ac_analysis(circuit, [1e6], probe_nodes=["out"])
        assert abs(result.voltage("out")[0]) == 0.0

    def test_magnitude_db(self):
        result = ac_analysis(rc_lowpass(), [1.0, 10.0], probe_nodes=["out"])
        db = result.magnitude_db("out")
        assert db.v[0] == pytest.approx(0.0, abs=1e-6)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            ac_analysis(rc_lowpass(), [])

    def test_unprobed_node_raises(self):
        result = ac_analysis(rc_lowpass(), [1e6], probe_nodes=["out"])
        with pytest.raises(KeyError):
            result.voltage("in")

    def test_zero_frequency_matches_dc(self):
        # At f = 0 the AC solve reduces to the conductance system.
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", ac_unit(), name="V1")
        circuit.add_resistor("in", "out", 1e3)
        circuit.add_resistor("out", "0", 1e3)
        result = ac_analysis(circuit, [0.0], probe_nodes=["out"])
        assert result.voltage("out")[0] == pytest.approx(0.5 + 0j)
