"""Unit tests for MNA stamping: matrices compared against hand stamps."""

import numpy as np
import pytest

from repro.circuit.mna import build_mna
from repro.circuit.netlist import Circuit
from repro.circuit.sources import ac_unit, dc


class TestResistorStamp:
    def test_two_node_resistor(self):
        c = Circuit()
        c.add_resistor("a", "b", 2.0)
        system = build_mna(c)
        expected = np.array([[0.5, -0.5], [-0.5, 0.5]])
        assert np.allclose(system.G.toarray(), expected)

    def test_grounded_resistor_drops_ground_row(self):
        c = Circuit()
        c.add_resistor("a", "0", 4.0)
        system = build_mna(c)
        assert np.allclose(system.G.toarray(), [[0.25]])

    def test_parallel_resistors_add(self):
        c = Circuit()
        c.add_resistor("a", "0", 2.0)
        c.add_resistor("a", "0", 2.0)
        system = build_mna(c)
        assert np.allclose(system.G.toarray(), [[1.0]])


class TestCapacitorStamp:
    def test_c_matrix_only(self):
        c = Circuit()
        c.add_capacitor("a", "b", 3e-12)
        system = build_mna(c)
        assert np.allclose(system.G.toarray(), np.zeros((2, 2)))
        expected = 3e-12 * np.array([[1, -1], [-1, 1]])
        assert np.allclose(system.C.toarray(), expected)


class TestInductorStamp:
    def test_branch_rows(self):
        c = Circuit()
        c.add_inductor("a", "0", 2e-9, name="L1")
        system = build_mna(c)
        assert system.size == 2
        g = system.G.toarray()
        # KCL: +i at node a; branch: v_a = L di/dt.
        assert g[0, 1] == 1.0
        assert g[1, 0] == 1.0
        assert system.C.toarray()[1, 1] == pytest.approx(-2e-9)

    def test_mutual_stamps_branch_cross_terms(self):
        c = Circuit()
        c.add_inductor("a", "0", 2e-9, name="L1")
        c.add_inductor("b", "0", 8e-9, name="L2")
        c.add_mutual("L1", "L2", 1e-9)
        system = build_mna(c)
        row1 = system.branch_row("L1")
        row2 = system.branch_row("L2")
        c_mat = system.C.toarray()
        assert c_mat[row1, row2] == pytest.approx(-1e-9)
        assert c_mat[row2, row1] == pytest.approx(-1e-9)


class TestSourceStamps:
    def test_voltage_source_row(self):
        c = Circuit()
        c.add_voltage_source("a", "0", dc(5.0), name="V1")
        c.add_resistor("a", "0", 1.0)
        system = build_mna(c)
        b = system.rhs_dc()
        assert b[system.branch_row("V1")] == 5.0

    def test_current_source_injection(self):
        c = Circuit()
        c.add_current_source("0", "a", dc(1e-3), name="I1")
        c.add_resistor("a", "0", 1.0)
        system = build_mna(c)
        b = system.rhs_dc()
        assert b[system.node_row("a")] == pytest.approx(1e-3)

    def test_ac_rhs_uses_phasors(self):
        c = Circuit()
        c.add_voltage_source("a", "0", ac_unit(2.0, 0.0), name="V1")
        c.add_resistor("a", "0", 1.0)
        system = build_mna(c)
        b = system.rhs_ac()
        assert b[system.branch_row("V1")] == pytest.approx(2.0 + 0j)

    def test_transient_rhs_tracks_time(self):
        from repro.circuit.sources import step

        c = Circuit()
        c.add_voltage_source("a", "0", step(1.0, rise_time=10e-12), name="V1")
        c.add_resistor("a", "0", 1.0)
        system = build_mna(c)
        row = system.branch_row("V1")
        assert system.rhs_transient(0.0)[row] == 0.0
        assert system.rhs_transient(5e-12)[row] == pytest.approx(0.5)


class TestControlledSourceStamps:
    def test_vccs_stamp(self):
        c = Circuit()
        c.add_vccs("out", "0", "in", "0", 0.1)
        c.add_resistor("in", "0", 1.0)
        c.add_resistor("out", "0", 1.0)
        system = build_mna(c)
        g = system.G.toarray()
        n_out = system.node_row("out")
        n_in = system.node_row("in")
        assert g[n_out, n_in] == pytest.approx(0.1)

    def test_vcvs_gets_branch(self):
        c = Circuit()
        c.add_vcvs("out", "0", "in", "0", 2.0, name="E1")
        c.add_resistor("in", "0", 1.0)
        system = build_mna(c)
        row = system.branch_row("E1")
        g = system.G.toarray()
        assert g[row, system.node_row("out")] == 1.0
        assert g[row, system.node_row("in")] == pytest.approx(-2.0)

    def test_cccs_references_control_branch(self):
        c = Circuit()
        c.add_voltage_source("in", "0", dc(1.0), name="Vs")
        c.add_resistor("in", "0", 1.0)
        c.add_cccs("0", "out", "Vs", 3.0)
        c.add_resistor("out", "0", 1.0)
        system = build_mna(c)
        g = system.G.toarray()
        assert g[system.node_row("out"), system.branch_row("Vs")] == pytest.approx(
            -3.0
        )

    def test_ccvs_row(self):
        c = Circuit()
        c.add_voltage_source("in", "0", dc(1.0), name="Vs")
        c.add_resistor("in", "0", 1.0)
        c.add_ccvs("out", "0", "Vs", 10.0, name="H1")
        c.add_resistor("out", "0", 1.0)
        system = build_mna(c)
        g = system.G.toarray()
        row = system.branch_row("H1")
        assert g[row, system.branch_row("Vs")] == pytest.approx(-10.0)


class TestLookups:
    def test_branch_row_unknown(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0, name="R1")
        system = build_mna(c)
        with pytest.raises(KeyError):
            system.branch_row("R1")

    def test_voltage_of_ground_is_zero(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0)
        system = build_mna(c)
        assert system.voltage_of(np.array([3.0]), "0") == 0.0
        assert system.voltage_of(np.array([3.0]), "a") == 3.0
