"""Unit tests for the Circuit container and element validation."""

import pytest

from repro.circuit.elements import Capacitor, Inductor, Resistor
from repro.circuit.netlist import Circuit
from repro.circuit.sources import dc


class TestNodes:
    def test_ground_always_known(self):
        assert Circuit().node_index("0") == -1

    def test_lazy_creation_in_order(self):
        c = Circuit()
        c.add_resistor("a", "b", 1.0)
        c.add_resistor("b", "c", 1.0)
        assert c.nodes == ["a", "b", "c"]
        assert [c.node_index(n) for n in c.nodes] == [0, 1, 2]

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            Circuit().node_index("nope")

    def test_num_nodes_excludes_ground(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0)
        assert c.num_nodes == 1


class TestElementManagement:
    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0, name="R1")
        with pytest.raises(ValueError):
            c.add_resistor("a", "0", 2.0, name="R1")

    def test_auto_names_unique(self):
        c = Circuit()
        r1 = c.add_resistor("a", "0", 1.0)
        r2 = c.add_resistor("a", "0", 2.0)
        assert r1.name != r2.name

    def test_element_lookup(self):
        c = Circuit()
        c.add_capacitor("a", "0", 1e-12, name="Cx")
        assert isinstance(c.element("Cx"), Capacitor)
        with pytest.raises(KeyError):
            c.element("missing")

    def test_elements_of_type(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0)
        c.add_capacitor("a", "0", 1e-12)
        c.add_resistor("a", "b", 2.0)
        assert len(c.elements_of_type(Resistor)) == 2

    def test_element_counts(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0)
        c.add_inductor("a", "b", 1e-9)
        c.add_inductor("b", "0", 1e-9)
        assert c.element_counts() == {"Resistor": 1, "Inductor": 2}

    def test_contains(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0, name="Rz")
        assert "Rz" in c
        assert "Rq" not in c


class TestElementValidation:
    def test_zero_resistance_rejected(self):
        with pytest.raises(ValueError):
            Circuit().add_resistor("a", "0", 0.0)

    def test_negative_resistance_allowed(self):
        # Windowed VPEC networks may legitimately stamp negative couplings.
        Circuit().add_resistor("a", "0", -10.0)

    def test_nonpositive_capacitance_rejected(self):
        with pytest.raises(ValueError):
            Circuit().add_capacitor("a", "0", -1e-15)

    def test_nonpositive_inductance_rejected(self):
        with pytest.raises(ValueError):
            Circuit().add_inductor("a", "0", 0.0)

    def test_mutual_requires_existing_inductors(self):
        c = Circuit()
        c.add_inductor("a", "0", 1e-9, name="L1")
        with pytest.raises(ValueError):
            c.add_mutual("L1", "L2", 0.5e-9)

    def test_mutual_rejects_self_coupling(self):
        c = Circuit()
        c.add_inductor("a", "0", 1e-9, name="L1")
        with pytest.raises(ValueError):
            c.add_mutual("L1", "L1", 0.5e-9)

    def test_mutual_rejects_non_inductor_target(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0, name="R1")
        c.add_inductor("a", "0", 1e-9, name="L1")
        with pytest.raises(ValueError):
            c.add_mutual("L1", "R1", 0.5e-9)

    def test_cccs_requires_voltage_source_control(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0, name="R1")
        with pytest.raises(ValueError):
            c.add_cccs("a", "0", "R1", 2.0)

    def test_ccvs_requires_voltage_source_control(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_ccvs("a", "0", "Vmissing", 2.0)

    def test_valid_cccs(self):
        c = Circuit()
        c.add_voltage_source("in", "0", dc(1.0), name="Vin")
        c.add_cccs("a", "0", "Vin", 2.0)
        assert "F1" in c

    def test_stats(self):
        c = Circuit()
        c.add_resistor("a", "b", 1.0)
        assert c.stats() == (2, 1)
