"""Unit tests for DC operating-point analysis."""

import pytest

from repro.circuit.dc import dc_operating_point
from repro.circuit.netlist import Circuit
from repro.circuit.sources import dc


class TestDcAnalysis:
    def test_voltage_divider(self):
        c = Circuit()
        c.add_voltage_source("in", "0", dc(10.0), name="V1")
        c.add_resistor("in", "mid", 3e3)
        c.add_resistor("mid", "0", 1e3)
        sol = dc_operating_point(c)
        assert sol.voltage("mid") == pytest.approx(2.5)
        assert sol.current("V1") == pytest.approx(-10.0 / 4e3)

    def test_inductor_is_dc_short(self):
        c = Circuit()
        c.add_voltage_source("in", "0", dc(1.0), name="V1")
        c.add_resistor("in", "a", 1e3)
        c.add_inductor("a", "b", 1e-9, name="L1")
        c.add_resistor("b", "0", 1e3)
        sol = dc_operating_point(c)
        assert sol.voltage("a") == pytest.approx(sol.voltage("b"))
        assert sol.current("L1") == pytest.approx(0.5e-3)

    def test_capacitor_is_dc_open(self):
        c = Circuit()
        c.add_voltage_source("in", "0", dc(1.0), name="V1")
        c.add_resistor("in", "a", 1e3)
        c.add_capacitor("a", "0", 1e-12)
        # No DC path through the cap: node sits at the source value.
        sol = dc_operating_point(c)
        assert sol.voltage("a") == pytest.approx(1.0)

    def test_current_source_through_resistor(self):
        c = Circuit()
        c.add_current_source("0", "a", dc(2e-3), name="I1")
        c.add_resistor("a", "0", 500.0)
        sol = dc_operating_point(c)
        assert sol.voltage("a") == pytest.approx(1.0)

    def test_vcvs_amplifier(self):
        c = Circuit()
        c.add_voltage_source("in", "0", dc(0.25), name="V1")
        c.add_resistor("in", "0", 1e3)
        c.add_vcvs("out", "0", "in", "0", 4.0, name="E1")
        c.add_resistor("out", "0", 1e3)
        sol = dc_operating_point(c)
        assert sol.voltage("out") == pytest.approx(1.0)

    def test_superposition(self):
        def network(v1, v2):
            c = Circuit()
            c.add_voltage_source("a", "0", dc(v1), name="V1")
            c.add_voltage_source("b", "0", dc(v2), name="V2")
            c.add_resistor("a", "m", 1e3)
            c.add_resistor("b", "m", 1e3)
            c.add_resistor("m", "0", 1e3)
            return dc_operating_point(c).voltage("m")

        assert network(1.0, 1.0) == pytest.approx(network(1.0, 0.0) + network(0.0, 1.0))

    def test_ground_voltage(self):
        c = Circuit()
        c.add_voltage_source("a", "0", dc(1.0), name="V1")
        c.add_resistor("a", "0", 1.0)
        assert dc_operating_point(c).voltage("0") == 0.0
