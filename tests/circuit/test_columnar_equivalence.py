"""Columnar-vs-object equivalence: the fast path computes the same bits.

The columnar stores (:mod:`repro.circuit.columns`) and the per-class
vectorized MNA stamps are pure performance work -- they must be
*bit-identical* to the one-dataclass-at-a-time path, not merely close.
A hypothesis strategy builds the same random network twice (scalar
``add_*`` calls vs bulk ``add_*_array`` calls, same element order) and
the properties assert exact equality of ``G``, ``C``, and every RHS
flavor, across all element classes including both mutual-coupling
reference forms.

The multi-RHS engines (``transient_analysis_multi`` /
``ac_analysis_multi``) share one factorization across scenarios; their
per-scenario results must equal looped single-RHS runs exactly, since
back-substitution of a matrix RHS is columnwise identical to repeated
vector back-substitution.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuit.ac import ac_analysis, ac_analysis_multi
from repro.circuit.mna import build_mna
from repro.circuit.netlist import Circuit
from repro.circuit.sources import Stimulus, ac_unit, dc, step
from repro.circuit.transient import (
    transient_analysis,
    transient_analysis_multi,
)

_VALUES = st.floats(min_value=1.0, max_value=1e4)
_GAINS = st.floats(min_value=-5.0, max_value=5.0)


@st.composite
def paired_circuits(draw):
    """The same random network built through both construction paths.

    Returns ``(object_circuit, columnar_circuit)``: a resistor chain off
    a driven node, ground capacitors, an inductor ladder with mutual
    couplings, and one of each controlled-source class.  Element order
    is identical on both sides, so the assembled matrices must match
    bit for bit.
    """
    node_count = draw(st.integers(min_value=3, max_value=6))
    nodes = [f"n{k}" for k in range(node_count)]
    scalar = Circuit("object-path")
    columnar = Circuit("columnar-path")

    drive = draw(st.floats(min_value=0.1, max_value=10.0))
    stimulus = step(drive, rise_time=10e-12)
    scalar.add_voltage_source(nodes[0], "0", stimulus, name="V1")
    columnar.add_voltage_source_array(
        [nodes[0]], ["0"], [stimulus], names=["V1"]
    )

    chain = [draw(_VALUES) for _ in range(1, node_count)]
    for k, value in enumerate(chain, start=1):
        scalar.add_resistor(nodes[k - 1], nodes[k], value, name=f"R{k}")
    columnar.add_resistor_array(
        nodes[:-1],
        nodes[1:],
        chain,
        names=[f"R{k}" for k in range(1, node_count)],
    )

    caps = [draw(_VALUES) * 1e-15 for _ in nodes[1:]]
    for k, value in enumerate(caps, start=1):
        scalar.add_capacitor(nodes[k], "0", value, name=f"C{k}")
    columnar.add_capacitor_array(
        nodes[1:], ["0"] * len(caps), caps, names=[f"C{k}" for k in range(1, node_count)]
    )

    # Inductor ladder: each inductor leaves a chain node for a private
    # node that a resistor returns to ground (no V-L loops possible).
    ind_count = draw(st.integers(min_value=2, max_value=4))
    ind_values = [draw(_VALUES) * 1e-12 for _ in range(ind_count)]
    ind_n1 = [nodes[k % (node_count - 1) + 1] for k in range(ind_count)]
    ind_n2 = [f"m{k}" for k in range(ind_count)]
    ind_names = [f"L{k}" for k in range(ind_count)]
    for name, n1, n2, value in zip(ind_names, ind_n1, ind_n2, ind_values):
        scalar.add_inductor(n1, n2, value, name=name)
    columnar.add_inductor_array(ind_n1, ind_n2, ind_values, names=ind_names)
    shunts = [draw(_VALUES) for _ in range(ind_count)]
    for k, value in enumerate(shunts):
        scalar.add_resistor(ind_n2[k], "0", value, name=f"Rm{k}")
    columnar.add_resistor_array(
        ind_n2,
        ["0"] * ind_count,
        shunts,
        names=[f"Rm{k}" for k in range(ind_count)],
    )

    # Mutual couplings between consecutive ladder inductors, each below
    # the |k| < 1 physical bound.
    mut_values = [
        draw(st.floats(min_value=0.01, max_value=0.9))
        * np.sqrt(ind_values[k] * ind_values[k + 1])
        for k in range(ind_count - 1)
    ]
    mut_names = [f"K{k}" for k in range(ind_count - 1)]
    for k, value in enumerate(mut_values):
        scalar.add_mutual(ind_names[k], ind_names[k + 1], value, name=mut_names[k])
    columnar.add_mutual_array(
        ind_names[:-1], ind_names[1:], mut_values, names=mut_names
    )

    source_ac = draw(st.floats(min_value=0.1, max_value=2.0))
    scalar.add_current_source(nodes[-1], "0", ac_unit(source_ac), name="I1")
    columnar.add_current_source_array(
        [nodes[-1]], ["0"], [ac_unit(source_ac)], names=["I1"]
    )

    gains = [draw(_GAINS) for _ in range(3)]
    scalar.add_vcvs(nodes[2], "0", nodes[0], nodes[1], gains[0], name="E1")
    columnar.add_vcvs_array(
        [nodes[2]], ["0"], [nodes[0]], [nodes[1]], [gains[0]], names=["E1"]
    )
    scalar.add_vccs(nodes[1], "0", nodes[2], "0", gains[1], name="G1")
    columnar.add_vccs_array(
        [nodes[1]], ["0"], [nodes[2]], ["0"], [gains[1]], names=["G1"]
    )
    scalar.add_cccs(nodes[2], "0", "V1", gains[2], name="F1")
    columnar.add_cccs_array(
        [nodes[2]], ["0"], ["V1"], [gains[2]], names=["F1"]
    )
    return scalar, columnar


def _dense(matrix):
    return np.asarray(matrix.todense())


@settings(max_examples=25, deadline=None)
@given(paired_circuits())
def test_columnar_assembly_bit_identical(pair):
    """G, C, and every RHS flavor match the object path exactly."""
    scalar, columnar = pair
    a = build_mna(scalar)
    b = build_mna(columnar)
    assert a.size == b.size
    assert np.array_equal(_dense(a.G), _dense(b.G))
    assert np.array_equal(_dense(a.C), _dense(b.C))
    assert np.array_equal(a.rhs_dc(), b.rhs_dc())
    assert np.array_equal(a.rhs_ac(), b.rhs_ac())
    times = np.linspace(0.0, 50e-12, 7)
    assert np.array_equal(
        a.rhs_transient_batch(times), b.rhs_transient_batch(times)
    )
    for t in times:
        assert np.array_equal(a.rhs_transient(float(t)), b.rhs_transient(float(t)))


@settings(max_examples=25, deadline=None)
@given(paired_circuits())
def test_columnar_iteration_matches_object(pair):
    """Store iteration materializes the same element records, in order."""
    scalar, columnar = pair
    for left, right in zip(scalar, columnar):
        assert left == right
    assert len(scalar) == len(columnar)
    for element in scalar:
        assert columnar.element(element.name) == element
        assert columnar.kind_of(element.name) is type(element)


def test_positional_mutual_matches_name_form():
    """`store=`/`positions=` couplings assemble exactly like named ones."""

    def base(circuit):
        circuit.add_voltage_source("a", "0", dc(1.0), name="V1")
        circuit.add_resistor("a", "b", 10.0, name="Rab")
        circuit.add_resistor("c", "0", 20.0, name="Rc0")
        circuit.add_resistor("d", "0", 30.0, name="Rd0")
        return circuit.add_inductor_array(
            ["b", "b", "c"],
            ["c", "d", "d"],
            [1e-9, 2e-9, 3e-9],
            names=["L0", "L1", "L2"],
        )

    named = Circuit("named")
    base(named)
    named.add_mutual_array(
        ["L0", "L0", "L1"],
        ["L1", "L2", "L2"],
        [0.2e-9, 0.3e-9, 0.4e-9],
        names=["K0", "K1", "K2"],
    )

    positional = Circuit("positional")
    store = base(positional)
    positional.add_mutual_array(
        None,
        None,
        [0.2e-9, 0.3e-9, 0.4e-9],
        names=["K0", "K1", "K2"],
        store=store,
        positions=([0, 0, 1], [1, 2, 2]),
    )

    a = build_mna(named)
    b = build_mna(positional)
    assert np.array_equal(_dense(a.G), _dense(b.G))
    assert np.array_equal(_dense(a.C), _dense(b.C))
    # Lazy name resolution yields identical materialized records.
    assert [e for e in named] == [e for e in positional]
    assert positional.element("K1").inductor2 == "L2"


def _sim_circuit(vs_stim=None, is_stim=None):
    circuit = Circuit("multi-rhs")
    circuit.add_voltage_source(
        "in", "0", vs_stim or step(1.0, rise_time=10e-12), name="Vs"
    )
    circuit.add_resistor("in", "mid", 50.0, name="R1")
    circuit.add_capacitor("mid", "0", 1e-12, name="C1")
    circuit.add_inductor("mid", "out", 1e-9, name="L1")
    circuit.add_resistor("out", "0", 75.0, name="R2")
    circuit.add_current_source("out", "0", is_stim or ac_unit(0.5), name="Is")
    return circuit


def test_transient_multi_equals_looped_single():
    circuit = _sim_circuit()
    scenarios = [
        {},
        {"Vs": step(2.0, rise_time=20e-12)},
        {"Vs": dc(0.5), "Is": dc(1e-3)},
    ]
    batched = transient_analysis_multi(
        circuit, 100e-12, 1e-12, scenarios, probe_nodes=["mid", "out"],
        probe_branches=["L1"],
    )
    assert len(batched) == len(scenarios)
    for overrides, result in zip(scenarios, batched):
        rebuilt = _sim_circuit(
            vs_stim=overrides.get("Vs"), is_stim=overrides.get("Is")
        )
        single = transient_analysis(
            rebuilt, 100e-12, 1e-12, probe_nodes=["mid", "out"],
            probe_branches=["L1"],
        )
        for node in ("mid", "out"):
            assert np.array_equal(
                result.voltage(node).v, single.voltage(node).v
            )
        assert np.array_equal(result.current("L1").v, single.current("L1").v)


def test_ac_multi_equals_looped_single():
    circuit = _sim_circuit()
    freqs = np.logspace(6, 10, 13)
    scenarios = [{}, {"Vs": 2.0 + 0.0j}, {"Vs": 0.0j, "Is": 1.0 + 1.0j}]
    batched = ac_analysis_multi(
        circuit, freqs, scenarios, probe_nodes=["mid", "out"]
    )
    assert len(batched) == len(scenarios)
    for overrides, result in zip(scenarios, batched):
        rebuilt = _sim_circuit(
            vs_stim=(
                Stimulus(ac=overrides["Vs"]) if "Vs" in overrides else None
            ),
            is_stim=(
                Stimulus(ac=overrides["Is"]) if "Is" in overrides else None
            ),
        )
        single = ac_analysis(rebuilt, freqs, probe_nodes=["mid", "out"])
        for node in ("mid", "out"):
            assert np.array_equal(
                result.node_voltages[node], single.node_voltages[node]
            )
