"""Unit tests for transient analysis: analytic responses, convergence."""

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.sources import dc, step
from repro.circuit.transient import transient_analysis


def rc_circuit(r=1e3, c=1e-12, v=1.0):
    circuit = Circuit()
    circuit.add_voltage_source("in", "0", dc(v), name="V1")
    circuit.add_resistor("in", "out", r)
    circuit.add_capacitor("out", "0", c)
    return circuit


class TestAnalyticResponses:
    def test_rc_step_response(self):
        tau = 1e-9
        result = transient_analysis(
            rc_circuit(), 5e-9, 1e-12, x0=np.zeros(3)
        )
        wave = result.voltage("out")
        expected = 1.0 - np.exp(-wave.t / tau)
        assert np.max(np.abs(wave.v - expected)) < 1e-6

    def test_rl_current_rise(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", dc(1.0), name="V1")
        circuit.add_resistor("in", "a", 1e3)
        circuit.add_inductor("a", "0", 1e-6, name="L1")
        result = transient_analysis(
            circuit, 5e-9, 1e-12, probe_branches=["L1"], x0=np.zeros(4)
        )
        current = result.current("L1")
        expected = 1e-3 * (1.0 - np.exp(-current.t / 1e-9))
        assert np.max(np.abs(current.v - expected)) < 1e-8

    def test_lc_oscillation_frequency(self):
        # Start the capacitor charged; count the oscillation period.
        circuit = Circuit()
        circuit.add_capacitor("a", "0", 1e-12)
        circuit.add_inductor("a", "0", 1e-9, name="L1")
        x0 = np.array([1.0, 0.0])  # v(a) = 1, i(L) = 0
        period = 2 * np.pi * np.sqrt(1e-9 * 1e-12)
        result = transient_analysis(circuit, 3 * period, period / 400, x0=x0)
        wave = result.voltage("a")
        expected = np.cos(2 * np.pi * wave.t / period)
        assert np.max(np.abs(wave.v - expected)) < 0.01

    def test_lc_energy_conserved_by_trapezoidal(self):
        circuit = Circuit()
        circuit.add_capacitor("a", "0", 1e-12)
        circuit.add_inductor("a", "0", 1e-9, name="L1")
        x0 = np.array([1.0, 0.0])
        period = 2 * np.pi * np.sqrt(1e-9 * 1e-12)
        result = transient_analysis(
            circuit, 10 * period, period / 200, x0=x0, probe_branches=["L1"]
        )
        v = result.voltage("a").v
        i = result.current("L1").v
        energy = 0.5 * 1e-12 * v**2 + 0.5 * 1e-9 * i**2
        assert np.ptp(energy) / energy[0] < 1e-6

    def test_backward_euler_damps_lc(self):
        circuit = Circuit()
        circuit.add_capacitor("a", "0", 1e-12)
        circuit.add_inductor("a", "0", 1e-9, name="L1")
        x0 = np.array([1.0, 0.0])
        period = 2 * np.pi * np.sqrt(1e-9 * 1e-12)
        result = transient_analysis(
            circuit, 10 * period, period / 200, x0=x0, method="backward_euler"
        )
        wave = result.voltage("a")
        assert np.max(np.abs(wave.v[-200:])) < 0.9  # visibly damped


class TestNumericalBehavior:
    def test_trapezoidal_second_order_convergence(self):
        tau = 1e-9

        def error(dt):
            result = transient_analysis(rc_circuit(), 4e-9, dt, x0=np.zeros(3))
            wave = result.voltage("out")
            return np.max(np.abs(wave.v - (1.0 - np.exp(-wave.t / tau))))

        e1, e2 = error(20e-12), error(10e-12)
        assert e1 / e2 == pytest.approx(4.0, rel=0.2)

    def test_backward_euler_first_order_convergence(self):
        tau = 1e-9

        def error(dt):
            result = transient_analysis(
                rc_circuit(), 4e-9, dt, method="backward_euler", x0=np.zeros(3)
            )
            wave = result.voltage("out")
            return np.max(np.abs(wave.v - (1.0 - np.exp(-wave.t / tau))))

        e1, e2 = error(20e-12), error(10e-12)
        assert e1 / e2 == pytest.approx(2.0, rel=0.2)

    def test_starts_from_dc_by_default(self):
        # Sources at their t=0 values: a settled divider stays settled.
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", dc(2.0), name="V1")
        circuit.add_resistor("in", "m", 1e3)
        circuit.add_resistor("m", "0", 1e3)
        circuit.add_capacitor("m", "0", 1e-12)
        result = transient_analysis(circuit, 1e-9, 1e-12)
        wave = result.voltage("m")
        assert np.allclose(wave.v, 1.0, atol=1e-9)

    def test_ramped_step_follows_source(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", step(1.0, rise_time=10e-12), name="V1")
        circuit.add_resistor("in", "0", 1e3)
        result = transient_analysis(circuit, 50e-12, 1e-12)
        wave = result.voltage("in")
        assert wave.v[0] == pytest.approx(0.0, abs=1e-12)
        assert wave.v[-1] == pytest.approx(1.0)


class TestValidation:
    def test_bad_method(self):
        with pytest.raises(ValueError):
            transient_analysis(rc_circuit(), 1e-9, 1e-12, method="euler")

    def test_bad_times(self):
        with pytest.raises(ValueError):
            transient_analysis(rc_circuit(), 0.0, 1e-12)
        with pytest.raises(ValueError):
            transient_analysis(rc_circuit(), 1e-9, 0.0)
        with pytest.raises(ValueError):
            transient_analysis(rc_circuit(), 1e-13, 1e-12)

    def test_wrong_x0_size(self):
        with pytest.raises(ValueError):
            transient_analysis(rc_circuit(), 1e-9, 1e-12, x0=np.zeros(99))

    def test_unprobed_node_raises(self):
        result = transient_analysis(rc_circuit(), 1e-9, 1e-12, probe_nodes=["out"])
        with pytest.raises(KeyError):
            result.voltage("in")
