"""Unit tests for waveform containers."""

import numpy as np
import pytest

from repro.circuit.waveform import ACResult, TransientResult, Waveform


class TestWaveform:
    def test_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 1.0]), np.array([1.0]))

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0]), np.array([1.0]))

    def test_requires_monotonic_time(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 0.0]), np.array([1.0, 2.0]))

    def test_interpolation(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert w.at(np.array([0.5]))[0] == pytest.approx(1.0)

    def test_resampled_like(self):
        coarse = Waveform(np.array([0.0, 2.0]), np.array([0.0, 2.0]))
        fine = Waveform(np.linspace(0, 2, 5), np.zeros(5))
        resampled = coarse.resampled_like(fine)
        assert np.allclose(resampled.v, fine.t)

    def test_peak_uses_absolute_value(self):
        w = Waveform(np.array([0.0, 1.0, 2.0]), np.array([0.1, -0.5, 0.2]))
        assert w.peak == pytest.approx(0.5)

    def test_len(self):
        assert len(Waveform(np.array([0.0, 1.0]), np.array([0.0, 0.0]))) == 2


class TestTransientResult:
    def test_voltage_lookup(self):
        result = TransientResult(
            times=np.array([0.0, 1.0]),
            node_voltages={"a": np.array([1.0, 2.0])},
        )
        assert result.voltage("a").v[-1] == 2.0

    def test_ground_is_zero(self):
        result = TransientResult(times=np.array([0.0, 1.0]))
        assert np.all(result.voltage("0").v == 0.0)

    def test_missing_probe_raises(self):
        result = TransientResult(times=np.array([0.0, 1.0]))
        with pytest.raises(KeyError):
            result.voltage("nope")
        with pytest.raises(KeyError):
            result.current("nope")


class TestACResult:
    def test_magnitude(self):
        result = ACResult(
            frequencies=np.array([1.0, 10.0]),
            node_voltages={"a": np.array([3 + 4j, 1 + 0j])},
        )
        assert result.magnitude("a").v[0] == pytest.approx(5.0)

    def test_magnitude_db_floor(self):
        result = ACResult(
            frequencies=np.array([1.0, 2.0]),
            node_voltages={"a": np.array([0.0, 1.0])},
        )
        db = result.magnitude_db("a")
        assert np.isfinite(db.v).all()

    def test_ground_zero(self):
        result = ACResult(frequencies=np.array([1.0, 2.0]))
        assert np.all(result.voltage("0") == 0.0)
