"""Unit tests for the adaptive-timestep transient engine."""

import numpy as np
import pytest

from repro.circuit.adaptive import adaptive_transient_analysis
from repro.circuit.netlist import Circuit
from repro.circuit.sources import dc, step
from repro.circuit.transient import transient_analysis


def rc_circuit(r=1e3, c=1e-12, v=1.0):
    circuit = Circuit()
    circuit.add_voltage_source("in", "0", dc(v), name="V1")
    circuit.add_resistor("in", "out", r)
    circuit.add_capacitor("out", "0", c)
    return circuit


def stepped_rc():
    circuit = Circuit()
    circuit.add_voltage_source("in", "0", step(1.0, rise_time=10e-12), name="V1")
    circuit.add_resistor("in", "out", 1e3)
    circuit.add_capacitor("out", "0", 1e-12)
    return circuit


class TestAccuracy:
    def test_matches_analytic_rc(self):
        result, stats = adaptive_transient_analysis(
            rc_circuit(), 5e-9, dt_max=0.5e-9, rel_tol=1e-6, x0=np.zeros(3)
        )
        wave = result.voltage("out")
        expected = 1.0 - np.exp(-wave.t / 1e-9)
        assert np.max(np.abs(wave.v - expected)) < 1e-5
        assert stats.accepted == len(wave) - 1

    def test_matches_fixed_step(self):
        circuit_a, circuit_b = stepped_rc(), stepped_rc()
        fixed = transient_analysis(circuit_a, 3e-9, 1e-12)
        adaptive, _ = adaptive_transient_analysis(
            circuit_b, 3e-9, dt_max=0.2e-9, rel_tol=1e-6
        )
        fixed_wave = fixed.voltage("out")
        adaptive_wave = adaptive.voltage("out")
        resampled = adaptive_wave.at(fixed_wave.t)
        # Bound includes the linear-interpolation error of the coarser
        # adaptive grid against the 1 ps uniform one during the ramp.
        assert np.max(np.abs(resampled - fixed_wave.v)) < 5e-4

    def test_tightening_tolerance_reduces_error(self):
        def max_error(rel_tol):
            result, _ = adaptive_transient_analysis(
                rc_circuit(), 5e-9, dt_max=1e-9, rel_tol=rel_tol, x0=np.zeros(3)
            )
            wave = result.voltage("out")
            return np.max(np.abs(wave.v - (1.0 - np.exp(-wave.t / 1e-9))))

        assert max_error(1e-7) < max_error(1e-3)


class TestStepControl:
    def test_refines_at_the_step_edge(self):
        _, stats = adaptive_transient_analysis(
            stepped_rc(), 3e-9, dt_max=0.5e-9, rel_tol=1e-5
        )
        # The 10 ps ramp forces small steps; the flat tail grows them.
        assert stats.min_dt_used < 0.5e-9 / 8
        assert stats.max_dt_used > 8 * stats.min_dt_used

    def test_fewer_samples_than_uniform_fine_grid(self):
        result, _ = adaptive_transient_analysis(
            stepped_rc(), 3e-9, dt_max=0.5e-9, rel_tol=1e-4
        )
        uniform_fine = 3e-9 / 1e-12
        assert len(result.times) < uniform_fine / 10

    def test_times_strictly_increasing_to_t_stop(self):
        result, _ = adaptive_transient_analysis(stepped_rc(), 2e-9, dt_max=0.3e-9)
        assert np.all(np.diff(result.times) > 0)
        assert result.times[-1] == pytest.approx(2e-9, rel=1e-9)

    def test_stats_accounting(self):
        result, stats = adaptive_transient_analysis(
            stepped_rc(), 1e-9, dt_max=0.2e-9
        )
        assert stats.accepted == len(result.times) - 1
        assert stats.rejected >= 0


class TestValidation:
    def test_bad_times(self):
        with pytest.raises(ValueError):
            adaptive_transient_analysis(rc_circuit(), 0.0, 1e-12)
        with pytest.raises(ValueError):
            adaptive_transient_analysis(rc_circuit(), 1e-9, -1e-12)
        with pytest.raises(ValueError):
            adaptive_transient_analysis(rc_circuit(), 1e-9, 1e-12, dt_min=1e-11)

    def test_wrong_x0(self):
        with pytest.raises(ValueError):
            adaptive_transient_analysis(rc_circuit(), 1e-9, 1e-12, x0=np.zeros(2))
