"""Unit tests for source stimuli."""

import cmath

import pytest

from repro.circuit.sources import Stimulus, ac_unit, dc, pulse, step


class TestDc:
    def test_constant_everywhere(self):
        s = dc(2.5)
        assert s.at(0.0) == 2.5
        assert s.at(1e-9) == 2.5
        assert s.dc == 2.5

    def test_quiet_in_ac(self):
        assert dc(5.0).ac == 0.0


class TestAcUnit:
    def test_magnitude_and_phase(self):
        s = ac_unit(2.0, 90.0)
        assert abs(s.ac) == pytest.approx(2.0)
        assert cmath.phase(s.ac) == pytest.approx(cmath.pi / 2)

    def test_quiet_in_transient(self):
        s = ac_unit()
        assert s.at(0.0) == 0.0
        assert s.at(1e-9) == 0.0


class TestStep:
    def test_paper_step_profile(self):
        s = step(1.0, rise_time=10e-12)
        assert s.at(0.0) == 0.0
        assert s.at(5e-12) == pytest.approx(0.5)
        assert s.at(10e-12) == pytest.approx(1.0)
        assert s.at(1e-9) == 1.0

    def test_delay_shifts_ramp(self):
        s = step(1.0, rise_time=10e-12, delay=20e-12)
        assert s.at(20e-12) == 0.0
        assert s.at(25e-12) == pytest.approx(0.5)

    def test_falling_step(self):
        s = step(0.0, rise_time=10e-12, v_initial=1.0)
        assert s.at(0.0) == 1.0
        assert s.at(10e-12) == pytest.approx(0.0)
        assert s.ac == pytest.approx(-1.0)

    def test_rejects_zero_rise(self):
        with pytest.raises(ValueError):
            step(1.0, rise_time=0.0)

    def test_ac_view_scales_with_swing(self):
        assert step(3.0, rise_time=1e-12).ac == pytest.approx(3.0)


class TestPulse:
    def test_profile(self):
        s = pulse(0.0, 1.0, delay=0.0, rise_time=10e-12, fall_time=10e-12, width=100e-12)
        assert s.at(0.0) == 0.0
        assert s.at(5e-12) == pytest.approx(0.5)
        assert s.at(50e-12) == 1.0
        assert s.at(115e-12) == pytest.approx(0.5)
        assert s.at(200e-12) == 0.0

    def test_periodic_repeats(self):
        s = pulse(0.0, 1.0, rise_time=10e-12, fall_time=10e-12, width=80e-12, period=200e-12)
        assert s.at(250e-12) == pytest.approx(s.at(50e-12))

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            pulse(rise_time=0.0)

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            pulse(width=-1e-12)


class TestStimulus:
    def test_default_holds_dc(self):
        assert Stimulus(dc=0.7).at(5.0) == 0.7

    def test_repr_mentions_label(self):
        assert "PWL" in repr(step(1.0, rise_time=1e-12))
