"""Unit tests for the SPICE netlist writer."""

import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.sources import dc, step
from repro.circuit.spice_writer import netlist_size_bytes, write_spice


def full_zoo() -> Circuit:
    c = Circuit("zoo")
    c.add_voltage_source("in", "0", step(1.0, rise_time=10e-12), name="V1")
    c.add_resistor("in", "a", 50.0, name="R1")
    c.add_capacitor("a", "0", 1e-12, name="C1")
    c.add_inductor("a", "b", 1e-9, name="L1")
    c.add_inductor("b", "0", 4e-9, name="L2")
    c.add_mutual("L1", "L2", 1e-9, name="K1")
    c.add_current_source("0", "b", dc(1e-3), name="I1")
    c.add_vcvs("c", "0", "a", "0", 2.0, name="E1")
    c.add_vccs("c", "0", "b", "0", 0.1, name="G1")
    c.add_cccs("0", "c", "V1", 1.5, name="F1")
    c.add_ccvs("d", "0", "V1", 10.0, name="H1")
    c.add_resistor("c", "0", 1.0, name="R2")
    c.add_resistor("d", "0", 1.0, name="R3")
    return c


class TestWriter:
    def test_title_and_end(self):
        text = write_spice(full_zoo())
        assert text.startswith("* zoo\n")
        assert text.rstrip().endswith(".end")

    def test_every_element_emitted(self):
        text = write_spice(full_zoo())
        for name in ("V1", "R1", "C1", "L1", "L2", "K1", "I1", "E1", "G1", "F1", "H1"):
            assert any(line.split()[0] == name for line in text.splitlines()[1:-1])

    def test_mutual_emitted_as_coefficient(self):
        text = write_spice(full_zoo())
        k_line = next(l for l in text.splitlines() if l.startswith("K1"))
        coeff = float(k_line.split()[-1])
        assert coeff == pytest.approx(1e-9 / (1e-9 * 4e-9) ** 0.5, rel=1e-4)

    def test_coefficient_clamped(self):
        c = Circuit()
        c.add_inductor("a", "0", 1e-9, name="L1")
        c.add_inductor("b", "0", 1e-9, name="L2")
        c.add_mutual("L1", "L2", 1.0000001e-9, name="K1")
        text = write_spice(c)
        coeff = float(next(l for l in text.splitlines() if l.startswith("K1")).split()[-1])
        assert abs(coeff) < 1.0

    def test_source_labels_used(self):
        text = write_spice(full_zoo())
        assert "PWL(" in text

    def test_size_metric_positive_and_consistent(self):
        c = full_zoo()
        assert netlist_size_bytes(c) == len(write_spice(c).encode("ascii"))

    def test_bigger_circuit_bigger_netlist(self):
        small = Circuit()
        small.add_resistor("a", "0", 1.0)
        assert netlist_size_bytes(full_zoo()) > netlist_size_bytes(small)
