"""SweepSolver structure reuse, alignment, and probe-guard behavior."""

import numpy as np
import pytest
from scipy.sparse import csc_matrix

from repro.circuit.ac import SweepSolver, _expand_onto, ac_analysis
from repro.circuit.netlist import Circuit
from repro.circuit.sources import ac_unit, step
from repro.circuit.transient import transient_analysis
from repro.pipeline.profiling import collect


def _rc_ladder(sections=6):
    circuit = Circuit("ladder")
    circuit.add_voltage_source("n0", "0", ac_unit(1.0), name="V1")
    for k in range(1, sections + 1):
        circuit.add_resistor(f"n{k - 1}", f"n{k}", 100.0, name=f"R{k}")
        circuit.add_capacitor(f"n{k}", "0", 1e-12, name=f"C{k}")
    return circuit


class TestExpandOnto:
    def test_round_trip(self):
        rng = np.random.default_rng(7)
        dense = np.where(rng.random((12, 12)) < 0.25, rng.random((12, 12)), 0.0)
        mat = csc_matrix(dense).astype(complex)
        other = csc_matrix(np.diag(rng.random(12))).astype(complex)
        union = (mat + other).tocsc()
        union.sort_indices()
        data = _expand_onto(mat, union)
        assert data is not None
        rebuilt = csc_matrix(
            (data, union.indices, union.indptr), shape=union.shape
        )
        assert np.array_equal(rebuilt.toarray(), mat.toarray())

    def test_pattern_mismatch_returns_none(self):
        mat = csc_matrix(np.array([[0.0, 2.0], [0.0, 0.0]])).astype(complex)
        union = csc_matrix(np.eye(2)).astype(complex)
        union.sort_indices()
        assert _expand_onto(mat, union) is None


class TestSweepSolver:
    def test_ordering_computed_once(self):
        from repro.circuit.mna import build_mna

        system = build_mna(_rc_ladder())
        solver = SweepSolver(system.G, system.C)
        assert solver._aligned
        rhs = system.rhs_ac()
        with collect() as profile:
            for freq in np.logspace(3, 9, 25):
                solver.solve(2.0 * np.pi * freq, rhs)
        assert profile.counters["lu_orderings"] == 1

    def test_reused_structure_matches_dense(self):
        from repro.circuit.mna import build_mna

        system = build_mna(_rc_ladder())
        solver = SweepSolver(system.G, system.C)
        rhs = system.rhs_ac()
        g = np.asarray(system.G.todense(), dtype=complex)
        c = np.asarray(system.C.todense(), dtype=complex)
        for freq in (1e3, 1e6, 1e9):  # first solve orders, rest reuse
            omega = 2.0 * np.pi * freq
            x = solver.solve(omega, rhs)
            expected = np.linalg.solve(g + 1j * omega * c, rhs)
            assert np.allclose(x, expected, rtol=1e-10, atol=1e-14)

    def test_matrix_rhs_matches_columnwise(self):
        from repro.circuit.mna import build_mna

        system = build_mna(_rc_ladder())
        solver = SweepSolver(system.G, system.C)
        rng = np.random.default_rng(11)
        rhs = rng.random((system.size, 4)) + 1j * rng.random((system.size, 4))
        solver.solve(2.0 * np.pi * 1e3, rhs[:, 0])  # pin the ordering
        for freq in (1e4, 1e8):
            omega = 2.0 * np.pi * freq
            together = solver.solve(omega, rhs)
            for k in range(rhs.shape[1]):
                # Same factorization, columnwise back-substitution.
                assert np.array_equal(
                    together[:, k], solver.solve(omega, rhs[:, k])
                )

    def test_unaligned_fallback_still_solves(self):
        # G and C cancel exactly, so the union pattern loses the entry
        # and alignment must be refused -- per-point factorization path.
        g = csc_matrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        c = csc_matrix(np.array([[-1.0, 0.0], [0.0, 0.5]]))
        solver = SweepSolver(g, c)
        assert not solver._aligned
        x = solver.solve(1.0, np.array([1.0, 1.0], dtype=complex))
        expected = np.linalg.solve(
            g.toarray() + 1j * c.toarray(), np.array([1.0, 1.0])
        )
        assert np.allclose(x, expected)


class TestLargeSystemProbeGuard:
    """The > 3000-unknown default-probe guard of transient analysis."""

    @pytest.fixture(scope="class")
    def big_circuit(self):
        count = 3200
        nodes = [f"n{k}" for k in range(count + 1)]
        circuit = Circuit("big")
        circuit.add_voltage_source(
            nodes[0], "0", step(1.0, rise_time=10e-12), name="V1"
        )
        circuit.add_resistor_array(
            nodes[:-1], nodes[1:], [1.0] * count
        )
        circuit.add_resistor(nodes[-1], "0", 1.0, name="Rterm")
        return circuit

    def test_probe_branches_alone_is_enough(self, big_circuit):
        result = transient_analysis(
            big_circuit, 2e-12, 1e-12, probe_branches=["V1"]
        )
        assert result.current("V1").v.shape == (3,)
        with pytest.raises(KeyError):
            result.voltage("n1")  # node probes defaulted to none

    def test_unbounded_probes_error_names_the_option(self, big_circuit):
        with pytest.raises(ValueError, match="probe_nodes"):
            transient_analysis(big_circuit, 2e-12, 1e-12)
