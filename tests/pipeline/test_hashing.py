"""Stable content hashing: determinism, sensitivity, canonicalization."""

import numpy as np
import pytest

from repro.experiments.runner import ModelSpec
from repro.geometry.bus import aligned_bus
from repro.pipeline.hashing import stable_hash, system_fingerprint


class TestStableHash:
    def test_deterministic_across_calls(self):
        parts = ("tag", 1, 2.5, np.arange(6, dtype=float))
        assert stable_hash(*parts) == stable_hash(*parts)

    def test_hex_sha256_shape(self):
        key = stable_hash("x")
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_value_sensitivity(self):
        assert stable_hash(1.0) != stable_hash(1.0 + 1e-15)
        assert stable_hash("a") != stable_hash("b")
        assert stable_hash(0) != stable_hash(0.0)  # int vs float tag
        assert stable_hash(False) != stable_hash(0)

    def test_structure_sensitivity(self):
        assert stable_hash(["a", "b"]) != stable_hash(["ab"])
        assert stable_hash([1, [2, 3]]) != stable_hash([1, 2, 3])

    def test_dict_order_independent(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_array_dtype_and_shape_matter(self):
        data = np.arange(6)
        assert stable_hash(data.astype(np.float64)) != stable_hash(
            data.astype(np.int64)
        )
        assert stable_hash(data.reshape(2, 3)) != stable_hash(data.reshape(3, 2))

    def test_noncontiguous_array_equals_contiguous_copy(self):
        base = np.arange(24, dtype=float).reshape(4, 6)
        view = base[:, ::2]
        assert stable_hash(view) == stable_hash(np.ascontiguousarray(view))

    def test_dataclass_fields_hashed(self):
        assert stable_hash(ModelSpec("gw", window=4)) != stable_hash(
            ModelSpec("gw", window=8)
        )
        assert stable_hash(ModelSpec("gw", window=4)) == stable_hash(
            ModelSpec("gw", window=4)
        )

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash(object())


class TestSystemFingerprint:
    def test_identical_geometry_same_fingerprint(self):
        assert system_fingerprint(aligned_bus(5)) == system_fingerprint(
            aligned_bus(5)
        )

    def test_geometry_changes_fingerprint(self):
        base = system_fingerprint(aligned_bus(5))
        assert system_fingerprint(aligned_bus(6)) != base
        assert system_fingerprint(aligned_bus(5, spacing=3e-6)) != base
        assert system_fingerprint(aligned_bus(5, segments_per_line=2)) != base
