"""Stage timing and counter collection semantics."""

import json
import tracemalloc

import numpy as np

from repro.pipeline.profiling import (
    CORE_STAGES,
    StageProfile,
    active_profile,
    add_counter,
    collect,
    max_rss_bytes,
    stage,
)


class TestStageCollection:
    def test_noop_without_collector(self):
        assert active_profile() is None
        with stage("extract"):
            pass
        add_counter("events")
        assert active_profile() is None

    def test_collect_records_time_and_calls(self):
        with collect() as profile:
            with stage("extract"):
                pass
            with stage("extract"):
                pass
            with stage("solve"):
                pass
        assert profile.calls["extract"] == 2
        assert profile.calls["solve"] == 1
        assert profile.seconds["extract"] >= 0.0
        assert active_profile() is None

    def test_counters(self):
        with collect() as profile:
            add_counter("cache_hits")
            add_counter("cache_hits", 3)
        assert profile.counters == {"cache_hits": 4}

    def test_nested_collect_shadows_outer(self):
        with collect() as outer:
            with stage("extract"):
                pass
            with collect() as inner:
                with stage("solve"):
                    pass
        assert "solve" not in outer.calls
        assert inner.calls == {"solve": 1}

    def test_collect_into_accumulates(self):
        total = StageProfile()
        for _ in range(3):
            with collect(into=total):
                with stage("stamp"):
                    pass
        assert total.calls["stamp"] == 3

    def test_exception_still_records(self):
        with collect() as profile:
            try:
                with stage("solve"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        assert profile.calls["solve"] == 1


class TestStageProfile:
    def test_merge_adds_everything(self):
        a = StageProfile(
            seconds={"extract": 1.0}, calls={"extract": 1}, counters={"hits": 2}
        )
        b = StageProfile(
            seconds={"extract": 0.5, "solve": 2.0},
            calls={"extract": 2, "solve": 1},
            counters={"hits": 1},
        )
        a.merge(b)
        assert a.seconds == {"extract": 1.5, "solve": 2.0}
        assert a.calls == {"extract": 3, "solve": 1}
        assert a.counters == {"hits": 3}

    def test_to_dict_and_json_round_trip(self):
        profile = StageProfile(
            seconds={"solve": 2.0, "extract": 1.0},
            calls={"solve": 4, "extract": 1},
            counters={"ac_points": 7},
        )
        payload = json.loads(profile.to_json())
        assert list(payload["stages"]) == ["solve", "extract"]  # sorted by time
        assert payload["stages"]["solve"] == {"seconds": 2.0, "calls": 4}
        assert payload["counters"] == {"ac_points": 7}

    def test_to_table_lists_stages_and_counters(self):
        profile = StageProfile(
            seconds={"stamp": 0.25}, calls={"stamp": 3}, counters={"hits": 9}
        )
        table = profile.to_table()
        assert "stamp" in table and "hits" in table

    def test_core_stage_names(self):
        assert CORE_STAGES == ("extract", "invert", "sparsify", "stamp", "solve")


class TestMemoryTracking:
    def test_max_rss_is_positive_and_monotone(self):
        before = max_rss_bytes()
        assert before > 0
        ballast = np.ones(1 << 21)  # 16 MB
        assert max_rss_bytes() >= before
        del ballast

    def test_stage_records_rss_high_water_mark(self):
        with collect() as profile:
            with stage("extract"):
                pass
        assert profile.max_rss_bytes["extract"] > 0
        # No tracemalloc -> no alloc column.
        assert "extract" not in profile.peak_alloc_bytes

    def test_stage_records_peak_alloc_when_tracing(self):
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        try:
            with collect() as profile:
                with stage("solve"):
                    ballast = np.ones(1 << 21)  # 16 MB
                    del ballast
                with stage("stamp"):
                    pass
        finally:
            if not was_tracing:
                tracemalloc.stop()
        assert profile.peak_alloc_bytes["solve"] >= (1 << 24)
        # Peaks are attributed to the innermost stage: the cheap stage
        # must not inherit the expensive one's high-water mark.
        assert profile.peak_alloc_bytes["stamp"] < (1 << 24)

    def test_memory_merges_as_maximum(self):
        a = StageProfile(
            seconds={"extract": 1.0},
            calls={"extract": 1},
            max_rss_bytes={"extract": 100},
            peak_alloc_bytes={"extract": 10},
        )
        b = StageProfile(
            seconds={"extract": 1.0},
            calls={"extract": 1},
            max_rss_bytes={"extract": 50, "solve": 70},
            peak_alloc_bytes={"extract": 40},
        )
        a.merge(b)
        assert a.max_rss_bytes == {"extract": 100, "solve": 70}
        assert a.peak_alloc_bytes == {"extract": 40}
        assert a.seconds["extract"] == 2.0

    def test_serialization_carries_memory_columns(self):
        profile = StageProfile(
            seconds={"solve": 2.0},
            calls={"solve": 1},
            max_rss_bytes={"solve": 3 << 30},
            peak_alloc_bytes={"solve": 5 << 20},
        )
        payload = json.loads(profile.to_json())
        assert payload["stages"]["solve"]["max_rss_bytes"] == 3 << 30
        assert payload["stages"]["solve"]["peak_alloc_bytes"] == 5 << 20
        table = profile.to_table()
        assert "max_rss" in table and "3.00G" in table and "5.0M" in table


class TestMergeWorkers:
    def test_aggregate_and_worker_max(self):
        from repro.pipeline.profiling import StageProfile

        owner = StageProfile()
        workers = []
        for seconds in (0.5, 2.0, 1.0):
            worker = StageProfile()
            worker.add_time("hier_build_workers", seconds)
            worker.add_counter("blocks", 10)
            workers.append(worker)
        owner.merge_workers(workers)
        assert owner.seconds["hier_build_workers"] == 3.5
        assert owner.calls["hier_build_workers"] == 3
        assert owner.counters["blocks"] == 30
        # The straggler's total, not the pool total: the wall-clock
        # number for a parallel stage.
        assert owner.worker_max_seconds["hier_build_workers"] == 2.0

    def test_none_entries_are_skipped(self):
        from repro.pipeline.profiling import StageProfile

        owner = StageProfile()
        worker = StageProfile()
        worker.add_time("stage", 1.0)
        owner.merge_workers([None, worker, None])
        assert owner.worker_max_seconds["stage"] == 1.0

    def test_merge_carries_worker_max_forward(self):
        from repro.pipeline.profiling import StageProfile

        first = StageProfile()
        worker = StageProfile()
        worker.add_time("stage", 2.5)
        first.merge_workers([worker])
        total = StageProfile()
        total.merge(first)
        assert total.worker_max_seconds["stage"] == 2.5

    def test_round_trip_preserves_worker_max(self):
        from repro.pipeline.profiling import StageProfile

        profile = StageProfile()
        worker = StageProfile()
        worker.add_time("stage", 1.5)
        profile.merge_workers([worker])
        doc = profile.to_dict()
        assert doc["stages"]["stage"]["worker_max_seconds"] == 1.5
