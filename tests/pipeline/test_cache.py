"""Content-addressed cache: storage semantics, keys, cached extraction."""

import numpy as np
import pytest

from repro.extraction.capacitance import CapacitanceModel
from repro.extraction.constants import COPPER_RESISTIVITY
from repro.geometry.bus import aligned_bus
from repro.pipeline.cache import (
    CACHE_DIR_ENV,
    PipelineCache,
    cached_extract,
    default_cache_dir,
    parasitics_fingerprint,
    parasitics_key,
    resolve_cache,
)


@pytest.fixture()
def cache(tmp_path) -> PipelineCache:
    return PipelineCache(tmp_path / "store")


class TestStore:
    def test_round_trip(self, cache):
        value = {"a": np.arange(5.0), "b": "text"}
        cache.put("kindA", "ab" + "0" * 62, value)
        loaded = cache.get("kindA", "ab" + "0" * 62)
        assert loaded["b"] == "text"
        np.testing.assert_array_equal(loaded["a"], value["a"])
        assert cache.stats.writes == 1 and cache.stats.hits == 1

    def test_miss_returns_none(self, cache):
        assert cache.get("kindA", "ff" + "0" * 62) is None
        assert cache.stats.misses == 1

    def test_fetch_builds_once(self, cache):
        calls = []

        def builder():
            calls.append(1)
            return 42

        key = "cd" + "0" * 62
        assert cache.fetch("kindA", key, builder) == 42
        assert cache.fetch("kindA", key, builder) == 42
        assert len(calls) == 1

    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"garbage\n", b"", b"\x80\x05"],
        ids=["opcode-error", "value-error", "empty", "truncated"],
    )
    def test_corrupt_entry_is_a_miss(self, cache, garbage):
        key = "ee" + "0" * 62
        cache.put("kindA", key, [1, 2, 3])
        path = cache._path("kindA", key)
        path.write_bytes(garbage)
        assert cache.get("kindA", key) is None
        assert not path.exists(), "corrupted entry must be evicted"
        assert cache.stats.evictions == 1

    def test_evicted_entry_is_rewritten_by_fetch(self, cache):
        key = "ee" + "0" * 62
        cache.put("kindA", key, [1, 2, 3])
        path = cache._path("kindA", key)
        path.write_bytes(b"garbage")
        assert cache.fetch("kindA", key, lambda: [4, 5, 6]) == [4, 5, 6]
        assert cache.get("kindA", key) == [4, 5, 6]
        assert cache.stats.evictions == 1 and cache.stats.writes == 2

    def test_plain_miss_does_not_evict(self, cache):
        assert cache.get("kindA", "ff" + "0" * 62) is None
        assert cache.stats.evictions == 0 and cache.stats.misses == 1

    def test_entries_and_clear(self, cache):
        cache.put("parasitics", "aa" + "0" * 62, 1)
        cache.put("parasitics", "bb" + "0" * 62, 2)
        cache.put("models", "cc" + "0" * 62, 3)
        assert cache.entries() == {"models": 1, "parasitics": 2}
        assert cache.size_bytes() > 0
        assert cache.clear("parasitics") == 2
        assert cache.entries() == {"models": 1, "parasitics": 0}
        assert cache.clear() == 1

    def test_resolve_cache(self, tmp_path):
        assert resolve_cache(tmp_path, enabled=False) is None
        resolved = resolve_cache(tmp_path, enabled=True)
        assert resolved is not None and resolved.root == tmp_path

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env-root"))
        assert default_cache_dir() == tmp_path / "env-root"


class TestKeys:
    def test_key_covers_every_option(self):
        system = aligned_bus(5)
        base = parasitics_key(
            system, COPPER_RESISTIVITY, 0.0, CapacitanceModel(), True
        )
        variants = [
            parasitics_key(system, 2e-8, 0.0, CapacitanceModel(), True),
            parasitics_key(system, COPPER_RESISTIVITY, 1e9, CapacitanceModel(), True),
            parasitics_key(system, COPPER_RESISTIVITY, 0.0, CapacitanceModel(), False),
            parasitics_key(
                aligned_bus(6), COPPER_RESISTIVITY, 0.0, CapacitanceModel(), True
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_parasitics_fingerprint_tracks_content(self, bus5):
        fingerprint = parasitics_fingerprint(bus5)
        assert fingerprint == parasitics_fingerprint(bus5)
        perturbed = cached_extract(aligned_bus(5, spacing=3e-6))
        assert parasitics_fingerprint(perturbed) != fingerprint


class TestCachedExtract:
    def test_without_cache_is_plain_extract(self, bus5):
        rebuilt = cached_extract(aligned_bus(5))
        np.testing.assert_array_equal(rebuilt.inductance, bus5.inductance)

    def test_warm_hit_is_bit_exact(self, cache):
        system = aligned_bus(7)
        cold = cached_extract(system, cache=cache)
        warm = cached_extract(aligned_bus(7), cache=cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert warm.inductance.tobytes() == cold.inductance.tobytes()
        assert warm.resistance.tobytes() == cold.resistance.tobytes()
        assert (
            warm.ground_capacitance.tobytes() == cold.ground_capacitance.tobytes()
        )
        assert warm.coupling_capacitance == cold.coupling_capacitance
        for axis, (indices, block) in cold.inductance_blocks.items():
            warm_indices, warm_block = warm.inductance_blocks[axis]
            assert list(warm_indices) == list(indices)
            assert warm_block.tobytes() == block.tobytes()

    def test_option_change_misses(self, cache):
        cached_extract(aligned_bus(5), cache=cache)
        cached_extract(aligned_bus(5), cache=cache, frequency=1e9)
        assert cache.stats.misses == 2
