"""``parallel_map``: ordering, chunking, and the serial threshold."""

import os

import pytest

from repro.pipeline.parallel import (
    DEFAULT_SERIAL_THRESHOLD,
    default_jobs,
    parallel_map,
)


def _identify(item):
    """Module-level (hence picklable) probe: value plus worker pid."""
    return item, os.getpid()


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(abs, [-3, 1, -2], jobs=1) == [3, 1, 2]

    def test_pool_preserves_order(self):
        items = list(range(-20, 0))
        assert parallel_map(abs, items, jobs=2) == [abs(i) for i in items]

    def test_chunksize_does_not_change_results(self):
        items = list(range(-20, 0))
        chunked = parallel_map(abs, items, jobs=2, chunksize=7)
        assert chunked == parallel_map(abs, items, jobs=1)

    def test_default_threshold_serializes_single_items(self):
        assert DEFAULT_SERIAL_THRESHOLD == 2
        (_, pid), = parallel_map(_identify, [41], jobs=4)
        assert pid == os.getpid()

    def test_zero_threshold_forces_the_pool(self):
        # Silently serializing small maps hides pool-only bugs; the
        # shared-memory assembly passes 0 so its tests exercise real
        # workers even on one-chunk plans.
        (_, pid), = parallel_map(_identify, [41], jobs=2, serial_threshold=0)
        assert pid != os.getpid()

    def test_high_threshold_keeps_small_maps_serial(self):
        results = parallel_map(
            _identify, [1, 2, 3], jobs=4, serial_threshold=10
        )
        assert [value for value, _ in results] == [1, 2, 3]
        assert all(pid == os.getpid() for _, pid in results)

    def test_empty_items(self):
        assert parallel_map(abs, [], jobs=4) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            parallel_map(abs, [1], jobs=0)
        with pytest.raises(ValueError, match="chunksize"):
            parallel_map(abs, [1], chunksize=0)
        assert default_jobs() >= 1
