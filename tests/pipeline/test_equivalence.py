"""Equivalence guarantees of the cached / parallel pipeline.

The two properties the acceptance criteria pin down:

- warm-cache results are *bitwise* identical to cold builds (pickle
  round-trips of float64 arrays are exact);
- a parallel run returns results identical to the serial run of the
  same job list, in the same order.
"""

import numpy as np
import pytest

from repro.experiments.jobs import (
    SimJob,
    execute_job,
    geometry_spec,
    run_jobs,
    step_spec,
    stimulus_spec,
)
from repro.experiments.runner import (
    build_model,
    full_spec,
    gw_spec,
    model_key,
    nt_spec,
    peec_spec,
)
from repro.pipeline.cache import PipelineCache
from repro.pipeline.profiling import collect


@pytest.fixture()
def cache(tmp_path) -> PipelineCache:
    return PipelineCache(tmp_path / "store")


def small_jobs():
    """Four independent jobs: two sizes x two model families."""
    return [
        SimJob(
            geometry=geometry_spec("aligned_bus", bits=bits),
            model=model,
            stimulus=step_spec(),
            t_stop=50e-12,
            dt=1e-12,
            observe_bits=(1,),
        )
        for bits in (5, 8)
        for model in (peec_spec(), gw_spec(4))
    ]


def assert_results_bitwise_equal(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert a.label == b.label
        assert a.element_count == b.element_count
        assert a.netlist_bytes == b.netlist_bytes
        assert set(a.waveforms) == set(b.waveforms)
        for key in a.waveforms:
            assert a.waveforms[key].t.tobytes() == b.waveforms[key].t.tobytes()
            assert a.waveforms[key].v.tobytes() == b.waveforms[key].v.tobytes()


class TestWarmCacheEquivalence:
    def test_cached_model_build_is_bit_exact(self, cache, bus5):
        for spec in (full_spec(), gw_spec(2), nt_spec(1e-3), peec_spec()):
            cold = build_model(spec, bus5, cache=cache)
            warm = build_model(spec, bus5, cache=cache)
            assert warm.label == cold.label
            assert warm.element_count() == cold.element_count()
            assert warm.netlist_bytes() == cold.netlist_bytes()
            assert warm.sparse_factor == cold.sparse_factor

    def test_cached_fetches_are_independent_objects(self, cache, bus5):
        build_model(full_spec(), bus5, cache=cache)
        first = build_model(full_spec(), bus5, cache=cache)
        second = build_model(full_spec(), bus5, cache=cache)
        assert first is not second
        assert first.circuit is not second.circuit

    def test_model_key_separates_specs_and_parasitics(self, bus5, bus16):
        assert model_key(full_spec(), bus5) != model_key(gw_spec(2), bus5)
        assert model_key(full_spec(), bus5) != model_key(full_spec(), bus16)
        assert model_key(gw_spec(2), bus5) == model_key(gw_spec(2), bus5)

    def test_warm_jobs_match_cold_jobs_bitwise(self, cache):
        jobs = small_jobs()
        cold = run_jobs(jobs, parallel=1, cache=cache)
        assert cache.stats.misses > 0
        warm = run_jobs(jobs, parallel=1, cache=cache)
        assert_results_bitwise_equal(cold, warm)

    def test_no_cache_matches_cached_bitwise(self, cache):
        jobs = small_jobs()
        uncached = run_jobs(jobs, parallel=1, cache=None)
        cached = run_jobs(jobs, parallel=1, cache=cache)
        assert_results_bitwise_equal(uncached, cached)


class TestParallelEquivalence:
    def test_parallel_matches_serial_bitwise(self):
        jobs = small_jobs()
        serial = run_jobs(jobs, parallel=1)
        parallel = run_jobs(jobs, parallel=2)
        assert_results_bitwise_equal(serial, parallel)

    def test_parallel_preserves_job_order(self):
        jobs = small_jobs()
        results = run_jobs(jobs, parallel=2)
        assert [r.job for r in results] == jobs

    def test_parallel_with_shared_cache(self, cache):
        jobs = small_jobs()
        serial = run_jobs(jobs, parallel=1, cache=cache)
        parallel = run_jobs(jobs, parallel=2, cache=cache)
        assert_results_bitwise_equal(serial, parallel)

    def test_worker_profiles_merge_into_collector(self):
        jobs = small_jobs()
        with collect() as profile:
            run_jobs(jobs, parallel=2)
        assert profile.calls.get("solve", 0) == len(jobs)
        assert profile.calls.get("extract", 0) == len(jobs)


class TestJobSpecs:
    def test_bus_ac_needs_frequencies(self):
        with pytest.raises(ValueError):
            SimJob(
                geometry=geometry_spec("aligned_bus", bits=5),
                model=full_spec(),
                analysis="bus_ac",
            )

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError):
            SimJob(
                geometry=geometry_spec("aligned_bus", bits=5),
                model=full_spec(),
                analysis="nope",
            )

    def test_unknown_geometry_rejected(self):
        with pytest.raises(ValueError):
            geometry_spec("torus", bits=5)

    def test_unknown_stimulus_rejected(self):
        with pytest.raises(ValueError):
            stimulus_spec("chirp")

    def test_execute_job_ac_analysis(self):
        job = SimJob(
            geometry=geometry_spec("aligned_bus", bits=5),
            model=full_spec(),
            analysis="bus_ac",
            stimulus=stimulus_spec("ac_unit"),
            frequencies=(1e6, 1e8, 1e9),
            observe_bits=(1,),
        )
        result = execute_job(job)
        assert set(result.waveforms) == {"far1"}
        assert result.waveforms["far1"].t.size == 3
        assert result.profile.counters.get("ac_points") == 3

    def test_execute_job_two_port(self):
        job = SimJob(
            geometry=geometry_spec("spiral", turns=2, total_segments=24),
            model=nt_spec(1e-3),
            analysis="two_port_transient",
            t_stop=50e-12,
            dt=1e-12,
        )
        result = execute_job(job)
        assert set(result.waveforms) == {"out"}
        assert np.all(np.isfinite(result.waveforms["out"].v))
