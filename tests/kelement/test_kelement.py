"""Tests for the K-element (susceptance) baseline.

The paper's Section II-B claims: (1) the K model follows from the same
inverse-of-L first principles as VPEC; (2) K needs a simulator extension
(it is not SPICE compatible); (3) its *nodal* realization loses DC
information while the MNA realizations (K and VPEC alike) keep it.
"""

import numpy as np
import pytest

from repro.circuit.dc import dc_operating_point
from repro.circuit.sources import dc, step
from repro.circuit.spice_writer import write_spice
from repro.circuit.transient import transient_analysis
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.kelement import build_kelement, nodal_inductive_admittance
from repro.peec import attach_bus_testbench, build_peec
from repro.vpec.full import full_vpec_networks
from repro.vpec.truncation import truncate_numerical


class TestEquivalence:
    def test_matches_peec_transient(self):
        p_peec, p_k = extract(aligned_bus(5)), extract(aligned_bus(5))
        peec = build_peec(p_peec)
        kel = build_kelement(p_k)
        stim = step(1.0, rise_time=10e-12)
        attach_bus_testbench(peec.skeleton, stim)
        attach_bus_testbench(kel.skeleton, stim)
        v_p = peec.skeleton.ports[1].far
        v_k = kel.skeleton.ports[1].far
        w_p = transient_analysis(
            peec.circuit, 200e-12, 1e-12, probe_nodes=[v_p]
        ).voltage(v_p)
        w_k = transient_analysis(
            kel.circuit, 200e-12, 1e-12, probe_nodes=[v_k]
        ).voltage(v_k)
        assert np.max(np.abs(w_p.v - w_k.v)) < 1e-9

    def test_matches_vpec_via_same_networks(self):
        """K and tVPEC built from the same truncated matrices agree."""
        from repro.vpec.builder import build_vpec

        p_k, p_v = extract(aligned_bus(8)), extract(aligned_bus(8))
        networks_k = [
            truncate_numerical(n, 0.02) for n in full_vpec_networks(p_k)
        ]
        networks_v = [
            truncate_numerical(n, 0.02) for n in full_vpec_networks(p_v)
        ]
        kel = build_kelement(p_k, networks_k)
        vpec = build_vpec(p_v, networks_v)
        stim = step(1.0, rise_time=10e-12)
        attach_bus_testbench(kel.skeleton, stim)
        attach_bus_testbench(vpec.skeleton, stim)
        v_k = kel.skeleton.ports[1].far
        v_v = vpec.skeleton.ports[1].far
        w_k = transient_analysis(
            kel.circuit, 200e-12, 1e-12, probe_nodes=[v_k]
        ).voltage(v_k)
        w_v = transient_analysis(
            vpec.circuit, 200e-12, 1e-12, probe_nodes=[v_v]
        ).voltage(v_v)
        assert np.max(np.abs(w_k.v - w_v.v)) < 1e-9

    def test_dc_operating_point_correct(self):
        parasitics = extract(aligned_bus(3))
        kel = build_kelement(parasitics)
        kel.circuit.add_voltage_source(
            kel.skeleton.ports[0].near, "0", dc(1.0), name="Vd"
        )
        kel.circuit.add_resistor(kel.skeleton.ports[0].far, "0", 17.0, name="Rl")
        sol = dc_operating_point(kel.circuit)
        assert sol.voltage(kel.skeleton.ports[0].far) == pytest.approx(
            0.5, rel=1e-6
        )


class TestSpiceIncompatibility:
    def test_writer_refuses_k_element(self):
        kel = build_kelement(extract(aligned_bus(3)))
        with pytest.raises(TypeError, match="not SPICE compatible"):
            write_spice(kel.circuit)


class TestNodalPathology:
    def test_gamma_diverges_at_low_frequency(self):
        parasitics = extract(aligned_bus(4))
        high = nodal_inductive_admittance(parasitics, 1j * 2 * np.pi * 1e9)
        low = nodal_inductive_admittance(parasitics, 1j * 2 * np.pi * 1e-3)
        assert np.linalg.norm(low) > 1e10 * np.linalg.norm(high)

    def test_gamma_undefined_at_dc(self):
        parasitics = extract(aligned_bus(4))
        with pytest.raises(ZeroDivisionError):
            nodal_inductive_admittance(parasitics, 0.0)

    def test_gamma_indefinite_structure(self):
        """A K A^T is rank deficient: the nodal form cannot pin DC."""
        parasitics = extract(aligned_bus(4))
        gamma = nodal_inductive_admittance(parasitics, 1.0)
        eigenvalues = np.linalg.eigvalsh((gamma + gamma.T) / 2)
        assert np.min(np.abs(eigenvalues)) < 1e-9 * np.max(np.abs(eigenvalues))


class TestValidation:
    def test_shape_mismatch_rejected(self):
        from repro.circuit.elements import SusceptanceSet

        with pytest.raises(ValueError):
            SusceptanceSet("K", (("a", "b"),), np.eye(2))
