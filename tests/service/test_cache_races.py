"""Concurrent access to the content-addressed cache.

The service hands one :class:`~repro.pipeline.cache.PipelineCache`
root to every worker, so the store's atomic-write (temp file + rename)
and corrupted-entry-eviction semantics now run under real concurrency.
These tests hammer a single store from many threads -- same-key
fetch storms, mixed put/get traffic, and readers racing a writer that
keeps corrupting entries (the PR-2 eviction path) -- asserting the
store never raises and never returns garbage.
"""

import threading

import numpy as np
import pytest

from repro.pipeline.cache import PipelineCache

KEY = "ab" + "0" * 62


@pytest.fixture()
def cache(tmp_path) -> PipelineCache:
    return PipelineCache(tmp_path / "store")


def _run_threads(target, count: int) -> list:
    errors: list = []

    def wrapped():
        try:
            target()
        except BaseException as error:  # noqa: BLE001 - collected for assert
            errors.append(error)

    threads = [threading.Thread(target=wrapped) for _ in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestConcurrentAccess:
    def test_same_key_fetch_storm(self, cache):
        value = {"payload": np.arange(256.0)}
        results = []
        lock = threading.Lock()

        def worker():
            for _ in range(25):
                loaded = cache.fetch("kind", KEY, lambda: value)
                with lock:
                    results.append(loaded)

        errors = _run_threads(worker, 8)
        assert errors == []
        assert len(results) == 200
        for loaded in results:
            np.testing.assert_array_equal(loaded["payload"], value["payload"])

    def test_interleaved_put_get_many_keys(self, cache):
        keys = [f"{i:02x}" + "0" * 62 for i in range(16)]

        def worker():
            for _ in range(10):
                for index, key in enumerate(keys):
                    cache.put("kind", key, {"i": index})
                    loaded = cache.get("kind", key)
                    # A concurrent put of the same value may be mid-
                    # replace, but a successful read is never garbage.
                    if loaded is not None:
                        assert loaded == {"i": index}

        errors = _run_threads(worker, 6)
        assert errors == []

    def test_readers_race_corruption_and_eviction(self, cache):
        """Readers vs. a corruptor: only valid values or misses, no raise."""
        value = [1, 2, 3]
        cache.put("kind", KEY, value)
        path = cache._path("kind", KEY)
        # Hit the corruption path deterministically before the race:
        # on a loaded single-core runner the corruptor thread may not
        # get scheduled at all while the readers drain their loops.
        path.write_bytes(b"garbage bytes")
        assert cache.get("kind", KEY) is None
        cache.put("kind", KEY, value)
        stop = threading.Event()
        observed = []
        lock = threading.Lock()

        def corruptor():
            while not stop.is_set():
                path.write_bytes(b"garbage bytes")
                cache.put("kind", KEY, value)

        def reader():
            for _ in range(100):
                loaded = cache.get("kind", KEY)
                with lock:
                    observed.append(loaded)

        corruptor_thread = threading.Thread(target=corruptor)
        corruptor_thread.start()
        try:
            errors = _run_threads(reader, 6)
        finally:
            stop.set()
            corruptor_thread.join()
        assert errors == []
        # Scheduling on a loaded runner can favor either side, so the
        # race itself only pins the invariant: a read is the real
        # value or a miss, never garbage and never an exception.
        assert all(entry in (None, value) for entry in observed)
        assert cache.stats.evictions >= 1, "corruption path must be hit"
        # Once the corruptor is quiet, a healthy read must succeed.
        cache.put("kind", KEY, value)
        assert cache.get("kind", KEY) == value

    def test_eviction_of_corrupt_entry_then_refetch(self, cache):
        cache.put("kind", KEY, {"a": 1})
        cache._path("kind", KEY).write_bytes(b"\x80\x05 truncated")
        assert cache.get("kind", KEY) is None
        assert cache.stats.evictions == 1
        assert cache.fetch("kind", KEY, lambda: {"a": 2}) == {"a": 2}
        assert cache.get("kind", KEY) == {"a": 2}
