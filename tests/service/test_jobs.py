"""Job model: request serialization, content keys, record lifecycle."""

import pytest

from repro.experiments.runner import ModelSpec
from repro.noise.engine import NoiseConfig
from repro.noise.receiver import ReceiverModel
from repro.noise.screening import KappaEnvelope
from repro.noise.sweep import SweepGrid
from repro.service.jobs import (
    CANCELLED,
    DONE,
    GeometrySpec,
    JobCancelledError,
    JobRecord,
    JobRequest,
    SimParams,
    sweep_grid_from_dict,
    sweep_grid_to_dict,
)


class TestGeometrySpec:
    def test_build_matches_generators(self):
        assert GeometrySpec("bus", 5).build().num_wires == 5
        assert GeometrySpec("nonaligned_bus", 4).build().num_wires == 4
        assert GeometrySpec("spiral", 3).build().num_wires == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            GeometrySpec("torus", 4)
        with pytest.raises(ValueError):
            GeometrySpec("bus", 0)

    def test_dict_round_trip(self):
        spec = GeometrySpec("nonaligned_bus", 8, segments=2)
        assert GeometrySpec.from_dict(spec.to_dict()) == spec


class TestJobRequest:
    def test_dict_round_trip(self):
        request = JobRequest(
            op="noise",
            geometry=GeometrySpec("bus", 8),
            model=ModelSpec("nw", threshold=0.05),
            sim=SimParams(aggressor=2),
            noise=NoiseConfig(threshold_fraction=0.1),
            verify=True,
        )
        rebuilt = JobRequest.from_dict(request.to_dict())
        assert rebuilt == request
        assert rebuilt.key() == request.key()

    def test_defaults_survive_partial_payload(self):
        rebuilt = JobRequest.from_dict(
            {"op": "extract", "geometry": {"kind": "bus", "size": 4}}
        )
        assert rebuilt == JobRequest(
            op="extract", geometry=GeometrySpec("bus", 4)
        )

    def test_key_is_content_addressed(self):
        base = JobRequest(op="noise", geometry=GeometrySpec("bus", 8))
        same = JobRequest.from_dict(base.to_dict())
        assert same.key() == base.key()
        assert (
            JobRequest(op="extract", geometry=GeometrySpec("bus", 8)).key()
            != base.key()
        )
        assert (
            JobRequest(op="noise", geometry=GeometrySpec("bus", 9)).key()
            != base.key()
        )

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            JobRequest(op="explode", geometry=GeometrySpec("bus", 4))

    def test_op_specific_section_requirements(self):
        grid = SweepGrid(widths=(4,))
        with pytest.raises(ValueError, match="require geometry"):
            JobRequest(op="noise")
        with pytest.raises(ValueError, match="sweep grid"):
            JobRequest(op="sweep")
        with pytest.raises(ValueError, match="sweep grid"):
            JobRequest(
                op="noise", geometry=GeometrySpec("bus", 4), sweep=grid
            )
        with pytest.raises(ValueError, match="geometry"):
            JobRequest(
                op="sweep", geometry=GeometrySpec("bus", 4), sweep=grid
            )


class TestSweepRequests:
    def _grid(self) -> SweepGrid:
        return SweepGrid(
            topologies=("bus", "nonaligned_bus"),
            widths=(4, 8),
            drivers=(50.0, 150.0),
            densities=(1.0, 2.5),
            segments=(1, 3),
            base=NoiseConfig(
                threshold_fraction=0.12,
                receiver=ReceiverModel.restoring_inverter(),
                envelope=KappaEnvelope(
                    edge=(0.5, 0.4),
                    center=(0.3, 0.2),
                    edge_reach=2,
                    edge_boost=0.7,
                    family="bus",
                ),
            ),
            model=ModelSpec("nw", threshold=1e-4),
        )

    def test_grid_round_trips_through_json(self):
        import json

        grid = self._grid()
        payload = json.loads(json.dumps(sweep_grid_to_dict(grid)))
        assert sweep_grid_from_dict(payload) == grid

    def test_request_round_trips_with_nested_sections(self):
        import json

        request = JobRequest(op="sweep", sweep=self._grid())
        payload = json.loads(json.dumps(request.to_dict()))
        assert "geometry" not in payload
        rebuilt = JobRequest.from_dict(payload)
        assert rebuilt == request
        assert rebuilt.key() == request.key()
        # The nested frozen dataclasses came back as real objects.
        assert isinstance(rebuilt.sweep.base.receiver, ReceiverModel)
        assert isinstance(rebuilt.sweep.base.envelope, KappaEnvelope)

    def test_key_distinguishes_grids(self):
        base = JobRequest(op="sweep", sweep=self._grid())
        import dataclasses

        denser = dataclasses.replace(
            self._grid(), densities=(1.0, 2.5, 4.0)
        )
        assert (
            JobRequest(op="sweep", sweep=denser).key() != base.key()
        )


class TestJobRecord:
    def _record(self) -> JobRecord:
        return JobRecord(
            id="j1",
            request=JobRequest(op="extract", geometry=GeometrySpec("bus", 4)),
        )

    def test_cancel_before_terminal(self):
        record = self._record()
        assert record.request_cancel() is True
        with pytest.raises(JobCancelledError):
            record.check_cancelled()

    def test_cancel_after_terminal_is_refused(self):
        record = self._record()
        record.status = DONE
        assert record.request_cancel() is False
        record.status = CANCELLED
        assert record.request_cancel() is False

    def test_seconds_needs_both_timestamps(self):
        record = self._record()
        assert record.seconds is None
        record.started = 10.0
        record.finished = 12.5
        assert record.seconds == pytest.approx(2.5)

    def test_to_dict_summary(self):
        payload = self._record().to_dict()
        assert payload["op"] == "extract"
        assert payload["status"] == "queued"
        assert "result" not in payload
