"""Shared-memory columnar blocks: round-trips, zero-copy, lifecycle."""

import threading
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.extraction.capacitance import CapacitanceModel
from repro.extraction.constants import COPPER_RESISTIVITY
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.pipeline.cache import parasitics_key
from repro.service.shm import (
    SharedColumnBlock,
    SharedParasiticsStore,
    attach_parasitics,
    detach_all,
    parasitics_columns,
    parasitics_from_block,
)


@pytest.fixture()
def parasitics():
    return extract(aligned_bus(5))


class TestSharedColumnBlock:
    def test_round_trip(self):
        arrays = {
            "a": np.arange(12.0).reshape(3, 4),
            "b": np.array([1, 2, 3], dtype=np.int64),
            "empty": np.zeros((0,), dtype=np.float64),
        }
        with SharedColumnBlock.create({"tag": "x"}, arrays) as block:
            try:
                assert block.meta == {"tag": "x"}
                np.testing.assert_array_equal(block.array("a"), arrays["a"])
                np.testing.assert_array_equal(block.array("b"), arrays["b"])
                assert block.array("empty").size == 0
                with pytest.raises(KeyError):
                    block.array("missing")
            finally:
                block.unlink()

    def test_views_are_zero_copy_and_read_only(self):
        arrays = {"a": np.arange(64.0)}
        block = SharedColumnBlock.create(None, arrays)
        view = block.array("a")
        segment_bytes = np.frombuffer(block._segment.buf, dtype=np.uint8)
        try:
            assert np.shares_memory(view, segment_bytes)
            with pytest.raises(ValueError):
                view[0] = 1.0
        finally:
            # The raw-byte view pins the mapping; drop it before close.
            del view, segment_bytes
            block.close()
            block.unlink()

    def test_attach_sees_same_data(self):
        arrays = {"a": np.linspace(0.0, 1.0, 17)}
        owner = SharedColumnBlock.create({"n": 17}, arrays)
        try:
            attached = SharedColumnBlock.attach(owner.name)
            assert attached.meta == {"n": 17}
            np.testing.assert_array_equal(attached.array("a"), arrays["a"])
            attached.close()
        finally:
            owner.close()
            owner.unlink()


class TestParasiticsColumns:
    def test_round_trip_is_bit_exact(self, parasitics):
        meta, arrays = parasitics_columns(parasitics)
        block = SharedColumnBlock.create(meta, arrays)
        try:
            rebuilt = parasitics_from_block(block)
            assert rebuilt.system == parasitics.system
            assert (
                rebuilt.inductance.tobytes()
                == parasitics.inductance.tobytes()
            )
            assert (
                rebuilt.resistance.tobytes()
                == parasitics.resistance.tobytes()
            )
            assert (
                rebuilt.ground_capacitance.tobytes()
                == parasitics.ground_capacitance.tobytes()
            )
            assert (
                rebuilt.coupling_capacitance
                == parasitics.coupling_capacitance
            )
            for axis, (indices, matrix) in parasitics.inductance_blocks.items():
                rebuilt_indices, rebuilt_matrix = rebuilt.inductance_blocks[
                    axis
                ]
                assert list(rebuilt_indices) == list(indices)
                assert rebuilt_matrix.tobytes() == matrix.tobytes()
        finally:
            block.close()
            block.unlink()


class TestSharedParasiticsStore:
    def test_put_get_and_stats(self, parasitics):
        store = SharedParasiticsStore()
        try:
            assert store.segment_name("k1") is None
            assert store.stats.misses == 1
            name = store.put("k1", parasitics)
            assert store.segment_name("k1") == name
            assert store.stats.hits == 1
            assert store.put("k1", parasitics) == name, "put is idempotent"
            assert store.stats.blocks == 1
            assert len(store) == 1
            rebuilt = store.get("k1")
            assert (
                rebuilt.inductance.tobytes()
                == parasitics.inductance.tobytes()
            )
        finally:
            store.close()

    def test_close_unlinks(self, parasitics):
        store = SharedParasiticsStore()
        name = store.put("k1", parasitics)
        store.close()
        with pytest.raises(FileNotFoundError):
            SharedColumnBlock.attach(name)
        with pytest.raises(RuntimeError):
            store.put("k2", parasitics)

    def test_worker_attachment_cache(self, parasitics):
        store = SharedParasiticsStore()
        try:
            name = store.put("k1", parasitics)
            first = attach_parasitics(name)
            second = attach_parasitics(name)
            # Same cached mapping backs both reconstructions.
            assert np.shares_memory(first.inductance, second.inductance)
            assert (
                first.inductance.tobytes()
                == parasitics.inductance.tobytes()
            )
        finally:
            detach_all()
            store.close()

    def test_concurrent_first_attach_maps_once(self, parasitics):
        # Thread-mode regression: a racy first touch of the attachment
        # cache used to map the segment once per racer, and the losing
        # mappings were garbage-collected (unmapped) under their
        # callers' live views -- a segfault, not an exception.
        store = SharedParasiticsStore()
        results = []
        try:
            name = store.put("k1", parasitics)
            barrier = threading.Barrier(8)

            def racer():
                barrier.wait()
                results.append(attach_parasitics(name))

            threads = [threading.Thread(target=racer) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            reference = results[0].inductance
            for attached in results:
                # Every racer reads through the one cached mapping,
                # and every view stays readable after the race.
                assert np.shares_memory(attached.inductance, reference)
                assert np.isfinite(attached.inductance).all()
        finally:
            del reference, results
            detach_all()
            store.close()

    def test_close_with_live_views_defers(self):
        block = SharedColumnBlock.create(None, {"a": np.arange(8.0)})
        view = block.array("a")
        try:
            # Live views pin the mapping: close() must not unmap it.
            block.close()
            assert view.sum() == 28.0
        finally:
            del view
            block.close()
            block.unlink()


def _remote_sum(segment_name: str) -> float:
    parasitics = attach_parasitics(segment_name)
    try:
        return float(parasitics.inductance.sum())
    finally:
        detach_all()


class TestCrossProcess:
    def test_worker_process_attaches_zero_copy(self, parasitics):
        key = parasitics_key(
            parasitics.system, COPPER_RESISTIVITY, 0.0, CapacitanceModel(), True
        )
        store = SharedParasiticsStore()
        try:
            name = store.put(key, parasitics)
            with ProcessPoolExecutor(max_workers=1) as pool:
                remote = pool.submit(_remote_sum, name).result(timeout=60)
            assert remote == float(parasitics.inductance.sum())
        finally:
            store.close()


def _pool_writer(args):
    """Worker probe: attach a pool by name and write a slice in place."""
    from repro.service.shm import SharedArrayPool

    name, offset, values = args
    pool = SharedArrayPool.attach(name)
    try:
        view = pool.view(offset, len(values))
        view[:] = values
    finally:
        del view
        pool.close()
    return offset


class TestSharedArrayPool:
    def test_create_is_zero_filled_and_sized(self):
        from repro.service.shm import SharedArrayPool

        pool = SharedArrayPool.create(64)
        try:
            assert pool.capacity == 64
            data = pool.data
            assert data.shape == (64,)
            assert not data.any()
            assert pool.nbytes >= 64 * 8
        finally:
            del data
            pool.close()
            pool.unlink()

    def test_views_are_writable_and_shared(self):
        from repro.service.shm import SharedArrayPool

        pool = SharedArrayPool.create(16)
        try:
            pool.view(4, 3)[:] = [1.0, 2.0, 3.0]
            np.testing.assert_array_equal(
                pool.data[4:7], [1.0, 2.0, 3.0]
            )
            assert not pool.data[:4].any() and not pool.data[7:].any()
        finally:
            pool.close()
            pool.unlink()

    def test_out_of_range_views_rejected(self):
        from repro.service.shm import SharedArrayPool

        pool = SharedArrayPool.create(8)
        try:
            with pytest.raises(ValueError):
                pool.view(4, 5)
            with pytest.raises(ValueError):
                pool.view(-1, 2)
        finally:
            pool.close()
            pool.unlink()

    def test_worker_attach_writes_in_place(self):
        from repro.service.shm import SharedArrayPool

        pool = SharedArrayPool.create(12)
        try:
            tasks = [
                (pool.name, 0, [1.0, 2.0]),
                (pool.name, 6, [7.0, 8.0, 9.0]),
            ]
            with ProcessPoolExecutor(max_workers=2) as executor:
                assert sorted(executor.map(_pool_writer, tasks)) == [0, 6]
            np.testing.assert_array_equal(pool.data[0:2], [1.0, 2.0])
            np.testing.assert_array_equal(pool.data[6:9], [7.0, 8.0, 9.0])
            assert not pool.data[2:6].any()
        finally:
            pool.close()
            pool.unlink()

    def test_close_with_live_views_defers_instead_of_crashing(self):
        from repro.service import shm as shm_module
        from repro.service.shm import SharedArrayPool

        pool = SharedArrayPool.create(8)
        pool.view(0, 4)[:] = [1.0, 2.0, 3.0, 4.0]
        view = pool.view(0, 4)
        before = len(shm_module._DEFERRED_SEGMENTS)
        pool.unlink()
        pool.close()  # refused by the exported buffer -> deferred
        assert len(shm_module._DEFERRED_SEGMENTS) == before + 1
        # The deferred mapping stays readable under the live view.
        np.testing.assert_array_equal(view, [1.0, 2.0, 3.0, 4.0])
        del view
        shm_module._DEFERRED_SEGMENTS.pop().close()

    def test_double_close_is_idempotent(self):
        from repro.service.shm import SharedArrayPool

        pool = SharedArrayPool.create(4)
        pool.unlink()
        pool.close()
        pool.close()
