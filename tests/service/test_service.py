"""The analysis service: equivalence, memoization, cancellation, protocol."""

import asyncio
import threading
import time

import pytest

from repro.health.errors import PassivityViolationError
from repro.noise.engine import NoiseConfig
from repro.noise.sweep import SweepGrid, run_sweep, sweep_report_checksum
from repro.pipeline.cache import PipelineCache
from repro.service import workers
from repro.service.client import ServiceClient
from repro.service.jobs import GeometrySpec, JobRequest
from repro.service.server import (
    AnalysisService,
    ServiceConfig,
    ServiceServer,
)
from repro.service.workers import oneshot_result


def run(coroutine):
    return asyncio.run(coroutine)


def _config(**overrides) -> ServiceConfig:
    defaults = dict(jobs=1, job_timeout=120.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


EXTRACT = JobRequest(op="extract", geometry=GeometrySpec("bus", 5))
SIMULATE = JobRequest(op="simulate", geometry=GeometrySpec("bus", 5))
NOISE = JobRequest(op="noise", geometry=GeometrySpec("bus", 8))
ESCALATING = JobRequest(
    op="noise",
    geometry=GeometrySpec("bus", 8),
    noise=NoiseConfig(threshold_fraction=0.1),
)


class TestEquivalence:
    @pytest.mark.parametrize(
        "request_", [EXTRACT, SIMULATE, NOISE], ids=["extract", "sim", "noise"]
    )
    def test_matches_oneshot(self, request_):
        async def main():
            service = AnalysisService(_config())
            try:
                record = await service.submit(request_)
                return await service.wait(record.id)
            finally:
                await service.close()

        final = run(main())
        assert final.status == "done"
        assert final.checksum == oneshot_result(request_)["checksum"]

    def test_sharded_scan_matches_oneshot(self):
        async def main():
            service = AnalysisService(_config(shards=3))
            try:
                record = await service.submit(ESCALATING)
                return await service.wait(record.id)
            finally:
                await service.close()

        final = run(main())
        assert final.status == "done"
        assert final.result["num_escalated"] > 1, "workload must shard"
        assert final.checksum == oneshot_result(ESCALATING)["checksum"]

    def test_verify_scan_matches_oneshot(self):
        request = JobRequest(
            op="noise",
            geometry=GeometrySpec("bus", 8),
            noise=NoiseConfig(threshold_fraction=0.1),
            verify=True,
        )

        async def main():
            service = AnalysisService(_config())
            try:
                record = await service.submit(request)
                return await service.wait(record.id)
            finally:
                await service.close()

        final = run(main())
        assert final.status == "done"
        assert final.checksum == oneshot_result(request)["checksum"]


class TestMemoAndEvents:
    def test_repeat_request_is_memoized(self):
        async def main():
            service = AnalysisService(_config())
            try:
                first = await service.wait(
                    (await service.submit(NOISE)).id
                )
                second = await service.wait(
                    (await service.submit(NOISE)).id
                )
                return first, second, service.stats.memo_hits
            finally:
                await service.close()

        first, second, memo_hits = run(main())
        assert not first.memoized and second.memoized
        assert first.checksum == second.checksum
        assert memo_hits == 1

    def test_stream_event_order(self):
        async def main():
            service = AnalysisService(_config())
            try:
                record = await service.submit(ESCALATING)
                return [
                    event["event"]
                    async for event in service.stream(record.id)
                ]
            finally:
                await service.close()

        events = run(main())
        assert events[0] == "queued"
        assert events[1] == "running"
        assert events[-1] == "done"
        assert "progress" in events[2:-1]


class TestCancellationAndTimeouts:
    def test_cancel_queued_job(self, monkeypatch):
        release = threading.Event()
        real_screen = workers.screen_worker

        def slow_screen(*args):
            release.wait(10)
            return real_screen(*args)

        monkeypatch.setattr(
            "repro.service.workers.screen_worker", slow_screen
        )

        async def main():
            service = AnalysisService(_config(max_concurrency=1))
            try:
                blocker = await service.submit(NOISE)
                queued = await service.submit(ESCALATING)
                assert service.cancel(queued.id) is True
                release.set()
                return (
                    await service.wait(blocker.id),
                    await service.wait(queued.id),
                )
            finally:
                await service.close()

        blocker, queued = run(main())
        assert blocker.status == "done"
        assert queued.status == "cancelled"
        assert queued.started is None or queued.result is None

    def test_cancel_running_job_at_stage_boundary(self, monkeypatch):
        started = threading.Event()
        release = threading.Event()
        real_screen = workers.screen_worker

        def slow_screen(*args):
            started.set()
            release.wait(10)
            return real_screen(*args)

        monkeypatch.setattr(
            "repro.service.workers.screen_worker", slow_screen
        )

        async def main():
            service = AnalysisService(_config())
            try:
                record = await service.submit(NOISE)
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 10
                )
                assert service.cancel(record.id) is True
                release.set()
                return await service.wait(record.id)
            finally:
                await service.close()

        final = run(main())
        assert final.status == "cancelled"
        assert final.result is None

    def test_job_timeout(self, monkeypatch):
        def stuck_extract(*args):
            time.sleep(1.0)
            raise AssertionError("timeout should fire first")

        monkeypatch.setattr(
            "repro.service.workers.extract_worker", stuck_extract
        )

        async def main():
            service = AnalysisService(_config())
            try:
                record = await service.submit(EXTRACT, timeout=0.1)
                return await service.wait(record.id)
            finally:
                await service.close()

        final = run(main())
        assert final.status == "timeout"
        assert final.error["kind"] == "TimeoutError"

    def test_cancel_terminal_job_is_refused(self):
        async def main():
            service = AnalysisService(_config())
            try:
                record = await service.submit(EXTRACT)
                await service.wait(record.id)
                return service.cancel(record.id)
            finally:
                await service.close()

        assert run(main()) is False


SWEEP_GRID = SweepGrid(
    topologies=("bus",),
    widths=(8,),
    spacings=(1e-6, 2e-6),
    drivers=(50.0, 100.0),
    base=NoiseConfig(threshold_fraction=0.12),
)
SWEEP = JobRequest(op="sweep", sweep=SWEEP_GRID)


class TestSweepJobs:
    def test_matches_oneshot_and_cli_sweep(self, tmp_path):
        """Service payload == one-shot path == a direct run_sweep."""

        async def main():
            service = AnalysisService(
                _config(cache_dir=str(tmp_path / "svc"))
            )
            try:
                record = await service.submit(SWEEP)
                return await service.wait(record.id)
            finally:
                await service.close()

        final = run(main())
        assert final.status == "done"
        oneshot = oneshot_result(
            SWEEP, cache=PipelineCache(tmp_path / "oneshot")
        )
        assert final.checksum == oneshot["checksum"]
        direct = run_sweep(
            SWEEP_GRID, parallel=1, cache=PipelineCache(tmp_path / "cli")
        )
        assert final.checksum == sweep_report_checksum(direct)
        assert final.result["num_scenarios"] == SWEEP_GRID.num_scenarios
        labels = [s["label"] for s in final.result["scenarios"]]
        assert labels == [s.label for s in SWEEP_GRID.scenarios()]

    def test_progress_order_is_deterministic(self, tmp_path):
        async def main():
            service = AnalysisService(
                _config(cache_dir=str(tmp_path / "svc"))
            )
            try:
                record = await service.submit(SWEEP)
                return [
                    event
                    async for event in service.stream(record.id)
                    if event["event"] == "progress"
                ]
            finally:
                await service.close()

        progress = run(main())
        scenario_events = [
            e for e in progress if e["stage"] == "scenario"
        ]
        expected = [s.label for s in SWEEP_GRID.scenarios()]
        assert [e["label"] for e in scenario_events] == expected
        assert [e["index"] for e in scenario_events] == list(
            range(len(expected))
        )
        assert all(
            e["total"] == len(expected) for e in scenario_events
        )
        # Scenario screening strictly precedes group simulation.
        group_events = [
            e for e in progress if e["stage"] == "simulate_group"
        ]
        assert group_events
        first_group = progress.index(group_events[0])
        assert all(
            progress.index(e) < first_group for e in scenario_events
        )

    def test_cancel_at_scenario_boundary(self, monkeypatch, tmp_path):
        """A cancel lands between scenarios, never mid-report."""
        screened = threading.Event()
        release = threading.Event()
        real_screen = workers.sweep_screen_worker

        def slow_screen(*args):
            result = real_screen(*args)
            screened.set()
            release.wait(10)
            return result

        monkeypatch.setattr(
            "repro.service.workers.sweep_screen_worker", slow_screen
        )

        async def main():
            service = AnalysisService(
                _config(cache_dir=str(tmp_path / "svc"))
            )
            try:
                record = await service.submit(SWEEP)
                await asyncio.get_running_loop().run_in_executor(
                    None, screened.wait, 10
                )
                assert service.cancel(record.id) is True
                release.set()
                return await service.wait(record.id)
            finally:
                await service.close()

        final = run(main())
        assert final.status == "cancelled"
        assert final.result is None
        # The interrupted sweep left only content-addressed artifacts
        # behind; a fresh run through the same cache is still correct.
        resumed = run_sweep(
            SWEEP_GRID,
            parallel=1,
            cache=PipelineCache(tmp_path / "svc"),
        )
        cold = run_sweep(SWEEP_GRID, parallel=1, cache=None)
        assert sweep_report_checksum(resumed) == sweep_report_checksum(
            cold
        )

    def test_sweep_jobs_are_memoized_by_grid_content(self, tmp_path):
        async def main():
            service = AnalysisService(
                _config(cache_dir=str(tmp_path / "svc"))
            )
            try:
                first = await service.submit(SWEEP)
                await service.wait(first.id)
                second = await service.submit(
                    JobRequest(op="sweep", sweep=SWEEP_GRID)
                )
                return first, await service.wait(second.id)
            finally:
                await service.close()

        first, second = run(main())
        assert second.memoized is True
        assert second.checksum == first.checksum


class TestFailureTaxonomy:
    def test_health_error_kind_is_reported(self, monkeypatch):
        def sick_extract(*args):
            raise PassivityViolationError("negative effective resistance")

        monkeypatch.setattr(
            "repro.service.workers.extract_worker", sick_extract
        )

        async def main():
            service = AnalysisService(_config())
            try:
                record = await service.submit(EXTRACT)
                return await service.wait(record.id)
            finally:
                await service.close()

        final = run(main())
        assert final.status == "failed"
        assert final.error["kind"] == "PassivityViolationError"
        assert "resistance" in final.error["message"]

    def test_plain_exception_is_contained(self, monkeypatch):
        def broken_extract(*args):
            raise ValueError("boom")

        monkeypatch.setattr(
            "repro.service.workers.extract_worker", broken_extract
        )

        async def main():
            service = AnalysisService(_config())
            try:
                record = await service.submit(EXTRACT)
                final = await service.wait(record.id)
                stats = service.stats_dict()
                return final, stats
            finally:
                await service.close()

        final, stats = run(main())
        assert final.status == "failed"
        assert final.error["kind"] == "ValueError"
        assert stats["failed"] == 1


class TestTcpProtocol:
    def test_round_trip_with_streaming(self):
        async def main():
            service = AnalysisService(_config())
            server = ServiceServer(service, "127.0.0.1", 0)
            host, port = await server.start()
            events = []
            async with await ServiceClient.connect(host, port) as client:
                assert await client.ping()
                reply = await client.request(
                    {**NOISE.to_dict(), "stream": True},
                    on_event=events.append,
                )
                memo = await client.request(NOISE.to_dict())
                stats = await client.stats()
                assert await client.cancel("j999999") is False
                await client.shutdown()
            await server.serve_until_shutdown()
            return reply, memo, stats, events

        reply, memo, stats, events = run(main())
        assert reply["event"] == "done"
        assert reply["checksum"] == oneshot_result(NOISE)["checksum"]
        assert [e["event"] for e in events[:3]] == [
            "accepted",
            "queued",
            "running",
        ]
        assert memo["memoized"] is True
        assert stats["submitted"] == 2 and stats["memo_hits"] == 1

    def test_protocol_errors_are_replies_not_disconnects(self):
        async def main():
            service = AnalysisService(_config())
            server = ServiceServer(service, "127.0.0.1", 0)
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                import json

                bad = json.loads(await reader.readline())
                writer.write(
                    b'{"id": "x", "op": "noise", "geometry":'
                    b' {"kind": "torus", "size": 4}}\n'
                )
                await writer.drain()
                invalid = json.loads(await reader.readline())
                writer.write(b'{"id": "y", "op": "ping"}\n')
                await writer.drain()
                alive = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return bad, invalid, alive
            finally:
                await server.close()

        bad, invalid, alive = run(main())
        assert bad["event"] == "error"
        assert invalid["event"] == "error"
        assert alive["event"] == "pong", "connection survives bad input"
