"""Property tests (hypothesis) of the certified-fallback guarantee.

For *any* rank-deficient symmetric PSD ``L`` block, the resilient chain
must return a symmetric positive definite inverse -- and therefore a
symmetric PSD ``Ghat`` under the VPEC congruence ``D L^-1 D``.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.health import DEFAULT_POLICY, spd_inverse
from repro.health.faults import rank_deficient


@st.composite
def rank_deficient_l(draw):
    """A random symmetric PSD matrix with an exact nullspace."""
    n = draw(st.integers(min_value=2, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    drop = draw(st.integers(min_value=1, max_value=n - 1))
    scale = draw(st.floats(min_value=1e-9, max_value=1e9))
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    spd = a @ a.T + n * np.eye(n)
    return scale * rank_deficient(spd, drop=drop)


class TestRegularizedFallbackProperties:
    @given(rank_deficient_l())
    @settings(max_examples=60, deadline=None)
    def test_inverse_is_finite_symmetric_positive_definite(self, block):
        inverse = spd_inverse(block, policy=DEFAULT_POLICY)
        assert np.all(np.isfinite(inverse))
        scale = np.max(np.abs(inverse))
        assert np.max(np.abs(inverse - inverse.T)) <= 1e-9 * scale
        # PSD up to eigensolver resolution at the inverse's own scale:
        # a tiny-ridge Tikhonov repair yields eigenvalues spanning ~1e16,
        # where the small ones are only representable to ~eps * scale.
        eigenvalues = np.linalg.eigvalsh(inverse)
        assert eigenvalues[0] >= -1e-10 * max(eigenvalues[-1], 1.0)

    @given(rank_deficient_l(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_ghat_congruence_stays_symmetric_psd(self, block, seed):
        inverse = spd_inverse(block, policy=DEFAULT_POLICY)
        rng = np.random.default_rng(seed)
        d = np.diag(rng.uniform(0.1, 10.0, size=block.shape[0]))
        ghat = d @ inverse @ d
        ghat = (ghat + ghat.T) / 2.0
        eigenvalues = np.linalg.eigvalsh(ghat)
        assert np.all(np.isfinite(ghat))
        assert eigenvalues[0] >= -1e-12 * max(eigenvalues[-1], 1.0)
