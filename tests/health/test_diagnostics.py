"""Health reports: condition estimates, SPD checks, passivity certificates."""

import json

import numpy as np
import pytest

from repro.health.diagnostics import (
    HealthReport,
    assert_passive,
    certify_passivity,
    check_spd,
    condition_estimate,
    reports_to_json,
)
from repro.health.errors import PassivityViolationError


class TestConditionEstimate:
    def test_identity_is_one(self):
        assert condition_estimate(np.eye(4)) == pytest.approx(1.0)

    def test_symmetric_uses_eigenvalue_ratio(self):
        assert condition_estimate(np.diag([1.0, 1e6])) == pytest.approx(1e6)

    def test_nonsymmetric_uses_singular_values(self):
        matrix = np.array([[1.0, 100.0], [0.0, 1.0]])
        estimate = condition_estimate(matrix)
        assert estimate == pytest.approx(np.linalg.cond(matrix), rel=1e-6)

    def test_singular_is_inf(self):
        assert condition_estimate(np.diag([1.0, 0.0])) == np.inf
        assert condition_estimate(np.zeros((2, 2))) == np.inf

    def test_non_finite_is_nan(self):
        assert np.isnan(condition_estimate(np.array([[1.0, np.nan], [0.0, 1.0]])))

    def test_empty_is_zero(self):
        assert condition_estimate(np.empty((0, 0))) == 0.0


class TestCheckSpd:
    def test_spd_gets_cholesky_certificate(self):
        report = check_spd(np.array([[4.0, 1.0], [1.0, 3.0]]), name="L")
        assert report.ok and report.certificate == "cholesky"
        assert report.positive_definite and report.name == "L"

    def test_indefinite_reports_min_eigenvalue(self):
        report = check_spd(np.array([[1.0, 2.0], [2.0, 1.0]]))
        assert not report.ok and report.certificate is None
        assert report.min_eigenvalue == pytest.approx(-1.0)

    def test_nonsymmetric_is_not_ok(self):
        report = check_spd(np.array([[1.0, 0.5], [0.0, 1.0]]))
        assert not report.ok and not report.symmetric

    def test_non_finite_short_circuits(self):
        report = check_spd(np.array([[np.nan, 0.0], [0.0, 1.0]]))
        assert not report.finite and not report.ok
        assert np.isnan(report.condition)


class TestCertifyPassivity:
    def test_dominant_m_matrix_certified_cheaply(self):
        ghat = np.array([[2.0, -1.0], [-1.0, 2.0]])
        report = certify_passivity(ghat)
        assert report.ok and report.certificate == "diagonal-dominance"

    def test_psd_but_not_dominant_falls_back_to_eigenvalues(self):
        # Equicorrelated 3x3: eigenvalues {2.6, 0.2, 0.2} (PSD), but
        # every off-diagonal row sum (1.6) exceeds the diagonal (1.0).
        ghat = np.full((3, 3), 0.8) + 0.2 * np.eye(3)
        report = certify_passivity(ghat)
        assert report.ok and report.certificate == "eigenvalue"
        assert not report.diagonally_dominant
        assert report.min_eigenvalue == pytest.approx(0.2)

    def test_indefinite_gets_no_certificate(self):
        report = certify_passivity(np.array([[1.0, -2.0], [-2.0, 1.0]]))
        assert not report.ok and report.certificate is None

    def test_sign_structure_catches_positive_coupling(self):
        # PSD and diagonally dominant, but the positive off-diagonal is
        # a *negative* coupling resistance -- Lemma 1 must veto it.
        ghat = np.array([[2.0, 1.0], [1.0, 2.0]])
        assert certify_passivity(ghat).ok
        report = certify_passivity(ghat, sign_structure=True)
        assert not report.ok and report.certificate is None
        assert any("Lemma 1" in note for note in report.notes)

    def test_sign_structure_accepts_a_true_vpec_ghat(self):
        ghat = np.array([[2.0, -0.5], [-0.5, 2.0]])
        assert certify_passivity(ghat, sign_structure=True).ok


class TestAssertPassive:
    def test_passive_returns_report(self):
        report = assert_passive(np.eye(3) * 2.0)
        assert report.ok

    def test_violation_raises_with_context(self):
        with pytest.raises(PassivityViolationError) as excinfo:
            assert_passive(np.array([[1.0, -2.0], [-2.0, 1.0]]), name="Ghat[0]")
        assert excinfo.value.context["name"] == "Ghat[0]"
        assert excinfo.value.context["certificate"] is None


class TestReportSerialization:
    def test_to_dict_round_trips_through_json(self):
        report = check_spd(np.eye(2), name="L[X]")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["name"] == "L[X]" and payload["ok"] is True
        assert payload["shape"] == [2, 2]

    def test_reports_to_json_aggregates_ok(self):
        good = check_spd(np.eye(2))
        bad = check_spd(np.array([[1.0, 2.0], [2.0, 1.0]]))
        document = json.loads(reports_to_json([good, bad], system="bus"))
        assert document["ok"] is False and document["system"] == "bus"
        assert [r["ok"] for r in document["reports"]] == [True, False]
        assert json.loads(reports_to_json([good]))["ok"] is True

    def test_ok_requires_certificate(self):
        report = HealthReport(
            name="m", shape=(1, 1), finite=True, symmetric=True,
            positive_definite=False, diagonally_dominant=True,
            condition=1.0, certificate=None,
        )
        assert not report.ok
