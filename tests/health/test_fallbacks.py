"""Acceptance: every injected fault class ends in a typed error or a
certified fallback -- no bare ``numpy.linalg.LinAlgError`` (and no
silently non-finite result) escapes the public API."""

import numpy as np
import pytest
from scipy import sparse

from repro.health import (
    DEFAULT_POLICY,
    STRICT_POLICY,
    AttemptLog,
    ConvergenceError,
    FallbackPolicy,
    NonFiniteInputError,
    NumericalHealthError,
    SingularMatrixError,
    certify_passivity,
    dense_solve,
    factorize,
    inject_fault,
    rank_deficient,
    spd_inverse,
)
from repro.health.faults import FAULT_KINDS
from repro.pipeline.profiling import collect
from repro.vpec.flow import full_vpec, windowed_vpec
from repro.vpec.full import invert_spd


def _singular_spd(n: int = 6, drop: int = 2) -> np.ndarray:
    rng = np.random.default_rng(0)
    a = rng.normal(size=(n, n))
    return rank_deficient(a @ a.T + n * np.eye(n), drop=drop)


# ----------------------------------------------------------------------
# SPD chain (the VPEC L-block inversion)
# ----------------------------------------------------------------------
class TestSpdChain:
    def test_strict_raises_typed_singular_error(self):
        log = AttemptLog()
        with pytest.raises(SingularMatrixError) as excinfo:
            spd_inverse(_singular_spd(), policy=STRICT_POLICY, log=log)
        assert excinfo.value.context["attempts"] == ["cholesky"]
        assert log.methods() == ["cholesky"]

    def test_resilient_returns_certified_spd_inverse(self):
        log = AttemptLog()
        inverse = spd_inverse(_singular_spd(), policy=DEFAULT_POLICY, log=log)
        assert np.all(np.isfinite(inverse))
        np.testing.assert_allclose(inverse, inverse.T)
        assert np.linalg.eigvalsh(inverse)[0] > 0.0
        assert log.methods()[0] == "cholesky"
        assert log.methods()[-1] in ("tikhonov", "eig_clip")

    def test_nan_input_is_typed(self):
        bad = np.eye(3)
        bad[1, 2] = np.nan
        with pytest.raises(NonFiniteInputError):
            spd_inverse(bad, policy=DEFAULT_POLICY)

    def test_fallbacks_are_counted_in_the_profile(self):
        with collect() as profile:
            spd_inverse(_singular_spd(), policy=DEFAULT_POLICY)
        assert profile.counters["solve_cholesky"] == 1
        assert profile.counters["solve_fallbacks"] >= 1

    def test_invert_spd_is_strict_by_default(self):
        with pytest.raises(SingularMatrixError):
            invert_spd(_singular_spd())
        # Legacy spelling keeps working: the typed error *is* a
        # LinAlgError (the pre-taxonomy contract of invert_spd).
        with pytest.raises(np.linalg.LinAlgError):
            invert_spd(_singular_spd())

    def test_invert_spd_accepts_a_resilient_policy(self):
        inverse = invert_spd(_singular_spd(), policy=DEFAULT_POLICY)
        assert np.all(np.isfinite(inverse))


# ----------------------------------------------------------------------
# Dense chain (the windowed submatrix solves)
# ----------------------------------------------------------------------
class TestDenseChain:
    def test_singular_system_escalates_to_a_solution(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        log = AttemptLog()
        x = dense_solve(a, b, policy=DEFAULT_POLICY, log=log)
        assert np.all(np.isfinite(x))
        np.testing.assert_allclose(a @ x, b, atol=1e-6)
        assert "lu" in log.methods()

    def test_policy_exhaustion_is_typed(self):
        a = np.zeros((2, 2))
        with pytest.raises(SingularMatrixError):
            dense_solve(a, np.ones(2), policy=STRICT_POLICY)


# ----------------------------------------------------------------------
# Sparse chain (DC / AC / transient MNA systems)
# ----------------------------------------------------------------------
class TestSparseChain:
    def _floating_pair(self):
        g = sparse.csc_matrix(np.array([[1.0, -1.0], [-1.0, 1.0]]))
        return g, np.array([1.0, -1.0])

    def test_singular_system_escalates_past_lu(self):
        g, rhs = self._floating_pair()
        factor = factorize(g, name="floating pair")
        x = factor.solve(rhs)
        assert np.all(np.isfinite(x))
        assert factor.method != "lu"
        assert factor.log.methods()[0] == "lu"
        assert not factor.log.attempts[0].succeeded

    def test_strict_policy_is_typed(self):
        g, rhs = self._floating_pair()
        with pytest.raises(SingularMatrixError):
            factorize(g, policy=STRICT_POLICY).solve(rhs)

    def test_starved_iterative_raises_convergence_error(self):
        g, rhs = self._floating_pair()
        starved = FallbackPolicy(
            regularize=False, gmres_maxiter=1, gmres_rtol=1e-30
        )
        with pytest.raises(ConvergenceError):
            factorize(g, policy=starved).solve(rhs)

    def test_nan_rhs_is_typed(self):
        g, _ = self._floating_pair()
        with pytest.raises(NonFiniteInputError):
            factorize(sparse.identity(2, format="csc")).solve(
                np.array([1.0, np.nan])
            )


# ----------------------------------------------------------------------
# Iterative-first tier (spec.solver == "iterative" transient solves)
# ----------------------------------------------------------------------
class TestIterativeFirstTier:
    """``prefer_iterative`` serves solves from ILU refinement, judged by
    the componentwise (Oettli-Prager) backward error -- the normwise
    bound is vacuous on badly row-scaled MNA systems."""

    POLICY = FallbackPolicy(
        prefer_iterative=True,
        residual_rtol=1e-12,
        gmres_rtol=1e-12,
        gmres_restart=40,
        gmres_maxiter=2,
        ilu_drop_tol=1e-12,
        ilu_fill_factor=200.0,
    )

    def _mna_like(self, n: int = 24, seed: int = 0):
        # Row scales spanning ~12 decades, like conductance stamps next
        # to unit source rows: the regime the componentwise test exists
        # for.
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(n, n))
        spd = base @ base.T + n * np.eye(n)
        scale = np.logspace(0, 12, n)
        a = sparse.csc_matrix(spd * np.outer(scale, scale) ** 0.5)
        return a, rng.normal(size=n) * scale

    def test_serves_without_direct_factorization(self):
        a, rhs = self._mna_like()
        factor = factorize(a, policy=self.POLICY)
        x = factor.solve(rhs)
        assert factor.method in ("ilu_refine", "gmres_ilu")
        assert "lu" not in factor.log.methods()
        from scipy.sparse.linalg import spsolve

        expected = spsolve(a, rhs)
        np.testing.assert_allclose(x, expected, rtol=1e-8)

    def test_warm_start_keeps_the_refinement_path(self):
        a, rhs = self._mna_like(seed=1)
        factor = factorize(a, policy=self.POLICY)
        factor.solve(rhs)
        # A transient loop's consecutive right-hand sides barely move;
        # the warm start must keep later solves on the cheap tier.
        factor.solve(rhs * (1.0 + 1e-6))
        assert factor.method == "ilu_refine"
        assert factor.log.methods().count("ilu_refine") == 2

    def test_componentwise_error_judges_each_row_on_its_scale(self):
        a, rhs = self._mna_like(seed=2)
        factor = factorize(a, policy=self.POLICY)
        from scipy.sparse.linalg import spsolve

        exact = spsolve(a, rhs)
        assert factor._componentwise_ok(exact, rhs)
        # A perturbation invisible to the normwise bound (it only moves
        # the small-scale rows) must be rejected componentwise.
        wrong = exact.copy()
        wrong[0] *= 2.0
        assert not factor._componentwise_ok(wrong, rhs)

    def test_abandonment_is_monotone(self):
        # A zero matrix defeats every tier; the iterative-first attempt
        # must run exactly once -- never be retried -- before the direct
        # chain exhausts into the typed error.
        a = sparse.csc_matrix((4, 4))
        factor = factorize(a, policy=self.POLICY)
        with pytest.raises(SingularMatrixError):
            factor.solve(np.ones(4))
        assert factor.log.methods().count("gmres_ilu") == 1

    def test_column_stacks_get_per_column_warm_starts(self):
        a, _ = self._mna_like(seed=3)
        rng = np.random.default_rng(4)
        rhs = rng.normal(size=(a.shape[0], 2))
        factor = factorize(a, policy=self.POLICY)
        x = factor.solve(rhs)
        assert x.shape == rhs.shape
        from scipy.sparse.linalg import spsolve

        np.testing.assert_allclose(x, spsolve(a, rhs), rtol=1e-8)
        assert set(factor._warm) == {0, 1}


# ----------------------------------------------------------------------
# End to end: faulted parasitics through the model builders
# ----------------------------------------------------------------------
class TestFaultedModels:
    def test_rank_deficient_l_full_vpec(self, bus5):
        faulted = inject_fault(bus5, "rank_deficient_l", drop=1)
        # Strict default: typed error.
        with pytest.raises(SingularMatrixError):
            full_vpec(faulted)
        # Resilient policy: certified PSD Ghat.
        result = full_vpec(faulted, policy=DEFAULT_POLICY)
        ghat = result.model.networks[0].dense_ghat()
        assert np.all(np.isfinite(ghat))
        assert certify_passivity(ghat).certificate is not None

    def test_rank_deficient_l_windowed_vpec(self, bus5):
        faulted = inject_fault(bus5, "rank_deficient_l", drop=1)
        result = windowed_vpec(faulted, window_size=3, policy=DEFAULT_POLICY)
        ghat = result.model.networks[0].dense_ghat()
        assert np.all(np.isfinite(ghat))

    def test_sign_flipped_mutuals_are_detected(self, bus5):
        faulted = inject_fault(bus5, "sign_flipped_mutuals")
        result = full_vpec(faulted, policy=DEFAULT_POLICY)
        ghat = result.model.networks[0].dense_ghat()
        # Sign flips keep Ghat PSD (Gershgorin is sign-blind), so only
        # the Lemma-1 sign-structure check can catch them.
        assert certify_passivity(ghat).certificate is not None
        report = certify_passivity(ghat, sign_structure=True)
        assert report.certificate is None
        assert any("Lemma 1" in note for note in report.notes)

    @pytest.mark.parametrize("builder", [full_vpec, windowed_vpec])
    def test_nan_parasitics_are_typed(self, bus5, builder):
        faulted = inject_fault(bus5, "nan_parasitics")
        kwargs = {"window_size": 3} if builder is windowed_vpec else {}
        with pytest.raises(NonFiniteInputError):
            builder(faulted, policy=DEFAULT_POLICY, **kwargs)

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("policy", [None, DEFAULT_POLICY, STRICT_POLICY])
    def test_no_bare_linalgerror_escapes(self, bus5, kind, policy):
        """The blanket guarantee: any exception out of the model
        builders on a faulted input belongs to the health taxonomy."""
        faulted = inject_fault(bus5, kind)
        for build in (
            lambda: full_vpec(faulted, policy=policy),
            lambda: windowed_vpec(faulted, window_size=3, policy=policy),
        ):
            try:
                result = build()
            except NumericalHealthError:
                continue  # typed failure: acceptable
            ghat = result.model.networks[0].dense_ghat()
            assert np.all(np.isfinite(ghat))  # or a finite fallback
