"""The typed error taxonomy: inheritance and context payloads."""

import numpy as np
import pytest

from repro.health.errors import (
    ConvergenceError,
    NonFiniteInputError,
    NumericalHealthError,
    PassivityViolationError,
    SingularMatrixError,
)

_ALL_ERRORS = [
    NonFiniteInputError,
    SingularMatrixError,
    PassivityViolationError,
    ConvergenceError,
]


class TestTaxonomy:
    @pytest.mark.parametrize("error_type", _ALL_ERRORS)
    def test_all_derive_from_base(self, error_type):
        assert issubclass(error_type, NumericalHealthError)

    def test_one_except_clause_catches_everything(self):
        for error_type in _ALL_ERRORS:
            with pytest.raises(NumericalHealthError):
                raise error_type("boom")

    def test_singular_is_a_linalgerror(self):
        # Legacy callers written before the taxonomy say
        # ``except np.linalg.LinAlgError`` -- they must keep working.
        assert issubclass(SingularMatrixError, np.linalg.LinAlgError)
        with pytest.raises(np.linalg.LinAlgError):
            raise SingularMatrixError("singular")

    def test_non_finite_is_a_valueerror(self):
        assert issubclass(NonFiniteInputError, ValueError)
        with pytest.raises(ValueError):
            raise NonFiniteInputError("NaN")


class TestContext:
    def test_defaults_to_empty_dict(self):
        error = NumericalHealthError("plain")
        assert error.context == {}

    def test_context_is_copied(self):
        payload = {"name": "L", "attempts": ["cholesky"]}
        error = SingularMatrixError("singular", context=payload)
        payload["name"] = "mutated"
        assert error.context["name"] == "L"

    def test_message_survives(self):
        error = ConvergenceError("gmres info=400", context={"name": "A"})
        assert "gmres info=400" in str(error)
