"""Operator-level iterative solves: stacked CG, block-Jacobi CG, GMRES.

These back the 10^6-filament path, where ``L`` exists only as a matvec:
the window solves run through :func:`stacked_jacobi_cg` and anything
``L x = b``-shaped through :func:`operator_solve`.  The contract under
test is the health module's usual one -- every answer is residual-
certified, non-convergence is a typed error or an explicit mask, and
nothing materializes the operator.
"""

import numpy as np
import pytest

from repro.extraction.hierarchical import HierarchicalConfig, hierarchical_blocks
from repro.geometry.bus import nonaligned_bus
from repro.health import ConvergenceError, FallbackPolicy
from repro.health.iterative import (
    BlockJacobiPreconditioner,
    operator_solve,
    stacked_jacobi_cg,
)
from repro.pipeline.profiling import collect

TREE_CONFIG = HierarchicalConfig(leaf_size=8)


def _spd_stack(count: int, width: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(count, width, width))
    return base @ base.transpose(0, 2, 1) + width * np.eye(width)


def _operator(bits: int = 24):
    system = nonaligned_bus(bits, segments_per_line=3, offset_jitter=0.3, seed=7)
    blocks = hierarchical_blocks(system, config=TREE_CONFIG)
    _, block = blocks[next(iter(blocks))]
    return block


class TestStackedJacobiCG:
    def test_matches_direct_solves(self):
        a_stack = _spd_stack(6, 9)
        rng = np.random.default_rng(1)
        b_stack = rng.normal(size=(6, 9))
        x, converged = stacked_jacobi_cg(a_stack, b_stack)
        assert converged.all()
        np.testing.assert_allclose(
            x, np.linalg.solve(a_stack, b_stack[:, :, None])[:, :, 0],
            rtol=0, atol=1e-10 * np.abs(b_stack).max(),
        )

    def test_empty_stack(self):
        x, converged = stacked_jacobi_cg(
            np.zeros((0, 4, 4)), np.zeros((0, 4))
        )
        assert x.shape == (0, 4)
        assert converged.shape == (0,)

    def test_non_spd_member_is_masked_not_poisonous(self):
        a_stack = _spd_stack(3, 6, seed=2)
        a_stack[1] = -np.eye(6)  # negative curvature on the first step
        rng = np.random.default_rng(3)
        b_stack = rng.normal(size=(3, 6))
        x, converged = stacked_jacobi_cg(a_stack, b_stack)
        assert not converged[1]
        assert converged[0] and converged[2]
        for k in (0, 2):
            np.testing.assert_allclose(
                a_stack[k] @ x[k], b_stack[k], rtol=0,
                atol=1e-10 * np.abs(b_stack[k]).max(),
            )

    def test_neighbors_do_not_perturb_a_converged_system(self):
        # Vectorized does not mean coupled: system k's iterates are the
        # same floating-point operations whether it shares the stack
        # with an ill-conditioned neighbor or rides alone, and a
        # converged system freezes.  Bitwise identity is the contract.
        a = _spd_stack(1, 8, seed=4)
        rng = np.random.default_rng(5)
        b = rng.normal(size=(1, 8))
        alone, ok_alone = stacked_jacobi_cg(a, b)
        nasty = _spd_stack(1, 8, seed=6)
        nasty[0] += 1e8 * np.outer(np.ones(8), np.ones(8))  # cond ~ 1e9
        paired, ok_paired = stacked_jacobi_cg(
            np.concatenate([a, nasty]), np.concatenate([b, b])
        )
        assert ok_alone[0] and ok_paired[0]
        assert np.array_equal(alone[0], paired[0])


class TestBlockJacobiPreconditioner:
    def test_leaves_cover_the_axis_contiguously(self):
        operator = _operator()
        edges = list(operator.leaf_diagonal_blocks())
        assert edges[0][0] == 0
        assert edges[-1][1] == operator.shape[0]
        for (_, hi, _), (lo, _, _) in zip(edges, edges[1:]):
            assert hi == lo

    def test_applies_the_exact_leaf_inverse(self):
        operator = _operator()
        precond = BlockJacobiPreconditioner(operator)
        rng = np.random.default_rng(8)
        v = rng.normal(size=operator.shape[0])
        u = precond(v)
        # M u = v leaf by leaf, in tree coordinates.
        u_tree, v_tree = u[operator.perm], v[operator.perm]
        for lo, hi, block in operator.leaf_diagonal_blocks():
            np.testing.assert_allclose(
                np.asarray(block) @ u_tree[lo:hi], v_tree[lo:hi],
                rtol=0, atol=1e-10 * np.abs(v).max(),
            )


class TestOperatorSolve:
    def test_matches_dense_solve(self):
        operator = _operator()
        dense = operator.toarray()
        rng = np.random.default_rng(9)
        rhs = rng.normal(size=operator.shape[0])
        with collect() as profile:
            x = operator_solve(operator, rhs)
        expected = np.linalg.solve(dense, rhs)
        np.testing.assert_allclose(x, expected, rtol=1e-8)
        assert profile.counters["operator_cg_iterations"] >= 1

    def test_column_stack_and_single_vector_agree(self):
        operator = _operator()
        rng = np.random.default_rng(10)
        rhs = rng.normal(size=(operator.shape[0], 3))
        stacked = operator_solve(operator, rhs)
        assert stacked.shape == rhs.shape
        dense = operator.toarray()
        np.testing.assert_allclose(
            stacked, np.linalg.solve(dense, rhs), rtol=1e-8
        )

    def test_starved_cg_escalates_to_gmres(self):
        operator = _operator()
        rng = np.random.default_rng(11)
        rhs = rng.normal(size=operator.shape[0])
        policy = FallbackPolicy(
            gmres_rtol=1e-10, gmres_restart=60, gmres_maxiter=50
        )
        x = operator_solve(operator, rhs, policy=policy, maxiter=1)
        np.testing.assert_allclose(
            x, np.linalg.solve(operator.toarray(), rhs), rtol=1e-6
        )

    def test_no_escalation_allowed_is_typed(self):
        operator = _operator()
        rhs = np.ones(operator.shape[0])
        with pytest.raises(ConvergenceError):
            operator_solve(
                operator,
                rhs,
                policy=FallbackPolicy(iterative=False),
                maxiter=1,
            )
