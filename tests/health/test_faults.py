"""Fault injectors: each must produce exactly the defect it names."""

import numpy as np
import pytest

from repro.health.faults import (
    FAULT_KINDS,
    flip_mutual_signs,
    inject_fault,
    inject_nan,
    rank_deficient,
)


def _spd(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


class TestRankDeficient:
    def test_result_is_singular_symmetric_psd(self):
        faulted = rank_deficient(_spd(6), drop=2)
        np.testing.assert_allclose(faulted, faulted.T)
        eigenvalues = np.linalg.eigvalsh(faulted)
        assert eigenvalues[0] == pytest.approx(0.0, abs=1e-10)
        assert eigenvalues[1] == pytest.approx(0.0, abs=1e-10)
        assert eigenvalues[2] > 1e-6  # only `drop` directions removed

    def test_nullspace_dimension_matches_drop(self):
        faulted = rank_deficient(_spd(5), drop=3)
        assert np.linalg.matrix_rank(faulted, tol=1e-9) == 2

    def test_drop_everything_is_zero(self):
        np.testing.assert_array_equal(
            rank_deficient(_spd(3), drop=3), np.zeros((3, 3))
        )

    def test_rejects_non_positive_drop(self):
        with pytest.raises(ValueError):
            rank_deficient(_spd(3), drop=0)


class TestFlipMutualSigns:
    def test_full_flip_negates_every_off_diagonal(self):
        matrix = _spd(5)
        flipped = flip_mutual_signs(matrix, fraction=1.0)
        off = ~np.eye(5, dtype=bool)
        np.testing.assert_allclose(flipped[off], -matrix[off])
        np.testing.assert_allclose(np.diag(flipped), np.diag(matrix))

    def test_stays_symmetric_and_is_deterministic(self):
        matrix = _spd(6, seed=1)
        a = flip_mutual_signs(matrix, fraction=0.3, seed=7)
        b = flip_mutual_signs(matrix, fraction=0.3, seed=7)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_allclose(a, a.T)
        assert not np.array_equal(a, flip_mutual_signs(matrix, 0.3, seed=8))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            flip_mutual_signs(_spd(3), fraction=0.0)
        with pytest.raises(ValueError):
            flip_mutual_signs(_spd(3), fraction=1.5)


class TestInjectNan:
    def test_injects_symmetric_nan_pairs(self):
        faulted = inject_nan(_spd(5), count=2, seed=3)
        rows, cols = np.nonzero(np.isnan(faulted))
        assert rows.size >= 1
        assert np.all(np.isnan(faulted[cols, rows]))

    def test_deterministic_per_seed(self):
        np.testing.assert_array_equal(
            inject_nan(_spd(5), count=2, seed=3),
            inject_nan(_spd(5), count=2, seed=3),
        )

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            inject_nan(_spd(3), count=0)


class TestInjectFault:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_original_parasitics_untouched(self, bus5, kind):
        before = bus5.inductance.copy()
        inject_fault(bus5, kind)
        np.testing.assert_array_equal(bus5.inductance, before)

    def test_blocks_and_full_matrix_stay_consistent(self, bus5):
        faulted = inject_fault(bus5, "rank_deficient_l", drop=1)
        for indices, block in faulted.inductance_blocks.values():
            np.testing.assert_array_equal(
                faulted.inductance[np.ix_(indices, indices)], block
            )
            assert np.linalg.matrix_rank(block, tol=1e-12) == len(indices) - 1

    def test_nan_fault_fails_validate(self, bus5):
        from repro.health.errors import NonFiniteInputError

        faulted = inject_fault(bus5, "nan_parasitics")
        with pytest.raises(NonFiniteInputError):
            faulted.validate()
        bus5.validate()  # the clean original still passes

    def test_unknown_kind_rejected(self, bus5):
        with pytest.raises(ValueError, match="kind must be one of"):
            inject_fault(bus5, "cosmic_rays")
