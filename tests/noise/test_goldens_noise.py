"""Golden regression tests of the tiered noise scan.

Committed per-victim peak-noise / noise-area / noise-window values for
the canonical 16-bit bus at three spacings under the default
:class:`~repro.noise.engine.NoiseConfig` (quarter-supply threshold,
3 ns period, seeded scattered schedule).  The scan is deterministic
end to end -- closed-form screening plus direct LU transient solves --
so the tolerance is a tight 1e-9 relative, mirroring the
``tests/test_goldens.py`` conventions: a failure here means the
numerical behavior of the screening tables, the alignment algebra or
the simulation backend changed, and EXPERIMENTS/docs numbers need
re-validation.

The three spacings pin qualitatively different regimes: at 1 um the
coupling is strong enough that 9/16 victims escalate to the simulation
tier (their values are *simulated* peaks), while at 2 um and 4 um the
screen clears every victim (bound-only values, no simulation at all).
"""

import pytest

from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.noise.engine import NoiseConfig, run_noise_scan

#: Relative tolerance on every golden value.
REL_TOL = 1e-9

SPACINGS = {"s1": 1e-6, "s2": 2e-6, "s4": 4e-6}

GOLDENS = {'s1': {'peaks_V': (0.23158761983631357,
                    0.08018848067244885,
                    0.07772518890652973,
                    0.21082352433545587,
                    0.09653759794765279,
                    0.045916076716835556,
                    0.0831134015939081,
                    0.07820271924335347,
                    0.22774660949844522,
                    0.23190833118584323,
                    0.04793701408950545,
                    0.22468208254697045,
                    0.04583925844115203,
                    0.21082352433545634,
                    0.06240997485005471,
                    0.21400279165214814),
        'areas_Vs': (5.099435010894916e-12,
                     1.734253120444839e-12,
                     1.6151834793970978e-12,
                     5.021211008997858e-12,
                     7.331486030575762e-12,
                     1.4335014906018634e-12,
                     7.0664763019893915e-12,
                     7.731869970591927e-12,
                     5.424270306078017e-12,
                     5.5233905670594125e-12,
                     6.038736659222181e-12,
                     5.351282073314998e-12,
                     6.840737742279573e-12,
                     5.02121100899787e-12,
                     6.781584853720924e-12,
                     4.712226538497792e-12),
        'escalated': (1, 2, 4, 5, 6, 7, 10, 12, 14),
        'noise_windows_s': {1: ((2.985258988963411e-09,
                                 2.9907370335183484e-09),),
                            2: ((2.985258988963411e-09,
                                 2.9907370335183484e-09),),
                            4: ((4.245136902996338e-10,
                                 4.347496127845394e-10),),
                            5: ((6.091762499802319e-10,
                                 6.320780627487717e-10),
                                (2.985258988963411e-09,
                                 2.9907370335183484e-09)),
                            6: ((4.245136902996338e-10,
                                 4.347496127845394e-10),
                                (2.985258988963411e-09,
                                 2.9907370335183484e-09)),
                            7: ((6.091762499802319e-10,
                                 6.320780627487717e-10),),
                            10: ((4.245136902996338e-10,
                                  4.347496127845394e-10),),
                            12: ((4.245136902996338e-10,
                                  4.347496127845394e-10),
                                 (6.091762499802319e-10,
                                  6.320780627487717e-10)),
                            14: ((6.091762499802319e-10,
                                  6.320780627487717e-10),)}},
 's2': {'peaks_V': (0.14462762479501698,
                    0.1553261579402891,
                    0.16765183569709388,
                    0.18275313590142478,
                    0.18371153802625756,
                    0.1771704439066099,
                    0.1967749742813923,
                    0.21286857774610324,
                    0.20871038616718496,
                    0.21289732916320875,
                    0.19751026399634725,
                    0.20600225308456568,
                    0.19348785319127565,
                    0.18639772270978328,
                    0.18863734214479555,
                    0.19547168065015103),
        'areas_Vs': (3.027332756406384e-12,
                     3.361572964651832e-12,
                     3.6283256202748043e-12,
                     3.9551483729336625e-12,
                     3.975890137970697e-12,
                     3.834327599867466e-12,
                     4.258609383222324e-12,
                     4.606907590222311e-12,
                     4.516915894175158e-12,
                     4.607529829178832e-12,
                     4.274522543373553e-12,
                     4.458306403823173e-12,
                     4.187469418553136e-12,
                     4.034024620468315e-12,
                     4.082494525625824e-12,
                     4.091596073853235e-12),
        'escalated': (),
        'noise_windows_s': {}},
 's4': {'peaks_V': (0.1243738831297688,
                    0.13459184739233446,
                    0.1465254548387199,
                    0.16141341070563148,
                    0.16189939161100808,
                    0.15791332175902775,
                    0.17587495717032592,
                    0.1889846919873034,
                    0.1848313833195854,
                    0.1890452937707096,
                    0.17660503986744247,
                    0.18257818351270733,
                    0.1729087512337916,
                    0.16461654810140913,
                    0.16824316690869365,
                    0.1722837206871456),
        'areas_Vs': (2.549951574060564e-12,
                     2.797197794708691e-12,
                     3.045211779795352e-12,
                     3.3546254487916002e-12,
                     3.3647255012325728e-12,
                     3.2818837391530876e-12,
                     3.6551771290223044e-12,
                     3.927634354550762e-12,
                     3.841316898693128e-12,
                     3.928893830352481e-12,
                     3.670350304440399e-12,
                     3.794489058426806e-12,
                     3.5935310125220993e-12,
                     3.4211956685575894e-12,
                     3.496567025192695e-12,
                     3.532213787140716e-12),
        'escalated': (),
        'noise_windows_s': {}}}


@pytest.fixture(scope="module", params=sorted(SPACINGS))
def scan(request):
    parasitics = extract(aligned_bus(16, spacing=SPACINGS[request.param]))
    report = run_noise_scan(parasitics, config=NoiseConfig())
    return request.param, report


class TestNoiseGoldens:
    def test_per_victim_peaks(self, scan):
        label, report = scan
        expected = GOLDENS[label]["peaks_V"]
        for victim, value in zip(report.victims, expected):
            assert victim.effective_peak == pytest.approx(value, rel=REL_TOL)

    def test_per_victim_areas(self, scan):
        label, report = scan
        expected = GOLDENS[label]["areas_Vs"]
        for victim, value in zip(report.victims, expected):
            assert victim.effective_area == pytest.approx(value, rel=REL_TOL)

    def test_escalation_set(self, scan):
        label, report = scan
        escalated = tuple(v.wire for v in report.victims if v.escalated)
        assert escalated == GOLDENS[label]["escalated"]

    def test_noise_windows(self, scan):
        label, report = scan
        expected = GOLDENS[label]["noise_windows_s"]
        actual = {
            v.wire: tuple((w.start, w.end) for w in v.noise_windows)
            for v in report.victims
            if len(v.noise_windows)
        }
        assert set(actual) == set(expected)
        for wire, windows in expected.items():
            assert len(actual[wire]) == len(windows)
            for (lo, hi), (glo, ghi) in zip(actual[wire], windows):
                assert lo == pytest.approx(glo, rel=REL_TOL)
                assert hi == pytest.approx(ghi, rel=REL_TOL)

    def test_nobody_fails_the_quarter_supply_criterion(self, scan):
        _, report = scan
        assert not report.failing()
