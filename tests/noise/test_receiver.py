"""Property suite for the nonlinear receiver (VTC) threshold model.

The contract under test: folding a piecewise-linear receiver VTC into
one effective input threshold (1) reproduces the legacy fixed-fraction
criterion *bit for bit* when the VTC is the identity, (2) is internally
consistent -- noise at the threshold propagates to exactly the output
criterion, noise below it to less -- and (3) is never less pessimistic
than the bare output fraction for any *attenuating* receiver (one whose
VTC never amplifies), so swapping a real receiver table in can only
relax a fixed-fraction sign-off, never silently tighten past it.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.noise.engine import NoiseConfig, run_noise_scan
from repro.noise.receiver import (
    IDENTITY_VTC,
    ReceiverModel,
    resolve_threshold,
)


def _vtc_tables(attenuating: bool = False):
    """Strategy: valid normalized VTC tables (optionally gain <= 1)."""

    @st.composite
    def table(draw):
        interior = draw(
            st.lists(
                st.floats(min_value=0.01, max_value=0.99),
                min_size=0,
                max_size=4,
                unique=True,
            )
        )
        xs = [0.0] + sorted(interior) + [1.0]
        ys = [0.0]
        for x0, x1 in zip(xs, xs[1:]):
            if attenuating:
                # Gain <= 1 on every segment keeps y <= x everywhere.
                gain = draw(st.floats(min_value=0.0, max_value=1.0))
                ys.append(min(ys[-1] + gain * (x1 - x0), x1))
            else:
                ys.append(
                    draw(
                        st.floats(min_value=ys[-1], max_value=1.0)
                    )
                )
        return tuple(zip(xs, ys))

    return table()


class TestValidation:
    def test_rejects_malformed_tables(self):
        with pytest.raises(ValueError, match="two points"):
            ReceiverModel(vtc=((0.0, 0.0),))
        with pytest.raises(ValueError, match=r"start at \(0, 0\)"):
            ReceiverModel(vtc=((0.1, 0.0), (1.0, 1.0)))
        with pytest.raises(ValueError, match="span inputs"):
            ReceiverModel(vtc=((0.0, 0.0), (0.9, 1.0)))
        with pytest.raises(ValueError, match="strictly increasing"):
            ReceiverModel(vtc=((0.0, 0.0), (0.5, 0.2), (0.5, 0.4), (1.0, 1.0)))
        with pytest.raises(ValueError, match="non-decreasing"):
            ReceiverModel(vtc=((0.0, 0.0), (0.5, 0.8), (1.0, 0.4)))
        with pytest.raises(ValueError, match="output_fraction"):
            ReceiverModel(output_fraction=1.0)


class TestDegenerateEquivalence:
    """The identity VTC reproduces the fixed fraction exactly."""

    @pytest.mark.parametrize("fraction", [0.1, 0.25, 0.55])
    @pytest.mark.parametrize("vdd", [0.9, 1.0, 1.2])
    def test_input_threshold_is_bit_exact(self, fraction, vdd):
        model = ReceiverModel.quarter_supply(fraction)
        assert model.input_threshold(vdd) == fraction * vdd

    def test_resolve_threshold_prefers_the_receiver(self):
        model = ReceiverModel.quarter_supply(0.4)
        assert resolve_threshold(0.25, None, 1.0) == 0.25
        assert resolve_threshold(0.25, model, 1.0) == 0.4

    def test_full_scan_is_bit_identical(self):
        """Scans through the receiver hook equal the legacy path."""
        parasitics = extract(aligned_bus(8))
        legacy = NoiseConfig(threshold_fraction=0.12)
        receiver = replace(
            legacy, receiver=ReceiverModel.quarter_supply(0.12)
        )
        a = run_noise_scan(parasitics, config=legacy)
        b = run_noise_scan(parasitics, config=receiver)
        assert a.threshold == b.threshold
        for theirs, ours in zip(a.victims, b.victims):
            assert theirs.escalated == ours.escalated
            assert theirs.effective_peak == ours.effective_peak
            assert a.margin(theirs) == b.margin(ours)


class TestInversionConsistency:
    @given(vtc=_vtc_tables(), fraction=st.floats(0.05, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_threshold_inverts_the_table(self, vtc, fraction):
        model = ReceiverModel(vtc=vtc, output_fraction=fraction)
        vdd = 1.0
        threshold = model.input_threshold(vdd)
        assert 0.0 <= threshold <= vdd
        target = fraction * vdd
        if threshold < vdd:
            # At the threshold the output meets the criterion...
            out = model.transfer(threshold, vdd)
            assert out >= target - 1e-12
            # ...and any strictly smaller noise stays below it (up to
            # flat segments, where the conservative left endpoint means
            # smaller inputs can only tie, never exceed).
            below = model.transfer(threshold * 0.999, vdd)
            assert below <= out + 1e-12
        else:
            # The table only meets the criterion at (or never below)
            # the supply: no sub-supply noise can fail this receiver.
            assert model.transfer(vdd, vdd) <= target

    @given(vtc=_vtc_tables())
    @settings(max_examples=40, deadline=None)
    def test_transfer_is_monotone(self, vtc):
        model = ReceiverModel(vtc=vtc)
        noise = np.linspace(0.0, 1.0, 101)
        out = model.transfer(noise, 1.0)
        assert np.all(np.diff(out) >= -1e-15)

    def test_flat_segment_returns_the_left_endpoint(self):
        model = ReceiverModel(
            vtc=((0.0, 0.0), (0.2, 0.25), (0.8, 0.25), (1.0, 1.0)),
            output_fraction=0.25,
        )
        # The flat [0.2, 0.8] plateau sits exactly at the criterion;
        # the conservative threshold is the plateau's left edge.
        assert model.input_threshold(1.0) == pytest.approx(0.2)


class TestAttenuatingReceivers:
    @given(vtc=_vtc_tables(attenuating=True), fraction=st.floats(0.05, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_never_less_pessimistic_than_the_bare_fraction(
        self, vtc, fraction
    ):
        """Gain <= 1 receivers only raise the effective threshold."""
        model = ReceiverModel(vtc=vtc, output_fraction=fraction)
        assert model.input_threshold(1.0) >= fraction - 1e-12

    def test_restoring_inverter_raises_the_threshold(self):
        model = ReceiverModel.restoring_inverter(
            switch_fraction=0.45, rejection=0.1, output_fraction=0.25
        )
        assert model.input_threshold(1.0) > 0.25
        # Sub-switch noise is attenuated to the rejection floor.
        assert model.transfer(0.4, 1.0) == pytest.approx(0.4 * 0.1, rel=0.3)

    def test_restoring_inverter_scan_escalates_no_more_than_fraction(
        self,
    ):
        parasitics = extract(aligned_bus(8))
        fraction = NoiseConfig(threshold_fraction=0.12)
        inverter = replace(
            fraction,
            receiver=ReceiverModel.restoring_inverter(
                switch_fraction=0.45, output_fraction=0.12
            ),
        )
        scalar = run_noise_scan(parasitics, config=fraction)
        receiver = run_noise_scan(parasitics, config=inverter)
        assert receiver.threshold > scalar.threshold
        assert receiver.num_escalated <= scalar.num_escalated
        assert len(receiver.failing()) <= len(scalar.failing())


class TestSerialization:
    @given(vtc=_vtc_tables(), fraction=st.floats(0.05, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_dict_round_trip(self, vtc, fraction):
        model = ReceiverModel(vtc=vtc, output_fraction=fraction)
        assert ReceiverModel.from_dict(model.to_dict()) == model

    def test_identity_constant_is_the_default(self):
        assert ReceiverModel().vtc == IDENTITY_VTC
