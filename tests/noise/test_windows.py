"""Window-algebra unit tests: overlap, containment and empty-window
edge cases, plus exact worst-case alignment sets on hand-built window
configurations (zero-width windows, fully disjoint aggressors, the
all-aligned worst case)."""

import numpy as np
import pytest

from repro.noise.windows import (
    Window,
    WindowSet,
    feasible_aggressors,
    sensitive_windows,
    staggered_schedule,
    switching_windows,
)
from repro.noise.worst_case import align_all, worst_case_alignment


class TestWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            Window(2.0, 1.0)
        with pytest.raises(ValueError):
            Window(float("nan"), 1.0)
        with pytest.raises(ValueError):
            Window(0.0, float("inf"))

    def test_width_and_point(self):
        assert Window(1.0, 3.0).width == 2.0
        assert not Window(1.0, 3.0).is_point
        assert Window(2.0, 2.0).is_point
        assert Window(2.0, 2.0).width == 0.0

    def test_contains_closed_endpoints(self):
        w = Window(1.0, 3.0)
        assert w.contains(1.0) and w.contains(3.0) and w.contains(2.0)
        assert not w.contains(0.999) and not w.contains(3.001)

    def test_overlaps_is_closed(self):
        # Touching endpoints count as overlap (closed intervals).
        assert Window(0.0, 1.0).overlaps(Window(1.0, 2.0))
        assert not Window(0.0, 1.0).overlaps(Window(1.1, 2.0))
        # A zero-width window is a point event.
        assert Window(0.5, 0.5).overlaps(Window(0.0, 1.0))
        assert Window(0.5, 0.5).overlaps(Window(0.5, 0.5))
        assert not Window(0.5, 0.5).overlaps(Window(0.6, 0.6))

    def test_intersect(self):
        assert Window(0.0, 2.0).intersect(Window(1.0, 3.0)) == Window(1.0, 2.0)
        assert Window(0.0, 1.0).intersect(Window(1.0, 2.0)) == Window(1.0, 1.0)
        assert Window(0.0, 1.0).intersect(Window(2.0, 3.0)) is None

    def test_shift_and_clip(self):
        assert Window(1.0, 2.0).shift(0.5) == Window(1.5, 2.5)
        assert Window(0.0, 5.0).clip(1.0, 2.0) == Window(1.0, 2.0)
        assert Window(3.0, 5.0).clip(0.0, 2.0) is None


class TestWindowSet:
    def test_merges_overlapping_and_touching(self):
        ws = WindowSet([Window(2.0, 3.0), Window(0.0, 1.0), Window(1.0, 2.0)])
        assert ws.windows == (Window(0.0, 3.0),)
        assert ws.total_width == 3.0

    def test_keeps_disjoint_members_sorted(self):
        ws = WindowSet([Window(4.0, 5.0), Window(0.0, 1.0)])
        assert ws.windows == (Window(0.0, 1.0), Window(4.0, 5.0))
        assert ws.span == Window(0.0, 5.0)
        assert len(ws) == 2

    def test_empty(self):
        ws = WindowSet()
        assert ws.is_empty
        assert ws.total_width == 0.0
        assert ws.span is None
        assert not ws.contains(0.0)

    def test_point_window_member(self):
        ws = WindowSet([Window(1.0, 1.0), Window(3.0, 4.0)])
        assert ws.contains(1.0)
        assert not ws.contains(2.0)
        assert ws.total_width == 1.0

    def test_complement_interior(self):
        ws = WindowSet([Window(1.0, 2.0), Window(3.0, 4.0)])
        comp = ws.complement(Window(0.0, 5.0))
        assert comp.windows == (
            Window(0.0, 1.0),
            Window(2.0, 3.0),
            Window(4.0, 5.0),
        )

    def test_complement_drops_zero_width_gaps(self):
        # A window starting at 0 or ending at the horizon leaves no
        # zero-width sliver behind.
        ws = WindowSet([Window(0.0, 2.0)])
        assert ws.complement(Window(0.0, 5.0)).windows == (Window(2.0, 5.0),)
        ws = WindowSet([Window(3.0, 5.0)])
        assert ws.complement(Window(0.0, 5.0)).windows == (Window(0.0, 3.0),)

    def test_complement_of_point_window_is_everything(self):
        # Removing a measure-zero event leaves the merged full horizon:
        # the two touching halves fuse back together.
        ws = WindowSet([Window(2.0, 2.0)])
        assert ws.complement(Window(0.0, 5.0)).windows == (Window(0.0, 5.0),)

    def test_intersect_window(self):
        ws = WindowSet([Window(0.0, 2.0), Window(3.0, 5.0)])
        clipped = ws.intersect_window(Window(1.0, 4.0))
        assert clipped.windows == (Window(1.0, 2.0), Window(3.0, 4.0))

    def test_union_and_intersect(self):
        a = WindowSet([Window(0.0, 2.0)])
        b = WindowSet([Window(1.0, 3.0), Window(5.0, 6.0)])
        assert a.union(b).windows == (Window(0.0, 3.0), Window(5.0, 6.0))
        assert a.intersect(b).windows == (Window(1.0, 2.0),)

    def test_overlaps(self):
        a = WindowSet([Window(0.0, 1.0)])
        assert a.overlaps(Window(1.0, 2.0))
        assert not a.overlaps(Window(2.0, 3.0))


class TestScheduleAndSensitivity:
    def test_staggered_schedule_is_deterministic(self):
        a = staggered_schedule(8, 1000e-12, 10e-12, seed=7)
        b = staggered_schedule(8, 1000e-12, 10e-12, seed=7)
        assert a == b
        assert all(w.width == pytest.approx(10e-12) for w in a)
        assert all(0.0 <= w.start and w.end <= 1000e-12 for w in a)
        assert staggered_schedule(8, 1000e-12, 10e-12, seed=8) != a

    def test_switching_windows_from_arrivals(self, bus5):
        from repro.analysis.timing import arrival_times

        arrivals = arrival_times(bus5, 120.0, 10e-15)
        windows = switching_windows(arrivals)
        assert len(windows) == 5
        for i, w in enumerate(windows):
            assert w.start == pytest.approx(arrivals.earliest[i])
            assert w.end == pytest.approx(arrivals.latest[i])

    def test_sensitive_is_complement_of_own_window(self):
        switching = [Window(100.0, 200.0), Window(0.0, 50.0)]
        sensitive = sensitive_windows(switching, 1000.0)
        assert sensitive[0].windows == (
            Window(0.0, 100.0),
            Window(200.0, 1000.0),
        )
        assert sensitive[1].windows == (Window(50.0, 1000.0),)

    def test_feasible_aggressors(self):
        switching = [
            Window(0.0, 10.0),
            Window(5.0, 15.0),
            Window(500.0, 510.0),
        ]
        sensitive = sensitive_windows(switching, 1000.0)
        # Victim 0 is sensitive outside [0, 10]; wire 1's window pokes
        # into it, wire 2's window sits fully inside it.
        assert feasible_aggressors(0, switching, sensitive[0]) == [1, 2]
        # Victim 2 is sensitive outside [500, 510]: both early wires
        # qualify.
        assert feasible_aggressors(2, switching, sensitive[2]) == [0, 1]


class TestWorstCaseAlignment:
    def _uniform(self, n, value=0.1):
        peak = np.full((n, n), value)
        np.fill_diagonal(peak, 0.0)
        return peak

    def test_all_aligned_worst_case(self):
        # Every aggressor window identical: the alignment set is all of
        # them and the peak is the full sum.
        n = 4
        switching = [Window(100.0, 110.0)] * n
        sensitive = [
            WindowSet([Window(0.0, 100.0), Window(110.0, 1000.0)])
        ] * n
        peak = self._uniform(n)
        result = worst_case_alignment(
            0, peak[0], peak[0] * 2.0, switching, sensitive[0], 0.25
        )
        assert result.aggressors == (1, 2, 3)
        assert result.feasible == (1, 2, 3)
        assert result.peak == pytest.approx(0.3)
        assert result.area == pytest.approx(0.6)
        assert result.time == pytest.approx(100.0)
        # The aligned instants sit exactly on the sensitive-window
        # boundary (point pieces), so no finite-width noise window
        # survives.
        assert result.noise_windows.is_empty

    def test_fully_disjoint_aggressors_pick_the_strongest(self):
        # Disjoint windows cannot align; the sweep picks the single
        # strongest aggressor.
        switching = [
            Window(500.0, 501.0),  # victim
            Window(0.0, 10.0),
            Window(20.0, 30.0),
            Window(40.0, 50.0),
        ]
        sensitive = WindowSet([Window(0.0, 400.0)])
        peak_row = np.array([0.0, 0.1, 0.3, 0.2])
        result = worst_case_alignment(
            0, peak_row, peak_row, switching, sensitive, 1.0
        )
        assert result.aggressors == (2,)
        assert result.feasible == (1, 2, 3)
        assert result.peak == pytest.approx(0.3)
        assert result.time == pytest.approx(20.0)

    def test_zero_width_windows_still_align(self):
        # Point launch events at the same instant superpose.
        switching = [
            Window(500.0, 500.0),  # victim (point, irrelevant)
            Window(100.0, 100.0),
            Window(100.0, 100.0),
            Window(200.0, 200.0),
        ]
        sensitive = WindowSet([Window(0.0, 400.0)])
        peak_row = np.array([0.0, 0.2, 0.2, 0.3])
        result = worst_case_alignment(
            0, peak_row, peak_row, switching, sensitive, 1.0
        )
        assert result.aggressors == (1, 2)
        assert result.peak == pytest.approx(0.4)
        assert result.time == pytest.approx(100.0)

    def test_empty_sensitive_window_is_quiet(self):
        result = worst_case_alignment(
            0,
            np.array([0.0, 1.0]),
            np.array([0.0, 1.0]),
            [Window(0.0, 1.0), Window(0.0, 1.0)],
            WindowSet(),
            0.25,
        )
        assert result.is_quiet
        assert np.isnan(result.time)
        assert result.peak == 0.0
        assert result.noise_windows.is_empty

    def test_no_feasible_overlap_is_quiet(self):
        # The single aggressor's window misses the sensitive region.
        result = worst_case_alignment(
            0,
            np.array([0.0, 1.0]),
            np.array([0.0, 1.0]),
            [Window(0.0, 1.0), Window(500.0, 510.0)],
            WindowSet([Window(0.0, 400.0)]),
            0.25,
        )
        assert result.is_quiet
        assert result.feasible == ()

    def test_noise_windows_exact_segments(self):
        # Two overlapping aggressors: the summed estimate is 0.2 on
        # [0, 10) and (20, 30], 0.4 on the overlap [10, 20]; with
        # threshold 0.3 the noise window is exactly the overlap.
        switching = [
            Window(500.0, 501.0),
            Window(0.0, 20.0),
            Window(10.0, 30.0),
        ]
        sensitive = WindowSet([Window(0.0, 400.0)])
        peak_row = np.array([0.0, 0.2, 0.2])
        result = worst_case_alignment(
            0, peak_row, peak_row, switching, sensitive, 0.3
        )
        assert result.noise_windows.windows == (Window(10.0, 20.0),)
        assert result.peak == pytest.approx(0.4)
        assert result.time == pytest.approx(10.0)

    def test_align_all_validates_lengths(self):
        peak = self._uniform(3)
        with pytest.raises(ValueError):
            align_all(peak, peak, [Window(0.0, 1.0)], [WindowSet()] * 3, 0.1)

    def test_align_all_earliest_tie_break(self):
        # Two equal-weight disjoint aggressors: ties resolve to the
        # earliest alignment instant.
        switching = [
            Window(500.0, 501.0),
            Window(50.0, 60.0),
            Window(10.0, 20.0),
        ]
        peak = np.array(
            [
                [0.0, 0.2, 0.2],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ]
        )
        sensitive = [
            WindowSet([Window(0.0, 400.0)]),
            WindowSet([Window(0.0, 400.0)]),
            WindowSet([Window(0.0, 400.0)]),
        ]
        results = align_all(peak, peak, switching, sensitive, 1.0)
        assert results[0].time == pytest.approx(10.0)
        assert results[0].aggressors == (2,)
