"""Property suite: the closed-form screen is conservative.

The load-bearing claim of the tiered engine is that a victim the screen
rejects can *never* fail in simulation.  Two properties pin it on
randomized small RC buses (partial inductance scaled to a negligible
level, the regime where the Devgan slope-limited bound is provable):

1. the bare per-pair Devgan bound dominates the simulated single-
   aggressor victim peak for every pair, and
2. end to end, every victim the tiered scan screens *out* stays below
   the failure threshold when forced through full transient simulation.

Hypothesis draws the bus width, driver strength, rise time, threshold
and switching schedule; the conftest profile derandomizes the runs so
CI replays a fixed example stream.
"""

from dataclasses import replace

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuit.sources import step
from repro.circuit.transient import transient_analysis
from repro.experiments.runner import build_model, peec_spec
from repro.extraction.parasitics import Parasitics, extract
from repro.geometry.bus import aligned_bus
from repro.noise.engine import NoiseConfig, run_noise_scan
from repro.noise.screening import ScreenConfig, rc_only_bound
from repro.peec.builder import attach_multi_aggressor_testbench

#: Partial-inductance scale that turns the extracted RLC bus into an
#: effectively-RC one while keeping the MNA companion stamps well
#: conditioned (wL ~ 1e-4 ohm at the fastest drawn edge rate).
RC_SCALE = 1e-6


def _rc_bus(bits: int) -> Parasitics:
    parasitics = extract(aligned_bus(bits))
    blocks = {
        axis: (indices, block * RC_SCALE)
        for axis, (indices, block) in parasitics.inductance_blocks.items()
    }
    return Parasitics(
        system=parasitics.system,
        inductance=parasitics.inductance * RC_SCALE,
        inductance_blocks=blocks,
        resistance=parasitics.resistance,
        ground_capacitance=parasitics.ground_capacitance,
        coupling_capacitance=parasitics.coupling_capacitance,
    )


class TestDevganPairBound:
    @given(
        bits=st.integers(min_value=3, max_value=5),
        aggressor=st.integers(min_value=0, max_value=4),
        driver_resistance=st.floats(min_value=60.0, max_value=300.0),
        rise_ps=st.floats(min_value=5.0, max_value=40.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_pair_bound_dominates_simulation(
        self, bits, aggressor, driver_resistance, rise_ps
    ):
        aggressor = aggressor % bits
        rise = rise_ps * 1e-12
        parasitics = _rc_bus(bits)
        config = ScreenConfig(
            rise_time=rise, driver_resistance=driver_resistance
        )
        bound, _ = rc_only_bound(parasitics, config)

        built = build_model(peec_spec(), parasitics)
        attach_multi_aggressor_testbench(
            built.skeleton,
            {aggressor: step(config.vdd, rise_time=rise)},
            driver_resistance,
            config.load_capacitance,
        )
        probes = [
            built.skeleton.ports[w].far for w in range(bits) if w != aggressor
        ]
        result = transient_analysis(
            built.circuit,
            rise + 200e-12,
            min(1e-12, rise / 10.0),
            probe_nodes=probes,
        )
        for victim in range(bits):
            if victim == aggressor:
                continue
            peak = float(
                np.abs(
                    np.real(
                        result.voltage(built.skeleton.ports[victim].far).v
                    )
                ).max()
            )
            if bound[victim, aggressor] > 0.0:
                assert peak <= bound[victim, aggressor], (
                    f"victim {victim} peak {peak:.3e} exceeds Devgan "
                    f"bound {bound[victim, aggressor]:.3e}"
                )
            else:
                # Zero direct coupling capacitance (non-adjacent pair):
                # the victim only sees *second-order* noise relayed
                # through intermediate wires, outside the Devgan bound's
                # scope.  The engine's combined screen covers such pairs
                # through the calibrated envelope channel; here we pin
                # that the leakage really is second-order small, far
                # below any realistic failure threshold.
                assert peak <= 0.01 * config.vdd, (
                    f"non-adjacent victim {victim} sees first-order-"
                    f"sized noise {peak:.3e}"
                )


class TestScreenOutIsSafe:
    @given(
        bits=st.integers(min_value=4, max_value=8),
        driver_resistance=st.floats(min_value=80.0, max_value=250.0),
        rise_ps=st.floats(min_value=5.0, max_value=25.0),
        threshold_fraction=st.floats(min_value=0.02, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=8, deadline=None)
    def test_screened_out_victims_never_fail(
        self, bits, driver_resistance, rise_ps, threshold_fraction, seed
    ):
        parasitics = _rc_bus(bits)
        config = NoiseConfig(
            rise_time=rise_ps * 1e-12,
            threshold_fraction=threshold_fraction,
            period=600e-12,
            schedule_seed=seed,
            driver_resistance=driver_resistance,
            settle_time=150e-12,
        )
        scan = run_noise_scan(parasitics, spec=peec_spec(), config=config)
        # Force every victim through the simulation tier: the same scan
        # with a negligible threshold.
        fullsim = run_noise_scan(
            parasitics,
            spec=peec_spec(),
            config=replace(config, threshold_fraction=1e-9),
        )
        assert all(v.escalated for v in fullsim.victims)
        for screened, simulated in zip(scan.victims, fullsim.victims):
            if screened.escalated:
                # Conservatism also holds inside the escalation tier.
                assert screened.screen_peak >= simulated.sim_peak
            else:
                assert simulated.sim_peak <= config.threshold, (
                    f"victim {screened.wire} was screened out at "
                    f"{config.threshold:.3e} V but simulates to "
                    f"{simulated.sim_peak:.3e} V"
                )
