"""Golden suite for the design-space sweep engine.

A committed 8-bit grid (12 scenarios, 96 victims) pins the sweep's
numbers: escalation decisions, failing scenarios, pooled family
quantiles (to 1e-9), both histograms, and the report checksum.  The
load-bearing equivalence -- the batched sweep is *bit-identical* to
independent per-scenario scans -- is asserted both through the cache
and against true cold recomputation.  (Bit-identity holds in this
small-system regime; at bench scale SuperLU's blocked multi-RHS kernel
rounds differently in the last bits, which ``BENCH_noise_sweep.json``
covers with a tolerance instead.)
"""

import dataclasses

import numpy as np
import pytest

from repro.noise.engine import NoiseConfig, run_noise_scan
from repro.noise.sweep import (
    MAX_COLUMNS_PER_SIM,
    Scenario,
    SweepGrid,
    run_sweep,
    sweep_report_checksum,
)
from repro.pipeline.cache import PipelineCache, cached_extract
from repro.pipeline.profiling import collect

#: The committed golden grid: 2 wire widths x 3 spacings x 2 drivers
#: of an 8-bit aligned bus under a tight 12%-supply threshold.
GOLDEN_GRID = SweepGrid(
    topologies=("bus",),
    widths=(8,),
    wire_widths=(0.5e-6, 1e-6),
    spacings=(1e-6, 2e-6, 4e-6),
    drivers=(50.0, 100.0),
    base=NoiseConfig(threshold_fraction=0.12),
)

GOLDEN_CHECKSUM = (
    "9cd89df493173c9ec7ba9468fbd9a11d685d6bc081486323fb2ba008131124e7"
)

#: Pooled per-victim quantiles of the golden family, frozen to 1e-9.
GOLDEN_PEAK_QUANTILES = (
    0.052795237614509970,
    0.107765728049080380,
    0.118683136544331270,
    0.137928999579400970,
    0.152768466359081870,
    0.185017562474028700,
)
GOLDEN_MARGIN_QUANTILES = (
    -0.065017562474028700,
    -0.017928999579400987,
    0.001316863455668726,
    0.012234271950919605,
    0.035691791572691720,
    0.067204762385490030,
)


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    cache = PipelineCache(tmp_path_factory.mktemp("sweep_cache"))
    return run_sweep(GOLDEN_GRID, parallel=1, cache=cache), cache


class TestScenarioValidation:
    def test_label_encodes_every_axis(self):
        scenario = Scenario("bus", 8, 0.5e-6, 2e-6, 50.0, 1.5, segments=4)
        assert scenario.label == "bus8_w500n_s2000n_r50_d1.5_g4"
        assert Scenario("bus", 8, 1e-6, 2e-6, 50.0, 1.0).label == (
            "bus8_w1000n_s2000n_r50_d1"
        )

    def test_rejects_bad_axes(self):
        with pytest.raises(ValueError, match="topology"):
            Scenario("ring", 8, 1e-6, 2e-6, 50.0, 1.0)
        with pytest.raises(ValueError, match="width"):
            Scenario("bus", 1, 1e-6, 2e-6, 50.0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            Scenario("bus", 8, 1e-6, 2e-6, -50.0, 1.0)
        with pytest.raises(ValueError, match="density"):
            Scenario("bus", 8, 1e-6, 2e-6, 50.0, 0.0)
        with pytest.raises(ValueError, match="segments"):
            Scenario("bus", 8, 1e-6, 2e-6, 50.0, 1.0, segments=0)

    def test_crossbar_rejects_segmented_lines(self):
        with pytest.raises(ValueError, match="crossbar"):
            Scenario("crossbar", 4, 1e-6, 2e-6, 50.0, 1.0, segments=4)
        # segments=1 stays valid.
        Scenario("crossbar", 4, 1e-6, 2e-6, 50.0, 1.0, segments=1)

    def test_segmented_scenarios_key_distinct_geometries(self):
        plain = Scenario("bus", 8, 1e-6, 2e-6, 50.0, 1.0)
        fine = Scenario("bus", 8, 1e-6, 2e-6, 50.0, 1.0, segments=4)
        assert plain.geometry() != fine.geometry()
        # Electrical-only knobs share one geometry (one cache entry).
        dense = Scenario("bus", 8, 1e-6, 2e-6, 100.0, 2.0)
        assert plain.geometry() == dense.geometry()

    def test_grid_axes_must_be_non_empty(self):
        with pytest.raises(ValueError, match="densities"):
            SweepGrid(densities=())
        with pytest.raises(ValueError, match="segments"):
            SweepGrid(segments=())

    def test_grid_order_is_axis_major_product(self):
        grid = SweepGrid(
            widths=(4, 8), drivers=(50.0, 100.0), segments=(1, 2)
        )
        assert grid.num_scenarios == 8
        labels = [s.label for s in grid.scenarios()]
        assert len(set(labels)) == 8
        # Last axis (segments) varies fastest, first (widths) slowest.
        assert labels[0] == "bus4_w1000n_s2000n_r50_d1"
        assert labels[1] == "bus4_w1000n_s2000n_r50_d1_g2"
        assert labels[4] == "bus8_w1000n_s2000n_r50_d1"


class TestGoldenGrid:
    def test_escalation_and_failure_counts(self, golden):
        report, _ = golden
        assert report.num_scenarios == 12
        assert sum(r.report.num_victims for r in report.results) == 96
        assert sum(r.report.num_escalated for r in report.results) == 76
        assert len(report.failing_scenarios()) == 6

    def test_checksum_is_frozen(self, golden):
        report, _ = golden
        assert sweep_report_checksum(report) == GOLDEN_CHECKSUM

    def test_family_quantiles_frozen_to_1e9(self, golden):
        report, _ = golden
        quantiles = report.family_quantiles()["bus"]
        assert quantiles["peak_V"] == pytest.approx(
            GOLDEN_PEAK_QUANTILES, abs=1e-9
        )
        assert quantiles["margin_V"] == pytest.approx(
            GOLDEN_MARGIN_QUANTILES, abs=1e-9
        )

    def test_histograms(self, golden):
        report, _ = golden
        escalation = report.escalation_histogram()
        assert escalation["counts"] == [2, 0, 0, 0, 0, 0, 0, 2, 0, 8]
        conservatism = report.conservatism_histogram()
        assert conservatism["counts"] == [28, 30, 2, 15, 1, 0, 0]
        # Nothing falls outside the fixed bins.
        assert sum(escalation["counts"]) == report.num_scenarios
        assert sum(conservatism["counts"]) == len(
            report.conservatism_ratios()
        )

    def test_worst_offender_is_the_widest_spacing_corner(self, golden):
        report, _ = golden
        worst = report.worst_offenders(1)[0]
        assert worst["scenario"] == "bus8_w1000n_s4000n_r50_d1"
        assert worst["tier"] == "sim"
        assert worst["margin_V"] < 0

    def test_json_dict_round_trips_through_json(self, golden):
        import json

        report, _ = golden
        payload = json.loads(json.dumps(report.to_json_dict()))
        assert payload["num_scenarios"] == 12
        assert len(payload["scenarios"]) == 12
        assert payload["scenarios"][0]["segments"] == 1
        assert payload["escalation_histogram"]["counts"] == [
            2, 0, 0, 0, 0, 0, 0, 2, 0, 8,
        ]

    def test_table_renders_every_scenario(self, golden):
        report, _ = golden
        table = report.to_table()
        for scenario in GOLDEN_GRID.scenarios():
            assert scenario.label in table
        assert "screen-conservatism histogram" in table


class TestBatchedEquivalence:
    """The sweep is bit-identical to independent per-scenario scans."""

    def test_matches_cold_independent_scans(self, golden):
        report, _ = golden
        for result, scenario in zip(report.results, GOLDEN_GRID.scenarios()):
            parasitics = cached_extract(scenario.geometry().build(), cache=None)
            independent = run_noise_scan(
                parasitics,
                GOLDEN_GRID.model,
                scenario.config(GOLDEN_GRID.base),
                cache=None,
            )
            for theirs, ours in zip(
                independent.victims, result.report.victims
            ):
                assert theirs.wire == ours.wire
                assert theirs.escalated == ours.escalated
                assert theirs.effective_peak == ours.effective_peak

    def test_sweep_fills_the_scan_cache(self, golden):
        """A later independent scan of any grid point is a cache hit."""
        report, cache = golden
        scenario = GOLDEN_GRID.scenarios()[0]
        parasitics = cached_extract(scenario.geometry().build(), cache=cache)
        with collect() as profile:
            rescan = run_noise_scan(
                parasitics,
                GOLDEN_GRID.model,
                scenario.config(GOLDEN_GRID.base),
                cache=cache,
            )
        # A hit returns the stored report without screening or
        # simulating anything.
        assert profile.counters.get("noise_victims_escalated", 0) == 0
        assert profile.counters.get("transient_steps", 0) == 0
        first = report.results[0].report
        assert [v.effective_peak for v in rescan.victims] == [
            v.effective_peak for v in first.victims
        ]

    def test_rerun_through_cache_is_identical(self, golden):
        report, cache = golden
        with collect() as profile:
            again = run_sweep(GOLDEN_GRID, parallel=1, cache=cache)
        assert (
            profile.counters["noise_sweep_cache_hits"]
            == GOLDEN_GRID.num_scenarios
        )
        assert sweep_report_checksum(again) == GOLDEN_CHECKSUM

    def test_batching_actually_merged_columns(self, golden):
        """The golden grid's 76 escalations ran far fewer transients."""
        with collect() as profile:
            run_sweep(GOLDEN_GRID, parallel=1, cache=None)
        assert profile.counters["noise_sweep_batched_columns"] == 76
        max_calls = int(np.ceil(76 / MAX_COLUMNS_PER_SIM)) + len(
            GOLDEN_GRID.scenarios()
        )
        assert profile.counters["noise_sweep_sim_calls"] <= max_calls
        assert profile.counters["noise_sweep_sim_groups"] < 12


class TestParallelDeterminism:
    def test_parallel_worker_count_does_not_change_results(self):
        grid = SweepGrid(
            widths=(6,),
            spacings=(1e-6, 2e-6),
            base=NoiseConfig(threshold_fraction=0.12),
        )
        serial = run_sweep(grid, parallel=1, cache=None)
        pooled = run_sweep(grid, parallel=2, cache=None)
        assert sweep_report_checksum(serial) == sweep_report_checksum(pooled)
        for a, b in zip(serial.results, pooled.results):
            assert a.scenario == b.scenario


class TestReceiverThreadsThroughSweep:
    def test_receiver_grid_matches_fraction_grid(self):
        """A degenerate receiver sweeps bit-identically to the scalar."""
        from repro.noise.receiver import ReceiverModel

        base = NoiseConfig(threshold_fraction=0.12)
        with_receiver = dataclasses.replace(
            base,
            receiver=ReceiverModel.quarter_supply(0.12),
        )
        grid = SweepGrid(widths=(6,), base=base)
        receiver_grid = SweepGrid(widths=(6,), base=with_receiver)
        plain = run_sweep(grid, parallel=1, cache=None)
        nonlinear = run_sweep(receiver_grid, parallel=1, cache=None)
        assert sweep_report_checksum(plain) == sweep_report_checksum(
            nonlinear
        )
