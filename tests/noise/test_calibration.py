"""The recalibration harness: per-family conservatism, loud failure.

One exact measure/fit/check cycle per topology family proves the
fitted two-table envelope dominates held-out exact solves
(``min_margin >= 1``); a deliberately scaled-down envelope must be
*rejected* with :class:`CalibrationError` -- the harness has no silent
acceptance path.  The extrapolation guard
(:class:`CalibrationRangeWarning` + ``noise_kappa_out_of_range``
counter) is pinned here too: screening a bus wider than the calibrated
table reach must warn, screening inside it must not.
"""

import warnings
from dataclasses import replace

import pytest

from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.noise.calibration import (
    CALIBRATION_FAMILIES,
    CalibrationError,
    calibrate_family,
    check_envelope,
    family_geometry,
    fit_envelope,
    measure_exact_peaks,
    sample_positions,
)
from repro.noise.engine import NoiseConfig
from repro.noise.screening import (
    CalibrationRangeWarning,
    KappaEnvelope,
    screen_pairs,
)
from repro.pipeline.profiling import collect


@pytest.fixture(scope="module")
def bus8():
    return extract(aligned_bus(8))


@pytest.fixture(scope="module")
def bus8_samples(bus8):
    fit, check = sample_positions(8)
    return measure_exact_peaks(bus8, tuple(fit) + tuple(check))


class TestSamplePositions:
    def test_fit_and_check_are_disjoint(self):
        fit, check = sample_positions(16)
        assert set(fit) == {0, 15, 8}
        assert set(check) == {4, 12}
        assert not set(fit) & set(check)

    def test_narrow_bus_falls_back_to_fit_positions(self):
        fit, check = sample_positions(3)
        assert set(check) <= set(fit) or check
        assert all(0 <= p < 3 for p in fit + check)


class TestFamilyCalibration:
    @pytest.mark.parametrize("family", CALIBRATION_FAMILIES)
    def test_fitted_envelope_dominates_held_out_solves(self, family):
        size = 8 if family != "crossbar" else 4
        result = calibrate_family(family, size=size)
        assert result.envelope.family == family
        assert result.min_margin >= 1.0
        assert result.num_checked_pairs > 0
        assert not set(result.fit_aggressors) & set(result.check_aggressors)

    def test_counts_one_solve_per_sampled_aggressor(self, bus8):
        fit, check = sample_positions(8)
        with collect() as profile:
            calibrate_family("bus", size=8, parasitics=bus8)
        assert profile.counters["noise_calibration_solves"] == len(
            fit + check
        )

    def test_unknown_family_is_rejected(self):
        with pytest.raises(ValueError, match="family"):
            family_geometry("ring", 8)


class TestNonConservativeRejection:
    def test_scaled_down_envelope_raises(self, bus8, bus8_samples):
        fit, check = sample_positions(8)
        envelope = fit_envelope(
            bus8,
            bus8_samples[: len(fit)],
            "bus",
            vdd=1.0,
            edge_reach=2,
            edge_boost=0.7,
        )
        # The honest fit passes...
        margin, checked = check_envelope(bus8, envelope, bus8_samples)
        assert margin >= 1.0 and checked > 0
        # ...the same tables scaled to 5% must be rejected loudly.
        broken = replace(
            envelope,
            edge=tuple(0.05 * v for v in envelope.edge),
            center=tuple(0.05 * v for v in envelope.center),
        )
        with pytest.raises(CalibrationError, match="non-conservative"):
            check_envelope(bus8, broken, bus8_samples)

    def test_error_names_the_worst_offender(self, bus8, bus8_samples):
        fit, _ = sample_positions(8)
        envelope = fit_envelope(
            bus8, bus8_samples[: len(fit)], "bus", 1.0, 2, 0.7
        )
        broken = replace(
            envelope,
            edge=tuple(1e-4 * v for v in envelope.edge),
            center=tuple(1e-4 * v for v in envelope.center),
        )
        with pytest.raises(CalibrationError, match="victim .* aggressor"):
            check_envelope(bus8, broken, bus8_samples)


class TestExtrapolationGuard:
    def test_short_table_warns_and_counts(self, bus8):
        # A 4-entry table screening an 8-bit bus (max distance 7)
        # extrapolates past its calibrated reach.
        short = KappaEnvelope(
            edge=(0.5, 0.4, 0.3, 0.2),
            center=(0.4, 0.3, 0.2, 0.1),
            edge_reach=2,
            edge_boost=0.7,
            family="bus",
        )
        config = replace(NoiseConfig().screen_config, envelope=short)
        with collect() as profile:
            with pytest.warns(CalibrationRangeWarning, match="clamping"):
                screen_pairs(bus8, config)
        assert profile.counters["noise_kappa_out_of_range"] > 0

    def test_full_reach_table_is_silent(self, bus8):
        with collect() as profile:
            with warnings.catch_warnings():
                warnings.simplefilter("error", CalibrationRangeWarning)
                screen_pairs(bus8, NoiseConfig().screen_config)
        assert "noise_kappa_out_of_range" not in profile.counters
