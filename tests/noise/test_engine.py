"""Engine-level tests of the tiered screen-then-simulate flow.

Includes the PR's acceptance gate: a full 64-bit scan must keep the
escalation ratio under 30% while every escalated victim's batched-
simulation peak matches the independent single-scenario reference
within 1e-9 relative.
"""

import numpy as np
import pytest

from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.noise.engine import (
    NoiseConfig,
    attach_quiet_bus_testbench,
    run_noise_scan,
)
from repro.noise.windows import Window
from repro.pipeline.cache import PipelineCache
from repro.pipeline.profiling import collect


class TestNoiseConfig:
    def test_threshold_property(self):
        config = NoiseConfig(vdd=1.2, threshold_fraction=0.25)
        assert config.threshold == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseConfig(threshold_fraction=0.0)
        with pytest.raises(ValueError):
            NoiseConfig(threshold_fraction=1.0)
        with pytest.raises(ValueError):
            NoiseConfig(dt=0.0)

    def test_screen_config_carries_calibration_knobs(self):
        config = NoiseConfig(headroom=1.5, safety=1.25, rise_time=5e-12)
        screen = config.screen_config
        assert screen.headroom == 1.5
        assert screen.safety == 1.25
        assert screen.rise_time == 5e-12


class TestQuietBusTestbench:
    def test_every_wire_gets_a_named_source(self, bus5):
        from repro.experiments.runner import build_model, gw_spec

        built = build_model(gw_spec(4), bus5)
        attach_quiet_bus_testbench(built.skeleton)
        names = {element.name for element in built.circuit}
        for wire in range(5):
            assert f"Vdrv{wire}" in names
            assert f"Rd{wire}" in names
            assert f"CL{wire}" in names


class TestRunNoiseScan:
    def test_switching_length_validated(self, bus5):
        with pytest.raises(ValueError):
            run_noise_scan(bus5, switching=[Window(0.0, 1e-12)])

    def test_screen_only_scan(self, bus5):
        report = run_noise_scan(bus5)
        assert report.num_victims == 5
        assert report.num_escalated == 0
        assert report.spec_label == "gwVPEC(b=8)"
        assert not report.failing()
        table = report.to_table()
        assert "escalated" in table and "threshold" in table
        doc = report.to_json_dict()
        assert doc["num_victims"] == 5
        assert len(doc["victims"]) == 5

    def test_escalation_and_conservatism(self, bus16_s1):
        report = run_noise_scan(bus16_s1)
        assert 0 < report.num_escalated < report.num_victims
        for victim in report.victims:
            if victim.escalated:
                assert victim.sim_peak is not None
                # The closed-form bound dominates the simulated peak.
                assert victim.screen_peak >= victim.sim_peak
                assert victim.effective_peak == victim.sim_peak
            else:
                assert victim.sim_peak is None
                assert victim.effective_peak == victim.screen_peak

    def test_profiling_counters(self, bus5):
        with collect() as profile:
            run_noise_scan(bus5)
        counters = profile.counters
        assert counters["noise_pairs_screened"] == 20
        assert (
            counters["noise_victims_screened_out"]
            + counters["noise_victims_escalated"]
            == 5
        )

    def test_cache_roundtrip(self, bus16_s1, tmp_path):
        cache = PipelineCache(tmp_path / "cache")
        first = run_noise_scan(bus16_s1, cache=cache)
        assert cache.entries("noise") == {"noise": 1}
        second = run_noise_scan(bus16_s1, cache=cache)
        assert second.to_json_dict() == first.to_json_dict()
        assert cache.stats.hits >= 1

    def test_cache_key_distinguishes_config(self, bus5, tmp_path):
        cache = PipelineCache(tmp_path / "cache")
        run_noise_scan(bus5, cache=cache)
        run_noise_scan(
            bus5, cache=cache, config=NoiseConfig(threshold_fraction=0.1)
        )
        assert cache.entries("noise") == {"noise": 2}


@pytest.fixture(scope="module")
def bus16_s1():
    """16-bit bus at 1 um spacing: tight enough that victims escalate."""
    return extract(aligned_bus(16, spacing=1e-6))


class TestAcceptance64Bit:
    @pytest.fixture(scope="class")
    def report(self):
        parasitics = extract(aligned_bus(64))
        return run_noise_scan(parasitics, verify=True)

    def test_escalation_ratio_under_30_percent(self, report):
        assert report.num_victims == 64
        assert 0 < report.escalation_ratio < 0.30

    def test_batched_matches_direct_reference_within_1e9(self, report):
        deviations = [
            v.verify_deviation for v in report.victims if v.escalated
        ]
        assert deviations
        assert max(deviations) < 1e-9

    def test_screen_dominates_simulation(self, report):
        for victim in report.victims:
            if victim.escalated:
                assert victim.screen_peak >= victim.sim_peak

    def test_noise_windows_inside_period(self, report):
        period = report.config.period
        for victim in report.victims:
            for window in victim.noise_windows:
                assert 0.0 <= window.start <= window.end <= period


class TestIterativeTransientTwins:
    """``spec.solver == "iterative"`` routes escalated-victim transients
    through the iterative-first sparse tier; decisions must match the
    direct scan and peaks agree to 1e-8 on the same parasitics."""

    def test_policy_selection(self):
        from repro.experiments.runner import gw_spec
        from repro.health import FallbackPolicy
        from repro.noise.engine import (
            ITERATIVE_TRANSIENT_POLICY,
            _transient_policy,
        )

        assert (
            _transient_policy(gw_spec(8, solver="iterative"), None)
            is ITERATIVE_TRANSIENT_POLICY
        )
        assert _transient_policy(gw_spec(8), None) is None
        explicit = FallbackPolicy()
        assert (
            _transient_policy(gw_spec(8, solver="iterative"), explicit)
            is explicit
        )
        assert ITERATIVE_TRANSIENT_POLICY.prefer_iterative

    def test_iterative_scan_matches_direct_decisions(self, bus16_s1):
        from repro.experiments.runner import gw_spec

        config = NoiseConfig(period=300e-12)
        direct = run_noise_scan(bus16_s1, spec=gw_spec(8), config=config)
        with collect() as profile:
            iterative = run_noise_scan(
                bus16_s1,
                spec=gw_spec(8, solver="iterative"),
                config=config,
            )
        assert direct.num_escalated > 0
        # The escalated transients run on the iterative tier: thousands
        # of time steps' worth of refinement solves against at most one
        # direct factorization per simulated system elsewhere in the
        # flow (the policy governs the transient loop, not e.g. DC
        # operating points).
        assert profile.counters["solve_ilu_refine"] > 100
        assert profile.counters.get("solve_lu", 0) <= direct.num_escalated
        by_wire = {v.wire: v for v in direct.victims}
        for victim in iterative.victims:
            twin = by_wire[victim.wire]
            assert victim.escalated == twin.escalated
            if victim.escalated:
                assert victim.sim_peak == pytest.approx(
                    twin.sim_peak, rel=1e-8
                )
        assert [v.wire for v in iterative.failing()] == [
            v.wire for v in direct.failing()
        ]
