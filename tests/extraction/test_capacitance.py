"""Unit tests for the 2.5-D capacitance model."""

import numpy as np
import pytest

from repro.extraction.capacitance import CapacitanceModel, extract_capacitances
from repro.geometry.bus import aligned_bus
from repro.geometry.spiral import square_spiral


class TestGroundCapacitance:
    def test_magnitude_for_paper_line(self):
        # ~70 fF/mm is the right class for a minimum wire over 1 um oxide.
        model = CapacitanceModel()
        per_length = model.ground_capacitance_per_length(1e-6, 1e-6)
        assert 20e-12 < per_length < 200e-12

    def test_wider_wire_more_capacitance(self):
        model = CapacitanceModel()
        assert model.ground_capacitance_per_length(
            2e-6, 1e-6
        ) > model.ground_capacitance_per_length(1e-6, 1e-6)

    def test_scales_with_eps_r(self):
        low = CapacitanceModel(eps_r=2.0)
        high = CapacitanceModel(eps_r=4.0)
        ratio = high.ground_capacitance_per_length(
            1e-6, 1e-6
        ) / low.ground_capacitance_per_length(1e-6, 1e-6)
        assert ratio == pytest.approx(2.0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            CapacitanceModel().ground_capacitance_per_length(0.0, 1e-6)


class TestCouplingCapacitance:
    def test_decays_with_spacing(self):
        model = CapacitanceModel()
        close = model.coupling_capacitance_per_length(1e-6, 1e-6, 1e-6)
        far = model.coupling_capacitance_per_length(1e-6, 4e-6, 1e-6)
        assert close > far > 0

    def test_thicker_metal_more_coupling(self):
        model = CapacitanceModel()
        assert model.coupling_capacitance_per_length(
            2e-6, 2e-6, 1e-6
        ) > model.coupling_capacitance_per_length(1e-6, 2e-6, 1e-6)

    def test_rejects_nonpositive_spacing(self):
        with pytest.raises(ValueError):
            CapacitanceModel().coupling_capacitance_per_length(1e-6, 0.0, 1e-6)


class TestExtraction:
    def test_one_ground_cap_per_filament(self, bus5):
        assert bus5.ground_capacitance.shape == (5,)
        assert np.all(bus5.ground_capacitance > 0)

    def test_adjacent_only_coupling(self, bus5):
        assert set(bus5.coupling_capacitance) == {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_coupling_scales_with_overlap(self):
        ground_full, coupling_full = extract_capacitances(aligned_bus(2))
        del ground_full
        _, coupling_half = extract_capacitances(aligned_bus(2, length=500e-6))
        assert coupling_full[(0, 1)] == pytest.approx(
            2.0 * coupling_half[(0, 1)], rel=1e-9
        )

    def test_uniform_bus_uniform_values(self, bus16):
        values = list(bus16.coupling_capacitance.values())
        assert values == pytest.approx([values[0]] * len(values))

    def test_spiral_turn_coupling_present(self):
        _, coupling = extract_capacitances(square_spiral(turns=2, total_segments=24))
        assert len(coupling) > 0
        assert all(v > 0 for v in coupling.values())
