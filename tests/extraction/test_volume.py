"""Unit tests for volume-filament (skin/proximity) analysis."""

import numpy as np
import pytest

from repro.extraction.resistance import dc_resistance, skin_effect_resistance
from repro.extraction.volume import (
    conductor_impedance,
    counts_for_skin_depth,
    subdivide_cross_section,
)
from repro.geometry.filament import Axis, Filament


def bar(width=10e-6, thickness=10e-6, length=1000e-6):
    return Filament((0, 0, 0), length, width, thickness, Axis.X)


class TestSubdivision:
    def test_tile_count(self):
        subs = subdivide_cross_section(bar(), 4, 3)
        assert len(subs) == 12

    def test_tiles_partition_area(self):
        parent = bar()
        subs = subdivide_cross_section(parent, 4, 3)
        assert sum(s.cross_section_area for s in subs) == pytest.approx(
            parent.cross_section_area
        )

    def test_tiles_do_not_overlap(self):
        from repro.geometry.system import FilamentSystem

        subs = [
            f.with_wire(0, k)
            for k, f in enumerate(subdivide_cross_section(bar(), 3, 3))
        ]
        FilamentSystem(subs).validate_no_overlaps()

    def test_identity_subdivision(self):
        parent = bar()
        (only,) = subdivide_cross_section(parent, 1, 1)
        assert only.width == parent.width
        assert only.thickness == parent.thickness

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            subdivide_cross_section(bar(), 0, 1)

    def test_y_axis_orientation(self):
        parent = Filament((0, 0, 0), 100e-6, 4e-6, 2e-6, Axis.Y)
        subs = subdivide_cross_section(parent, 2, 2)
        xs = {s.origin[0] for s in subs}
        zs = {s.origin[2] for s in subs}
        assert len(xs) == 2 and len(zs) == 2  # width spans x, thickness z


class TestSkinDepthCounts:
    def test_dc_needs_one(self):
        assert counts_for_skin_depth(bar(), 0.0) == (1, 1)

    def test_high_frequency_needs_many(self):
        w, t = counts_for_skin_depth(bar(), 10e9)
        assert w > 1 and t > 1

    def test_capped(self):
        w, t = counts_for_skin_depth(bar(width=1e-3, thickness=1e-3), 100e9)
        assert w <= 8 and t <= 8


class TestConductorImpedance:
    @pytest.fixture(scope="class")
    def impedance(self):
        return conductor_impedance(bar(), [1e6, 1e8, 1e9, 1e10])

    def test_low_frequency_matches_dc(self, impedance):
        assert impedance.resistance[0] == pytest.approx(
            dc_resistance(bar()), rel=0.02
        )

    def test_resistance_monotone_in_frequency(self, impedance):
        assert list(impedance.resistance) == sorted(impedance.resistance)

    def test_inductance_decreases_with_frequency(self, impedance):
        assert impedance.inductance[-1] < impedance.inductance[0]

    def test_matches_rim_model_in_transition(self, impedance):
        # The closed-form rim approximation should agree within ~25%
        # where the subdivision still resolves the skin depth.
        reference = skin_effect_resistance(bar(), 1e10)
        measured = float(
            np.interp(1e10, impedance.frequencies, impedance.resistance)
        )
        assert measured == pytest.approx(reference, rel=0.25)

    def test_proximity_effect_raises_resistance(self):
        victim = bar()
        neighbor = bar().translated(dy=12e-6)
        alone = conductor_impedance(victim, [1e10])
        crowded = conductor_impedance(victim, [1e10], neighbors=(neighbor,))
        assert crowded.resistance[0] > alone.resistance[0]

    def test_at_interpolates(self, impedance):
        z = impedance.at(5e8)
        assert z.real > 0 and z.imag > 0

    def test_rejects_bad_frequencies(self):
        with pytest.raises(ValueError):
            conductor_impedance(bar(), [])
        with pytest.raises(ValueError):
            conductor_impedance(bar(), [0.0])
