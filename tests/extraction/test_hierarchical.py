"""Hierarchical block low-rank inductance: correctness and plumbing.

The operator's contract has two halves:

- with compression *disabled* (``cutoff=0``) it is the dense general
  path bit for bit -- same Neumann/GMD closed forms evaluated
  elementwise, just stored as tree blocks;
- with compression *enabled* every ``gather`` window agrees with the
  exact entries to within (a modest multiple of) the ACA cutoff.

Hypothesis drives both over the geometry families the repo ships (the
aligned bus, the jittered non-aligned bus, the two-layer crossbar);
random *scattered* index sets are drawn deliberately -- they force the
gather descent across far-field low-rank blocks stored at internal tree
pairs, a path neighbor-window workloads never touch.

Bit-identity is asserted on non-aligned geometries only: on perfect
lattices the dense extractor takes its displacement-class fast path,
which differs from the general closed forms at the ~1e-12 reassembly
level (see test_inductance.py), so there the comparison is allclose.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.extraction.hierarchical import (
    DEFAULT_CONFIG,
    HierarchicalConfig,
    LazyInductance,
    hierarchical_blocks,
)
from repro.extraction.parasitics import Parasitics, extract
from repro.geometry.bus import aligned_bus, nonaligned_bus
from repro.geometry.crossbar import crossbar
from repro.pipeline.hashing import stable_hash
from repro.pipeline.profiling import collect
from repro.vpec.flow import windowed_vpec

#: Small leaves force a deep tree (and far-field low-rank blocks) even
#: at unit-test sizes.
TEST_CONFIG = HierarchicalConfig(leaf_size=8)
EXACT_CONFIG = HierarchicalConfig(leaf_size=8, cutoff=0.0)


def _geometry(family: str, seed: int):
    if family == "bus":
        return aligned_bus(24, segments_per_line=3)
    if family == "nonaligned":
        return nonaligned_bus(
            16, segments_per_line=4, offset_jitter=0.3, seed=seed
        )
    return crossbar(10, 10)


def _blocks(system, config):
    return hierarchical_blocks(system, config=config)


def _dense_blocks(system):
    return extract(system).inductance_blocks


class TestGatherMatchesExact:
    @settings(deadline=None, max_examples=12)
    @given(
        family=st.sampled_from(["bus", "nonaligned", "crossbar"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_scattered_gather_within_cutoff(self, family, seed):
        system = _geometry(family, seed)
        hier = _blocks(system, TEST_CONFIG)
        dense = _dense_blocks(system)
        rng = np.random.default_rng(seed)
        for axis, (indices, operator) in hier.items():
            exact = np.asarray(dense[axis][1])
            scale = np.abs(exact).max()
            m = len(indices)
            width = min(12, m)
            for _ in range(4):
                members = rng.choice(m, size=width, replace=False)
                window = operator.gather(members, members)
                reference = exact[np.ix_(members, members)]
                # ACA's Frobenius-estimate stopping is approximate;
                # allow two orders of magnitude of slack over the
                # cutoff (observed errors sit well under one).
                assert (
                    np.abs(window - reference).max()
                    <= 100 * TEST_CONFIG.cutoff * scale + 1e-12 * scale
                )

    @settings(deadline=None, max_examples=8)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_gather_exact_when_compression_disabled(self, seed):
        system = _geometry("nonaligned", seed)
        hier = _blocks(system, EXACT_CONFIG)
        dense = _dense_blocks(system)
        rng = np.random.default_rng(seed)
        for axis, (indices, operator) in hier.items():
            exact = np.asarray(dense[axis][1])
            members = rng.permutation(len(indices))[:12]
            assert np.array_equal(
                operator.gather(members, members),
                exact[np.ix_(members, members)],
            )

    def test_rectangular_and_duplicate_free_gathers(self):
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        (_, operator), = _blocks(system, TEST_CONFIG).values()
        (_, exact), = _dense_blocks(system).values()
        exact = np.asarray(exact)
        rows = np.array([0, 17, 40, 63])
        cols = np.array([5, 6, 50])
        assert np.allclose(
            operator.gather(rows, cols),
            exact[np.ix_(rows, cols)],
            rtol=0,
            atol=100 * TEST_CONFIG.cutoff * np.abs(exact).max(),
        )

    def test_diagonal_is_exact(self):
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        (_, operator), = _blocks(system, TEST_CONFIG).values()
        (_, exact), = _dense_blocks(system).values()
        assert np.array_equal(operator.diagonal(), np.diagonal(exact))


class TestBitIdentityCompressionOff:
    def test_toarray_bit_identical(self):
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        (_, operator), = _blocks(system, EXACT_CONFIG).values()
        (_, exact), = _dense_blocks(system).values()
        assert np.array_equal(operator.toarray(), np.asarray(exact))

    def test_windowed_vpec_bit_identical(self):
        """wVPEC from the exact-mode operator == wVPEC from dense L."""
        system = nonaligned_bus(12, segments_per_line=3, offset_jitter=0.3)
        dense = extract(system)
        hier = extract(
            system, method="hierarchical", hierarchical=EXACT_CONFIG
        )
        built_d = windowed_vpec(dense, window_size=4)
        built_h = windowed_vpec(hier, window_size=4)
        assert built_h.sparse_factor == built_d.sparse_factor
        for net_d, net_h in zip(
            built_d.model.networks, built_h.model.networks
        ):
            assert np.array_equal(net_h.dense_ghat(), net_d.dense_ghat())

    def test_windowed_vpec_close_when_compressed(self):
        system = nonaligned_bus(12, segments_per_line=3, offset_jitter=0.3)
        dense = extract(system)
        hier = extract(
            system, method="hierarchical", hierarchical=TEST_CONFIG
        )
        built_d = windowed_vpec(dense, window_size=4)
        built_h = windowed_vpec(hier, window_size=4)
        for net_d, net_h in zip(
            built_d.model.networks, built_h.model.networks
        ):
            assert np.allclose(
                net_h.dense_ghat(), net_d.dense_ghat(), rtol=1e-5
            )


class TestRoundTrips:
    def _operator(self):
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        (_, operator), = _blocks(system, TEST_CONFIG).values()
        return operator

    def test_pickle_round_trip_bit_identical(self):
        operator = self._operator()
        clone = pickle.loads(pickle.dumps(operator))
        assert isinstance(clone, LazyInductance)
        assert np.array_equal(clone.toarray(), operator.toarray())
        members = np.array([3, 40, 11, 60])
        assert np.array_equal(
            clone.gather(members, members), operator.gather(members, members)
        )

    def test_columns_round_trip_bit_identical(self):
        operator = self._operator()
        meta, arrays = operator.columns()
        clone = LazyInductance.from_columns(meta, arrays)
        assert np.array_equal(clone.toarray(), operator.toarray())

    def test_fingerprint_stable_across_round_trips(self):
        operator = self._operator()
        clone = pickle.loads(pickle.dumps(operator))
        assert stable_hash(operator.fingerprint_payload()) == stable_hash(
            clone.fingerprint_payload()
        )


class TestWireSums:
    def test_matches_dense_aggregation(self):
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        (indices, operator), = _blocks(system, TEST_CONFIG).values()
        wire_of = np.array([system[i].wire for i in indices])
        num_wires = system.num_wires
        dense = operator.toarray()
        gather = np.zeros((num_wires, len(indices)))
        gather[wire_of, np.arange(len(indices))] = 1.0
        reference = gather @ dense @ gather.T
        result = operator.wire_sums(wire_of, num_wires)
        assert np.allclose(result, reference, rtol=1e-12, atol=0)


class TestParasiticsLaziness:
    def test_hierarchical_extract_stays_lazy(self):
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        parasitics = extract(
            system, method="hierarchical", hierarchical=TEST_CONFIG
        )
        assert parasitics.is_hierarchical
        assert not parasitics.has_dense_inductance
        (_, operator), = parasitics.inductance_blocks.values()
        assert isinstance(operator, LazyInductance)
        # The property materializes on demand and agrees with toarray.
        assert np.array_equal(parasitics.inductance, operator.toarray())

    def test_dense_single_axis_full_matrix_aliases_block(self):
        parasitics = extract(aligned_bus(12))
        (_, block), = parasitics.inductance_blocks.values()
        assert np.shares_memory(parasitics.inductance, block)

    def test_pickle_drops_derived_matrix(self):
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        parasitics = extract(
            system, method="hierarchical", hierarchical=TEST_CONFIG
        )
        _ = parasitics.inductance  # materialize the cached view
        clone = pickle.loads(pickle.dumps(parasitics))
        assert not clone.has_dense_inductance
        assert clone.is_hierarchical
        clone.validate()

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            extract(aligned_bus(4), method="mystery")


class TestNumericalWindows:
    def test_small_operator_materializes(self):
        from repro.vpec.windowing import numerical_windows

        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        (_, operator), = _blocks(system, EXACT_CONFIG).values()
        (_, exact), = _dense_blocks(system).values()
        got = numerical_windows(operator, 0.05)
        want = numerical_windows(np.asarray(exact), 0.05)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_large_operator_refused(self, monkeypatch):
        import repro.vpec.windowing as windowing

        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        (_, operator), = _blocks(system, TEST_CONFIG).values()
        monkeypatch.setattr(windowing, "_DENSE_KNN_LIMIT", 16)
        with pytest.raises(ValueError, match="geometric"):
            windowing.numerical_windows(operator, 0.05)


class TestAcaFallback:
    def test_rank_capped_blocks_fall_back_to_dense(self):
        """An unconvergeable rank cap must degrade to exactness, not error."""
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        config = HierarchicalConfig(leaf_size=8, cutoff=1e-12, max_rank=1)
        with collect() as profile:
            (_, operator), = _blocks(system, config).values()
        assert profile.counters.get("hier_aca_fallbacks", 0) >= 1
        (_, exact), = _dense_blocks(system).values()
        exact = np.asarray(exact)
        assert np.allclose(
            operator.toarray(), exact, rtol=0,
            atol=1e-10 * np.abs(exact).max(),
        )


class TestCacheRoundTrip:
    def test_method_aware_keys_and_hierarchical_round_trip(self, tmp_path):
        from repro.extraction.capacitance import CapacitanceModel
        from repro.pipeline.cache import (
            PipelineCache,
            cached_extract,
            parasitics_key,
        )

        system = nonaligned_bus(8, segments_per_line=2, offset_jitter=0.3)
        model = CapacitanceModel()
        key_dense = parasitics_key(system, 1.7e-8, 0.0, model, True)
        key_hier = parasitics_key(
            system, 1.7e-8, 0.0, model, True,
            method="hierarchical", hierarchical=TEST_CONFIG,
        )
        key_hier_alt = parasitics_key(
            system, 1.7e-8, 0.0, model, True,
            method="hierarchical",
            hierarchical=HierarchicalConfig(leaf_size=16),
        )
        assert len({key_dense, key_hier, key_hier_alt}) == 3

        cache = PipelineCache(tmp_path)
        first = cached_extract(
            system, cache=cache,
            method="hierarchical", hierarchical=TEST_CONFIG,
        )
        second = cached_extract(
            system, cache=cache,
            method="hierarchical", hierarchical=TEST_CONFIG,
        )
        (_, op_a), = first.inductance_blocks.values()
        (_, op_b), = second.inductance_blocks.values()
        assert isinstance(op_b, LazyInductance)
        assert np.array_equal(op_a.toarray(), op_b.toarray())


class TestSharedMemoryRoundTrip:
    def test_hierarchical_blocks_ship_as_columns(self):
        from repro.service.shm import SharedColumnBlock, parasitics_columns
        from repro.service.shm import parasitics_from_block

        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        parasitics = extract(
            system, method="hierarchical", hierarchical=TEST_CONFIG
        )
        meta, arrays = parasitics_columns(parasitics)
        block = SharedColumnBlock.create(meta, arrays)
        try:
            clone = parasitics_from_block(block)
            assert clone.is_hierarchical
            (_, op_a), = parasitics.inductance_blocks.values()
            (_, op_b), = clone.inductance_blocks.values()
            assert np.array_equal(op_a.toarray(), op_b.toarray())
            assert np.array_equal(clone.resistance, parasitics.resistance)
        finally:
            block.close()
            block.unlink()


class TestOperatorApply:
    """``matvec``/``matmat``: the operator as a linear map, no gather."""

    def _pair(self):
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        (_, operator), = _blocks(system, TEST_CONFIG).values()
        (_, exact), = _dense_blocks(system).values()
        return operator, np.asarray(exact)

    def test_matvec_matches_exact_within_cutoff(self):
        operator, exact = self._pair()
        rng = np.random.default_rng(0)
        x = rng.normal(size=operator.shape[0])
        scale = np.abs(exact @ x).max()
        np.testing.assert_allclose(
            operator.matvec(x), exact @ x, rtol=0, atol=1e-10 * scale
        )

    def test_matvec_is_deterministic_and_exact_at_cutoff_zero(self):
        system = nonaligned_bus(16, segments_per_line=4, offset_jitter=0.3)
        (_, operator), = _blocks(system, EXACT_CONFIG).values()
        (_, exact), = _dense_blocks(system).values()
        exact = np.asarray(exact)
        rng = np.random.default_rng(1)
        x = rng.normal(size=operator.shape[0])
        first = operator.matvec(x)
        assert np.array_equal(first, operator.matvec(x))
        # Block-order summation differs from one dense GEMV, so the
        # cutoff-0 comparison is allclose at accumulation level, not
        # bitwise.
        np.testing.assert_allclose(
            first, exact @ x, rtol=0, atol=1e-12 * np.abs(exact @ x).max()
        )

    def test_matmat_matches_stacked_matvecs(self):
        operator, exact = self._pair()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(operator.shape[0], 3))
        result = operator.matmat(x)
        assert result.shape == x.shape
        scale = np.abs(exact @ x).max()
        np.testing.assert_allclose(result, exact @ x, rtol=0, atol=1e-10 * scale)
        for k in range(x.shape[1]):
            np.testing.assert_allclose(
                result[:, k], operator.matvec(x[:, k]), rtol=0,
                atol=1e-12 * scale,
            )

    def test_symmetry_through_the_apply(self):
        operator, _ = self._pair()
        n = operator.shape[0]
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=n), rng.normal(size=n)
        left = float(y @ operator.matvec(x))
        right = float(x @ operator.matvec(y))
        assert left == pytest.approx(right, rel=1e-12)


class TestParallelAssembly:
    """Pool-built operators are the serial build bit for bit."""

    def _system(self):
        return nonaligned_bus(24, segments_per_line=4, offset_jitter=0.3)

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_pool_build_is_bit_identical(self, jobs):
        system = self._system()
        serial = extract(
            system, method="hierarchical", hierarchical=TEST_CONFIG
        )
        pooled = extract(
            system, method="hierarchical", hierarchical=TEST_CONFIG, jobs=jobs
        )
        (_, op_serial), = serial.inductance_blocks.values()
        (_, op_pooled), = pooled.inductance_blocks.values()
        assert np.array_equal(op_serial.toarray(), op_pooled.toarray())
        assert np.array_equal(serial.resistance, pooled.resistance)

    def test_spill_blocks_survive_the_pool(self):
        # A rank cap of 1 forces ACA fallbacks whose dense payloads
        # exceed the planned low-rank reservation: the one case where a
        # worker ships a block back through pickle.
        config = HierarchicalConfig(leaf_size=8, cutoff=1e-12, max_rank=1)
        system = self._system()
        serial = extract(system, method="hierarchical", hierarchical=config)
        pooled = extract(
            system, method="hierarchical", hierarchical=config, jobs=2
        )
        (_, op_serial), = serial.inductance_blocks.values()
        (_, op_pooled), = pooled.inductance_blocks.values()
        assert np.array_equal(op_serial.toarray(), op_pooled.toarray())

    def test_worker_profiles_merge_into_the_owner(self):
        system = self._system()
        with collect() as profile:
            extract(
                system, method="hierarchical", hierarchical=TEST_CONFIG,
                jobs=2,
            )
        assert profile.counters["hier_parallel_chunks"] >= 2
        assert profile.seconds.get("hier_build_workers", 0.0) > 0.0
        assert profile.worker_max_seconds["hier_build_workers"] > 0.0
        assert (
            profile.worker_max_seconds["hier_build_workers"]
            <= profile.seconds["hier_build_workers"] + 1e-12
        )

    def test_balanced_chunks_partition_the_plan(self):
        from repro.extraction.hierarchical import _balanced_chunks

        node_lo = np.array([0, 4])
        node_hi = np.array([4, 12])
        plan = np.array(
            [
                [0, 0, 0, 0, 0],
                [0, 1, 0, 16, 0],
                [1, 1, 0, 48, 0],
                [0, 1, 1, 112, 8],
            ]
        )
        chunks = _balanced_chunks(plan, node_lo, node_hi, 2)
        assert np.array_equal(
            np.concatenate(chunks), np.arange(plan.shape[0])
        )
        for chunk in chunks:
            assert np.array_equal(chunk, np.arange(chunk[0], chunk[-1] + 1))
        # More pieces than rows degrades to one chunk per row, never
        # empty chunks.
        many = _balanced_chunks(plan, node_lo, node_hi, 64)
        assert len(many) <= plan.shape[0]
        assert all(chunk.size for chunk in many)
        assert _balanced_chunks(plan[:0], node_lo, node_hi, 4) == []


class TestBenchSuite:
    def test_small_run_checks_dense_hier_agreement(self):
        from repro.bench.extraction_scale import run_extraction_scale_suite

        results = run_extraction_scale_suite(
            kernels=("extract_scale", "window_solve_scale"),
            sizes=(128,),
        )
        by_kernel = {}
        for result in results:
            assert result.seconds > 0
            # RSS-delta peaks can legitimately read 0 for workloads this
            # small (pages already resident); presence is the contract.
            assert result.peak_bytes is not None and result.peak_bytes >= 0
            by_kernel.setdefault(result.kernel, {})[
                result.variant
            ] = result.checksum
        for kernel, variants in by_kernel.items():
            assert variants["dense"] == variants["hierarchical"], (
                kernel,
                variants,
            )

    def test_parallel_ladder_and_iterative_windows(self):
        from repro.bench.extraction_scale import run_extraction_scale_suite

        results = run_extraction_scale_suite(
            kernels=(
                "extract_scale",
                "window_solve_scale",
                "parallel_assembly_scale",
            ),
            sizes=(128,),
            jobs_ladder=(2,),
        )
        checksums = {(r.kernel, r.variant): r.checksum for r in results}
        # The pool rung reproduces the serial extraction checksum (the
        # suite itself raises on divergence; this pins the entry too).
        assert (
            checksums[("parallel_assembly_scale", "jobs2")]
            == checksums[("extract_scale", "hierarchical")]
        )
        # CG-built windows agree with the direct construction within
        # the checksum's rounding (the stats digest is exactly what
        # makes the trajectory solver-robust).
        assert (
            checksums[("window_solve_scale", "hierarchical-iterative")]
            == checksums[("window_solve_scale", "hierarchical")]
        )
