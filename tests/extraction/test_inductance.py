"""Unit tests for the partial-inductance formulas and matrix assembly."""

import math

import numpy as np
import pytest

from repro.constants import MU_0
from repro.extraction.inductance import (
    gmd_parallel_tapes,
    mutual_collinear_filaments,
    mutual_parallel_filaments,
    partial_inductance_matrix,
    self_inductance_bar,
)
from repro.geometry.bus import aligned_bus
from repro.geometry.filament import Axis, Filament
from repro.geometry.system import FilamentSystem


class TestSelfInductance:
    def test_paper_bus_line_magnitude(self):
        # A 1000 x 1 x 1 um bar: ~1.48 nH (classical partial inductance).
        value = self_inductance_bar(1000e-6, 1e-6, 1e-6)
        assert value == pytest.approx(1.48e-9, rel=0.02)

    def test_grows_superlinearly_with_length(self):
        l1 = self_inductance_bar(100e-6, 1e-6, 1e-6)
        l2 = self_inductance_bar(200e-6, 1e-6, 1e-6)
        assert l2 > 2.0 * l1

    def test_decreases_with_cross_section(self):
        thin = self_inductance_bar(100e-6, 0.5e-6, 0.5e-6)
        fat = self_inductance_bar(100e-6, 2e-6, 2e-6)
        assert thin > fat

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            self_inductance_bar(0.0, 1e-6, 1e-6)


class TestMutualParallel:
    def test_aligned_equal_matches_classical_formula(self):
        l, d = 500e-6, 10e-6
        expected = (
            MU_0
            / (2 * math.pi)
            * l
            * (
                math.asinh(l / d)
                - math.sqrt(1 + (d / l) ** 2)
                + d / l
            )
        )
        assert mutual_parallel_filaments(l, l, d) == pytest.approx(expected, rel=1e-12)

    def test_symmetric_in_filament_swap(self):
        # M(A, B) = M(B, A): swap lengths and negate/shift the offset.
        l1, l2, d, s = 300e-6, 150e-6, 5e-6, 40e-6
        forward = mutual_parallel_filaments(l1, l2, d, s)
        backward = mutual_parallel_filaments(l2, l1, d, -s)
        assert forward == pytest.approx(backward, rel=1e-12)

    def test_decays_with_distance(self):
        l = 200e-6
        values = [
            mutual_parallel_filaments(l, l, d) for d in (2e-6, 4e-6, 8e-6, 16e-6)
        ]
        assert all(a > b > 0 for a, b in zip(values, values[1:]))

    def test_bounded_by_self_inductance(self):
        l = 1000e-6
        m = mutual_parallel_filaments(l, l, 3e-6)
        assert 0 < m < self_inductance_bar(l, 1e-6, 1e-6)

    def test_offset_reduces_coupling(self):
        l, d = 100e-6, 4e-6
        aligned = mutual_parallel_filaments(l, l, d, 0.0)
        offset = mutual_parallel_filaments(l, l, d, 50e-6)
        assert 0 < offset < aligned

    def test_far_offset_sign_remains_positive_for_codirected(self):
        value = mutual_parallel_filaments(100e-6, 100e-6, 4e-6, 500e-6)
        assert value > 0

    def test_splitting_is_additive(self):
        # M(A, B) = M(A, B1) + M(A, B2) when B = B1 + B2 end to end.
        l, d = 120e-6, 6e-6
        whole = mutual_parallel_filaments(l, 80e-6, d, 10e-6)
        part1 = mutual_parallel_filaments(l, 40e-6, d, 10e-6)
        part2 = mutual_parallel_filaments(l, 40e-6, d, 50e-6)
        assert whole == pytest.approx(part1 + part2, rel=1e-10)


class TestMutualCollinear:
    def test_positive_for_abutting(self):
        assert mutual_collinear_filaments(100e-6, 100e-6, 100e-6) > 0

    def test_decays_with_gap(self):
        m_close = mutual_collinear_filaments(100e-6, 100e-6, 100e-6)
        m_far = mutual_collinear_filaments(100e-6, 100e-6, 300e-6)
        assert m_close > m_far > 0

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            mutual_collinear_filaments(100e-6, 100e-6, 50e-6)

    def test_matches_lateral_limit(self):
        # The collinear formula is the d -> 0 limit of the parallel one.
        l1, l2, s = 100e-6, 80e-6, 130e-6
        collinear = mutual_collinear_filaments(l1, l2, s)
        near = mutual_parallel_filaments(l1, l2, 1e-10, s)
        assert near == pytest.approx(collinear, rel=1e-3)

    def test_dispatch_from_parallel_entry_point(self):
        direct = mutual_collinear_filaments(50e-6, 50e-6, 60e-6)
        via_parallel = mutual_parallel_filaments(50e-6, 50e-6, 0.0, 60e-6)
        assert via_parallel == pytest.approx(direct, rel=1e-12)


class TestGmd:
    def test_reduces_to_distance_for_far_tapes(self):
        assert gmd_parallel_tapes(1e-6, 100e-6) == pytest.approx(100e-6, rel=1e-4)

    def test_below_center_distance_when_close(self):
        assert gmd_parallel_tapes(1e-6, 2e-6) < 2e-6

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            gmd_parallel_tapes(1e-6, 0.0)


class TestMatrixAssembly:
    def test_symmetric(self, bus16):
        L = bus16.inductance
        assert np.allclose(L, L.T)

    def test_positive_definite(self, bus16):
        assert np.all(np.linalg.eigvalsh(bus16.inductance) > 0)

    def test_diagonal_dominates_offdiagonal_pairwise(self, bus16):
        L = bus16.inductance
        n = L.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                assert abs(L[i, j]) < math.sqrt(L[i, i] * L[j, j])

    def test_nearest_neighbor_strongest(self, bus16):
        L = bus16.inductance
        row = np.abs(L[0].copy())
        row[0] = 0.0
        assert np.argmax(row) == 1

    def test_orthogonal_blocks_are_zero(self, spiral_small):
        system = spiral_small.system
        L = spiral_small.inductance
        groups = system.indices_by_axis()
        x_idx = groups[Axis.X]
        y_idx = groups[Axis.Y]
        assert np.all(L[np.ix_(x_idx, y_idx)] == 0.0)

    def test_blocks_match_full_matrix(self, bus8x2):
        full = bus8x2.inductance
        for indices, block in bus8x2.inductance_blocks.values():
            assert np.allclose(full[np.ix_(indices, indices)], block)

    def test_matches_scalar_formulas(self):
        system = aligned_bus(3, length=500e-6, spacing=3e-6)
        L = partial_inductance_matrix(system, gmd_correction=False)
        expected_m = mutual_parallel_filaments(500e-6, 500e-6, 4e-6)
        assert L[0, 1] == pytest.approx(expected_m, rel=1e-10)
        expected_self = self_inductance_bar(500e-6, 1e-6, 1e-6)
        assert L[0, 0] == pytest.approx(expected_self, rel=1e-12)

    def test_gmd_correction_direction_coplanar_tapes(self):
        # Thin coplanar tapes: GMD < center distance -> larger mutual.
        system = aligned_bus(2, spacing=1e-6, thickness=0.01e-6)
        with_gmd = partial_inductance_matrix(system, gmd_correction=True)
        without = partial_inductance_matrix(system, gmd_correction=False)
        assert with_gmd[0, 1] > without[0, 1]

    def test_gmd_correction_direction_tall_sections(self):
        # Tall sections side by side: GMD > center distance -> smaller
        # mutual (the correction that keeps L^-1 diagonally dominant).
        system = aligned_bus(2, width=0.3e-6, thickness=2e-6, spacing=1e-6)
        with_gmd = partial_inductance_matrix(system, gmd_correction=True)
        without = partial_inductance_matrix(system, gmd_correction=False)
        assert with_gmd[0, 1] < without[0, 1]

    def test_gmd_matches_tape_series(self):
        from repro.extraction.inductance import gmd_rectangles

        numeric = gmd_rectangles(1e-6, 1e-9, 1e-6, 1e-9, 3e-6, 0.0)
        series = gmd_parallel_tapes(1e-6, 3e-6)
        assert numeric == pytest.approx(series, rel=1e-4)

    def test_forward_coupling_in_same_line(self):
        system = aligned_bus(1, segments_per_line=2)
        L = partial_inductance_matrix(system)
        expected = mutual_collinear_filaments(500e-6, 500e-6, 500e-6)
        assert L[0, 1] == pytest.approx(expected, rel=1e-10)

    def test_spiral_matrix_spd(self, spiral_small):
        assert np.all(np.linalg.eigvalsh(spiral_small.inductance) > -1e-30)

    def test_single_filament(self):
        system = FilamentSystem(
            [Filament((0, 0, 0), 100e-6, 1e-6, 1e-6, Axis.X)], name="one"
        )
        L = partial_inductance_matrix(system)
        assert L.shape == (1, 1)
        assert L[0, 0] == pytest.approx(self_inductance_bar(100e-6, 1e-6, 1e-6))
