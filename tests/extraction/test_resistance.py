"""Unit tests for resistance extraction."""

import numpy as np
import pytest

from repro.constants import COPPER_RESISTIVITY
from repro.extraction.resistance import (
    dc_resistance,
    extract_resistances,
    skin_effect_resistance,
)
from repro.geometry.bus import aligned_bus
from repro.geometry.filament import Axis, Filament


def bar(length=1000e-6, width=1e-6, thickness=1e-6):
    return Filament((0, 0, 0), length, width, thickness, Axis.X)


class TestDcResistance:
    def test_paper_line_value(self):
        # rho l / A = 1.7e-8 * 1e-3 / 1e-12 = 17 ohms.
        assert dc_resistance(bar()) == pytest.approx(17.0)

    def test_scales_linearly_with_length(self):
        assert dc_resistance(bar(length=2000e-6)) == pytest.approx(
            2.0 * dc_resistance(bar())
        )

    def test_scales_inverse_with_area(self):
        assert dc_resistance(bar(width=2e-6, thickness=2e-6)) == pytest.approx(
            dc_resistance(bar()) / 4.0
        )


class TestSkinEffect:
    def test_reduces_to_dc_at_low_frequency(self):
        f = bar(width=1e-6, thickness=1e-6)
        assert skin_effect_resistance(f, 1e3) == pytest.approx(dc_resistance(f))

    def test_increases_at_high_frequency_for_fat_wire(self):
        fat = bar(width=10e-6, thickness=10e-6)
        assert skin_effect_resistance(fat, 10e9) > dc_resistance(fat)

    def test_thin_wire_unaffected_at_10ghz(self):
        # Skin depth ~0.66 um at 10 GHz: a 1 um wire has no interior left.
        thin = bar(width=1e-6, thickness=1e-6)
        assert skin_effect_resistance(thin, 10e9) == pytest.approx(
            dc_resistance(thin)
        )

    def test_asymptote_scales_with_sqrt_frequency(self):
        fat = bar(width=50e-6, thickness=50e-6)
        r1 = skin_effect_resistance(fat, 10e9) - 0.0
        r2 = skin_effect_resistance(fat, 40e9)
        # Rim area ~ perimeter * delta, so R ~ 1/delta ~ sqrt(f).
        assert r2 / r1 == pytest.approx(2.0, rel=0.05)


class TestExtraction:
    def test_per_filament_array(self, bus5):
        assert bus5.resistance.shape == (5,)
        assert np.allclose(bus5.resistance, 17.0)

    def test_frequency_option(self):
        system = aligned_bus(2, width=10e-6, spacing=10e-6)
        dc = extract_resistances(system)
        hf = extract_resistances(system, frequency=10e9)
        assert np.all(hf >= dc)

    def test_custom_resistivity(self):
        system = aligned_bus(2)
        doubled = extract_resistances(system, resistivity=2 * COPPER_RESISTIVITY)
        assert np.allclose(doubled, 34.0)
