"""Unit tests for the extraction facade."""

import numpy as np
import pytest

from repro.extraction.parasitics import Parasitics, extract
from repro.geometry.bus import aligned_bus
from repro.geometry.spiral import square_spiral


class TestExtract:
    def test_shapes_consistent(self, bus5):
        n = len(bus5.system)
        assert bus5.inductance.shape == (n, n)
        assert bus5.resistance.shape == (n,)
        assert bus5.ground_capacitance.shape == (n,)

    def test_blocks_cover_all_filaments(self, spiral_small):
        covered = sorted(
            i for indices, _ in spiral_small.inductance_blocks.values() for i in indices
        )
        assert covered == list(range(len(spiral_small.system)))

    def test_validation_rejects_bad_shapes(self, bus5):
        with pytest.raises(ValueError):
            Parasitics(
                system=bus5.system,
                inductance=np.zeros((2, 2)),
                inductance_blocks=bus5.inductance_blocks,
                resistance=bus5.resistance,
                ground_capacitance=bus5.ground_capacitance,
            )

    def test_validation_rejects_bad_vector(self, bus5):
        with pytest.raises(ValueError):
            Parasitics(
                system=bus5.system,
                inductance=bus5.inductance,
                inductance_blocks=bus5.inductance_blocks,
                resistance=np.zeros(3),
                ground_capacitance=bus5.ground_capacitance,
            )

    def test_gmd_flag_propagates(self):
        system = aligned_bus(2, spacing=1e-6)
        with_gmd = extract(system, gmd_correction=True)
        without = extract(system, gmd_correction=False)
        assert with_gmd.inductance[0, 1] != without.inductance[0, 1]

    def test_frequency_affects_resistance_only(self):
        system = aligned_bus(2, width=10e-6, thickness=10e-6, spacing=10e-6)
        lo = extract(system)
        hi = extract(system, frequency=10e9)
        assert np.all(hi.resistance >= lo.resistance)
        assert np.allclose(hi.inductance, lo.inductance)

    def test_spiral_extraction_end_to_end(self):
        parasitics = extract(square_spiral(turns=2, total_segments=20))
        assert len(parasitics.inductance_blocks) == 2
        assert np.all(parasitics.resistance > 0)
