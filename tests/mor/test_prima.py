"""Tests for the block-Arnoldi model order reduction."""

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis, logspace_frequencies
from repro.circuit.netlist import Circuit
from repro.circuit.sources import ac_unit
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.mor import reduce_circuit
from repro.peec import attach_bus_testbench, build_peec
from repro.vpec.flow import full_vpec


def rc_ladder(stages=20, r=100.0, c=1e-13):
    circuit = Circuit("ladder")
    circuit.add_voltage_source("in", "0", ac_unit(), name="Vin")
    previous = "in"
    for k in range(stages):
        node = f"n{k}"
        circuit.add_resistor(previous, node, r)
        circuit.add_capacitor(node, "0", c)
        previous = node
    return circuit, previous


class TestRcLadder:
    def test_transfer_converges_with_order(self):
        circuit, out = rc_ladder()
        freqs = logspace_frequencies(1e6, 50e9, 5)
        full = ac_analysis(circuit, freqs, probe_nodes=[out]).voltage(out)
        errors = []
        for order in (4, 8, 12):
            rom = reduce_circuit(circuit, ["Vin"], [out], order)
            h = rom.transfer(freqs)[:, 0, 0]
            errors.append(np.max(np.abs(h - full)) / np.max(np.abs(full)))
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-3

    def test_full_order_exact(self):
        circuit, out = rc_ladder(stages=6)
        freqs = logspace_frequencies(1e6, 50e9, 4)
        full = ac_analysis(circuit, freqs, probe_nodes=[out]).voltage(out)
        rom = reduce_circuit(circuit, ["Vin"], [out], order=10)
        h = rom.transfer(freqs)[:, 0, 0]
        assert np.max(np.abs(h - full)) / np.max(np.abs(full)) < 1e-8

    def test_reduced_size_bounded(self):
        circuit, out = rc_ladder()
        rom = reduce_circuit(circuit, ["Vin"], [out], order=3)
        assert rom.order <= 3

    def test_dc_gain_matched(self):
        circuit, out = rc_ladder()
        rom = reduce_circuit(circuit, ["Vin"], [out], order=8)
        # DC: the ladder passes the source voltage through (the GHz
        # expansion point converges to DC as the order grows).
        assert abs(rom.transfer_at(1e-3)[0, 0] - 1.0) < 1e-5


class TestInterconnectModels:
    def test_reduces_peec_model(self):
        parasitics = extract(aligned_bus(8))
        peec = build_peec(parasitics)
        attach_bus_testbench(peec.skeleton, ac_unit(1.0))
        victim = peec.skeleton.ports[1].far
        freqs = logspace_frequencies(1e7, 10e9, 5)
        full = ac_analysis(peec.circuit, freqs, probe_nodes=[victim]).voltage(
            victim
        )
        rom = reduce_circuit(peec.circuit, ["Vdrv0"], [victim], order=10)
        h = rom.transfer(freqs)[:, 0, 0]
        error = np.max(np.abs(h - full)) / np.max(np.abs(full))
        assert error < 1e-2
        assert rom.order < peec.circuit.num_nodes

    def test_reduces_vpec_model(self):
        """The paper's future-work target: MOR on the VPEC netlist."""
        parasitics = extract(aligned_bus(8))
        result = full_vpec(parasitics)
        attach_bus_testbench(result.model.skeleton, ac_unit(1.0))
        victim = result.model.skeleton.ports[1].far
        freqs = logspace_frequencies(1e7, 10e9, 5)
        full = ac_analysis(
            result.model.circuit, freqs, probe_nodes=[victim]
        ).voltage(victim)
        rom = reduce_circuit(result.model.circuit, ["Vdrv0"], [victim], order=12)
        h = rom.transfer(freqs)[:, 0, 0]
        error = np.max(np.abs(h - full)) / np.max(np.abs(full))
        assert error < 1e-2

    def test_multiport(self):
        parasitics = extract(aligned_bus(4))
        peec = build_peec(parasitics)
        attach_bus_testbench(peec.skeleton, ac_unit(1.0))
        outs = [peec.skeleton.ports[k].far for k in (1, 2)]
        rom = reduce_circuit(peec.circuit, ["Vdrv0"], outs, order=8)
        h = rom.transfer([1e9])
        assert h.shape == (1, 2, 1)


class TestReducedTransient:
    def test_matches_full_transient(self):
        """The macromodel replays the full netlist's victim waveform."""
        import numpy as np

        from repro.circuit.sources import step
        from repro.circuit.transient import transient_analysis

        parasitics = extract(aligned_bus(6))
        peec = build_peec(parasitics)
        attach_bus_testbench(peec.skeleton, step(1.0, rise_time=10e-12))
        victim = peec.skeleton.ports[1].far
        full = transient_analysis(
            peec.circuit, 200e-12, 1e-12, probe_nodes=[victim]
        ).voltage(victim)

        rom = reduce_circuit(peec.circuit, ["Vdrv0"], [victim], order=16)
        stimulus = step(1.0, rise_time=10e-12)
        times, outputs = rom.transient([stimulus.at], 200e-12, 1e-12)
        assert times.size == full.t.size
        error = np.max(np.abs(outputs[:, 0] - full.v))
        assert error < 0.05 * full.peak

    def test_input_count_validated(self):
        circuit, out = rc_ladder(stages=4)
        rom = reduce_circuit(circuit, ["Vin"], [out], order=4)
        with pytest.raises(ValueError):
            rom.transient([], 1e-9, 1e-12)
        with pytest.raises(ValueError):
            rom.transient([lambda t: 1.0], 0.0, 1e-12)

    def test_dc_input_stays_at_dc(self):
        import numpy as np

        circuit, out = rc_ladder(stages=5)
        rom = reduce_circuit(circuit, ["Vin"], [out], order=6)
        _, outputs = rom.transient([lambda t: 1.0], 1e-9, 1e-11)
        assert np.allclose(outputs[:, 0], outputs[0, 0], atol=1e-6)


class TestValidation:
    def test_requires_inputs_and_outputs(self):
        circuit, out = rc_ladder(stages=3)
        with pytest.raises(ValueError):
            reduce_circuit(circuit, [], [out], 2)
        with pytest.raises(ValueError):
            reduce_circuit(circuit, ["Vin"], [], 2)
        with pytest.raises(ValueError):
            reduce_circuit(circuit, ["Vin"], [out], 0)

    def test_ground_output_rejected(self):
        circuit, _ = rc_ladder(stages=3)
        with pytest.raises(ValueError):
            reduce_circuit(circuit, ["Vin"], ["0"], 2)

    def test_unknown_input_rejected(self):
        circuit, out = rc_ladder(stages=3)
        with pytest.raises(KeyError):
            reduce_circuit(circuit, ["Vnope"], [out], 2)
