"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestExtract:
    def test_bus_summary(self, capsys):
        assert main(["extract", "--bus", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 filaments" in out
        assert "nH" in out

    def test_spiral_summary(self, capsys):
        assert main(["extract", "--spiral", "2", "--spiral-segments", "20"]) == 0
        out = capsys.readouterr().out
        assert "20 filaments" in out

    def test_geometry_required(self):
        with pytest.raises(SystemExit):
            main(["extract"])


class TestNetlist:
    def test_stdout_netlist(self, capsys):
        assert main(["netlist", "--bus", "3", "--model", "peec"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("* peec:")
        assert ".end" in out

    def test_vpec_netlist_has_magnetic_circuit(self, capsys):
        assert main(["netlist", "--bus", "3", "--model", "full"]) == 0
        out = capsys.readouterr().out
        assert "Rc0_1" in out  # coupling resistance
        assert "Ev0" in out  # controlled source

    def test_file_output(self, tmp_path, capsys):
        target = tmp_path / "bus.sp"
        assert (
            main(
                [
                    "netlist",
                    "--bus",
                    "3",
                    "--model",
                    "gw",
                    "--window",
                    "2",
                    "-o",
                    str(target),
                ]
            )
            == 0
        )
        assert target.exists()
        assert "bytes" in capsys.readouterr().out

    def test_sparsified_models(self, capsys):
        assert main(
            ["netlist", "--bus", "4", "--model", "nt", "--threshold", "0.01"]
        ) == 0
        assert main(
            ["netlist", "--bus", "4", "--model", "gt", "--nw", "2", "--nl", "1"]
        ) == 0


class TestCrosstalk:
    def test_pass_case(self, capsys):
        code = main(
            [
                "crosstalk",
                "--bus",
                "4",
                "--model",
                "full",
                "--t-stop",
                "150",
                "--limit",
                "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert "noise peak" in out

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "waves.csv"
        code = main(
            [
                "crosstalk",
                "--bus",
                "4",
                "--t-stop",
                "100",
                "--limit",
                "0.5",
                "--csv",
                str(target),
            ]
        )
        assert code == 0
        text = target.read_text()
        assert text.startswith("t,victim")
        assert len(text.splitlines()) > 50

    def test_fail_case_exit_code(self, capsys):
        code = main(
            [
                "crosstalk",
                "--bus",
                "4",
                "--t-stop",
                "150",
                "--limit",
                "0.001",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out


class TestNoise:
    def test_screen_only_pass(self, capsys):
        code = main(["noise", "--bus", "8", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "model: gwVPEC(b=8)" in out
        assert "0/8 escalated" in out
        assert "PASS" in out

    def test_escalation_verify_and_json(self, tmp_path, capsys):
        target = tmp_path / "noise.json"
        code = main(
            [
                "noise",
                "--bus",
                "16",
                "--no-cache",
                "--limit",
                "0.2",
                "--verify",
                "--json",
                str(target),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert " sim " in out  # at least one victim escalated
        assert "verify: max relative peak deviation" in out
        document = json.loads(target.read_text())
        assert document["num_victims"] == 16
        assert document["num_escalated"] > 0
        assert any(
            v["verify_deviation"] is not None for v in document["victims"]
        )

    def test_fail_exit_code(self, capsys):
        code = main(
            ["noise", "--bus", "8", "--no-cache", "--limit", "0.05"]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_noise_suite_json(self, tmp_path, capsys):
        target = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--suite",
                "noise",
                "--kernel",
                "noise_screen_bus256",
                "--size",
                "16",
                "--repeats",
                "1",
                "--json",
                str(target),
            ]
        )
        assert code == 0
        document = json.loads(target.read_text())
        assert document["entries"][0]["kernel"] == "noise_screen_bus256"
        assert document["entries"][0]["size"] == 16


class TestNoiseSweep:
    def test_missing_geometry_on_plain_noise_exits_2(self, capsys):
        code = main(["noise", "--no-cache"])
        assert code == 2
        assert "geometry" in capsys.readouterr().err

    def test_sweep_table_and_json(self, tmp_path, capsys):
        target = tmp_path / "sweep.json"
        code = main(
            [
                "noise",
                "sweep",
                "--widths",
                "8",
                "--spacings",
                "1.0",
                "2.0",
                "--drivers",
                "50",
                "100",
                "--limit",
                "0.12",
                "--no-cache",
                "--json",
                str(target),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # the tight threshold fails some scenarios
        assert "sweep: 4 scenarios" in out
        assert "bus8_w1000n_s2000n_r100_d1" in out
        assert "escalation-rate histogram" in out
        assert "FAIL: scenarios with failing victims" in out
        document = json.loads(target.read_text())
        assert document["num_scenarios"] == 4
        assert "bus" in document["family_quantiles"]
        assert len(document["conservatism_histogram"]["counts"]) == 7

    def test_sweep_pass_exit_code(self, capsys):
        code = main(
            ["noise", "sweep", "--widths", "6", "--no-cache"]
        )
        assert code == 0
        assert "PASS: no failing victims" in capsys.readouterr().out

    def test_sweep_segments_axis(self, capsys):
        code = main(
            [
                "noise",
                "sweep",
                "--widths",
                "6",
                "--grid-segments",
                "1",
                "2",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 segment counts" in out
        assert "bus6_w1000n_s2000n_r50_d1_g2" in out

    def test_calibrate_families(self, capsys):
        code = main(
            [
                "noise",
                "calibrate",
                "--families",
                "bus",
                "--size",
                "8",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bus: envelope reach 7" in out
        assert "min margin" in out
        assert "PASS" in out

    def test_bench_noise_sweep_dispatch(self, tmp_path, capsys):
        target = tmp_path / "bench_sweep.json"
        code = main(
            [
                "bench",
                "--suite",
                "noise_sweep",
                "--sweep-segments",
                "2",
                "--sweep-densities",
                "2",
                "--repeats",
                "1",
                "--json",
                str(target),
                "--trajectory",
                str(tmp_path / "traj.json"),
            ]
        )
        assert code == 0
        document = json.loads(target.read_text())
        by_variant = {e["variant"]: e for e in document["entries"]}
        assert by_variant["sequential"]["kernel"] == "noise_sweep_family"
        assert by_variant["batched"]["size"] == 2
        # The suite raises unless both arms agree, so both entries
        # carry a checksum of the same decisions.
        assert (
            by_variant["sequential"]["checksum"]
            == by_variant["batched"]["checksum"]
        )


class TestServiceCli:
    def test_bench_service_suite_json(self, tmp_path, capsys):
        target = tmp_path / "bench_service.json"
        code = main(
            [
                "bench",
                "--suite",
                "service",
                "--requests",
                "8",
                "--concurrency",
                "4",
                "--jobs",
                "1",
                "--json",
                str(target),
            ]
        )
        assert code == 0
        document = json.loads(target.read_text())
        by_variant = {
            (entry["kernel"], entry["variant"]): entry
            for entry in document["entries"]
        }
        load = by_variant[("service_mixed_load", "p99")]
        equiv = by_variant[("service_oneshot_equiv", "direct")]
        assert load["size"] == 8
        # The load digest must equal the one-shot digest -- the suite
        # itself enforces service/CLI equivalence before returning.
        assert load["checksum"] == equiv["checksum"]

    def test_serve_parser_accepts_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--jobs", "2", "--port", "7000", "--job-timeout", "10"]
        )
        assert args.jobs == 2 and args.port == 7000
        assert args.job_timeout == 10.0


class TestAudit:
    def test_full_vpec_passes(self, capsys):
        assert main(["audit", "--bus", "4", "--model", "full"]) == 0
        out = capsys.readouterr().out
        assert "passive=True" in out
        assert "PASS" in out

    def test_truncated_passes(self, capsys):
        assert (
            main(
                [
                    "audit",
                    "--bus",
                    "8",
                    "--model",
                    "nt",
                    "--threshold",
                    "0.01",
                ]
            )
            == 0
        )
        assert "PASS" in capsys.readouterr().out

    def test_spiral_windowed(self, capsys):
        code = main(
            [
                "audit",
                "--spiral",
                "2",
                "--spiral-segments",
                "20",
                "--model",
                "nw",
                "--threshold",
                "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("direction group") == 2

    def test_health_strict_signs_json(self, tmp_path, capsys):
        target = tmp_path / "health.json"
        code = main(
            [
                "audit",
                "--bus",
                "4",
                "--model",
                "full",
                "--no-cache",
                "--health",
                "--strict-signs",
                "--health-json",
                str(target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        document = json.loads(target.read_text())
        assert document["ok"] is True
        assert any(r["certificate"] for r in document["reports"])

    def test_health_spiral_without_strict_signs(self, capsys):
        # A spiral's exact inverse carries positive coupling resistances,
        # so the default health pass (no Lemma-1 sign check) must accept it.
        code = main(
            [
                "audit",
                "--spiral",
                "2",
                "--spiral-segments",
                "20",
                "--model",
                "full",
                "--no-cache",
                "--health",
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out
