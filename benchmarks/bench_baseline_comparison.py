"""Literature-baseline comparison: shift truncation [9] vs tVPEC.

Section I of the paper dismisses the shell-radius (shift truncation)
sparsification because "it is difficult to determine the shell radius
to obtain the desired accuracy."  This bench makes the claim
quantitative on a 32-bit bus: both methods are swept to the same
kept-coupling budgets and scored against PEEC on the victim waveform.

Expected shape: the VPEC truncation's error decreases monotonically as
more coupling is kept; the shell method's error is larger at comparable
sparsity and swings with the radius.
"""

import numpy as np

from repro.analysis.metrics import waveform_difference
from repro.analysis.tables import format_table
from repro.baselines.shift_truncation import (
    build_shift_truncated_peec,
    shift_truncated_inductance,
)
from repro.circuit.sources import step
from repro.circuit.transient import transient_analysis
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.peec.builder import attach_bus_testbench
from repro.experiments.runner import build_model, nt_spec, peec_spec, run_bus_transient

BITS = 32
T_STOP = 250e-12
DT = 1e-12


def _shift_run(r0, reference_wave):
    parasitics = extract(aligned_bus(BITS))
    shifted = shift_truncated_inductance(parasitics, r0)
    kept = (np.count_nonzero(shifted) - BITS) / (BITS * (BITS - 1))
    model = build_shift_truncated_peec(parasitics, r0)
    attach_bus_testbench(model.skeleton, step(1.0, rise_time=10e-12))
    victim = model.skeleton.ports[1].far
    wave = transient_analysis(
        model.circuit, T_STOP, DT, probe_nodes=[victim]
    ).voltage(victim)
    diff = waveform_difference(reference_wave, wave)
    return kept, diff


def test_baseline_comparison(benchmark, report):
    def run():
        parasitics = extract(aligned_bus(BITS))
        peec = run_bus_transient(
            build_model(peec_spec(), parasitics),
            step(1.0, rise_time=10e-12),
            T_STOP,
            DT,
            [1],
        )
        reference = peec.waveforms["far1"]

        rows = []
        vpec_errors = []
        for threshold in (2e-3, 1e-2, 5e-2):
            run_nt = run_bus_transient(
                build_model(nt_spec(threshold), extract(aligned_bus(BITS))),
                step(1.0, rise_time=10e-12),
                T_STOP,
                DT,
                [1],
            )
            diff = waveform_difference(reference, run_nt.waveforms["far1"])
            vpec_errors.append(diff.mean_relative_to_peak)
            rows.append(
                [
                    run_nt.model.label,
                    f"{run_nt.model.sparse_factor * 100:.1f}%",
                    f"{diff.mean_relative_to_peak * 100:.2f}%",
                ]
            )
        shell_errors = []
        for r0 in (60e-6, 24e-6, 9e-6):
            kept, diff = _shift_run(r0, reference)
            shell_errors.append(diff.mean_relative_to_peak)
            rows.append(
                [
                    f"shift-trunc(r0={r0 * 1e6:.0f}um)",
                    f"{kept * 100:.1f}%",
                    f"{diff.mean_relative_to_peak * 100:.2f}%",
                ]
            )
        return rows, vpec_errors, shell_errors

    rows, vpec_errors, shell_errors = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        "baseline_comparison",
        format_table(
            ["model", "couplings kept", "avg victim error / peak"],
            rows,
            title=(
                "Literature baseline: shift truncation [9] vs numerical "
                f"tVPEC ({BITS}-bit bus, victim = bit 2, vs PEEC)"
            ),
        ),
    )
    # VPEC: smooth, monotone degradation as the threshold grows.
    assert vpec_errors == sorted(vpec_errors)
    # The shell method is markedly worse at its best comparable setting.
    assert min(shell_errors) > min(vpec_errors)
    assert max(shell_errors) > 0.05


def test_return_limited_vs_shield_density(benchmark, report):
    """Reference [8]'s failure mode: sparse P/G grids.

    The return-limited loop model is compared against the exact
    ideal-shield reduction (Schur complement) at matrix and waveform
    level while the shield spacing grows.  The paper's dismissal --
    "loses accuracy when the P/G grid is sparsely distributed" -- shows
    up as monotonically growing error.
    """
    import numpy as np

    from repro.baselines.return_limited import (
        build_reduced_peec,
        exact_shielded_inductance,
        return_limited_inductance,
    )
    from repro.circuit.transient import transient_analysis
    from repro.geometry.bus import shielded_bus
    from repro.peec.builder import attach_bus_testbench

    def run():
        rows = []
        matrix_errors = []
        for every in (1, 2, 4, 8):
            system, signals, shields = shielded_bus(8, shields_every=every)
            parasitics = extract(system)
            exact = exact_shielded_inductance(parasitics, signals, shields)
            approx, _ = return_limited_inductance(parasitics, signals, shields)
            matrix_error = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
            matrix_errors.append(matrix_error)

            waves = []
            for matrix, label in ((exact, "exact"), (approx, "rl")):
                model = build_reduced_peec(parasitics, signals, matrix, label)
                attach_bus_testbench(model.skeleton, step(1.0, 10e-12))
                victim = model.skeleton.ports[1].far
                waves.append(
                    transient_analysis(
                        model.circuit, T_STOP, DT, probe_nodes=[victim]
                    ).voltage(victim)
                )
            diff = waveform_difference(waves[0], waves[1])
            rows.append(
                [
                    every,
                    f"{matrix_error * 100:.2f}%",
                    f"{diff.mean_relative_to_peak * 100:.2f}%",
                ]
            )
        return rows, matrix_errors

    rows, matrix_errors = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "baseline_return_limited",
        format_table(
            [
                "shields every N signals",
                "matrix error vs exact",
                "victim waveform error",
            ],
            rows,
            title="Literature baseline: return-limited [8] vs shield density "
            "(8 signals)",
        ),
    )
    assert matrix_errors == sorted(matrix_errors)
    assert matrix_errors[-1] > 3.0 * matrix_errors[0]
