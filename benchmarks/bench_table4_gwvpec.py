"""E6 -- Fig. 5 / Table IV: windowing vs truncation accuracy, 128 bits.

Regenerates the window-size sweep b in {64, 32, 16, 8} on the 128-bit
aligned bus: gwVPEC against the sparsity-matched gtVPEC, scored by the
waveform difference against PEEC at the far ends of bit 2 (near victim)
and bit 64 (distant victim).

Paper's shape: both models track PEEC at the near victim; at the distant
victim the truncation error is visibly larger while windowing stays
accurate (the paper reports ~2x better accuracy on average).
"""

import statistics

from repro.analysis.tables import format_table
from repro.experiments.table4_windowing import run_table4


def test_table4(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_table4(window_sizes=(64, 32, 16, 8)), rounds=1, iterations=1
    )
    table = []
    gains = []
    for row in result.rows:
        gains.append(row.accuracy_gain(63))
        table.append(
            [
                row.window,
                f"{row.gt_sparse_factor * 100:.1f}%",
                f"{row.gw_sparse_factor * 100:.1f}%",
                f"{row.gt_diff[1].mean_abs * 1e3:.4f}",
                f"{row.gw_diff[1].mean_abs * 1e3:.4f}",
                f"{row.gt_diff[63].mean_abs * 1e3:.4f}",
                f"{row.gw_diff[63].mean_abs * 1e3:.4f}",
                f"{row.accuracy_gain(63):.2f}x",
            ]
        )
    table.append(
        ["avg", "-", "-", "-", "-", "-", "-", f"{statistics.mean(gains):.2f}x"]
    )
    report(
        "table4_gwvpec",
        format_table(
            [
                "window b",
                "gt sparse",
                "gw sparse",
                "gt bit2 (mV)",
                "gw bit2 (mV)",
                "gt bit64 (mV)",
                "gw bit64 (mV)",
                "gw gain @bit64",
            ],
            table,
            title="Table IV: gtVPEC vs gwVPEC waveform error vs PEEC (128-bit bus)",
        ),
    )
    # Windowing wins at the distant victim on average (paper: ~2x; the
    # advantage is largest for wide windows and statistical for narrow
    # ones, where both errors are a few mV against a ~100 mV peak).
    assert statistics.mean(gains) > 1.05
    assert max(gains) > 1.5
    assert all(g >= 0.8 for g in gains)
