"""Ablation studies of the reproduction's design choices.

Each ablation switches off one ingredient and measures what breaks,
documenting *why* the implementation is the way it is:

- **rectangle GMD** (extraction): without it, tall closely-spaced
  cross sections get overestimated mutuals and ``L^-1`` loses the
  strict diagonal dominance Theorem 2 promises;
- **eq. 18 merge rule** (windowing): picking ``max`` of the two
  directional estimates (= smaller magnitude, the paper's choice) keeps
  ``S'`` diagonally dominant; ``min`` visibly degrades the margin;
- **window symmetrization** (windowing): one-sided windows give some
  pairs only one estimate, breaking the eq. 19 guarantee;
- **wire segmentation** (discretization): victim waveforms converge as
  segments per line grow, supporting the one-segment setting the
  paper's (sub-tenth-wavelength) buses use.
"""

import numpy as np

from repro.analysis.metrics import waveform_difference
from repro.analysis.tables import format_table
from repro.circuit.sources import step
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.experiments.runner import build_model, peec_spec, run_bus_transient
from repro.vpec.passivity import diagonal_dominance_margin, is_positive_definite
from repro.vpec.windowing import geometric_windows, windowed_inverse


def test_ablation_gmd(benchmark, report):
    """Rectangle GMD vs raw centerline distance, across aspect ratios."""

    def run():
        rows = []
        for label, width, thickness in (
            ("square 1x1 um", 1e-6, 1e-6),
            ("wide 3x0.3 um", 3e-6, 0.3e-6),
            ("tall 0.3x2 um", 0.3e-6, 2e-6),
        ):
            for gmd in (True, False):
                bus = aligned_bus(
                    16,
                    width=width,
                    thickness=thickness,
                    spacing=0.5 * max(width, thickness),
                )
                parasitics = extract(bus, gmd_correction=gmd)
                s_matrix = np.linalg.inv(parasitics.inductance)
                rows.append(
                    [
                        label,
                        "on" if gmd else "off",
                        f"{diagonal_dominance_margin(s_matrix):+.4f}",
                        str(is_positive_definite(s_matrix)),
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_gmd",
        format_table(
            ["cross section", "GMD", "DD margin of L^-1", "SPD"],
            rows,
            title="Ablation: rectangle GMD correction (16-bit bus, tight spacing)",
        ),
    )
    by_key = {(r[0], r[1]): float(r[2]) for r in rows}
    # The tall-section case must be rescued by the GMD correction.
    assert by_key[("tall 0.3x2 um", "on")] > 0
    assert by_key[("tall 0.3x2 um", "off")] < by_key[("tall 0.3x2 um", "on")]


def test_ablation_merge_rule(benchmark, report):
    """eq. 18's max-merge vs min / mean alternatives."""

    def run():
        parasitics = extract(aligned_bus(32))
        indices, block = next(iter(parasitics.inductance_blocks.values()))
        windows = geometric_windows(parasitics.system, indices, 8)
        exact = np.linalg.inv(block)
        rows = []
        for rule in ("max", "min", "mean"):
            s_prime = windowed_inverse(block, windows, merge=rule).toarray()
            margin = diagonal_dominance_margin(s_prime)
            spd = is_positive_definite((s_prime + s_prime.T) / 2)
            error = np.linalg.norm(s_prime - exact) / np.linalg.norm(exact)
            rows.append(
                [rule, f"{margin:+.4f}", str(spd), f"{error:.4f}"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_merge_rule",
        format_table(
            ["merge rule", "DD margin of S'", "SPD", "rel error vs exact inverse"],
            rows,
            title="Ablation: eq. 18 merge rule (32-bit bus, window b=8)",
        ),
    )
    margins = {r[0]: float(r[1]) for r in rows}
    assert margins["max"] >= 0
    assert margins["max"] > margins["min"]


def test_ablation_window_symmetrization(benchmark, report):
    """Symmetrized vs raw nearest-b windows."""

    def run():
        parasitics = extract(aligned_bus(33))  # odd size: guaranteed ties
        indices, block = next(iter(parasitics.inductance_blocks.values()))
        rows = []
        for symmetrize in (True, False):
            windows = geometric_windows(
                parasitics.system, indices, 8, symmetrize=symmetrize
            )
            s_prime = windowed_inverse(block, windows).toarray()
            margin = diagonal_dominance_margin(s_prime)
            rows.append(
                [
                    "on" if symmetrize else "off",
                    f"{margin:+.5f}",
                    str(is_positive_definite((s_prime + s_prime.T) / 2)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_symmetrize",
        format_table(
            ["symmetrization", "DD margin of S'", "SPD"],
            rows,
            title="Ablation: window-membership symmetrization (33-bit bus, b=8)",
        ),
    )
    margins = [float(r[1]) for r in rows]
    assert margins[0] >= margins[1]
    assert margins[0] >= 0


def test_ablation_segmentation(benchmark, report):
    """Victim waveform convergence with segments per line."""

    def run():
        stimulus = step(1.0, rise_time=10e-12)
        reference = None
        rows = []
        for segments in (8, 4, 2, 1):
            parasitics = extract(aligned_bus(8, segments_per_line=segments))
            run_result = run_bus_transient(
                build_model(peec_spec(), parasitics),
                stimulus,
                200e-12,
                1e-12,
                [1],
            )
            wave = run_result.waveforms["far1"]
            if reference is None:
                reference = wave
                rows.append([segments, f"{wave.peak * 1e3:.3f}", "-"])
            else:
                diff = waveform_difference(reference, wave)
                rows.append(
                    [
                        segments,
                        f"{wave.peak * 1e3:.3f}",
                        f"{diff.mean_relative_to_peak * 100:.3f}%",
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_segmentation",
        format_table(
            ["segments/line", "victim peak (mV)", "avg diff vs 8-seg"],
            rows,
            title="Ablation: longitudinal segmentation (8-bit bus PEEC)",
        ),
    )
    # Waveforms converge monotonically toward the fine discretization.
    # Finding worth recording: at a 10 ps rise time the per-line flight
    # time (~10 ps) is comparable, so the paper's one-segment setting is
    # converged only to ~15% in waveform terms -- four segments reach a
    # few percent.  All model *comparisons* in this repository use the
    # same segmentation on both sides, so the finding does not affect
    # the reproduction's conclusions, but absolute noise numbers would
    # need >= 4 segments per line.
    errors = [float(r[2].rstrip("%")) for r in rows[1:]]
    assert errors == sorted(errors)
    assert errors[0] < 5.0  # 4 segments: converged to a few percent
