"""E7 -- Figs. 6-7: numerical windowing on the three-turn spiral.

Regenerates the spiral experiment: a 92-segment square spiral on a lossy
substrate, driven by a 1-V pulse, output-port waveforms for PEEC, full
VPEC, and the nwVPEC model at the paper's ~56.7% kept-coupling ratio.

Paper's shape: the three waveforms are virtually identical; the
sparsified model simulates faster than PEEC (8x in the paper).

Substitution note (see DESIGN.md): our closed-form extraction yields
larger relative couplings than the paper's FastHenry run, so the
threshold is derived from the target kept ratio instead of reusing the
paper's absolute 1.5e-4.
"""

from repro.analysis.tables import format_table
from repro.experiments.fig7_spiral import run_fig7


def test_fig7_spiral(benchmark, report):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    table = [
        [
            "PEEC (reference)",
            f"{result.runtime_seconds['PEEC']:.3f}",
            "1.0x",
            "-",
        ]
    ]
    for label in ("full VPEC", "nwVPEC"):
        diff = result.diff_vs_peec[label]
        table.append(
            [
                label,
                f"{result.runtime_seconds[label]:.3f}",
                f"{result.speedup_vs_peec(label):.1f}x",
                f"{diff.mean_relative_to_peak * 100:.4f}%",
            ]
        )
    footer = (
        f"threshold = {result.threshold:.3g}, kept couplings = "
        f"{result.sparse_factor * 100:.1f}% (paper: 56.7%)"
    )
    report(
        "fig7_spiral",
        format_table(
            ["model", "runtime (s)", "speedup vs PEEC", "avg diff / peak"],
            table,
            title="Figs. 6-7: three-turn spiral (92 segments) on lossy substrate",
        )
        + "\n"
        + footer,
    )
    assert result.diff_vs_peec["full VPEC"].max_relative_to_peak < 1e-5
    assert result.diff_vs_peec["nwVPEC"].mean_relative_to_peak < 0.03
    assert 0.4 < result.sparse_factor < 0.7
