"""E3 -- Table II: geometric truncation on the 32-bit, 8-segment bus.

Regenerates the four truncating-window rows -- (32, 8), (32, 2), (16, 2),
(8, 2) -- against the full VPEC reference: sparse factor, runtime,
speedup, and mean +/- std voltage difference at the far end of bit 2.

Paper's shape: a smooth accuracy/speedup tradeoff; (8, 2) is the fastest
and worst; differences stay a small fraction of the noise peak; the
aligned coupling needs a wide NW while NL = 2 suffices (weak forward
coupling).
"""

from repro.analysis.tables import format_table
from repro.experiments.table2_gtvpec import run_table2


def test_table2(benchmark, report):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    table = []
    for row in rows:
        diff = (
            f"{row.diff.mean_abs * 1e3:.4f} +/- {row.diff.std_abs * 1e3:.4f}"
            if row.diff
            else "-"
        )
        rel = (
            f"{row.diff.mean_relative_to_peak * 100:.2f}%" if row.diff else "-"
        )
        table.append(
            [
                row.label,
                f"{row.sparse_factor * 100:.1f}%",
                f"{row.runtime_seconds:.3f}",
                f"{row.speedup_vs_full:.1f}x",
                diff,
                rel,
            ]
        )
    report(
        "table2_gtvpec",
        format_table(
            [
                "model",
                "sparse factor",
                "runtime (s)",
                "speedup",
                "avg diff (mV)",
                "diff / peak",
            ],
            table,
            title="Table II: gtVPEC on the 32-bit x 8-segment bus (vs full VPEC)",
        ),
    )
    # Shape assertions: tradeoff is monotone, untruncated row is exact.
    assert rows[1].diff.max_abs < 1e-9
    factors = [r.sparse_factor for r in rows[1:]]
    assert factors == sorted(factors, reverse=True)
    speedups = [r.speedup_vs_full for r in rows[2:]]
    assert all(s > 1.0 for s in speedups)
