"""E5 -- Fig. 4: model extraction time, full inversion vs windowing.

Regenerates the extraction-time scaling series for aligned buses from 8
to 2048 bits: geometric truncation with (NW, NL) = (8, 1), which must
invert the full L first, against geometric windowing with b = 8.

Paper's shape: comparable at small sizes, then windowing pulls away (the
paper reports ~90x at 2048 bits on 2003 hardware; modern LAPACK moves
the crossover to a few hundred bits and compresses the ratio, but the
O(N^3) vs O(N b^3) growth separation is clearly visible).
"""

from repro.analysis.tables import format_table
from repro.experiments.fig4_extraction import run_fig4


def test_fig4_extraction_scaling(benchmark, report, save_csv):
    points = benchmark.pedantic(
        lambda: run_fig4(sizes=(8, 16, 32, 64, 128, 256, 512, 1024, 2048)),
        rounds=1,
        iterations=1,
    )
    from repro.experiments.export import fig4_to_csv

    save_csv("fig4_series", fig4_to_csv(points))
    table = [
        [
            p.bits,
            f"{p.truncation_seconds * 1e3:.2f}",
            f"{p.windowing_seconds * 1e3:.2f}",
            f"{p.window_speedup:.2f}x",
        ]
        for p in points
    ]
    report(
        "fig4_extraction_scaling",
        format_table(
            [
                "bus bits",
                "gtVPEC(8,1) extraction (ms)",
                "gwVPEC(b=8) extraction (ms)",
                "windowing speedup",
            ],
            table,
            title="Fig. 4: VPEC model extraction time vs bus size",
        ),
    )
    largest = points[-1]
    assert largest.windowing_seconds < largest.truncation_seconds
    # O(N^3) vs O(N b^3): the growth separation over the last decade of
    # the sweep must favor windowing.
    mid = next(p for p in points if p.bits == 256)
    t_growth = largest.truncation_seconds / mid.truncation_seconds
    w_growth = largest.windowing_seconds / mid.windowing_seconds
    assert t_growth > w_growth
