"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation (see the per-experiment index in ``DESIGN.md``), prints the
rows, and archives them under ``benchmarks/results/`` so the output
survives pytest's capture.  ``EXPERIMENTS.md`` records the comparison
against the paper's numbers.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir, capsys):
    """Print a table and archive it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture()
def save_csv(results_dir):
    """Archive a figure's underlying series as CSV for external plotting."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.csv").write_text(text)

    return _save
