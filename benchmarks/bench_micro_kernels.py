"""Micro-benchmarks of the library's hot kernels.

Unlike the table/figure benches (single-shot experiment regenerations),
these run pytest-benchmark's normal multi-round statistics over the
kernels that dominate end-to-end time, so performance regressions in
the substrate are caught independently of the experiment logic:

- partial-inductance matrix assembly (vectorized Neumann forms + GMD);
- full SPD inversion (the tVPEC cost center);
- batched windowed inverse (the wVPEC cost center);
- MNA assembly and one factorized transient run;
- the geometry adjacency sweep.

The ``TestVectorizedSpeedups`` class reproduces the PR-4 acceptance
ratios against the scalar reference kernels (``repro.bench.reference``)
on the paper's 1024-line bus, using the same runner that maintains
``BENCH_kernels.json`` (``repro bench``).
"""

import numpy as np
import pytest

from repro.bench import run_suite
from repro.circuit.sources import step
from repro.circuit.transient import transient_analysis
from repro.circuit.mna import build_mna
from repro.extraction.inductance import partial_inductance_matrix
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.peec.builder import attach_bus_testbench
from repro.peec.model import build_peec
from repro.vpec.full import invert_spd
from repro.vpec.windowing import windowed_vpec_networks

BITS = 128


@pytest.fixture(scope="module")
def bus_system():
    return aligned_bus(BITS)


@pytest.fixture(scope="module")
def bus_parasitics(bus_system):
    return extract(bus_system)


def test_kernel_inductance_assembly(benchmark, bus_system):
    matrix = benchmark(partial_inductance_matrix, bus_system)
    assert matrix.shape == (BITS, BITS)


def test_kernel_spd_inversion(benchmark, bus_parasitics):
    block = bus_parasitics.inductance
    inverse = benchmark(invert_spd, block)
    assert np.allclose(block @ inverse, np.eye(BITS), atol=1e-6)


def test_kernel_windowed_inverse(benchmark, bus_parasitics):
    networks = benchmark(
        windowed_vpec_networks, bus_parasitics, window_size=8
    )
    assert networks[0].sparse_factor() < 0.2


def test_kernel_adjacency_sweep(benchmark, bus_system):
    pairs = benchmark(bus_system.adjacent_pairs)
    assert len(pairs) == BITS - 1


def test_kernel_mna_assembly(benchmark, bus_parasitics):
    model = build_peec(bus_parasitics)
    system = benchmark(build_mna, model.circuit)
    assert system.size > BITS


def test_kernel_transient_run(benchmark):
    parasitics = extract(aligned_bus(32))
    model = build_peec(parasitics)
    attach_bus_testbench(model.skeleton, step(1.0, rise_time=10e-12))
    victim = model.skeleton.ports[1].far

    result = benchmark.pedantic(
        transient_analysis,
        args=(model.circuit, 100e-12, 1e-12),
        kwargs={"probe_nodes": [victim]},
        rounds=3,
        iterations=1,
    )
    assert result.voltage(victim).peak > 0


class TestVectorizedSpeedups:
    """PR-4 acceptance: vectorized kernels vs the scalar seed paths.

    One suite run on the 1024-line bus measures both variants of each
    kernel; the ratios below are the committed floors (warm 1024-bus
    extraction >= 5x, windowed inverse at b=8 >= 3x).  Timing asserts
    live here in ``benchmarks/`` -- outside the tier-1 ``tests/``
    collection -- so hot CI runners cannot flake the main suite.
    """

    @pytest.fixture(scope="class")
    def suite(self):
        results = run_suite(
            kernels=("extraction_bus1024", "windowed_inverse_bus1024_b8"),
            repeats=3,
            include_seed=True,
        )
        return {(r.kernel, r.variant): r for r in results}

    def _ratio(self, suite, kernel):
        seed = suite[(kernel, "seed")]
        vectorized = suite[(kernel, "vectorized")]
        assert seed.checksum == vectorized.checksum, (
            f"{kernel}: seed and vectorized outputs diverge"
        )
        return seed.seconds / vectorized.seconds

    def test_extraction_bus1024_speedup(self, suite):
        assert self._ratio(suite, "extraction_bus1024") >= 5.0

    def test_windowed_inverse_bus1024_b8_speedup(self, suite):
        assert self._ratio(suite, "windowed_inverse_bus1024_b8") >= 3.0
