"""E1/E2 -- Fig. 2: full vs localized VPEC accuracy on the 5-bit bus.

Regenerates both panels: the transient (1-V step, 10 ps rise) and the AC
sweep (1 Hz - 10 GHz) responses at the far end of the second bit, for the
PEEC, full VPEC, and localized VPEC models.

Paper's shape: full VPEC is waveform-identical to PEEC in both domains;
the localized model shows ~15% transient error and diverges above ~5 GHz.
"""

from repro.analysis.tables import format_table
from repro.experiments.fig2_accuracy import run_fig2


def test_fig2a_transient(benchmark, report, save_csv):
    result = benchmark.pedantic(
        lambda: run_fig2(points_per_decade=8), rounds=1, iterations=1
    )
    from repro.experiments.export import waveforms_to_csv

    save_csv("fig2a_waveforms", waveforms_to_csv(result.transient))
    save_csv("fig2b_ac_magnitude", waveforms_to_csv(result.ac_magnitude, "f"))
    rows = []
    peak = result.transient["PEEC"].peak
    rows.append(["PEEC (reference)", f"{peak * 1e3:.2f}", "-", "-"])
    for label in ("full VPEC", "localized VPEC"):
        diff = result.transient_diff[label]
        rows.append(
            [
                label,
                f"{result.transient[label].peak * 1e3:.2f}",
                f"{diff.mean_abs * 1e3:.4f} +/- {diff.std_abs * 1e3:.4f}",
                f"{diff.mean_relative_to_peak * 100:.2f}%",
            ]
        )
    report(
        "fig2a_transient",
        format_table(
            ["model", "victim peak (mV)", "avg diff (mV)", "avg diff / peak"],
            rows,
            title="Fig. 2(a): 5-bit bus transient, far end of bit 2",
        ),
    )
    assert result.transient_diff["full VPEC"].max_relative_to_peak < 1e-6
    assert result.transient_diff["localized VPEC"].mean_relative_to_peak > 0.05


def test_fig2b_ac(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_fig2(points_per_decade=8), rounds=1, iterations=1
    )
    rows = []
    for label in ("full VPEC", "localized VPEC"):
        full_band = result.ac_diff[label]
        high_band = result.ac_high_band_diff[label]
        rows.append(
            [
                label,
                f"{full_band.mean_relative_to_peak * 100:.3f}%",
                f"{high_band.mean_relative_to_peak * 100:.3f}%",
            ]
        )
    report(
        "fig2b_ac",
        format_table(
            ["model vs PEEC", "avg |dV| / peak (full band)", "avg (f > 1 GHz)"],
            rows,
            title="Fig. 2(b): 5-bit bus AC magnitude, 1 Hz - 10 GHz",
        ),
    )
    assert result.ac_diff["full VPEC"].max_relative_to_peak < 1e-6
    assert result.ac_high_band_diff["localized VPEC"].mean_relative_to_peak > 0.02
