"""E4 -- Fig. 3 / Table III: numerical truncation on the 128-bit bus.

Regenerates the threshold sweep on the nonaligned 128-bit bus against
the PEEC baseline, plus the full-VPEC-vs-PEEC runtime row the text
quotes (~7x in the paper).

Paper's shape: sparse factors fall and errors grow with the threshold;
errors stay around a percent of the noise peak for useful thresholds;
speedups over PEEC grow with sparsity.
"""

from repro.analysis.tables import format_table
from repro.experiments.table3_ntvpec import run_table3


def test_table3(benchmark, report):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    table = []
    for row in rows:
        diff = (
            f"{row.diff.mean_abs * 1e3:.4f} +/- {row.diff.std_abs * 1e3:.4f}"
            if row.diff
            else "-"
        )
        rel = (
            f"{row.diff.mean_relative_to_peak * 100:.2f}%" if row.diff else "-"
        )
        table.append(
            [
                row.label,
                f"{row.sparse_factor * 100:.1f}%",
                f"{row.runtime_seconds:.3f}",
                f"{row.speedup_vs_peec:.1f}x",
                diff,
                rel,
            ]
        )
    report(
        "table3_ntvpec",
        format_table(
            [
                "model",
                "sparse factor",
                "runtime (s)",
                "speedup vs PEEC",
                "avg diff (mV)",
                "diff / peak",
            ],
            table,
            title="Table III: ntVPEC on the nonaligned 128-bit bus (vs PEEC)",
        ),
    )
    # Full VPEC matches PEEC; sparsified rows trade accuracy for speed.
    assert rows[1].diff.max_relative_to_peak < 1e-6
    sparse_rows = rows[2:]
    factors = [r.sparse_factor for r in sparse_rows]
    assert factors == sorted(factors, reverse=True)
    errors = [r.diff.mean_abs for r in sparse_rows]
    assert errors == sorted(errors)
    assert sparse_rows[-1].speedup_vs_peec > 1.0
