"""Hierarchical-extraction scale smoke: ~20k filaments end-to-end.

CI-sized companion of the committed ``BENCH_extraction_scale.json``
trajectory (whose 100k+ rung only a full local run re-pays): one
~20k-filament jittered bus driven extract -> windowed solve -> tiered
noise scan entirely through the :class:`LazyInductance` operator path,
with three acceptance properties:

- the run finishes inside a generous wall-clock budget (the dense path
  would need ~3.4 GB for ``L`` alone at this size);
- nothing materializes the dense matrix -- the parasitics leave the run
  with ``has_dense_inductance`` still false and every stage's RSS
  high-water mark a small fraction of the dense footprint;
- every wire is screened and the scan report is complete.

The timing/peak numbers are archived under ``benchmarks/results/`` like
every other benchmark table.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.bench.extraction_scale import (
    _noise_scan,
    _timed_peak,
    _window_solve,
    scale_geometry,
)
from repro.extraction.parasitics import extract

#: ~20k filaments: 576 wires x 36 segments (seg = sqrt(n/16)).
SMOKE_SIZE = 20736

#: Generous for shared CI runners; a healthy run is a small fraction.
TIME_BUDGET_SECONDS = 900.0


def test_hierarchical_20k_end_to_end(report):
    system = scale_geometry(SMOKE_SIZE)
    n = len(system)
    assert n >= 20_000
    dense_bytes = 8 * n * n

    t_extract, peak_extract, parasitics = _timed_peak(
        lambda: extract(system, method="hierarchical")
    )
    t_solve, peak_solve, inverses = _timed_peak(
        lambda: _window_solve(parasitics)
    )
    t_scan, peak_scan, scan = _timed_peak(lambda: _noise_scan(parasitics))

    elapsed = t_extract + t_solve + t_scan
    assert elapsed < TIME_BUDGET_SECONDS, f"{elapsed:.0f}s over budget"

    # The whole chain must run on the operator surface: no consumer may
    # have materialized the (n, n) inductance, and no stage's peak
    # allocation may approach the dense footprint.
    assert parasitics.is_hierarchical
    assert not parasitics.has_dense_inductance
    peak = max(peak_extract, peak_solve, peak_scan)
    assert peak < dense_bytes / 4

    assert inverses and all(s.nnz > 0 for s in inverses)
    assert len(scan.victims) == system.num_wires

    stats = [
        block.compression_stats()
        for _, block in parasitics.inductance_blocks.values()
    ]
    stored = sum(s["stored_bytes"] for s in stats)
    report(
        "extraction_scale_smoke",
        format_table(
            ["metric", "value"],
            [
                ["filaments", n],
                ["wires", system.num_wires],
                ["extract (s)", f"{t_extract:.1f}"],
                ["window solve (s)", f"{t_solve:.1f}"],
                ["noise scan (s)", f"{t_scan:.1f}"],
                ["peak stage RSS delta (MB)", f"{peak / 1e6:.0f}"],
                ["dense L would be (MB)", f"{dense_bytes / 1e6:.0f}"],
                ["stored L (MB)", f"{stored / 1e6:.0f}"],
                ["escalated victims", sum(v.escalated for v in scan.victims)],
            ],
        ),
    )
