"""Pipeline benchmarks: warm-cache speedup, parallel fan-out, profiling.

Exercises the ``repro.pipeline`` subsystem on the Fig. 8 scaling
workload (the configuration of ``bench_fig8_scaling``):

- a warm cache must make the extraction + model-building portion at
  least 5x faster than the cold run (pickle loads and content-hash key
  derivation are all that remain);
- a parallel run of the same job list must return bitwise-identical
  results, and -- given more than one CPU -- beat the serial run;
- the collected stage profile is archived as JSON next to the other
  benchmark results (``fig8_pipeline_profile.json``).
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis.tables import format_table
from repro.experiments.fig8_scaling import fig8_jobs
from repro.experiments.jobs import run_jobs
from repro.experiments.runner import build_model
from repro.pipeline.cache import PipelineCache, cached_extract
from repro.pipeline.profiling import CORE_STAGES, collect

#: The Fig. 8 scaling configuration (dense models to 256 bits, the
#: sparsified model continuing beyond).
DENSE_SIZES = (8, 16, 32, 64, 128, 256)
SPARSE_ONLY_SIZES = (512, 1024)


def _extract_and_build(jobs, cache) -> float:
    """Wall time of the extraction + model-building portion only."""
    start = time.perf_counter()
    for job in jobs:
        parasitics = cached_extract(job.geometry.build(), cache=cache)
        build_model(job.model, parasitics, cache=cache)
    return time.perf_counter() - start


def test_warm_cache_speedup(report, tmp_path):
    jobs = fig8_jobs(dense_sizes=DENSE_SIZES, sparse_only_sizes=SPARSE_ONLY_SIZES)
    cache = PipelineCache(tmp_path / "cache")
    cold = _extract_and_build(jobs, cache)
    warm = min(_extract_and_build(jobs, cache) for _ in range(3))
    ratio = cold / warm
    entries = cache.entries()
    report(
        "pipeline_cache",
        format_table(
            ["metric", "value"],
            [
                ["cold extract+build (s)", f"{cold:.3f}"],
                ["warm extract+build (s)", f"{warm:.3f}"],
                ["speedup", f"{ratio:.1f}x"],
                ["parasitics entries", entries.get("parasitics", 0)],
                ["model entries", entries.get("models", 0)],
                ["store size (MB)", f"{cache.size_bytes() / 1e6:.1f}"],
            ],
            title="Warm-cache speedup on the Fig. 8 scaling configuration",
        ),
    )
    assert ratio >= 5.0


def test_parallel_matches_serial_and_scales(report, tmp_path):
    # Smaller sizes keep the serial baseline short; >= 4 distinct model
    # specs run concurrently as the acceptance criterion asks.
    jobs = fig8_jobs(dense_sizes=(32, 64, 128), sparse_only_sizes=(256,))
    assert len(jobs) >= 4

    start = time.perf_counter()
    serial = run_jobs(jobs, parallel=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_jobs(jobs, parallel=min(4, os.cpu_count() or 1))
    parallel_seconds = time.perf_counter() - start

    for a, b in zip(serial, parallel):
        for key in a.waveforms:
            assert a.waveforms[key].v.tobytes() == b.waveforms[key].v.tobytes()

    report(
        "pipeline_parallel",
        format_table(
            ["metric", "value"],
            [
                ["jobs", len(jobs)],
                ["cpus", os.cpu_count() or 1],
                ["serial (s)", f"{serial_seconds:.2f}"],
                ["parallel (s)", f"{parallel_seconds:.2f}"],
                ["speedup", f"{serial_seconds / parallel_seconds:.2f}x"],
            ],
            title="Parallel fan-out vs serial on the Fig. 8 job list",
        ),
    )
    if (os.cpu_count() or 1) >= 2:
        assert parallel_seconds < serial_seconds


def test_stage_profile_artifact(results_dir, tmp_path):
    """Archive the stage profile of a cold Fig. 8 run as JSON."""
    jobs = fig8_jobs(dense_sizes=DENSE_SIZES, sparse_only_sizes=SPARSE_ONLY_SIZES)
    cache = PipelineCache(tmp_path / "cache")
    with collect() as profile:
        run_jobs(jobs, parallel=1, cache=cache)
    for name in CORE_STAGES:
        assert profile.seconds.get(name, 0.0) >= 0.0
        assert profile.calls.get(name, 0) >= 1
    payload = profile.to_dict()
    payload["workload"] = {
        "experiment": "fig8_scaling",
        "dense_sizes": list(DENSE_SIZES),
        "sparse_only_sizes": list(SPARSE_ONLY_SIZES),
        "jobs": len(jobs),
    }
    path = results_dir / "fig8_pipeline_profile.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    assert json.loads(path.read_text())["stages"]
