"""E8/E9 -- Fig. 8: runtime and model-size scaling over bus width.

Regenerates both panels for PEEC, full VPEC, and gwVPEC (b = 8) on
aligned buses of 8..256 bits, with the sparsified model continuing to
1024 bits (the dense models stop at 256 in the paper due to memory).

Paper's shape: the dense models' runtime explodes with the bus width
while gwVPEC grows gently (>1000x at 256 bits in the paper); the full
VPEC netlist is ~10% larger than PEEC's while gwVPEC's stays small.
"""

from repro.analysis.tables import format_table
from repro.experiments.fig8_scaling import run_fig8, series, speedup_at


_CACHE = []


def _run():
    """Run the sweep once and reuse it for both panels."""
    if not _CACHE:
        _CACHE.append(
            run_fig8(
                dense_sizes=(8, 16, 32, 64, 128, 256),
                sparse_only_sizes=(512, 1024),
            )
        )
    return _CACHE[0]


def test_fig8a_runtime(benchmark, report, save_csv):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    from repro.experiments.export import fig8_to_csv

    save_csv("fig8_series", fig8_to_csv(points))
    sizes = sorted({p.bits for p in points})
    by_key = {(p.label, p.bits): p for p in points}
    table = []
    for bits in sizes:
        row = [bits]
        for label in ("PEEC", "full VPEC", "gwVPEC(b=8)"):
            point = by_key.get((label, bits))
            row.append(f"{point.total_seconds:.3f}" if point else "-")
        gw_speedup = speedup_at(points, bits, "gwVPEC(b=8)")
        row.append(f"{gw_speedup:.1f}x" if gw_speedup else "-")
        table.append(row)
    report(
        "fig8a_runtime",
        format_table(
            ["bus bits", "PEEC (s)", "full VPEC (s)", "gwVPEC(b=8) (s)", "gw speedup"],
            table,
            title="Fig. 8(a): total runtime (model build + simulation) vs bus size",
        ),
    )
    # Shape: the sparsified model wins big at the largest dense size, and
    # the win grows with the bus width.
    final = speedup_at(points, 256, "gwVPEC(b=8)")
    first = speedup_at(points, 32, "gwVPEC(b=8)")
    assert final is not None and first is not None
    assert final > first
    assert final > 3.0
    # The dense models' runtime must grow much faster than gwVPEC's.
    peec = series(points, "PEEC")
    gw = series(points, "gwVPEC(b=8)")
    peec_growth = peec[-1].total_seconds / peec[2].total_seconds
    gw_growth = gw[5].total_seconds / gw[2].total_seconds
    assert peec_growth > gw_growth


def test_fig8b_model_size(benchmark, report):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    sizes = sorted({p.bits for p in points})
    by_key = {(p.label, p.bits): p for p in points}
    table = []
    for bits in sizes:
        row = [bits]
        for label in ("PEEC", "full VPEC", "gwVPEC(b=8)"):
            point = by_key.get((label, bits))
            if point:
                row.append(f"{point.netlist_bytes / 1024:.1f} KiB / {point.element_count}")
            else:
                row.append("-")
        table.append(row)
    report(
        "fig8b_model_size",
        format_table(
            ["bus bits", "PEEC", "full VPEC", "gwVPEC(b=8)"],
            table,
            title="Fig. 8(b): SPICE netlist size / element count vs bus size",
        ),
    )
    # Shape: the full VPEC model carries more circuit elements than PEEC
    # (paper: ~10% larger netlists; our byte counts come out within a few
    # percent of PEEC's because both are dominated by the N^2 coupling
    # cards, whose text widths differ slightly from HSPICE's), while
    # gwVPEC's model is far smaller at scale.
    peec_256 = by_key[("PEEC", 256)]
    full_256 = by_key[("full VPEC", 256)]
    gw_256 = by_key[("gwVPEC(b=8)", 256)]
    assert 1.0 < full_256.element_count / peec_256.element_count < 1.3
    assert 0.8 < full_256.netlist_bytes / peec_256.netlist_bytes < 1.6
    assert gw_256.netlist_bytes < 0.25 * peec_256.netlist_bytes
