"""Acceptance benchmarks of the columnar simulation backend.

Counterpart of :class:`bench_micro_kernels.TestVectorizedSpeedups` for
the circuit layer: one sim-suite run measures the columnar fast paths
and the object-path seed references together, and the ratios below are
the committed floors of the columnar-netlist PR -- most importantly the
>= 10x build + MNA assembly speedup on the 256-bit Fig. 8 bus.

Two layers of enforcement:

- ``TestSimSpeedups`` re-measures live (timing asserts stay here in
  ``benchmarks/``, outside the tier-1 ``tests/`` collection, so hot CI
  runners cannot flake the main suite);
- ``test_committed_assembly_ratio`` checks the ratio recorded in the
  committed ``BENCH_sim.json`` trajectory, which is deterministic.
"""

from pathlib import Path

import pytest

from repro.bench import load_trajectory
from repro.bench.sim import SIM_KERNELS, run_sim_suite

_REPO_ROOT = Path(__file__).resolve().parent.parent
_TRAJECTORY = _REPO_ROOT / "BENCH_sim.json"


class TestSimSpeedups:
    """Columnar backend vs the object-path seed, measured live."""

    @pytest.fixture(scope="class")
    def suite(self):
        results = run_sim_suite(
            kernels=SIM_KERNELS, repeats=3, include_seed=True
        )
        return {(r.kernel, r.variant): r for r in results}

    def _ratio(self, suite, kernel):
        seed = suite[(kernel, "seed")]
        columnar = suite[(kernel, "columnar")]
        assert seed.checksum == columnar.checksum, (
            f"{kernel}: seed and columnar outputs diverge"
        )
        return seed.seconds / columnar.seconds

    def test_assembly_bus256_speedup(self, suite):
        """The PR acceptance floor: >= 10x build + assembly."""
        assert self._ratio(suite, "peec_assembly_bus256") >= 10.0

    def test_transient_bus64_not_slower(self, suite):
        # Solve-dominated, so the floor only guards regressions (the
        # batched-RHS win is the per-step Python loop, not the LU).
        assert self._ratio(suite, "transient_bus64") >= 0.8

    def test_ac_sweep_bus64_not_slower(self, suite):
        assert self._ratio(suite, "ac_sweep_bus64") >= 0.8


def test_committed_assembly_ratio():
    """The committed trajectory must record the >= 10x acceptance ratio."""
    entries = load_trajectory(_TRAJECTORY)
    by_key = {(r.kernel, r.variant): r for r in entries}
    seed = by_key[("peec_assembly_bus256", "seed")]
    columnar = by_key[("peec_assembly_bus256", "columnar")]
    assert seed.checksum == columnar.checksum
    assert seed.seconds / columnar.seconds >= 10.0
