"""Spiral-inductor modeling with numerical windowing (Section V-B).

An RF designer's workload: a three-turn square spiral on a lossy
substrate, where legs have different lengths and two current directions,
so no uniform coupling window exists.  This example:

1. builds and extracts the 92-segment spiral;
2. derives the numerical-window threshold for the paper's ~56.7% kept
   ratio and builds the nwVPEC model;
3. verifies the output-port transient against PEEC and full VPEC;
4. sweeps AC to report the spiral's effective inductance and its
   self-resonance, demonstrating the sparsified model preserves both.

Run:  python examples/spiral_inductor.py
"""

import numpy as np

from repro.analysis.metrics import waveform_difference
from repro.circuit import ac_analysis, ac_unit, logspace_frequencies
from repro.experiments.fig7_spiral import run_fig7, threshold_for_kept_ratio
from repro.experiments.runner import build_model, nw_spec, peec_spec
from repro.extraction import extract
from repro.geometry import square_spiral
from repro.peec import attach_two_port_testbench


def effective_inductance(parasitics_builder, label: str) -> None:
    """Report L_eff(f) = Im(Z_in) / w from a grounded-output AC sweep."""
    built = build_model(parasitics_builder, extract(square_spiral()))
    circuit = built.circuit
    ports = built.skeleton.ports[0]
    circuit.add_voltage_source("src", "0", ac_unit(1.0), name="Vsrc")
    circuit.add_resistor("src", ports.near, 1e-3, name="Rsrc")
    circuit.add_resistor(ports.far, "0", 1e-3, name="Rgnd")
    freqs = logspace_frequencies(1e8, 20e9, 12)
    result = ac_analysis(circuit, freqs, probe_branches=["Vsrc"], probe_nodes=[])
    current = -result.branch_currents["Vsrc"]
    impedance = 1.0 / current
    l_eff = np.imag(impedance) / (2 * np.pi * freqs)
    low_f = l_eff[0]
    # Self-resonance: Im(Z) crosses zero.
    crossing = np.where(np.diff(np.sign(np.imag(impedance))) != 0)[0]
    srf = freqs[crossing[0]] if crossing.size else None
    srf_text = f"{srf / 1e9:.1f} GHz" if srf else "above sweep"
    print(
        f"  {label:12s} L_eff(100 MHz) = {low_f * 1e9:.3f} nH, "
        f"self-resonance ~ {srf_text}"
    )


def main() -> None:
    spiral = square_spiral()
    parasitics = extract(spiral)
    print(
        f"spiral: {len(spiral)} segments, "
        f"{sum(len(i) for i, _ in parasitics.inductance_blocks.values())} "
        "filaments across two current directions"
    )
    threshold = threshold_for_kept_ratio(parasitics, 0.567)
    print(f"numerical-window threshold for 56.7% kept couplings: {threshold:.3g}")

    # Transient accuracy vs PEEC and full VPEC (Fig. 7 of the paper).
    result = run_fig7(threshold=threshold)
    for label in ("full VPEC", "nwVPEC"):
        diff = result.diff_vs_peec[label]
        print(
            f"  {label:12s} avg output diff vs PEEC: "
            f"{diff.mean_relative_to_peak * 100:.4f}% of peak"
        )
    nw_diff = result.diff_vs_peec["nwVPEC"]
    assert nw_diff.mean_relative_to_peak < 0.03

    # Effective inductance from the AC sweep, per model.
    print("effective inductance (input impedance method):")
    effective_inductance(peec_spec(), "PEEC")
    effective_inductance(nw_spec(threshold), "nwVPEC")
    print("OK: numerical windowing preserves the spiral's L and resonance")


if __name__ == "__main__":
    main()
