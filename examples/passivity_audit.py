"""Passivity audit: why naive truncation of L fails and VPEC succeeds.

The motivation of the whole paper in one script (Sections I and III):
the partial inductance matrix is *not* diagonally dominant, so
truncating its small entries yields an indefinite matrix -- a
non-passive model that can generate energy in simulation.  Its inverse
(the VPEC circuit matrix) *is* strictly diagonally dominant, so the same
truncation is provably safe there.

This example demonstrates both facts numerically on a 32-bit bus and
then simulates a truncated-L PEEC model next to the matched tVPEC model
to show where the broken passivity actually bites.

Run:  python examples/passivity_audit.py
"""

import numpy as np

from repro.circuit import step, transient_analysis
from repro.extraction import Parasitics, extract
from repro.geometry import aligned_bus
from repro.peec import attach_bus_testbench, build_peec
from repro.vpec import audit_network, full_vpec_networks, truncate_numerical

BITS = 32


def eigen_report(name: str, matrix: np.ndarray) -> bool:
    eigenvalues = np.linalg.eigvalsh(matrix)
    positive = bool(eigenvalues[0] > 0)
    print(
        f"  {name:30s} min eig = {eigenvalues[0]:+.3e}  "
        f"{'PASSIVE' if positive else 'NOT PASSIVE'}"
    )
    return positive


def truncate_l_matrix(parasitics: Parasitics, threshold: float) -> np.ndarray:
    """The naive sparsification the paper warns against: zero small L."""
    truncated = parasitics.inductance.copy()
    strength = np.abs(truncated) / np.diag(truncated)[:, None]
    mask = (strength < threshold) & ~np.eye(truncated.shape[0], dtype=bool)
    truncated[mask | mask.T] = 0.0
    return truncated


def peec_with_inductance(system_bits: int, inductance: np.ndarray):
    """Build a PEEC model whose L matrix is replaced wholesale."""
    parasitics = extract(aligned_bus(system_bits))
    parasitics.inductance = inductance
    axis, (indices, _) = next(iter(parasitics.inductance_blocks.items()))
    parasitics.inductance_blocks = {axis: (indices, inductance)}
    return build_peec(parasitics)


def main() -> None:
    parasitics = extract(aligned_bus(BITS))

    print("1) Truncating the partial inductance matrix L directly:")
    eigen_report("full L", parasitics.inductance)
    # Tighten the truncation until passivity breaks -- it always does,
    # because L is far from diagonally dominant (neighbor coupling
    # coefficients are ~0.74 on this bus).
    truncated_l = parasitics.inductance
    l_ok = True
    for threshold in (0.4, 0.5, 0.6, 0.7):
        truncated_l = truncate_l_matrix(parasitics, threshold)
        kept = (np.count_nonzero(truncated_l) - BITS) / (BITS * (BITS - 1))
        l_ok = eigen_report(
            f"L truncated @{threshold} ({kept * 100:.0f}% kept)", truncated_l
        )
        if not l_ok:
            break
    assert not l_ok, "truncating L should break passivity (it is not DD)"

    print("\n2) Truncating the VPEC circuit matrix Ghat = l^2 L^-1 instead:")
    network = full_vpec_networks(parasitics)[0]
    eigen_report("full Ghat", network.dense_ghat())
    truncated = truncate_numerical(network, 0.02)
    g_ok = eigen_report(
        f"Ghat truncated ({truncated.sparse_factor() * 100:.0f}% kept)",
        truncated.dense_ghat(),
    )
    assert g_ok, "Theorem 2 guarantees this truncation stays passive"
    report = audit_network(truncated)
    print(
        f"  audit: diagonally dominant = {report.diagonally_dominant}, "
        f"margin = {report.dominance_margin:.3f}"
    )

    print("\n3) Simulating the indefinite truncated-L model:")
    unstable = peec_with_inductance(BITS, truncated_l)
    attach_bus_testbench(unstable.skeleton, step(1.0, 10e-12))
    victim = unstable.skeleton.ports[1].far
    result = transient_analysis(
        unstable.circuit, 300e-12, 1e-12, probe_nodes=[victim]
    )
    peak = result.voltage(victim).peak
    print(f"  truncated-L PEEC victim 'noise' peak: {peak:.3e} V")
    if peak > 10.0 or not np.isfinite(peak):
        print("  -> the non-passive model generates energy (blow-up), as")
        print("     predicted; sparsify Ghat, never L.")
    else:
        print("  -> this run stayed bounded (the testbench damps it), but")
        print("     the model is indefinite: min eig < 0 means some source")
        print("     waveform exists that extracts unbounded energy.")


if __name__ == "__main__":
    main()
