"""Crosstalk sign-off across process corners and Monte Carlo samples.

The production use-case for a *fast* passive interconnect model: noise
sign-off has to re-run per corner and per Monte Carlo sample, so the
model inside the loop must be cheap -- which is exactly what the
windowed VPEC model provides.  This script:

1. checks the classic fast/typical/slow corners of a 16-bit bus;
2. runs a 12-sample Monte Carlo over etch and thickness variation;
3. reports the noise distribution and the 95th-percentile margin,
   using gwVPEC(b=8) throughout (with a PEEC spot-check at typical).

Run:  python examples/corner_signoff.py
"""

import numpy as np

from repro.analysis.variation import (
    FAST,
    SLOW,
    TYPICAL,
    GeometryVariation,
    analyze_corner,
    monte_carlo,
)
from repro.experiments.runner import gw_spec, peec_spec

BITS = 16
MODEL = gw_spec(8)
BUDGET = 0.15  # of VDD


def main() -> None:
    print(f"{BITS}-bit bus, model {MODEL.label}, noise budget {BUDGET:.0%} VDD")

    print("\n1) corner sweep:")
    for name, corner in (("fast", FAST), ("typical", TYPICAL), ("slow", SLOW)):
        report = analyze_corner(corner, BITS, MODEL)
        worst = report.worst()
        flag = "OK " if worst.peak < BUDGET else "FAIL"
        print(
            f"  {name:8s} worst victim: wire {worst.wire}, "
            f"{worst.peak * 1e3:6.1f} mV  [{flag}]"
        )

    # Spot-check the sparsified model against PEEC at the typical corner.
    vpec_peak = analyze_corner(TYPICAL, BITS, MODEL).worst().peak
    peec_peak = analyze_corner(TYPICAL, BITS, peec_spec()).worst().peak
    deviation = abs(vpec_peak - peec_peak) / peec_peak
    print(
        f"\n2) model spot-check at typical: gwVPEC {vpec_peak * 1e3:.1f} mV "
        f"vs PEEC {peec_peak * 1e3:.1f} mV ({deviation:.1%} deviation)"
    )
    assert deviation < 0.15

    print("\n3) Monte Carlo (12 samples, 5% etch + 5% thickness, 1-sigma):")
    variation = GeometryVariation(etch_sigma=0.05, thickness_sigma=0.05)
    result = monte_carlo(variation, BITS, MODEL, samples=12, seed=2005)
    summary = result.summary()
    print(
        f"  worst-victim noise: mean {summary['noise_mean'] * 1e3:.1f} mV, "
        f"sigma {summary['noise_std'] * 1e3:.2f} mV, "
        f"p95 {summary['noise_p95'] * 1e3:.1f} mV"
    )
    print(
        f"  aggressor delay: mean {summary['delay_mean'] * 1e12:.1f} ps, "
        f"spread {summary['delay_spread'] * 1e12:.2f} ps"
    )
    margin = BUDGET - summary["noise_p95"]
    print(f"  p95 margin to budget: {margin * 1e3:+.1f} mV")
    assert np.isfinite(summary["noise_p95"])
    print("OK: corner and Monte Carlo sign-off completed on the sparse model")


if __name__ == "__main__":
    main()
