"""Quickstart: model a coupled bus and verify full VPEC against PEEC.

Builds the paper's 5-bit bus (Section II-C), extracts parasitics with
the closed-form FastHenry/FastCap substitute, constructs both the PEEC
and the full VPEC models, runs the standard crosstalk testbench, and
prints the victim noise of both models -- which match to solver
precision (the paper's central equivalence claim).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis.metrics import waveform_difference
from repro.circuit import step, transient_analysis, write_spice
from repro.extraction import extract
from repro.geometry import aligned_bus
from repro.peec import attach_bus_testbench, build_peec
from repro.vpec import audit_network, full_vpec


def main() -> None:
    # 1. Geometry: five 1000 x 1 x 1 um copper lines, 2 um apart.
    bus = aligned_bus(bits=5)
    print(f"geometry: {bus.name} with {len(bus)} filaments")

    # 2. Extraction: partial inductances (dense), capacitances, resistances.
    parasitics = extract(bus)
    L = parasitics.inductance
    print(
        f"extracted L: self = {L[0, 0] * 1e9:.3f} nH, "
        f"nearest mutual = {L[0, 1] * 1e9:.3f} nH "
        f"(k = {L[0, 1] / L[0, 0]:.2f})"
    )

    # 3. Models: dense PEEC baseline and the inversion-based full VPEC.
    peec = build_peec(parasitics)
    vpec = full_vpec(extract(bus))  # fresh extraction: circuits are single-use
    report = audit_network(vpec.model.networks[0])
    print(
        f"VPEC circuit matrix: SPD = {report.positive_definite}, "
        f"strictly diagonally dominant = {report.diagonally_dominant} "
        f"(margin {report.dominance_margin:.3f})"
    )

    # 4. Testbench: 1-V step with 10 ps rise on bit 0, everything else quiet.
    stimulus = step(v_final=1.0, rise_time=10e-12)
    attach_bus_testbench(peec.skeleton, stimulus)
    attach_bus_testbench(vpec.model.skeleton, stimulus)

    # 5. Simulate and compare the victim (bit 1) far-end noise.
    victim_peec = peec.skeleton.ports[1].far
    victim_vpec = vpec.model.skeleton.ports[1].far
    result_peec = transient_analysis(
        peec.circuit, t_stop=400e-12, dt=0.5e-12, probe_nodes=[victim_peec]
    )
    result_vpec = transient_analysis(
        vpec.model.circuit, t_stop=400e-12, dt=0.5e-12, probe_nodes=[victim_vpec]
    )
    wave_peec = result_peec.voltage(victim_peec)
    wave_vpec = result_vpec.voltage(victim_vpec)
    diff = waveform_difference(wave_peec, wave_vpec)
    print(f"PEEC victim noise peak:      {wave_peec.peak * 1e3:.3f} mV")
    print(f"full VPEC victim noise peak: {wave_vpec.peak * 1e3:.3f} mV")
    print(f"max waveform difference:     {diff.max_abs * 1e3:.2e} mV")
    assert diff.max_abs < 1e-9, "full VPEC must match PEEC exactly"

    # 6. Both models are SPICE compatible -- export if you want to check.
    netlist = write_spice(vpec.model.circuit)
    print(f"VPEC SPICE netlist: {len(netlist.splitlines())} cards")
    print("OK: full VPEC reproduces PEEC to solver precision")


if __name__ == "__main__":
    main()
