"""Reduced-order macromodeling of a sparsified VPEC bus (future work).

The paper closes by announcing model order reduction for VPEC netlists
as future work (refs [16], [17]).  This example delivers that layer: a
32-bit bus is modeled with gwVPEC, then compressed with block-Arnoldi
moment matching to a handful of states, and the reduced transfer
function is validated against the full AC solution across four decades.

The practical story: a signal-integrity macromodel of the aggressor ->
victim coupling that evaluates in microseconds, suitable for embedding
in a higher-level noise-screening loop.

Run:  python examples/reduced_order_macromodel.py
"""

import time

import numpy as np

from repro.circuit import ac_analysis, ac_unit, logspace_frequencies
from repro.extraction import extract
from repro.geometry import aligned_bus
from repro.mor import reduce_circuit
from repro.peec import attach_bus_testbench
from repro.vpec import windowed_vpec

BITS = 32


def main() -> None:
    parasitics = extract(aligned_bus(BITS))
    model = windowed_vpec(parasitics, window_size=8).model
    attach_bus_testbench(model.skeleton, ac_unit(1.0))
    victim = model.skeleton.ports[1].far
    print(
        f"gwVPEC model of a {BITS}-bit bus: "
        f"{model.circuit.num_nodes} nodes, {len(model.circuit)} elements"
    )

    freqs = logspace_frequencies(1e6, 10e9, 10)
    t0 = time.perf_counter()
    full = ac_analysis(model.circuit, freqs, probe_nodes=[victim]).voltage(victim)
    full_seconds = time.perf_counter() - t0

    print(f"{'order':>6} {'states':>7} {'max rel err':>12} {'eval time':>10}")
    for order in (8, 12, 16, 20, 24):
        rom = reduce_circuit(
            model.circuit, inputs=["Vdrv0"], outputs=[victim], order=order
        )
        t0 = time.perf_counter()
        reduced = rom.transfer(freqs)[:, 0, 0]
        rom_seconds = time.perf_counter() - t0
        error = np.max(np.abs(reduced - full)) / np.max(np.abs(full))
        print(f"{order:>6} {rom.order:>7} {error:>12.2e} {rom_seconds:>9.4f}s")

    rom = reduce_circuit(model.circuit, ["Vdrv0"], [victim], order=24)
    reduced = rom.transfer(freqs)[:, 0, 0]
    error = np.max(np.abs(reduced - full)) / np.max(np.abs(full))
    assert error < 1e-4, "the order-24 macromodel must track the full model"
    print(
        f"\nfull AC sweep: {full_seconds:.3f} s for {freqs.size} points; "
        f"the {rom.order}-state macromodel replays it in microseconds."
    )
    print("OK: moment-matched macromodel tracks the sparsified VPEC bus")


if __name__ == "__main__":
    main()
