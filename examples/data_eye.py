"""Data-pattern eye analysis over a coupled bus channel.

Beyond single-event crosstalk: every wire of a bus carries PRBS data and
the question is whether the victim's *eye* still opens at the receiver.
This script measures the victim eye on an 8-bit bus under increasing
neighbor activity, then sweeps the VPEC window size against the dense
models.

The sweep exposes a practical lesson the single-aggressor benchmarks
cannot: simultaneous switching *accumulates* exactly the long-range
couplings a small window drops, so a window that passes the noise-peak
checks (b = 4 here) still overestimates the worst-case eye by ~35% --
the multi-aggressor scenario, not the single-aggressor one, sets the
window budget.

Run:  python examples/data_eye.py
"""

from repro.analysis.eye import channel_eye, prbs_bits
from repro.extraction import extract
from repro.geometry import aligned_bus
from repro.peec import build_peec
from repro.vpec import windowed_vpec

BITS = 8
VICTIM = 3
BIT_TIME = 100e-12
PATTERN_LENGTH = 20


def gw_skeleton(window):
    return windowed_vpec(
        extract(aligned_bus(BITS)), window_size=window
    ).model.skeleton


def main() -> None:
    data = prbs_bits(PATTERN_LENGTH)
    all_aggressors = {
        w: prbs_bits(PATTERN_LENGTH, seed=0b1000001 + 3 * w)
        for w in range(BITS)
        if w != VICTIM
    }
    print(
        f"{BITS}-bit bus channel, victim wire {VICTIM}, "
        f"{PATTERN_LENGTH} bits at {BIT_TIME * 1e12:.0f} ps/bit "
        f"({1 / BIT_TIME / 1e9:.0f} Gb/s)"
    )

    print("\n1) neighbor activity (gwVPEC b=8 channel):")
    scenarios = {
        "quiet neighbors": {},
        "both neighbors switching": {
            VICTIM - 1: prbs_bits(PATTERN_LENGTH, seed=0b1010101),
            VICTIM + 1: prbs_bits(PATTERN_LENGTH, seed=0b0110011),
        },
        "all other lines switching": all_aggressors,
    }
    heights = {}
    for label, aggressors in scenarios.items():
        eye = channel_eye(
            gw_skeleton(8),
            victim=VICTIM,
            victim_bits=data,
            aggressor_bits=aggressors,
            bit_time=BIT_TIME,
        )
        heights[label] = eye.height
        status = "open" if eye.is_open else "CLOSED"
        print(
            f"  {label:28s} eye height {eye.height * 1e3:6.1f} mV, "
            f"width {eye.width * 1e12:5.1f} ps  [{status}]"
        )
    assert (
        heights["all other lines switching"]
        < heights["both neighbors switching"]
        < heights["quiet neighbors"]
    ), "more switching neighbors must close the eye further"

    print("\n2) window-size budget under worst-case switching:")
    peec_eye = channel_eye(
        build_peec(extract(aligned_bus(BITS))).skeleton,
        victim=VICTIM,
        victim_bits=data,
        aggressor_bits=all_aggressors,
        bit_time=BIT_TIME,
    )
    print(f"  {'PEEC (reference)':18s} {peec_eye.height * 1e3:6.1f} mV")
    previous_error = None
    for window in (4, 6, 8):
        eye = channel_eye(
            gw_skeleton(window),
            victim=VICTIM,
            victim_bits=data,
            aggressor_bits=all_aggressors,
            bit_time=BIT_TIME,
        )
        error = eye.height - peec_eye.height
        print(
            f"  {f'gwVPEC(b={window})':18s} {eye.height * 1e3:6.1f} mV "
            f"(optimistic by {error * 1e3:+6.1f} mV)"
        )
        if previous_error is not None:
            assert abs(error) <= abs(previous_error) + 1e-9
        previous_error = error
    assert abs(previous_error) < 0.02 * peec_eye.height
    print(
        "\nOK: simultaneous switching sets the window budget -- the b=8"
        "\nwindow matches PEEC, the b=4 window is dangerously optimistic."
    )


if __name__ == "__main__":
    main()
