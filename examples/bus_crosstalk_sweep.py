"""Sparsification tradeoff study on a wide on-chip bus.

The scenario the paper's introduction motivates: a signal-integrity
engineer needs crosstalk waveforms for a wide bus, but the dense PEEC
inductance coupling makes SPICE runs painful.  This example sweeps both
sparsified VPEC families over a 64-bit bus and prints the
accuracy / runtime / model-size tradeoff against the PEEC reference, so
you can pick an operating point (e.g. "fastest model with < 2% noise
error").

Run:  python examples/bus_crosstalk_sweep.py
"""

from repro.analysis.metrics import waveform_difference
from repro.analysis.tables import format_table
from repro.circuit import step
from repro.extraction import extract
from repro.geometry import aligned_bus
from repro.experiments.runner import (
    build_model,
    gw_spec,
    nt_spec,
    peec_spec,
    run_bus_transient,
)

BITS = 64
OBSERVE = 1  # far end of the second bit, as in the paper
T_STOP = 300e-12
DT = 1e-12


def main() -> None:
    parasitics = extract(aligned_bus(BITS))
    stimulus = step(1.0, rise_time=10e-12)

    reference = run_bus_transient(
        build_model(peec_spec(), parasitics), stimulus, T_STOP, DT, [OBSERVE]
    )
    ref_wave = reference.waveforms[f"far{OBSERVE}"]
    print(
        f"PEEC reference: {BITS}-bit bus, victim noise peak "
        f"{ref_wave.peak * 1e3:.1f} mV, runtime {reference.total_seconds:.3f} s"
    )

    specs = [
        nt_spec(1e-4),
        nt_spec(1e-3),
        nt_spec(1e-2),
        gw_spec(32),
        gw_spec(16),
        gw_spec(8),
    ]
    rows = []
    for spec in specs:
        run = run_bus_transient(
            build_model(spec, parasitics), stimulus, T_STOP, DT, [OBSERVE]
        )
        diff = waveform_difference(ref_wave, run.waveforms[f"far{OBSERVE}"])
        rows.append(
            [
                run.model.label,
                f"{run.model.sparse_factor * 100:.1f}%",
                f"{run.total_seconds:.3f}",
                f"{reference.total_seconds / run.total_seconds:.1f}x",
                f"{run.model.netlist_bytes() / 1024:.0f} KiB",
                f"{diff.mean_relative_to_peak * 100:.2f}%",
            ]
        )
    print()
    print(
        format_table(
            [
                "model",
                "couplings kept",
                "runtime (s)",
                "speedup",
                "netlist",
                "avg noise error",
            ],
            rows,
            title=f"Sparsified VPEC tradeoffs on the {BITS}-bit bus (vs PEEC)",
        )
    )
    print(
        "\nReading the table: numerical truncation (ntVPEC) needs the full"
        "\ninversion first; geometric windowing (gwVPEC) skips it and is the"
        "\nchoice for buses wider than a few hundred bits (see Fig. 4/8"
        "\nbenchmarks)."
    )


if __name__ == "__main__":
    main()
