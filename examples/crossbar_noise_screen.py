"""Multi-layer noise screening on a two-layer crossbar fabric.

A routing-fabric scenario beyond the paper's single-layer buses: eight
horizontal wires under six vertical wires.  The two layers couple only
capacitively (at the crossings), while each layer couples inductively
within itself -- two independent VPEC magnetic circuits.

The script runs the signal-integrity screen a router would: switch one
lower-layer wire, report every victim's noise on both layers against a
noise budget, and do it on the sparsified (windowed) VPEC model, with
the PEEC result as the accuracy cross-check.

Run:  python examples/crossbar_noise_screen.py
"""

from repro.analysis.signal_integrity import crosstalk_report
from repro.circuit import step
from repro.extraction import extract
from repro.geometry import crossbar
from repro.peec import build_peec
from repro.vpec import windowed_vpec

X_WIRES, Y_WIRES = 8, 6
AGGRESSOR = 3          # a middle wire of the lower layer
NOISE_BUDGET = 0.15    # fraction of VDD


def main() -> None:
    fabric = crossbar(X_WIRES, Y_WIRES)
    print(
        f"fabric: {X_WIRES} x-wires under {Y_WIRES} y-wires, "
        f"{len(fabric.crossing_pairs())} crossings"
    )

    model = windowed_vpec(extract(fabric), window_size=6).model
    print(
        f"model: gwVPEC(b=6), {len(model.networks)} magnetic circuits "
        f"(one per routing direction), sparse factor "
        f"{model.sparse_factor():.2f}"
    )
    report = crosstalk_report(
        model.skeleton,
        step(1.0, rise_time=10e-12),
        aggressor=AGGRESSOR,
        t_stop=250e-12,
    )
    print(report.to_table())

    same_layer = [v for v in report.victims if v.wire < X_WIRES]
    other_layer = [v for v in report.victims if v.wire >= X_WIRES]
    worst_same = max(same_layer, key=lambda v: v.peak)
    worst_other = max(other_layer, key=lambda v: v.peak)
    print(
        f"\nworst same-layer victim: wire {worst_same.wire} "
        f"({worst_same.peak * 1e3:.1f} mV, inductive + lateral C)"
    )
    print(
        f"worst cross-layer victim: wire {worst_other.wire} "
        f"({worst_other.peak * 1e3:.1f} mV, crossing C only)"
    )
    assert worst_other.peak < worst_same.peak

    failing = report.failing(NOISE_BUDGET)
    if failing:
        wires = ", ".join(str(v.wire) for v in failing)
        print(f"noise screen: FAIL at {NOISE_BUDGET * 100:.0f}% VDD ({wires})")
    else:
        print(f"noise screen: PASS at {NOISE_BUDGET * 100:.0f}% VDD")

    # Accuracy cross-check of the sparsified model against dense PEEC.
    peec = build_peec(extract(fabric))
    peec_report = crosstalk_report(
        peec.skeleton,
        step(1.0, rise_time=10e-12),
        aggressor=AGGRESSOR,
        t_stop=250e-12,
    )
    worst_error = max(
        abs(report.victim(v.wire).peak - v.peak) for v in peec_report.victims
    )
    print(
        f"cross-check vs PEEC: worst victim-peak deviation "
        f"{worst_error * 1e3:.2f} mV"
    )
    assert worst_error < 0.25 * worst_same.peak, (
        "sparsified model must track PEEC peaks within the screen margin"
    )
    print("OK: crossbar screened with the sparsified multi-direction VPEC")


if __name__ == "__main__":
    main()
