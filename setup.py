"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``python setup.py develop`` works in offline environments where pip's
PEP-660 editable path is unavailable (it requires the ``wheel``
package, which an air-gapped interpreter may not have).
"""

from setuptools import setup

setup()
