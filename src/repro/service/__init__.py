"""Long-running analysis service: async jobs over shared-memory models.

The one-shot CLI pays the full pipeline cost -- process start, model
build, extraction -- per invocation.  :mod:`repro.service` amortizes
all of it: a resident asyncio service accepts extraction, simulation,
and tiered noise-scan requests as jobs, keeps extracted models in a
shared-memory columnar store workers attach to zero-copy, shards
per-aggressor window solves across a process pool, memoizes results by
content key, and streams progress per job.  Results are
checksum-identical to the equivalent one-shot run -- the service bench
commits that equivalence to the benchmark trajectory.

See ``docs/service.md`` for the architecture and wire protocol.
"""

from repro.service.jobs import (
    ANALYSIS_OPS,
    TERMINAL_STATES,
    GeometrySpec,
    JobCancelledError,
    JobRecord,
    JobRequest,
    SimParams,
)
from repro.service.client import ServiceClient, gather_requests
from repro.service.server import (
    AnalysisService,
    ServiceConfig,
    ServiceServer,
    serve,
)
from repro.service.shm import (
    SharedColumnBlock,
    SharedParasiticsStore,
    attach_parasitics,
    detach_all,
    parasitics_columns,
    parasitics_from_block,
)

__all__ = [
    "ANALYSIS_OPS",
    "TERMINAL_STATES",
    "GeometrySpec",
    "JobCancelledError",
    "JobRecord",
    "JobRequest",
    "SimParams",
    "ServiceClient",
    "gather_requests",
    "AnalysisService",
    "ServiceConfig",
    "ServiceServer",
    "serve",
    "SharedColumnBlock",
    "SharedParasiticsStore",
    "attach_parasitics",
    "detach_all",
    "parasitics_columns",
    "parasitics_from_block",
]
