"""Asyncio client of the JSON-lines service protocol.

:class:`ServiceClient` keeps one TCP connection and multiplexes any
number of in-flight requests over it: every outbound message carries a
client-side ``id`` tag, a background reader task routes tagged replies
to per-request queues, and :meth:`request` resolves when the terminal
event for its job arrives.  This is what the load-test bench uses to
hold thousands of concurrent requests over a handful of connections.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, List, Optional

from repro.service.jobs import TERMINAL_STATES

#: Reply events that end a request exchange.
_FINAL_EVENTS = TERMINAL_STATES + ("error",)


class ServiceClient:
    """One connection to a :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._queues: Dict[str, "asyncio.Queue[Dict[str, Any]]"] = {}
        self._counter = 0
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        while True:
            line = await self._reader.readline()
            if not line:
                break
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                continue
            queue = self._queues.get(message.get("id"))
            if queue is not None:
                queue.put_nowait(message)

    async def _send(self, payload: Dict[str, Any]) -> str:
        self._counter += 1
        tag = f"c{self._counter:06d}"
        payload = {"id": tag, **payload}
        self._queues[tag] = asyncio.Queue()
        async with self._write_lock:
            self._writer.write(json.dumps(payload).encode() + b"\n")
            await self._writer.drain()
        return tag

    # ------------------------------------------------------------------
    async def request(
        self,
        payload: Dict[str, Any],
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Submit one analysis request and await its terminal event.

        Intermediate events (``accepted``, ``queued``, ``running``,
        ``progress`` -- the latter three only with ``"stream": true``
        in the payload) are passed to ``on_event`` when given.
        """
        tag = await self._send(payload)
        try:
            while True:
                event = await self._queues[tag].get()
                if event.get("event") in _FINAL_EVENTS:
                    return event
                if on_event is not None:
                    on_event(event)
        finally:
            del self._queues[tag]

    async def control(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send a single-reply control op (ping/stats/job/cancel/shutdown)."""
        tag = await self._send(payload)
        try:
            return await self._queues[tag].get()
        finally:
            del self._queues[tag]

    # Convenience wrappers -------------------------------------------------
    async def ping(self) -> bool:
        return (await self.control({"op": "ping"})).get("event") == "pong"

    async def stats(self) -> Dict[str, Any]:
        return (await self.control({"op": "stats"}))["stats"]

    async def cancel(self, job_id: str) -> bool:
        reply = await self.control({"op": "cancel", "job": job_id})
        return bool(reply.get("ok"))

    async def shutdown(self) -> None:
        await self.control({"op": "shutdown"})


async def gather_requests(
    client: ServiceClient, payloads: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Fire many requests concurrently over one connection."""
    return list(
        await asyncio.gather(
            *(client.request(payload) for payload in payloads)
        )
    )
