"""Job model of the analysis service: requests, records, lifecycle.

A :class:`JobRequest` is the service's unit of work -- one extraction,
crosstalk simulation, or tiered noise scan, fully described by plain
data (geometry spec, model spec, physics parameters), so it can travel
as JSON over the wire, hash into a content-addressed key, and pickle
into a worker process unchanged.

Requests are *content-addressed* like everything else in the pipeline:
two jobs with identical requests share one computation (the service
memoizes finished results by :meth:`JobRequest.key`), exactly as two
CLI runs share cache entries.

A :class:`JobRecord` tracks one submitted job through the lifecycle
``queued -> running -> done | failed | cancelled | timeout``.  Failures
carry the :mod:`repro.health` taxonomy: the worker's typed exception
class name rides in ``error["kind"]``, so a client can distinguish a
singular matrix from a passivity violation from a plain bug, the same
way the CLI's exit-code-2 path does.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.experiments.runner import ModelSpec
from repro.geometry.bus import aligned_bus, nonaligned_bus
from repro.geometry.spiral import square_spiral
from repro.geometry.system import FilamentSystem
from repro.noise.engine import NoiseConfig
from repro.noise.receiver import ReceiverModel
from repro.noise.screening import KappaEnvelope
from repro.noise.sweep import SweepGrid
from repro.pipeline.hashing import stable_hash

#: The analysis operations the service accepts.
ANALYSIS_OPS = ("extract", "simulate", "noise", "sweep")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMEOUT = "timeout"

#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED, TIMEOUT)


class JobCancelledError(Exception):
    """Raised inside the execution path when a job's cancel flag is set."""


@dataclass(frozen=True)
class GeometrySpec:
    """A serializable geometry request.

    ``kind`` selects the generator (``bus``, ``nonaligned_bus``,
    ``spiral``); ``size`` is the bus bit count or spiral turn count;
    ``segments`` the per-line segment count (buses) or total segment
    count (spirals, where 0 means the generator default).
    """

    kind: str
    size: int
    segments: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("bus", "nonaligned_bus", "spiral"):
            raise ValueError(f"unknown geometry kind {self.kind!r}")
        if self.size < 1:
            raise ValueError("geometry size must be >= 1")

    def build(self) -> FilamentSystem:
        if self.kind == "bus":
            return aligned_bus(self.size, segments_per_line=self.segments)
        if self.kind == "nonaligned_bus":
            return nonaligned_bus(self.size, segments_per_line=self.segments)
        if self.segments > 1:
            return square_spiral(turns=self.size, total_segments=self.segments)
        return square_spiral(turns=self.size)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GeometrySpec":
        return cls(
            kind=str(payload["kind"]),
            size=int(payload["size"]),
            segments=int(payload.get("segments", 1)),
        )


@dataclass(frozen=True)
class SimParams:
    """Parameters of one crosstalk simulation request."""

    aggressor: int = 0
    vdd: float = 1.0
    rise_time: float = 10e-12
    t_stop: float = 300e-12
    dt: float = 1e-12

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimParams":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def model_spec_to_dict(spec: ModelSpec) -> Dict[str, Any]:
    return dataclasses.asdict(spec)


def model_spec_from_dict(payload: Mapping[str, Any]) -> ModelSpec:
    known = {f.name for f in dataclasses.fields(ModelSpec)}
    return ModelSpec(**{k: v for k, v in payload.items() if k in known})


def noise_config_to_dict(config: NoiseConfig) -> Dict[str, Any]:
    return dataclasses.asdict(config)


def noise_config_from_dict(payload: Mapping[str, Any]) -> NoiseConfig:
    known = {f.name for f in dataclasses.fields(NoiseConfig)}
    kwargs = {k: v for k, v in payload.items() if k in known}
    # The nested receiver / envelope sections arrive as plain dicts
    # after a JSON round trip; rebuild the frozen dataclasses.
    receiver = kwargs.get("receiver")
    if isinstance(receiver, Mapping):
        kwargs["receiver"] = ReceiverModel(
            vtc=tuple(
                (float(p[0]), float(p[1])) for p in receiver["vtc"]
            ),
            output_fraction=float(receiver.get("output_fraction", 0.25)),
        )
    envelope = kwargs.get("envelope")
    if isinstance(envelope, Mapping):
        kwargs["envelope"] = KappaEnvelope(
            edge=tuple(float(v) for v in envelope["edge"]),
            center=tuple(float(v) for v in envelope["center"]),
            edge_reach=int(envelope["edge_reach"]),
            edge_boost=float(envelope["edge_boost"]),
            family=str(envelope.get("family", "bus")),
        )
    return NoiseConfig(**kwargs)


def sweep_grid_to_dict(grid: SweepGrid) -> Dict[str, Any]:
    return {
        "topologies": list(grid.topologies),
        "widths": list(grid.widths),
        "wire_widths": list(grid.wire_widths),
        "spacings": list(grid.spacings),
        "drivers": list(grid.drivers),
        "densities": list(grid.densities),
        "segments": list(grid.segments),
        "base": noise_config_to_dict(grid.base),
        "model": model_spec_to_dict(grid.model),
    }


def sweep_grid_from_dict(payload: Mapping[str, Any]) -> SweepGrid:
    kwargs: Dict[str, Any] = {}
    for axis, kind in (
        ("topologies", str),
        ("widths", int),
        ("wire_widths", float),
        ("spacings", float),
        ("drivers", float),
        ("densities", float),
        ("segments", int),
    ):
        if axis in payload:
            kwargs[axis] = tuple(kind(v) for v in payload[axis])
    if "base" in payload:
        kwargs["base"] = noise_config_from_dict(payload["base"])
    if "model" in payload:
        kwargs["model"] = model_spec_from_dict(payload["model"])
    return SweepGrid(**kwargs)


@dataclass(frozen=True)
class JobRequest:
    """One fully-specified analysis request.

    ``model`` applies to ``simulate`` and ``noise``; ``sim`` only to
    ``simulate``; ``noise`` (the config) only to ``noise``.  Unused
    sections keep their defaults so the content key stays stable.

    A ``sweep`` job carries its whole design-space grid in ``sweep``
    and no ``geometry`` -- each scenario of the grid names its own;
    every other op requires ``geometry`` and forbids ``sweep``.
    """

    op: str
    geometry: Optional[GeometrySpec] = None
    model: ModelSpec = ModelSpec("gw", window=8)
    sim: SimParams = SimParams()
    noise: NoiseConfig = NoiseConfig()
    verify: bool = False
    sweep: Optional[SweepGrid] = None

    def __post_init__(self) -> None:
        if self.op not in ANALYSIS_OPS:
            raise ValueError(
                f"op must be one of {ANALYSIS_OPS}, got {self.op!r}"
            )
        if self.op == "sweep":
            if self.sweep is None:
                raise ValueError("sweep jobs require a sweep grid")
            if self.geometry is not None:
                raise ValueError(
                    "sweep jobs take geometry from the grid's scenarios"
                )
        else:
            if self.geometry is None:
                raise ValueError(f"{self.op} jobs require geometry")
            if self.sweep is not None:
                raise ValueError(f"{self.op} jobs do not take a sweep grid")

    def key(self) -> str:
        """Content hash identifying this request's result."""
        return stable_hash(
            "service-job",
            self.op,
            self.geometry,
            self.model,
            self.sim,
            self.noise,
            self.verify,
            self.sweep,
        )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "op": self.op,
            "model": model_spec_to_dict(self.model),
            "sim": self.sim.to_dict(),
            "noise": noise_config_to_dict(self.noise),
            "verify": self.verify,
        }
        if self.geometry is not None:
            payload["geometry"] = self.geometry.to_dict()
        if self.sweep is not None:
            payload["sweep"] = sweep_grid_to_dict(self.sweep)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobRequest":
        kwargs: Dict[str, Any] = {"op": str(payload["op"])}
        if payload.get("geometry") is not None:
            kwargs["geometry"] = GeometrySpec.from_dict(payload["geometry"])
        if "model" in payload:
            kwargs["model"] = model_spec_from_dict(payload["model"])
        if "sim" in payload:
            kwargs["sim"] = SimParams.from_dict(payload["sim"])
        if "noise" in payload:
            kwargs["noise"] = noise_config_from_dict(payload["noise"])
        if "verify" in payload:
            kwargs["verify"] = bool(payload["verify"])
        if payload.get("sweep") is not None:
            kwargs["sweep"] = sweep_grid_from_dict(payload["sweep"])
        return cls(**kwargs)


@dataclass
class JobRecord:
    """One submitted job's lifecycle, timings, and outcome."""

    id: str
    request: JobRequest
    status: str = QUEUED
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    checksum: Optional[str] = None
    error: Optional[Dict[str, str]] = None
    #: Set by :meth:`request_cancel`; the execution path checks it at
    #: stage boundaries (between extract / screen / simulation shards).
    cancel_requested: bool = False
    #: True when the result came from the service's content-addressed
    #: result memo instead of a fresh computation.
    memoized: bool = False

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def seconds(self) -> Optional[float]:
        """Wall-clock run time (started -> finished), when known."""
        if self.started is None or self.finished is None:
            return None
        return self.finished - self.started

    def request_cancel(self) -> bool:
        """Flag the job for cancellation; returns False once terminal."""
        if self.terminal:
            return False
        self.cancel_requested = True
        return True

    def check_cancelled(self) -> None:
        """Raise :class:`JobCancelledError` if a cancel was requested."""
        if self.cancel_requested:
            raise JobCancelledError(self.id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able status summary (without the full result payload)."""
        return {
            "job": self.id,
            "op": self.request.op,
            "status": self.status,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "seconds": self.seconds,
            "memoized": self.memoized,
            "checksum": self.checksum,
            "error": self.error,
        }
