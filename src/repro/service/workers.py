"""Worker-side computation of the analysis service.

Every function here is module-level and operates on plain picklable
data, so the service can run it either in a worker process (via the
pool) or inline in a thread -- the code path is identical.  Workers
never receive a :class:`~repro.extraction.parasitics.Parasitics`
object over the pipe: they receive a *shared-memory segment name* and
attach zero-copy views (:func:`repro.service.shm.attach_parasitics`).

The noise scan is *job-granular and shardable*: the screen tier runs
as one work item, then the escalated victims are partitioned into
shards, each simulated as an independent work item against the same
:func:`~repro.noise.engine.escalation_horizon`.  Because every
scenario is an independent RHS column of the shared factorization, the
merged shard metrics are bit-identical to the one-shot
:func:`~repro.noise.engine.run_noise_scan` -- the equivalence the
service bench's checksums pin.

:func:`oneshot_result` is the reference path: the exact computation a
one-shot CLI invocation performs, used by the load-test bench (and the
tests) to prove service results checksum-identical to CLI results.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.signal_integrity import NoiseReport, crosstalk_report
from repro.bench.results import array_checksum
from repro.circuit.sources import step
from repro.experiments.runner import ModelSpec, build_model
from repro.extraction.parasitics import Parasitics
from repro.noise.engine import (
    EscalationTierResult,
    NoiseConfig,
    NoiseScanReport,
    ScreenTierResult,
    run_noise_scan,
    screen_tier,
    simulate_escalated,
)
from repro.noise.sweep import (
    SweepReport,
    _GroupResult,
    _ScreenedScenario,
    _screen_scenario,
    _simulate_group,
    run_sweep,
    sweep_report_checksum,
)
from repro.noise.windows import Window, staggered_schedule
from repro.noise.worst_case import Alignment
from repro.pipeline.cache import (
    PipelineCache,
    cached_extract,
    resolve_cache,
)
from repro.service.jobs import GeometrySpec, JobRequest, SimParams
from repro.service.shm import attach_parasitics


def _disk_cache(cache_dir: Optional[str]) -> Optional[PipelineCache]:
    """A disk cache at ``cache_dir``, or ``None`` when disabled."""
    return resolve_cache(cache_dir, enabled=cache_dir is not None)


def switching_schedule(
    parasitics: Parasitics, config: NoiseConfig
) -> List[Window]:
    """The default scattered launch schedule of one noise request."""
    return list(
        staggered_schedule(
            parasitics.system.num_wires,
            config.period,
            config.switch_width,
            seed=config.schedule_seed,
        )
    )


# ----------------------------------------------------------------------
# Work items (run in pool workers or inline)
# ----------------------------------------------------------------------
def extract_worker(
    geometry: GeometrySpec, cache_dir: Optional[str]
) -> Parasitics:
    """Build a geometry and extract its parasitics (disk cache aware)."""
    return cached_extract(geometry.build(), cache=_disk_cache(cache_dir))


def screen_worker(
    segment: str, config: NoiseConfig, switching: Sequence[Window]
) -> ScreenTierResult:
    """Run the closed-form screening tier against shared-memory data."""
    return screen_tier(attach_parasitics(segment), config, switching)


def sim_shard_worker(
    segment: str,
    spec: ModelSpec,
    config: NoiseConfig,
    switching: Sequence[Window],
    sensitive: Sequence[Any],
    shard: Sequence[Alignment],
    t_stop: float,
    cache_dir: Optional[str],
) -> EscalationTierResult:
    """Simulate one shard of escalated victims against shared ``t_stop``."""
    return simulate_escalated(
        attach_parasitics(segment),
        spec,
        config,
        switching,
        sensitive,
        shard,
        t_stop,
        cache=_disk_cache(cache_dir),
    )


def sweep_screen_worker(
    scenario: Any,
    base: NoiseConfig,
    spec: ModelSpec,
    cache_dir: Optional[str],
) -> _ScreenedScenario:
    """Screen one sweep scenario (phase A of the batched sweep).

    Scenarios carry their own geometry, so this work item extracts
    through the disk cache rather than attaching shared memory -- sweep
    grids span many geometries and the cache is their sharing medium.
    """
    return _screen_scenario(
        scenario, base=base, model=spec, cache=_disk_cache(cache_dir)
    )


def sweep_group_worker(
    group: List[_ScreenedScenario],
    spec: ModelSpec,
    cache_dir: Optional[str],
) -> _GroupResult:
    """Batch-simulate one compatibility group of screened scenarios."""
    return _simulate_group(group, model=spec, cache=_disk_cache(cache_dir))


def simulate_worker(
    segment: str,
    spec: ModelSpec,
    params: SimParams,
    cache_dir: Optional[str],
) -> Dict[str, Any]:
    """One crosstalk simulation: build the model, run the testbench."""
    parasitics = attach_parasitics(segment)
    built = build_model(spec, parasitics, cache=_disk_cache(cache_dir))
    report = crosstalk_report(
        built.skeleton,
        step(params.vdd, rise_time=params.rise_time),
        aggressor=params.aggressor,
        vdd=params.vdd,
        t_stop=params.t_stop,
        dt=params.dt,
    )
    return simulate_payload(built.label, report)


def shard_alignments(
    escalated: Sequence[Alignment], shards: int
) -> List[List[Alignment]]:
    """Partition escalated victims into at most ``shards`` balanced runs.

    Round-robin keeps shard sizes within one of each other; order
    within the merged result does not matter because metrics key by
    victim wire.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    count = min(shards, len(escalated))
    parts: List[List[Alignment]] = [[] for _ in range(count)]
    for index, alignment in enumerate(escalated):
        parts[index % count].append(alignment)
    return [part for part in parts if part]


# ----------------------------------------------------------------------
# Result payloads (JSON-able, with stat checksums)
# ----------------------------------------------------------------------
def extract_payload(parasitics: Parasitics) -> Dict[str, Any]:
    """Summary + checksum of one extraction result."""
    L = parasitics.inductance
    pairs = sorted(parasitics.coupling_capacitance)
    coupling = np.asarray(
        [parasitics.coupling_capacitance[p] for p in pairs], dtype=float
    )
    checksum = array_checksum(
        L, parasitics.resistance, parasitics.ground_capacitance, coupling
    )
    return {
        "op": "extract",
        "system": parasitics.system.name,
        "filaments": len(parasitics.system),
        "wires": parasitics.system.num_wires,
        "l_self_min_H": float(np.diag(L).min()),
        "l_self_max_H": float(np.diag(L).max()),
        "r_min_ohm": float(parasitics.resistance.min()),
        "r_max_ohm": float(parasitics.resistance.max()),
        "cg_total_F": float(parasitics.ground_capacitance.sum()),
        "coupling_pairs": len(pairs),
        "checksum": checksum,
    }


def simulate_payload(label: str, report: NoiseReport) -> Dict[str, Any]:
    """Summary + checksum of one crosstalk simulation."""
    victims = sorted(report.victims, key=lambda v: v.wire)
    wires = np.asarray([v.wire for v in victims], dtype=float)
    peaks = np.asarray([v.peak for v in victims], dtype=float)
    return {
        "op": "simulate",
        "model": label,
        "aggressor": report.aggressor,
        "victims": [
            {"wire": v.wire, "peak_V": v.peak, "peak_time_s": v.peak_time}
            for v in victims
        ],
        "aggressor_delay_s": report.aggressor_delay,
        "aggressor_slew_s": report.aggressor_slew,
        "checksum": array_checksum(wires, peaks),
    }


def noise_scan_checksum(report: NoiseScanReport) -> str:
    """Checksum pinning per-victim effective peaks and tier decisions."""
    peaks = np.array([v.effective_peak for v in report.victims])
    escalated = np.array([float(v.escalated) for v in report.victims])
    return array_checksum(peaks, escalated)


def noise_payload(report: NoiseScanReport) -> Dict[str, Any]:
    """Summary + checksum of one tiered noise scan."""
    payload = report.to_json_dict()
    payload["op"] = "noise"
    payload["failing"] = [v.wire for v in report.failing()]
    payload["checksum"] = noise_scan_checksum(report)
    return payload


def sweep_payload(report: SweepReport) -> Dict[str, Any]:
    """Summary + checksum of one design-space sweep."""
    payload = report.to_json_dict()
    payload["op"] = "sweep"
    payload["failing"] = [
        r.scenario.label for r in report.failing_scenarios()
    ]
    payload["checksum"] = sweep_report_checksum(report)
    return payload


# ----------------------------------------------------------------------
# The one-shot reference path
# ----------------------------------------------------------------------
def oneshot_result(
    request: JobRequest, cache: Optional[PipelineCache] = None
) -> Dict[str, Any]:
    """Compute a request exactly as a one-shot CLI invocation would.

    No service, no shared memory, no sharding -- ``cached_extract``
    into the op's own flow.  The service's streamed results must be
    checksum-identical to this path; the load-test bench commits both
    checksums to the trajectory to keep that equivalence regression-
    checked.
    """
    if request.op == "sweep":
        assert request.sweep is not None
        return sweep_payload(run_sweep(request.sweep, parallel=1, cache=cache))
    assert request.geometry is not None
    parasitics = cached_extract(request.geometry.build(), cache=cache)
    if request.op == "extract":
        return extract_payload(parasitics)
    if request.op == "simulate":
        built = build_model(request.model, parasitics, cache=cache)
        report = crosstalk_report(
            built.skeleton,
            step(request.sim.vdd, rise_time=request.sim.rise_time),
            aggressor=request.sim.aggressor,
            vdd=request.sim.vdd,
            t_stop=request.sim.t_stop,
            dt=request.sim.dt,
        )
        return simulate_payload(built.label, report)
    scan = run_noise_scan(
        parasitics,
        spec=request.model,
        config=request.noise,
        cache=cache,
        verify=request.verify,
    )
    return noise_payload(scan)


def oneshot_worker(
    request: JobRequest, cache_dir: Optional[str]
) -> Dict[str, Any]:
    """Pool-friendly wrapper of :func:`oneshot_result` (cache by path)."""
    return oneshot_result(request, cache=_disk_cache(cache_dir))
