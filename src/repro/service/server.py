"""The asyncio analysis service: job scheduling, sharding, streaming.

:class:`AnalysisService` is the in-process core -- an asyncio job
engine over a worker executor:

- **Submission** is non-blocking: :meth:`AnalysisService.submit`
  enqueues a :class:`~repro.service.jobs.JobRequest` and returns its
  :class:`~repro.service.jobs.JobRecord` immediately; a bounded
  semaphore caps simultaneously *running* jobs.
- **Shared-memory model cache**: the first job touching a geometry
  extracts it (in a worker) and publishes the parasitics into the
  :class:`~repro.service.shm.SharedParasiticsStore`; every later job
  -- and every simulation shard -- attaches zero-copy.  Extraction is
  single-flighted per geometry key, so a burst of identical requests
  costs one extraction.
- **Sharding**: a noise job runs its screen tier as one work item,
  then partitions the escalated victims across the pool
  (:func:`~repro.service.workers.shard_alignments`), every shard
  simulating against the same global horizon so the merged report is
  bit-identical to the one-shot scan.
- **Sweep jobs** carry a whole design-space grid
  (:class:`~repro.noise.sweep.SweepGrid`): scenarios screen in grid
  order with one streamed progress event each, compatibility groups
  batch-simulate through the sweep engine's multi-RHS path, and the
  merged :class:`~repro.noise.sweep.SweepReport` payload is
  checksum-identical to ``repro noise sweep``.
- **Result memo**: finished results are memoized by request content
  key -- a repeated request is answered from memory with its original
  checksum.
- **Cancellation and timeouts**: cancel flags are honored at stage
  boundaries (queued, pre-extract, post-screen, around shard
  dispatch); each job runs under ``asyncio.wait_for`` with a per-job
  or service-default timeout.  Worker failures surface through the
  :mod:`repro.health` taxonomy: the typed exception's class name is
  reported in the job's ``error["kind"]``.

:class:`ServiceServer` wraps the core in a JSON-lines TCP protocol
(one request object per line, streamed event objects per line back),
and :func:`serve` is the blocking entry point behind ``repro serve``.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import defaultdict
from dataclasses import dataclass, field
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from repro.extraction.capacitance import CapacitanceModel
from repro.extraction.constants import COPPER_RESISTIVITY
from repro.health.errors import NumericalHealthError
from repro.noise.engine import assemble_report, escalation_horizon
from repro.noise.sweep import (
    SweepReport,
    assemble_sweep_results,
    group_unresolved,
)
from repro.pipeline.cache import parasitics_key
from repro.pipeline.parallel import default_jobs
from repro.service import workers as _workers
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TIMEOUT,
    JobCancelledError,
    JobRecord,
    JobRequest,
)
from repro.service.shm import SharedParasiticsStore

#: Protocol version reported by ``hello`` / ``stats``.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Worker processes.  ``None`` uses the CPU count; ``<= 1`` runs
    #: work items on threads in-process (no pool start-up cost, the
    #: natural mode for tests and single-core machines).
    jobs: Optional[int] = None
    #: Simulation shards per noise job (default: the worker count).
    shards: Optional[int] = None
    #: Disk cache root for extraction / model artifacts (``None``
    #: disables the disk tier; shared memory still caches parasitics).
    cache_dir: Optional[str] = None
    #: Default per-job timeout, seconds (``None``: no timeout).
    job_timeout: Optional[float] = 300.0
    #: Simultaneously running jobs.
    max_concurrency: int = 8

    def worker_count(self) -> int:
        return default_jobs() if self.jobs is None else max(int(self.jobs), 1)

    def shard_count(self) -> int:
        if self.shards is not None:
            return max(int(self.shards), 1)
        return self.worker_count()


@dataclass
class ServiceStats:
    """Lifecycle tallies of one service instance."""

    submitted: int = 0
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    timeout: int = 0
    memo_hits: int = 0
    started_at: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "done": self.done,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "timeout": self.timeout,
            "memo_hits": self.memo_hits,
            "uptime_seconds": time.time() - self.started_at,
        }


class AnalysisService:
    """The in-process asyncio job service (see module docstring)."""

    def __init__(self, config: ServiceConfig = ServiceConfig()) -> None:
        self.config = config
        self.stats = ServiceStats()
        self.shm = SharedParasiticsStore()
        self._records: Dict[str, JobRecord] = {}
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._conditions: Dict[str, asyncio.Condition] = {}
        self._tasks: Dict[str, "asyncio.Task[None]"] = {}
        self._memo: Dict[str, JobRecord] = {}
        self._extract_locks: Dict[str, asyncio.Lock] = defaultdict(
            asyncio.Lock
        )
        self._executor: Optional[Executor] = None
        self._semaphore = asyncio.Semaphore(config.max_concurrency)
        self._counter = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the worker executor (idempotent)."""
        if self._executor is not None:
            return
        workers = self.config.worker_count()
        if workers > 1:
            self._executor = ProcessPoolExecutor(max_workers=workers)
        else:
            # In-process mode: threads keep the event loop responsive
            # while numpy/scipy hold the CPU.
            self._executor = ThreadPoolExecutor(
                max_workers=max(2, self.config.max_concurrency)
            )

    async def close(self) -> None:
        """Cancel outstanding jobs, stop workers, release shared memory."""
        if self._closed:
            return
        self._closed = True
        for record in self._records.values():
            record.request_cancel()
        pending = [task for task in self._tasks.values() if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self.shm.close()

    # ------------------------------------------------------------------
    # Submission and observation
    # ------------------------------------------------------------------
    async def submit(
        self, request: JobRequest, timeout: Optional[float] = None
    ) -> JobRecord:
        """Enqueue a job; returns its record immediately."""
        if self._closed:
            raise RuntimeError("service is closed")
        await self.start()
        self._counter += 1
        record = JobRecord(id=f"j{self._counter:06d}", request=request)
        self._records[record.id] = record
        self._events[record.id] = []
        self._conditions[record.id] = asyncio.Condition()
        self.stats.submitted += 1
        await self._emit(record, {"event": QUEUED})
        self._tasks[record.id] = asyncio.create_task(
            self._run(record, timeout)
        )
        return record

    def record(self, job_id: str) -> JobRecord:
        return self._records[job_id]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job was still cancellable."""
        record = self._records.get(job_id)
        if record is None:
            return False
        return record.request_cancel()

    async def wait(self, job_id: str) -> JobRecord:
        """Block until a job reaches a terminal state."""
        async for _ in self.stream(job_id):
            pass
        return self._records[job_id]

    async def stream(self, job_id: str) -> AsyncIterator[Dict[str, Any]]:
        """Yield a job's events in order, finishing on the terminal one."""
        events = self._events[job_id]
        condition = self._conditions[job_id]
        index = 0
        while True:
            async with condition:
                while index >= len(events):
                    await condition.wait()
                batch = events[index:]
                index = len(events)
            for event in batch:
                yield event
                if event["event"] in (DONE, FAILED, CANCELLED, TIMEOUT):
                    return

    def stats_dict(self) -> Dict[str, Any]:
        payload = self.stats.to_dict()
        payload.update(
            {
                "protocol": PROTOCOL_VERSION,
                "workers": self.config.worker_count(),
                "shards": self.config.shard_count(),
                "shm_blocks": self.shm.stats.blocks,
                "shm_bytes": self.shm.stats.payload_bytes,
                "shm_hits": self.shm.stats.hits,
                "shm_misses": self.shm.stats.misses,
                "jobs_tracked": len(self._records),
            }
        )
        return payload

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _emit(
        self, record: JobRecord, event: Dict[str, Any]
    ) -> None:
        event = {"job": record.id, **event}
        condition = self._conditions[record.id]
        async with condition:
            self._events[record.id].append(event)
            condition.notify_all()

    async def _finish(
        self, record: JobRecord, status: str, **extra: Any
    ) -> None:
        record.status = status
        record.finished = time.time()
        counter = {
            DONE: "done",
            FAILED: "failed",
            CANCELLED: "cancelled",
            TIMEOUT: "timeout",
        }[status]
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        await self._emit(
            record,
            {
                "event": status,
                "seconds": record.seconds,
                "memoized": record.memoized,
                "checksum": record.checksum,
                "error": record.error,
                **extra,
            },
        )

    async def _run(
        self, record: JobRecord, timeout: Optional[float]
    ) -> None:
        async with self._semaphore:
            if record.cancel_requested:
                await self._finish(record, CANCELLED)
                return
            record.status = RUNNING
            record.started = time.time()
            await self._emit(record, {"event": RUNNING})
            limit = (
                timeout if timeout is not None else self.config.job_timeout
            )
            try:
                key = record.request.key()
                memo = self._memo.get(key)
                if memo is not None:
                    record.memoized = True
                    self.stats.memo_hits += 1
                    record.result = memo.result
                    record.checksum = memo.checksum
                else:
                    result = await asyncio.wait_for(
                        self._execute(record), timeout=limit
                    )
                    record.result = result
                    record.checksum = str(result.get("checksum"))
                    self._memo[key] = record
            except JobCancelledError:
                await self._finish(record, CANCELLED)
                return
            except asyncio.TimeoutError:
                record.error = {
                    "kind": "TimeoutError",
                    "message": f"job exceeded {limit} s",
                }
                await self._finish(record, TIMEOUT)
                return
            except asyncio.CancelledError:
                await self._finish(record, CANCELLED)
                raise
            except NumericalHealthError as error:
                record.error = {
                    "kind": type(error).__name__,
                    "message": str(error),
                }
                await self._finish(record, FAILED)
                return
            except Exception as error:  # noqa: BLE001 - job boundary
                record.error = {
                    "kind": type(error).__name__,
                    "message": str(error),
                }
                await self._finish(record, FAILED)
                return
            await self._finish(record, DONE, result=record.result)

    def _parasitics_key(self, request: JobRequest) -> str:
        """The disk-cache key of this geometry's default extraction."""
        assert request.geometry is not None
        return parasitics_key(
            request.geometry.build(),
            COPPER_RESISTIVITY,
            0.0,
            CapacitanceModel(),
            True,
        )

    async def _ensure_parasitics(self, record: JobRecord) -> Tuple[str, str]:
        """Publish the request's parasitics into shared memory (once)."""
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        key = self._parasitics_key(record.request)
        segment = self.shm.segment_name(key)
        if segment is not None:
            return key, segment
        async with self._extract_locks[key]:
            segment = self.shm.segment_name(key)
            if segment is not None:
                return key, segment
            record.check_cancelled()
            await self._emit(
                record, {"event": "progress", "stage": "extract"}
            )
            parasitics = await loop.run_in_executor(
                self._executor,
                _workers.extract_worker,
                record.request.geometry,
                self.config.cache_dir,
            )
            segment = self.shm.put(key, parasitics)
            return key, segment

    async def _execute_sweep(self, record: JobRecord) -> Dict[str, Any]:
        """Run a design-space sweep job with per-scenario progress.

        Scenarios screen one executor item at a time, in grid order --
        the per-scenario progress stream is deterministic, and the
        cancel flag is honored at every scenario boundary (and again at
        every simulation-group boundary).  Screening is cheap relative
        to the batched group simulations, so serializing it costs
        little; the groups themselves reuse the exact sweep internals
        (:func:`~repro.noise.sweep.group_unresolved` /
        :func:`~repro.noise.sweep.assemble_sweep_results`), keeping the
        service's payload checksum-identical to the one-shot
        :func:`~repro.service.workers.oneshot_result` path.
        """
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        grid = record.request.sweep
        assert grid is not None
        start = time.perf_counter()
        scenarios = grid.scenarios()
        screened = []
        for index, scenario in enumerate(scenarios):
            record.check_cancelled()
            await self._emit(
                record,
                {
                    "event": "progress",
                    "stage": "scenario",
                    "index": index,
                    "total": len(scenarios),
                    "label": scenario.label,
                },
            )
            screened.append(
                await loop.run_in_executor(
                    self._executor,
                    _workers.sweep_screen_worker,
                    scenario,
                    grid.base,
                    grid.model,
                    self.config.cache_dir,
                )
            )
        group_list = group_unresolved(screened)
        group_results = []
        for index, group in enumerate(group_list):
            record.check_cancelled()
            await self._emit(
                record,
                {
                    "event": "progress",
                    "stage": "simulate_group",
                    "index": index,
                    "total": len(group_list),
                    "scenarios": [item.scenario.label for item in group],
                },
            )
            group_results.append(
                await loop.run_in_executor(
                    self._executor,
                    _workers.sweep_group_worker,
                    group,
                    grid.model,
                    self.config.cache_dir,
                )
            )
        record.check_cancelled()
        results = assemble_sweep_results(
            grid,
            screened,
            group_list,
            group_results,
            cache=_workers._disk_cache(self.config.cache_dir),
        )
        report = SweepReport(
            grid=grid,
            results=results,
            seconds=time.perf_counter() - start,
        )
        return _workers.sweep_payload(report)

    async def _execute(self, record: JobRecord) -> Dict[str, Any]:
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        request = record.request
        record.check_cancelled()
        if request.op == "sweep":
            return await self._execute_sweep(record)
        key, segment = await self._ensure_parasitics(record)

        if request.op == "extract":
            parasitics = self.shm.get(key)
            assert parasitics is not None
            return _workers.extract_payload(parasitics)

        if request.op == "simulate":
            record.check_cancelled()
            await self._emit(
                record, {"event": "progress", "stage": "simulate"}
            )
            return await loop.run_in_executor(
                self._executor,
                _workers.simulate_worker,
                segment,
                request.model,
                request.sim,
                self.config.cache_dir,
            )

        # --- Tiered noise scan, sharded across the pool. ---
        if request.verify:
            # The verify tier re-simulates victims one by one through
            # the independent path; it is a cross-check, not a serving
            # workload, so it runs as one unsharded work item.
            return await loop.run_in_executor(
                self._executor,
                _workers.oneshot_worker,
                request,
                self.config.cache_dir,
            )
        parasitics = self.shm.get(key)
        assert parasitics is not None
        config = request.noise
        switching = _workers.switching_schedule(parasitics, config)
        record.check_cancelled()
        await self._emit(record, {"event": "progress", "stage": "screen"})
        screen = await loop.run_in_executor(
            self._executor,
            _workers.screen_worker,
            segment,
            config,
            switching,
        )
        record.check_cancelled()
        metrics: Dict[int, Tuple[float, float]] = {}
        build_seconds = 0.0
        sim_seconds = 0.0
        if screen.escalated:
            t_stop = escalation_horizon(screen.escalated, config, switching)
            shards = _workers.shard_alignments(
                screen.escalated, self.config.shard_count()
            )
            await self._emit(
                record,
                {
                    "event": "progress",
                    "stage": "simulate",
                    "escalated": len(screen.escalated),
                    "shards": len(shards),
                },
            )
            futures = [
                loop.run_in_executor(
                    self._executor,
                    _workers.sim_shard_worker,
                    segment,
                    request.model,
                    config,
                    switching,
                    screen.sensitive,
                    shard,
                    t_stop,
                    self.config.cache_dir,
                )
                for shard in shards
            ]
            tiers = await asyncio.gather(*futures)
            record.check_cancelled()
            for tier in tiers:
                metrics.update(tier.metrics)
                build_seconds += tier.build_seconds
                sim_seconds += tier.sim_seconds
        report = assemble_report(
            request.model,
            config,
            switching,
            screen,
            metrics,
            build_seconds,
            sim_seconds,
        )
        return _workers.noise_payload(report)


# ----------------------------------------------------------------------
# JSON-lines TCP front-end
# ----------------------------------------------------------------------
class ServiceServer:
    """A TCP wrapper speaking one JSON object per line, both ways.

    Analysis requests (``op`` in ``extract`` / ``simulate`` /
    ``noise`` / ``sweep``) are acknowledged with an ``accepted`` event carrying the
    job id, then answered with the terminal event -- or, with
    ``"stream": true``, with every lifecycle event as it happens.
    Control ops: ``ping``, ``stats``, ``job`` (status), ``cancel``,
    ``shutdown``.  Client-supplied ``id`` tags are echoed on every
    reply, so one connection can pipeline many requests.
    """

    def __init__(
        self, service: AnalysisService, host: str, port: int
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._handlers: "set[asyncio.Task[None]]" = set()

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the actual (host, port)."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`close`)."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        await self.service.close()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        write_lock = asyncio.Lock()

        async def send(payload: Dict[str, Any]) -> None:
            async with write_lock:
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.create_task(
                    self._handle_message(line, send)
                )
                self._handlers.add(task)
                task.add_done_callback(self._handlers.discard)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # Loop shutdown can cancel the handler mid-close; the
                # transport is going away either way.
                pass

    async def _handle_message(
        self, line: bytes, send: Any
    ) -> None:
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            await send({"event": "error", "message": f"bad json: {error}"})
            return
        tag = message.get("id")

        def tagged(payload: Dict[str, Any]) -> Dict[str, Any]:
            return {"id": tag, **payload} if tag is not None else payload

        op = message.get("op")
        try:
            if op == "ping":
                await send(tagged({"event": "pong"}))
            elif op == "stats":
                await send(
                    tagged(
                        {"event": "stats", "stats": self.service.stats_dict()}
                    )
                )
            elif op == "job":
                record = self.service.record(str(message["job"]))
                await send(tagged({"event": "job", **record.to_dict()}))
            elif op == "cancel":
                ok = self.service.cancel(str(message["job"]))
                await send(tagged({"event": "cancel", "ok": ok}))
            elif op == "shutdown":
                await send(tagged({"event": "shutdown"}))
                self._shutdown.set()
            else:
                request = JobRequest.from_dict(message)
                timeout = message.get("timeout")
                record = await self.service.submit(
                    request,
                    timeout=float(timeout) if timeout is not None else None,
                )
                await send(tagged({"event": "accepted", "job": record.id}))
                if message.get("stream"):
                    async for event in self.service.stream(record.id):
                        await send(tagged(event))
                else:
                    final = await self.service.wait(record.id)
                    payload = {
                        "event": final.status,
                        "job": final.id,
                        "seconds": final.seconds,
                        "memoized": final.memoized,
                        "checksum": final.checksum,
                        "error": final.error,
                    }
                    if final.status == DONE:
                        payload["result"] = final.result
                    await send(tagged(payload))
        except KeyError as error:
            await send(tagged({"event": "error", "message": f"unknown: {error}"}))
        except (ValueError, TypeError) as error:
            await send(tagged({"event": "error", "message": str(error)}))


async def serve(config: ServiceConfig = ServiceConfig()) -> None:
    """Run a service server until it is told to shut down."""
    service = AnalysisService(config)
    server = ServiceServer(service, config.host, config.port)
    host, port = await server.start()
    print(
        f"repro service listening on {host}:{port} "
        f"({config.worker_count()} workers, "
        f"{config.shard_count()} shards)",
        flush=True,
    )
    try:
        await server.serve_until_shutdown()
    finally:
        await server.close()
