"""Shared-memory columnar store: zero-copy model handoff to workers.

The on-disk content-addressed cache (:mod:`repro.pipeline.cache`) makes
repeated *runs* cheap; a long-running service wants repeated *jobs*
cheap, without one pickle round-trip per job per worker.  This module
promotes cached artifacts to POSIX shared memory:

- :class:`SharedColumnBlock` -- one ``multiprocessing.shared_memory``
  segment laid out as a small pickled *meta* blob plus a directory of
  named, 64-byte-aligned numpy columns.  Attaching reconstructs the
  columns as read-only array views over the segment buffer -- no copy,
  no deserialization of the numeric payload.
- :class:`SharedParasiticsStore` -- a content-addressed registry of
  extracted :class:`~repro.extraction.parasitics.Parasitics`, keyed by
  the same keys as the disk cache.  The service process *owns* the
  segments (creates and eventually unlinks them); workers attach by
  segment name, which travels inside the job payload.
- :func:`attach_parasitics` -- the worker-side entry point, with a
  per-process attachment cache so a pool worker maps each segment once
  and reuses the mapping across jobs.

Lifecycle: the owner unlinks every segment in :meth:`close` (and the
service calls that from its own shutdown path); workers only ever
``close`` their mappings.  Column views pin their mapping through a
real buffer export, so a close racing live views defers (leaking the
mapping) instead of unmapping memory under a reader, and the
worker-side attachment cache is locked so thread-mode workers map
each segment exactly once.  Python < 3.13 registers attached segments
with the resource tracker too, but the tracker process is shared by
the whole (forked) pool and its cache is a per-name set, so worker
registrations collapse into the owner's and the owner's ``unlink``
retires the entry exactly once; a crashed service leaves the tracker
to unlink the leftovers.
"""

from __future__ import annotations

import os
import pickle
import secrets
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.extraction.hierarchical import LazyInductance
from repro.extraction.parasitics import Parasitics
from repro.geometry.filament import Axis
from repro.pipeline.profiling import add_counter

#: Byte alignment of every column payload inside a segment.
_ALIGN = 64

#: Fixed-size little-endian length prefix of the pickled directory.
_HEADER_BYTES = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


#: Segments whose close was refused by live buffer exports.  Holding
#: them here keeps ``SharedMemory.__del__`` from re-attempting the
#: close (an unraisable ``BufferError``) and pins the mapping for the
#: remaining views; the cost is one leaked mapping per deferral.
_DEFERRED_SEGMENTS: List[shared_memory.SharedMemory] = []


@dataclass
class ShmStats:
    """Owner-side tallies of one :class:`SharedParasiticsStore`."""

    blocks: int = 0
    payload_bytes: int = 0
    hits: int = 0
    misses: int = 0


class SharedColumnBlock:
    """One shared-memory segment of named numpy columns plus metadata.

    Layout: ``[8-byte directory length][pickled directory][aligned
    column payloads]``.  The directory holds the meta blob and, per
    column, ``(name, dtype string, shape, offset)``.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        meta: Any,
        directory: List[Tuple[str, str, Tuple[int, ...], int]],
        owner: bool,
    ) -> None:
        self._segment = segment
        self._meta = meta
        self._directory = directory
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        meta: Any,
        arrays: Mapping[str, np.ndarray],
        name: Optional[str] = None,
    ) -> "SharedColumnBlock":
        """Create a segment holding ``meta`` plus the given columns."""
        packed = {
            key: np.ascontiguousarray(value) for key, value in arrays.items()
        }
        # Two-pass layout: the directory length depends on the offsets,
        # which depend on the directory length.  Fix the directory size
        # by computing offsets against a worst-case header, then pad.
        trial_directory = [
            (key, array.dtype.str, array.shape, 0)
            for key, array in packed.items()
        ]
        header_room = _aligned(
            _HEADER_BYTES + len(pickle.dumps((meta, trial_directory))) + 512
        )
        directory = []
        offset = header_room
        for key, array in packed.items():
            directory.append((key, array.dtype.str, array.shape, offset))
            offset = _aligned(offset + array.nbytes)
        header = pickle.dumps((meta, directory))
        if _HEADER_BYTES + len(header) > header_room:  # pragma: no cover
            raise ValueError("shared-memory directory exceeded its padding")
        segment = shared_memory.SharedMemory(
            create=True, size=max(offset, header_room + 1), name=name
        )
        buffer = segment.buf
        buffer[:_HEADER_BYTES] = len(header).to_bytes(_HEADER_BYTES, "little")
        buffer[_HEADER_BYTES:_HEADER_BYTES + len(header)] = header
        for key, dtype, shape, start in directory:
            array = packed[key]
            buffer[start:start + array.nbytes] = array.tobytes()
        return cls(segment, meta, directory, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedColumnBlock":
        """Map an existing segment (read-only views, never unlinks)."""
        segment = shared_memory.SharedMemory(name=name)
        buffer = segment.buf
        header_length = int.from_bytes(buffer[:_HEADER_BYTES], "little")
        meta, directory = pickle.loads(
            bytes(buffer[_HEADER_BYTES:_HEADER_BYTES + header_length])
        )
        return cls(segment, meta, directory, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def meta(self) -> Any:
        return self._meta

    @property
    def nbytes(self) -> int:
        return self._segment.size

    def array(self, key: str) -> np.ndarray:
        """A read-only zero-copy view of one column.

        Views are built with :func:`numpy.frombuffer`, which holds a
        real buffer export on the mapping -- not just an object
        reference -- so closing the segment while a view is alive
        raises ``BufferError`` instead of silently unmapping the
        memory under the view (``np.ndarray(buffer=...)`` does *not*
        pin the export, turning that mistake into a segfault).
        """
        for entry_key, dtype, shape, start in self._directory:
            if entry_key == key:
                typed = np.dtype(dtype)
                count = int(np.prod(shape, dtype=np.int64))
                view: np.ndarray = np.frombuffer(
                    self._segment.buf, dtype=typed, count=count, offset=start
                ).reshape(shape)
                view.flags.writeable = False
                return view
        raise KeyError(f"no column {key!r} in segment {self.name}")

    def arrays(self) -> Dict[str, np.ndarray]:
        return {key: self.array(key) for key, _, _, _ in self._directory}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (owner keeps the segment alive).

        If column views still reference the mapping, unmapping it
        would leave them pointing at unmapped memory; the buffer
        export (see :meth:`array`) makes that attempt raise
        ``BufferError``.  We then *leak the mapping deliberately*:
        the segment object is parked in a module-level registry so
        its ``__del__`` never retries (and never warns), and the
        views stay valid for the life of the process.
        """
        if not self._closed:
            self._closed = True
            try:
                self._segment.close()
            except BufferError:
                _DEFERRED_SEGMENTS.append(self._segment)

    def unlink(self) -> None:
        """Destroy the segment (owner only); mappings elsewhere go stale."""
        if self._owner:
            self._segment.unlink()

    def __enter__(self) -> "SharedColumnBlock":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SharedArrayPool:
    """One flat, *writable* shared-memory array (an assembly scratch pool).

    Where :class:`SharedColumnBlock` publishes finished, read-only
    columns, a pool is the in-progress counterpart: the owner
    preallocates ``capacity`` elements, hands the segment *name* to
    worker processes, and each worker attaches and writes its assigned
    slices in place.  The parallel hierarchical-inductance builder uses
    two of these (near-field dense entries, ACA factors) so factor data
    never rides through pickle on the way back from the pool workers.

    Layout: ``[8-byte element count][aligned float payload]``.  Fresh
    POSIX segments are zero pages, so reserved-but-unwritten tails read
    as zeros (tmpfs allocates pages lazily -- a generous reservation
    costs address space, not resident memory, until written).

    Lifecycle mirrors the column block: the owner eventually ``close``
    + ``unlink``\\ s; workers only ``close``.  A close refused by live
    views (``BufferError``) parks the segment in the same deferred
    registry, so an owner tearing down while zero-copy views are still
    referenced leaks one mapping instead of crashing or unmapping
    memory under a reader.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        count: int,
        dtype: np.dtype,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._count = count
        self._dtype = dtype
        self._owner = owner
        self._closed = False

    @classmethod
    def create(
        cls,
        capacity: int,
        dtype: "np.dtype | type" = np.float64,
        name: Optional[str] = None,
    ) -> "SharedArrayPool":
        """Preallocate a zero-filled pool of ``capacity`` elements."""
        typed = np.dtype(dtype)
        payload = _aligned(_HEADER_BYTES) + max(int(capacity), 1) * typed.itemsize
        segment = shared_memory.SharedMemory(create=True, size=payload, name=name)
        segment.buf[:_HEADER_BYTES] = int(capacity).to_bytes(_HEADER_BYTES, "little")
        return cls(segment, int(capacity), typed, owner=True)

    @classmethod
    def attach(
        cls, name: str, dtype: "np.dtype | type" = np.float64
    ) -> "SharedArrayPool":
        """Map an existing pool for in-place writes (never unlinks)."""
        segment = shared_memory.SharedMemory(name=name)
        count = int.from_bytes(segment.buf[:_HEADER_BYTES], "little")
        return cls(segment, count, np.dtype(dtype), owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def capacity(self) -> int:
        return self._count

    @property
    def nbytes(self) -> int:
        return self._segment.size

    @property
    def data(self) -> np.ndarray:
        """The full writable pool view (zero-copy, pins the mapping)."""
        return self.view(0, self._count)

    def view(self, offset: int, count: int) -> np.ndarray:
        """A writable zero-copy slice ``[offset, offset + count)``.

        Like the column views, built with :func:`numpy.frombuffer` so
        the mapping is pinned by a real buffer export; unlike them it
        stays writable -- that is the point of a pool.
        """
        if offset < 0 or count < 0 or offset + count > self._count:
            raise ValueError(
                f"pool slice [{offset}, {offset + count}) outside "
                f"capacity {self._count}"
            )
        return np.frombuffer(
            self._segment.buf,
            dtype=self._dtype,
            count=count,
            offset=_aligned(_HEADER_BYTES) + offset * self._dtype.itemsize,
        )

    def close(self) -> None:
        """Drop this mapping; defer (leak it) if live views pin it."""
        if not self._closed:
            self._closed = True
            try:
                self._segment.close()
            except BufferError:
                _DEFERRED_SEGMENTS.append(self._segment)

    def unlink(self) -> None:
        """Destroy the segment (owner only)."""
        if self._owner:
            self._segment.unlink()

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Parasitics <-> columns
# ----------------------------------------------------------------------
def parasitics_columns(
    parasitics: Parasitics,
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Split parasitics into a small meta blob plus pure-array columns.

    Everything numeric -- the per-axis blocks and their index lists, R,
    Cg, and the coupling dict flattened to pair/value arrays -- becomes
    a column; the geometry (small frozen dataclasses), axis ordering,
    and block kinds ride in the meta blob.  The full L matrix is *not*
    stored: it is a derived view of the blocks (the single-axis common
    case aliases its block with zero copy on reconstruction), so
    shipping it would double every segment.  Hierarchical operator
    blocks contribute their flat storage arrays as prefixed columns and
    reattach zero-copy on the worker side.
    """
    pairs = sorted(parasitics.coupling_capacitance)
    arrays: Dict[str, np.ndarray] = {
        "resistance": parasitics.resistance,
        "ground_capacitance": parasitics.ground_capacitance,
        "coupling_pairs": np.asarray(pairs, dtype=np.int64).reshape(
            len(pairs), 2
        ),
        "coupling_values": np.asarray(
            [parasitics.coupling_capacitance[pair] for pair in pairs],
            dtype=np.float64,
        ),
    }
    axes = []
    block_meta: Dict[str, Any] = {}
    for axis, (indices, block) in parasitics.inductance_blocks.items():
        axes.append(axis.name)
        arrays[f"block_index_{axis.name}"] = np.asarray(
            indices, dtype=np.int64
        )
        if isinstance(block, LazyInductance):
            hier_meta, hier_arrays = block.columns()
            block_meta[axis.name] = {"kind": "hierarchical", "meta": hier_meta}
            for name, array in hier_arrays.items():
                arrays[f"hier_{axis.name}_{name}"] = array
        else:
            block_meta[axis.name] = {"kind": "dense"}
            arrays[f"block_{axis.name}"] = block
    meta = {"system": parasitics.system, "axes": axes, "blocks": block_meta}
    return meta, arrays


def parasitics_from_block(block: SharedColumnBlock) -> Parasitics:
    """Reconstruct parasitics whose arrays are views into the segment.

    The block stays referenced by the returned object's arrays (their
    ``base`` chain holds the mapped buffer), so the mapping lives as
    long as the parasitics do.
    """
    meta = block.meta
    columns = block.arrays()
    block_meta = meta.get("blocks", {})
    blocks: Dict[Axis, Tuple[List[int], Any]] = {}
    for name in meta["axes"]:
        indices = columns[f"block_index_{name}"].tolist()
        info = block_meta.get(name, {"kind": "dense"})
        if info["kind"] == "hierarchical":
            prefix = f"hier_{name}_"
            hier_arrays = {
                key[len(prefix):]: array
                for key, array in columns.items()
                if key.startswith(prefix)
            }
            blocks[Axis[name]] = (
                indices,
                LazyInductance.from_columns(info["meta"], hier_arrays),
            )
        else:
            blocks[Axis[name]] = (indices, columns[f"block_{name}"])
    pairs = columns["coupling_pairs"]
    values = columns["coupling_values"]
    coupling = {
        (int(pairs[i, 0]), int(pairs[i, 1])): float(values[i])
        for i in range(pairs.shape[0])
    }
    return Parasitics(
        system=meta["system"],
        inductance_blocks=blocks,
        resistance=columns["resistance"],
        ground_capacitance=columns["ground_capacitance"],
        coupling_capacitance=coupling,
    )


# ----------------------------------------------------------------------
# Owner-side store and worker-side attachment cache
# ----------------------------------------------------------------------
@dataclass
class SharedParasiticsStore:
    """Content-addressed shared-memory cache of extracted parasitics.

    The creating process owns every segment; :meth:`close` unlinks them
    all.  Keys are the disk cache's content hashes, so an entry is
    valid for exactly the requests the disk cache would serve.
    """

    prefix: str = field(
        default_factory=lambda: f"repro{os.getpid() % 0xFFFF:04x}"
        f"{secrets.token_hex(3)}"
    )
    stats: ShmStats = field(default_factory=ShmStats)
    _blocks: Dict[str, SharedColumnBlock] = field(default_factory=dict)
    _pools: List[SharedArrayPool] = field(default_factory=list)
    _closed: bool = False

    def __post_init__(self) -> None:
        # Start the resource tracker *now*, before any worker fork.  A
        # worker forked while the tracker is down spawns its own, whose
        # exit-time cleanup would unlink our segments out from under us
        # (see the module docstring); forked after this point, workers
        # inherit this process's tracker and registrations collapse.
        resource_tracker.ensure_running()

    def segment_name(self, key: str) -> Optional[str]:
        """The segment holding ``key``, or ``None``."""
        block = self._blocks.get(key)
        if block is None:
            self.stats.misses += 1
            add_counter("shm_misses")
            return None
        self.stats.hits += 1
        add_counter("shm_hits")
        return block.name

    def put(self, key: str, parasitics: Parasitics) -> str:
        """Publish parasitics under ``key``; returns the segment name."""
        if self._closed:
            raise RuntimeError("shared-memory store is closed")
        block = self._blocks.get(key)
        if block is not None:
            return block.name
        meta, arrays = parasitics_columns(parasitics)
        block = SharedColumnBlock.create(
            meta, arrays, name=f"{self.prefix}-{key[:16]}"
        )
        self._blocks[key] = block
        self.stats.blocks += 1
        self.stats.payload_bytes += block.nbytes
        add_counter("shm_blocks_created")
        return block.name

    def get(self, key: str) -> Optional[Parasitics]:
        """Owner-side zero-copy view of a stored entry."""
        block = self._blocks.get(key)
        if block is None:
            return None
        return parasitics_from_block(block)

    def adopt_pool(self, pool: SharedArrayPool) -> SharedArrayPool:
        """Tie a scratch pool's lifetime to the store.

        Assembly pools created on behalf of a service job are owned by
        the store so one :meth:`close` tears down everything.  The pool
        rides the same deferred-close registry as column blocks: a
        worker (or the owner itself) still holding a zero-copy view at
        close time defers the unmap instead of raising ``BufferError``
        out of the store's shutdown path.
        """
        if self._closed:
            raise RuntimeError("shared-memory store is closed")
        self._pools.append(pool)
        return pool

    def __len__(self) -> int:
        return len(self._blocks)

    def close(self) -> None:
        """Unlink every owned segment and pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for block in self._blocks.values():
            block.close()
            block.unlink()
        self._blocks.clear()
        for pool in self._pools:
            pool.close()
            pool.unlink()
        self._pools.clear()


#: Worker-process attachment cache: each pool worker maps a segment
#: once and reuses the mapping for every later job that names it.
#: Guarded by a lock: in thread mode the "workers" share this process,
#: and a racy first touch would map the segment twice -- the loser's
#: mapping is garbage-collected (unmapped) while its caller still
#: holds views into it.
_ATTACHED: Dict[str, SharedColumnBlock] = {}
_ATTACH_LOCK = threading.Lock()


def attach_parasitics(segment_name: str) -> Parasitics:
    """Worker-side zero-copy reconstruction of published parasitics."""
    with _ATTACH_LOCK:
        block = _ATTACHED.get(segment_name)
        if block is None:
            block = SharedColumnBlock.attach(segment_name)
            _ATTACHED[segment_name] = block
            add_counter("shm_worker_attaches")
    return parasitics_from_block(block)


def detach_all() -> None:
    """Drop this process's cached attachments (tests / worker shutdown)."""
    with _ATTACH_LOCK:
        for block in _ATTACHED.values():
            block.close()
        _ATTACHED.clear()
