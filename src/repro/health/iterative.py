"""Preconditioned iterative solves for operator-shaped systems.

The hierarchical extraction path (:mod:`repro.extraction.hierarchical`)
exposes ``L`` as a matvec, never as an ``(n, n)`` array, so anything
``L``-inverse-flavoured at the 10^6-filament tier must be solved
iteratively.  Two surfaces live here, both behind the same
:class:`~repro.health.solvers.FallbackPolicy` escalation discipline as
the dense chains:

- :func:`stacked_jacobi_cg` -- many small SPD systems at once (the
  wVPEC window solves: a ``(K, b, b)`` stack of gathered submatrices),
  Jacobi-preconditioned CG vectorized across the stack.  Systems that
  refuse to converge report back via the mask; the caller falls back to
  the direct LAPACK chain for exactly those.
- :func:`operator_solve` -- one big SPD operator with multiple
  right-hand sides, solved with block-Jacobi-preconditioned CG on the
  operator's ``matmat`` (the preconditioner is the exact inverse of the
  cluster tree's diagonal leaf blocks, i.e. the near-field envelope of
  ``L``).  Non-converged columns escalate to GMRES with the same
  preconditioner, then raise :class:`ConvergenceError` -- no silent
  densification, ever.

Every attempt records ``solve_<method>`` counters through the standard
:class:`~repro.health.solvers.AttemptLog`, so profiles show how often
the iterative fast path held.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

import numpy as np
from scipy import linalg
from scipy.sparse.linalg import LinearOperator, gmres

from repro.health.errors import ConvergenceError
from repro.health.solvers import (
    DEFAULT_POLICY,
    AttemptLog,
    FallbackPolicy,
    require_finite,
)
from repro.pipeline.profiling import add_counter

#: Relative residual target of the window-solve CG.  Direct solves are
#: accurate to machine precision; driving CG to 1e-12 keeps the sparse
#: approximate inverse (and every screening/peak decision built on it)
#: within 1e-8 of the direct construction on realistic conditioning.
WINDOW_CG_RTOL = 1e-12


def stacked_jacobi_cg(
    a_stack: np.ndarray,
    b_stack: np.ndarray,
    rtol: float = WINDOW_CG_RTOL,
    maxiter: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Jacobi-preconditioned CG on a ``(K, b, b)`` stack of SPD systems.

    Solves ``a_stack[k] @ x[k] = b_stack[k]`` for every ``k``
    simultaneously (einsum-vectorized across the stack, so the per-
    iteration cost is one batched matvec regardless of ``K``).  Returns
    ``(solutions, converged)`` where ``converged[k]`` certifies the true
    residual of system ``k`` met ``rtol * ||b[k]||``; callers route the
    holdouts through the direct chain.  Converged systems freeze (their
    updates are masked), so a stack member that converged early is
    untouched by later iterations -- the result is deterministic for a
    given stack regardless of its neighbors' conditioning.
    """
    a_stack = np.asarray(a_stack, dtype=float)
    b_stack = np.asarray(b_stack, dtype=float)
    count, width = b_stack.shape
    if maxiter is None:
        maxiter = 8 * width + 32
    x = np.zeros_like(b_stack)
    if count == 0:
        return x, np.ones(0, dtype=bool)
    diag = np.ascontiguousarray(
        a_stack[:, np.arange(width), np.arange(width)]
    )
    safe_diag = np.where(diag > 0.0, diag, 1.0)
    residual = b_stack.copy()
    target = rtol * np.linalg.norm(b_stack, axis=1)
    converged = np.linalg.norm(residual, axis=1) <= target
    z = residual / safe_diag
    direction = z.copy()
    rz = np.einsum("kb,kb->k", residual, z)
    broken = np.zeros(count, dtype=bool)
    for _ in range(maxiter):
        active = ~(converged | broken)
        if not active.any():
            break
        q = np.einsum("kij,kj->ki", a_stack, direction)
        pq = np.einsum("kb,kb->k", direction, q)
        # A non-positive curvature means the system is not SPD (or has
        # collapsed numerically); freeze it as non-converged so the
        # caller's direct chain -- which has a Tikhonov tier -- takes it.
        broken |= active & (pq <= 0.0)
        active &= ~broken
        step = np.where(active, rz / np.where(pq != 0.0, pq, 1.0), 0.0)
        x += step[:, None] * direction
        residual -= step[:, None] * q
        converged |= active & (np.linalg.norm(residual, axis=1) <= target)
        z = residual / safe_diag
        rz_next = np.einsum("kb,kb->k", residual, z)
        beta = np.where(
            active & ~converged, rz_next / np.where(rz != 0.0, rz, 1.0), 0.0
        )
        direction = np.where(
            (active & ~converged)[:, None],
            z + beta[:, None] * direction,
            direction,
        )
        rz = rz_next
    return x, converged & ~broken


class BlockJacobiPreconditioner:
    """Exact inverse of the cluster tree's diagonal leaf blocks.

    The hierarchical operator stores every diagonal leaf pair as an
    exact dense near-field block; block-diagonal of those is the
    strongest part of ``L`` (self plus nearest-neighbour coupling), so
    Cholesky-factoring each leaf once gives a cheap, spectrally
    effective preconditioner for CG on the full operator.  Leaves whose
    factorization fails (numerically non-SPD extractions under fault
    injection) fall back to LU, recorded on the shared log.
    """

    def __init__(self, operator: Any, log: Optional[AttemptLog] = None) -> None:
        log = log if log is not None else AttemptLog()
        self._perm = operator.perm
        self._n = operator.shape[0]
        self._solvers: List[Tuple[int, int, Callable[[np.ndarray], np.ndarray]]] = []
        for lo, hi, block in operator.leaf_diagonal_blocks():
            dense = np.asarray(block, dtype=float)
            try:
                factor = linalg.cho_factor(dense, lower=True, check_finite=False)
                self._solvers.append(
                    (
                        lo,
                        hi,
                        _CholeskyLeaf(factor),
                    )
                )
            except linalg.LinAlgError:
                log.record("leaf_cholesky", False, f"leaf [{lo}, {hi})")
                lu = linalg.lu_factor(dense, check_finite=False)
                self._solvers.append((lo, hi, _LULeaf(lu)))

    def __call__(self, residual: np.ndarray) -> np.ndarray:
        """Apply ``M^-1`` in axis-local coordinates (1-D or column stack)."""
        single = residual.ndim == 1
        tree = residual[self._perm]
        out = np.empty_like(tree)
        for lo, hi, solve in self._solvers:
            out[lo:hi] = solve(tree[lo:hi])
        result = np.empty_like(out)
        result[self._perm] = out
        return result if not single else result


class _CholeskyLeaf:
    __slots__ = ("_factor",)

    def __init__(self, factor: Tuple[np.ndarray, bool]) -> None:
        self._factor = factor

    def __call__(self, rhs: np.ndarray) -> np.ndarray:
        return linalg.cho_solve(self._factor, rhs, check_finite=False)


class _LULeaf:
    __slots__ = ("_factor",)

    def __init__(self, factor: Tuple[np.ndarray, np.ndarray]) -> None:
        self._factor = factor

    def __call__(self, rhs: np.ndarray) -> np.ndarray:
        return linalg.lu_solve(self._factor, rhs, check_finite=False)


def operator_solve(
    operator: Any,
    rhs: np.ndarray,
    policy: FallbackPolicy = DEFAULT_POLICY,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    rtol: float = 1e-12,
    maxiter: Optional[int] = None,
    name: str = "hierarchical system",
    log: Optional[AttemptLog] = None,
) -> np.ndarray:
    """Solve ``operator @ x = rhs`` through matvecs only.

    ``operator`` is anything with ``shape``, ``matmat`` and ``perm`` /
    ``leaf_diagonal_blocks`` (a
    :class:`~repro.extraction.hierarchical.LazyInductance`); ``rhs`` may
    be one vector or a column stack.  The chain is block-Jacobi CG ->
    GMRES (same preconditioner, policy tolerances) ->
    :class:`ConvergenceError`.  Nothing along it materializes the
    operator.
    """
    log = log if log is not None else AttemptLog()
    b = np.asarray(rhs, dtype=float)
    require_finite(b, name=f"{name} right-hand side")
    single = b.ndim == 1
    columns = b[:, None] if single else b
    n, k = columns.shape
    if maxiter is None:
        maxiter = max(200, 4 * int(np.sqrt(n)) + 64)
    apply_m = (
        preconditioner
        if preconditioner is not None
        else BlockJacobiPreconditioner(operator, log=log)
    )

    x = np.zeros_like(columns)
    residual = columns.copy()
    target = rtol * np.linalg.norm(columns, axis=0)
    converged = np.linalg.norm(residual, axis=0) <= target
    z = apply_m(residual)
    direction = z.copy()
    rz = np.einsum("nk,nk->k", residual, z)
    iterations = 0
    for _ in range(maxiter):
        if converged.all():
            break
        iterations += 1
        q = operator.matmat(direction)
        pq = np.einsum("nk,nk->k", direction, q)
        active = ~converged & (pq > 0.0)
        step = np.where(active, rz / np.where(pq != 0.0, pq, 1.0), 0.0)
        x += step[None, :] * direction
        residual -= step[None, :] * q
        converged |= np.linalg.norm(residual, axis=0) <= target
        z = apply_m(residual)
        rz_next = np.einsum("nk,nk->k", residual, z)
        beta = np.where(~converged, rz_next / np.where(rz != 0.0, rz, 1.0), 0.0)
        direction = np.where(
            ~converged[None, :], z + beta[None, :] * direction, direction
        )
        rz = rz_next
    add_counter("operator_cg_iterations", iterations)
    if converged.all():
        log.record("operator_cg", True, f"{iterations} iterations")
        return x[:, 0] if single else x
    log.record(
        "operator_cg",
        False,
        f"{int((~converged).sum())}/{k} columns past {maxiter} iterations",
    )

    if not policy.iterative:
        raise ConvergenceError(
            f"CG on {name} did not converge and the policy forbids "
            "further escalation",
            context={"name": name, "attempts": log.methods()},
        )
    shape = operator.shape
    linear = LinearOperator(shape, matvec=operator.matvec, dtype=np.float64)
    precond = LinearOperator(shape, matvec=apply_m, dtype=np.float64)
    for col in np.flatnonzero(~converged):
        solution, info = _gmres_compat(
            linear,
            columns[:, col],
            precond,
            rtol=max(policy.gmres_rtol, rtol),
            restart=policy.gmres_restart,
            maxiter=policy.gmres_maxiter,
        )
        if info != 0 or not np.all(np.isfinite(solution)):
            log.record("operator_gmres", False, f"column {col}, info={info}")
            raise ConvergenceError(
                f"GMRES on {name} (column {col}) did not converge "
                f"(info={info})",
                context={"name": name, "attempts": log.methods()},
            )
        x[:, col] = solution
    log.record("operator_gmres", True)
    return x[:, 0] if single else x


def _gmres_compat(
    linear: LinearOperator,
    rhs: np.ndarray,
    preconditioner: LinearOperator,
    rtol: float,
    restart: int,
    maxiter: int,
) -> Tuple[np.ndarray, int]:
    try:
        return gmres(
            linear,
            rhs,
            M=preconditioner,
            rtol=rtol,
            atol=0.0,
            restart=restart,
            maxiter=maxiter,
        )
    except TypeError:  # scipy < 1.12 spells the tolerance `tol`
        return gmres(
            linear,
            rhs,
            M=preconditioner,
            tol=rtol,
            atol=0.0,
            restart=restart,
            maxiter=maxiter,
        )
