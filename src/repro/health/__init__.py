"""Numerical health: diagnostics, fault-tolerant solvers, fault injection.

The robustness layer of the reproduction.  Near-singular, indefinite, or
corrupted inputs must surface as *typed* errors or *certified* fallback
results -- never as a bare ``numpy.linalg.LinAlgError`` (or silently
non-finite waveforms) escaping from deep inside an experiment run.

- :mod:`repro.health.errors` -- the exception taxonomy
  (:class:`SingularMatrixError`, :class:`PassivityViolationError`,
  :class:`ConvergenceError`, :class:`NonFiniteInputError`);
- :mod:`repro.health.diagnostics` -- condition estimation, SPD checks,
  and passivity certificates as structured :class:`HealthReport`
  objects (the ``repro audit --health`` surface and CI artifact);
- :mod:`repro.health.solvers` -- the escalation chains (fast direct
  path -> Tikhonov-regularized retry -> iterative / spectral last
  resort) governed by an explicit :class:`FallbackPolicy`;
- :mod:`repro.health.iterative` -- operator-level iterative solves
  (batched Jacobi-preconditioned CG over window stacks, block-Jacobi
  CG/GMRES against matrix-free operators) with residual certification
  and direct holdout fallbacks;
- :mod:`repro.health.faults` -- deterministic fault injection proving
  in tests and CI that every degradation path actually fires.
"""

from repro.health.diagnostics import (
    CERT_RTOL,
    HealthReport,
    assert_passive,
    certify_passivity,
    check_spd,
    condition_estimate,
    reports_to_json,
)
from repro.health.errors import (
    ConvergenceError,
    NonFiniteInputError,
    NumericalHealthError,
    PassivityViolationError,
    SingularMatrixError,
)
from repro.health.faults import (
    FAULT_KINDS,
    flip_mutual_signs,
    inject_fault,
    inject_nan,
    rank_deficient,
)
from repro.health.iterative import (
    WINDOW_CG_RTOL,
    BlockJacobiPreconditioner,
    operator_solve,
    stacked_jacobi_cg,
)
from repro.health.solvers import (
    DEFAULT_POLICY,
    STRICT_POLICY,
    AttemptLog,
    FallbackPolicy,
    ResilientFactor,
    SolveAttempt,
    dense_solve,
    factorize,
    require_finite,
    sparse_solve,
    spd_inverse,
)

__all__ = [
    "NumericalHealthError",
    "NonFiniteInputError",
    "SingularMatrixError",
    "PassivityViolationError",
    "ConvergenceError",
    "HealthReport",
    "check_spd",
    "certify_passivity",
    "assert_passive",
    "condition_estimate",
    "reports_to_json",
    "CERT_RTOL",
    "FallbackPolicy",
    "DEFAULT_POLICY",
    "STRICT_POLICY",
    "AttemptLog",
    "SolveAttempt",
    "spd_inverse",
    "dense_solve",
    "factorize",
    "sparse_solve",
    "require_finite",
    "ResilientFactor",
    "WINDOW_CG_RTOL",
    "stacked_jacobi_cg",
    "BlockJacobiPreconditioner",
    "operator_solve",
    "FAULT_KINDS",
    "rank_deficient",
    "flip_mutual_signs",
    "inject_nan",
    "inject_fault",
]
