"""Typed numerical-error taxonomy of the health subsystem.

Every numerically delicate step of the flow -- SPD inversion of ``L``,
windowed approximate inverses, passivity of the sparsified ``Ghat``, the
MNA solves -- reports failure through one of these exceptions instead of
a bare ``numpy.linalg.LinAlgError`` (or, worse, silently non-finite
output).  The taxonomy is small and flat:

- :class:`NumericalHealthError` -- common base, carries a free-form
  ``context`` mapping for diagnostics (matrix name, condition estimate,
  attempted fallbacks, ...);
- :class:`NonFiniteInputError` -- NaN / infinity in an input matrix or
  vector (also a ``ValueError``: the input itself is invalid);
- :class:`SingularMatrixError` -- every direct factorization attempt
  failed (also a ``numpy.linalg.LinAlgError``, so legacy ``except``
  clauses keep working);
- :class:`PassivityViolationError` -- a ``Ghat`` that certification
  (:mod:`repro.health.diagnostics`) could not prove passive;
- :class:`ConvergenceError` -- the iterative last resort ran but did not
  reach its tolerance.

Catching :class:`NumericalHealthError` therefore catches every failure
mode of the fault-tolerant solver chain (:mod:`repro.health.solvers`).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np


class NumericalHealthError(Exception):
    """Base of the numerical-health taxonomy.

    ``context`` holds structured diagnostics (matrix name, shape,
    condition estimate, the fallback methods attempted) so callers can
    report *why* a solve failed without parsing the message.
    """

    def __init__(
        self, message: str, context: Optional[Mapping[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.context: Dict[str, Any] = dict(context or {})


class NonFiniteInputError(NumericalHealthError, ValueError):
    """An input carries NaN or infinity (e.g. corrupted parasitics)."""


class SingularMatrixError(NumericalHealthError, np.linalg.LinAlgError):
    """Every direct (and regularized) factorization attempt failed.

    Subclasses ``numpy.linalg.LinAlgError`` so callers written against
    the pre-taxonomy API -- ``except LinAlgError`` -- continue to work.
    """


class PassivityViolationError(NumericalHealthError):
    """A model matrix failed passivity certification."""


class ConvergenceError(NumericalHealthError):
    """The iterative last-resort solver did not converge."""
