"""Deterministic fault injection for the degradation paths.

The fallback chains of :mod:`repro.health.solvers` only earn their keep
if the failure modes they guard against can actually be produced on
demand -- in tests, in CI, and in the ``repro report`` health claim.
This module perturbs inputs into each certified fault class:

- :func:`rank_deficient` -- project out the smallest eigenvalues of a
  symmetric matrix, producing an *exactly* singular (but still
  symmetric PSD) ``L`` block;
- :func:`flip_mutual_signs` -- negate off-diagonal couplings, breaking
  the diagonal-dominance and definiteness properties passivity needs;
- :func:`inject_nan` -- overwrite entries with NaN (corrupted
  parasitics, e.g. a truncated extraction artifact);
- :func:`inject_fault` -- apply any of the above to every inductance
  block of an extracted :class:`~repro.extraction.parasitics.Parasitics`
  set, returning a faulted copy (the original is never mutated).

All randomness flows from an explicit seed, so a CI failure reproduces
locally from the fault name and seed alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

import numpy as np
from scipy import linalg

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.extraction.parasitics import Parasitics

#: The fault classes the health tests and CI smoke job exercise.
FAULT_KINDS = ("rank_deficient_l", "sign_flipped_mutuals", "nan_parasitics")


def rank_deficient(matrix: np.ndarray, drop: int = 1) -> np.ndarray:
    """Make a symmetric matrix exactly singular by zeroing eigenvalues.

    The ``drop`` smallest eigenvalues are set to zero and the matrix is
    reassembled, so the result is symmetric, positive *semi*definite
    when the input was SPD, and has a nullspace of dimension ``drop``.
    """
    dense = np.asarray(matrix, dtype=float)
    if drop < 1:
        raise ValueError("drop must be >= 1")
    n = dense.shape[0]
    if drop >= n:
        return np.zeros_like(dense)
    values, vectors = linalg.eigh((dense + dense.T) / 2.0)
    values[:drop] = 0.0
    faulted = (vectors * values) @ vectors.T
    return (faulted + faulted.T) / 2.0


def flip_mutual_signs(
    matrix: np.ndarray, fraction: float = 1.0, seed: int = 0
) -> np.ndarray:
    """Flip the sign of a fraction of the off-diagonal (mutual) entries.

    Flips are applied to symmetric pairs, so the result stays symmetric
    but loses the sign structure (and typically the definiteness) the
    passivity certificates check for.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    dense = np.asarray(matrix, dtype=float).copy()
    n = dense.shape[0]
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if not pairs:
        return dense
    rng = np.random.default_rng(seed)
    count = max(1, int(round(fraction * len(pairs))))
    chosen = rng.choice(len(pairs), size=count, replace=False)
    for index in chosen:
        i, j = pairs[int(index)]
        dense[i, j] = -dense[i, j]
        dense[j, i] = -dense[j, i]
    return dense


def inject_nan(matrix: np.ndarray, count: int = 1, seed: int = 0) -> np.ndarray:
    """Overwrite ``count`` symmetric entry pairs with NaN."""
    if count < 1:
        raise ValueError("count must be >= 1")
    dense = np.asarray(matrix, dtype=float).copy()
    n = dense.shape[0]
    rng = np.random.default_rng(seed)
    for _ in range(count):
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        dense[i, j] = np.nan
        dense[j, i] = np.nan
    return dense


_BLOCK_FAULTS: Dict[str, Callable[..., np.ndarray]] = {
    "rank_deficient_l": rank_deficient,
    "sign_flipped_mutuals": flip_mutual_signs,
    "nan_parasitics": inject_nan,
}


def inject_fault(
    parasitics: "Parasitics", kind: str, **options: object
) -> "Parasitics":
    """A faulted copy of an extracted parasitic set.

    ``kind`` is one of :data:`FAULT_KINDS`; ``options`` are forwarded to
    the per-block fault function (``drop``, ``fraction``, ``count``,
    ``seed``).  Every per-direction inductance block is perturbed (lazy
    hierarchical blocks are materialized first -- fault injection is
    small-system health tooling) and the faulted copy reassembles its
    full matrix lazily from the faulted blocks, so both views stay
    consistent.  The input object is left untouched.
    """
    from repro.extraction.parasitics import Parasitics

    if kind not in _BLOCK_FAULTS:
        raise ValueError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
    fault = _BLOCK_FAULTS[kind]
    blocks = {
        axis: (list(indices), fault(np.asarray(block), **options))
        for axis, (indices, block) in parasitics.inductance_blocks.items()
    }
    return Parasitics(
        system=parasitics.system,
        inductance_blocks=blocks,
        resistance=parasitics.resistance,
        ground_capacitance=parasitics.ground_capacitance,
        coupling_capacitance=parasitics.coupling_capacitance,
    )
