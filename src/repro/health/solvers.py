"""Fault-tolerant linear-algebra kernels with an explicit escalation policy.

Every delicate solve in the flow runs through one of three chains, each
governed by a :class:`FallbackPolicy`:

- :func:`spd_inverse` (the VPEC ``L``-block inversion):
  Cholesky -> Tikhonov-regularized Cholesky (escalating ridge) ->
  eigenvalue clipping (always returns a symmetric positive definite
  inverse) -> :class:`SingularMatrixError`;
- :func:`dense_solve` (the windowed submatrix solves):
  LAPACK LU -> Tikhonov retry -> least squares (minimum-norm solution);
- :func:`factorize` (the sparse MNA systems of DC / AC / transient):
  SuperLU -> Tikhonov-regularized SuperLU -> GMRES preconditioned with
  an incomplete LU -> :class:`ConvergenceError`.

Each attempt is recorded in the active :mod:`repro.pipeline.profiling`
collector as a ``solve_<method>`` counter, and every departure from the
fast path bumps ``solve_fallbacks`` -- so a profile of a production run
shows exactly how often (and how far) the escalation fired.  Non-finite
inputs short-circuit to :class:`NonFiniteInputError` before any
factorization touches them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
from scipy import linalg, sparse
from scipy.sparse.linalg import LinearOperator, gmres, spilu, splu

from repro.health.errors import (
    ConvergenceError,
    NonFiniteInputError,
    SingularMatrixError,
)
from repro.pipeline.profiling import add_counter


@dataclass(frozen=True)
class FallbackPolicy:
    """Escalation policy of the fault-tolerant solver chains.

    Attributes
    ----------
    regularize:
        Allow the Tikhonov-regularized retry (``A + mu I`` with an
        escalating ridge ``mu``).
    iterative:
        Allow the last resort: eigenvalue clipping for SPD inversion,
        GMRES + incomplete LU for sparse systems, least squares for
        dense solves.
    ridge_scale:
        Initial ridge relative to the mean diagonal magnitude.
    ridge_growth, max_ridge_attempts:
        The ridge grows by this factor per retry, at most this many
        times.
    residual_rtol:
        Acceptance threshold of the per-solve residual check
        ``||Ax - b|| <= rtol (||A|| ||x|| + ||b||)``.
    gmres_rtol, gmres_restart, gmres_maxiter:
        Tolerances of the GMRES last resort.
    prefer_iterative:
        Try the preconditioned GMRES tier *first* for sparse systems
        (:class:`ResilientFactor`), before any direct factorization.
        The escalation chain stays intact underneath: a failed or
        non-convergent iterative solve abandons the tier permanently
        and falls through to SuperLU / Tikhonov exactly as if it had
        never been preferred.
    ilu_drop_tol, ilu_fill_factor:
        Quality of the incomplete-LU preconditioner (``None`` keeps
        scipy's defaults).  An iterative-first policy wants a much
        stronger ILU than the last-resort default: the factorization is
        built once per system and amortized over every solve, so a
        near-complete ILU buys few-iteration convergence for the price
        of one sparse factorization.
    """

    regularize: bool = True
    iterative: bool = True
    prefer_iterative: bool = False
    ridge_scale: float = 1e-12
    ridge_growth: float = 100.0
    max_ridge_attempts: int = 6
    residual_rtol: float = 1e-8
    gmres_rtol: float = 1e-10
    gmres_restart: int = 200
    gmres_maxiter: int = 400
    ilu_drop_tol: Optional[float] = None
    ilu_fill_factor: Optional[float] = None

    def with_ridges(self) -> List[float]:
        """Relative ridge magnitudes of the regularized attempts."""
        if not self.regularize:
            return []
        return [
            self.ridge_scale * self.ridge_growth**k
            for k in range(self.max_ridge_attempts)
        ]


#: Escalation enabled end to end (the circuit solvers' default).
DEFAULT_POLICY = FallbackPolicy()

#: Fail fast with a typed error instead of regularizing -- the default
#: of :func:`repro.vpec.full.invert_spd`, where a non-SPD ``L`` signals
#: an extraction bug that must not be silently repaired.
STRICT_POLICY = FallbackPolicy(regularize=False, iterative=False)


@dataclass
class SolveAttempt:
    """One recorded step of an escalation chain."""

    method: str
    succeeded: bool
    detail: str = ""


@dataclass
class AttemptLog:
    """Mutable log of the attempts one chain made (for reports/tests)."""

    attempts: List[SolveAttempt] = field(default_factory=list)

    def record(self, method: str, succeeded: bool, detail: str = "") -> None:
        self.attempts.append(SolveAttempt(method, succeeded, detail))
        add_counter(f"solve_{method}")
        if not succeeded:
            add_counter("solve_fallbacks")

    def methods(self) -> List[str]:
        return [a.method for a in self.attempts]


def require_finite(array: Any, name: str = "input") -> None:
    """Raise :class:`NonFiniteInputError` when ``array`` has NaN / inf."""
    data = array.data if sparse.issparse(array) else np.asarray(array)
    if data.size and not np.all(np.isfinite(data)):
        bad = int(np.size(data) - np.count_nonzero(np.isfinite(data)))
        raise NonFiniteInputError(
            f"{name} has {bad} non-finite entries",
            context={"name": name, "non_finite_entries": bad},
        )


def _ridge_unit(dense: np.ndarray) -> float:
    """The absolute ridge corresponding to a relative magnitude of 1."""
    diag = np.abs(np.diag(dense))
    unit = float(np.mean(diag)) if diag.size else 0.0
    if unit == 0.0:
        unit = float(np.max(np.abs(dense))) if dense.size else 1.0
    return unit or 1.0


# ----------------------------------------------------------------------
# SPD inversion (the VPEC L-block chain)
# ----------------------------------------------------------------------
def spd_inverse(
    matrix: np.ndarray,
    policy: FallbackPolicy = DEFAULT_POLICY,
    name: str = "matrix",
    log: Optional[AttemptLog] = None,
) -> np.ndarray:
    """Symmetric positive (semi)definite inverse with escalation.

    The fast path is the Cholesky inversion of the seed implementation.
    Under the default policy a non-SPD input escalates to a Tikhonov
    ridge and finally to eigenvalue clipping, both of which return a
    *symmetric positive definite* matrix by construction -- the
    certified-fallback guarantee the windowed/truncated models rely on.
    With :data:`STRICT_POLICY` the non-SPD case raises
    :class:`SingularMatrixError` immediately.
    """
    log = log if log is not None else AttemptLog()
    dense = np.asarray(matrix, dtype=float)
    require_finite(dense, name=name)
    try:
        inverse = _cholesky_inverse(dense)
        log.record("cholesky", True)
        return inverse
    except linalg.LinAlgError:
        log.record("cholesky", False, "Cholesky factorization failed")

    unit = _ridge_unit(dense)
    for relative in policy.with_ridges():
        ridge = relative * unit
        try:
            inverse = _cholesky_inverse(dense + ridge * np.eye(dense.shape[0]))
            log.record("tikhonov", True, f"ridge {ridge:.3e}")
            return inverse
        except linalg.LinAlgError:
            log.record("tikhonov", False, f"ridge {ridge:.3e}")

    if policy.iterative:
        try:
            values, vectors = linalg.eigh((dense + dense.T) / 2.0)
        except linalg.LinAlgError as error:
            raise ConvergenceError(
                f"eigendecomposition of {name} did not converge",
                context={"name": name, "attempts": log.methods()},
            ) from error
        floor = max(float(np.max(np.abs(values))), unit) * 1e-14
        clipped = np.maximum(values, floor)
        inverse = (vectors / clipped) @ vectors.T
        log.record("eig_clip", True, f"eigenvalue floor {floor:.3e}")
        return (inverse + inverse.T) / 2.0

    raise SingularMatrixError(
        f"{name} is not symmetric positive definite and the fallback "
        "policy forbids regularization",
        context={"name": name, "attempts": log.methods()},
    )


def _cholesky_inverse(dense: np.ndarray) -> np.ndarray:
    chol, lower = linalg.cho_factor(dense, lower=True, check_finite=False)
    inverse = linalg.cho_solve(
        (chol, lower), np.eye(dense.shape[0]), check_finite=False
    )
    return (inverse + inverse.T) / 2.0


# ----------------------------------------------------------------------
# Dense solves (the windowed-inverse chain)
# ----------------------------------------------------------------------
def dense_solve(
    a: np.ndarray,
    b: np.ndarray,
    policy: FallbackPolicy = DEFAULT_POLICY,
    name: str = "system",
    log: Optional[AttemptLog] = None,
) -> np.ndarray:
    """Solve a small dense system with LU -> Tikhonov -> least squares."""
    log = log if log is not None else AttemptLog()
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    require_finite(a, name=name)
    require_finite(b, name=f"{name} right-hand side")
    try:
        x = np.linalg.solve(a, b)
        if np.all(np.isfinite(x)):
            log.record("lu", True)
            return x
        log.record("lu", False, "non-finite solution")
    except np.linalg.LinAlgError:
        log.record("lu", False, "LU factorization failed")

    unit = _ridge_unit(a)
    for relative in policy.with_ridges():
        ridge = relative * unit
        try:
            x = np.linalg.solve(a + ridge * np.eye(a.shape[0]), b)
        except np.linalg.LinAlgError:
            log.record("tikhonov", False, f"ridge {ridge:.3e}")
            continue
        if np.all(np.isfinite(x)):
            log.record("tikhonov", True, f"ridge {ridge:.3e}")
            return x
        log.record("tikhonov", False, f"ridge {ridge:.3e}")

    if policy.iterative:
        x, *_ = np.linalg.lstsq(a, b, rcond=None)
        if np.all(np.isfinite(x)):
            log.record("lstsq", True)
            return x
        log.record("lstsq", False, "non-finite least-squares solution")

    raise SingularMatrixError(
        f"{name} could not be solved by any method the policy allows",
        context={"name": name, "attempts": log.methods()},
    )


# ----------------------------------------------------------------------
# Sparse MNA systems (DC / AC / transient chain)
# ----------------------------------------------------------------------
class ResilientFactor:
    """A factorized sparse system with lazy per-solve escalation.

    Tier 0 is a plain SuperLU factorization; tier 1 re-factorizes with
    an escalating Tikhonov ridge; tier 2 answers each solve with GMRES
    preconditioned by an incomplete LU.  Every solution is accepted only
    if it is finite and passes the relative residual check, so a
    *silently* wrong direct solve (huge pivot growth on a near-singular
    matrix) escalates instead of polluting downstream waveforms.  The
    chain is monotone: once a tier is abandoned it is never retried, and
    the factorization of the serving tier is reused across solves (the
    transient loop depends on that).
    """

    def __init__(
        self,
        a_csc: sparse.csc_matrix,
        policy: FallbackPolicy = DEFAULT_POLICY,
        name: str = "system",
        log: Optional[AttemptLog] = None,
    ) -> None:
        self._a = a_csc.tocsc()
        require_finite(self._a, name=name)
        self._policy = policy
        self._name = name
        self.log = log if log is not None else AttemptLog()
        self._norm = float(np.max(np.abs(self._a.data))) if self._a.nnz else 0.0
        self._unit = self._ridge_unit_sparse()
        #: pending direct factorizations: (method, ridge) tiers not yet tried
        self._pending: List[Tuple[str, float]] = [("lu", 0.0)]
        self._pending += [
            ("tikhonov", rel * self._unit) for rel in policy.with_ridges()
        ]
        self._direct: Any = None
        self._direct_method: str = "lu"
        self._passes = 0
        self._ilu: Any = None
        self._abs_a: Any = None
        self._iterative_abandoned = False
        #: last accepted iterative solution per right-hand-side column
        #: -- the warm start that makes the iterative-first tier cheap
        #: in a transient loop, where consecutive solves barely differ.
        self._warm: Dict[int, np.ndarray] = {}
        self.method: Optional[str] = None

    def _ridge_unit_sparse(self) -> float:
        diag = np.abs(self._a.diagonal())
        unit = float(np.mean(diag)) if diag.size else 0.0
        return unit or self._norm or 1.0

    # ------------------------------------------------------------------
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve for one right-hand side, escalating as needed."""
        rhs = np.asarray(rhs)
        require_finite(rhs, name=f"{self._name} right-hand side")
        if (
            self._policy.prefer_iterative
            and self._policy.iterative
            and self._direct is None
            and not self._iterative_abandoned
        ):
            try:
                return self._solve_gmres(rhs)
            except (SingularMatrixError, ConvergenceError):
                # Monotone like every other tier: once the iterative
                # path fails it is never retried, and the direct chain
                # takes over from its top.
                self._iterative_abandoned = True
        while True:
            if self._direct is None and not self._advance():
                break
            x = self._direct.solve(rhs)
            if self._acceptable(x, rhs):
                self._passes += 1
                self.log.record(self._direct_method, True)
                self.method = self._direct_method
                return x
            self.log.record(
                self._direct_method, False, "residual check failed"
            )
            self._direct = None
            self._passes = 0
        if self._policy.iterative and not self._iterative_abandoned:
            return self._solve_gmres(rhs)
        raise SingularMatrixError(
            f"{self._name} could not be factorized by any method the "
            "policy allows (circuit may have a floating node or a "
            "source loop)",
            context={"name": self._name, "attempts": self.log.methods()},
        )

    def _advance(self) -> bool:
        """Factorize the next pending direct tier; False when exhausted."""
        while self._pending:
            method, ridge = self._pending.pop(0)
            a_mat = self._a
            if ridge > 0.0:
                a_mat = (a_mat + ridge * sparse.identity(
                    a_mat.shape[0], dtype=a_mat.dtype, format="csc"
                )).tocsc()
            try:
                self._direct = splu(a_mat)
            except (RuntimeError, ValueError) as error:
                self.log.record(method, False, str(error))
                continue
            self._direct_method = method
            return True
        return False

    def _acceptable(self, x: np.ndarray, rhs: np.ndarray) -> bool:
        if not np.all(np.isfinite(x)):
            return False
        # After a few residual-verified solves at one tier the
        # factorization has proven numerically sound; later solves (the
        # transient time loop runs thousands) skip the extra matvec.
        if self._passes >= 3:
            return True
        return self._residual_ok(x, rhs)

    def _residual_ok(self, x: np.ndarray, rhs: np.ndarray) -> bool:
        residual = self._a @ x - rhs
        bound = self._policy.residual_rtol * (
            self._norm * float(np.linalg.norm(x)) + float(np.linalg.norm(rhs))
        )
        return float(np.linalg.norm(residual)) <= bound + 1e-300

    def _componentwise_ok(self, x: np.ndarray, rhs: np.ndarray) -> bool:
        """Oettli-Prager componentwise backward error vs ``residual_rtol``.

        MNA matrices mix entry scales across many orders of magnitude
        (conductances vs ``C/dt`` companion terms vs unit source rows),
        which makes the normwise bound of :meth:`_residual_ok` vacuous:
        ``|A|`` is dominated by the large rows, so *any* solution of
        moderate norm passes.  The componentwise error
        ``max_i |r_i| / (|A| |x| + |b|)_i`` judges each equation on its
        own scale -- a backward-stable solve lands near machine epsilon
        and a wrong one near 1, regardless of row scaling -- so this is
        the acceptance test of the iterative-first tier.
        """
        if self._abs_a is None:
            self._abs_a = abs(self._a)
        residual = np.abs(self._a @ x - rhs)
        denom = self._abs_a @ np.abs(x) + np.abs(rhs)
        mask = denom > 0.0
        if np.any(residual[~mask] != 0.0):
            return False
        if not np.any(mask):
            return True
        error = float(np.max(residual[mask] / denom[mask]))
        return error <= self._policy.residual_rtol

    def _solve_gmres(self, rhs: np.ndarray, key: int = 0) -> np.ndarray:
        if rhs.ndim == 2:
            # GMRES is single-vector; batched callers fall back to a
            # column loop only on this tier.  Each column keeps its own
            # warm-start slot.
            return np.stack(
                [
                    self._solve_gmres(rhs[:, k], key=k)
                    for k in range(rhs.shape[1])
                ],
                axis=1,
            )
        if self._ilu is None:
            ridge = self._policy.ridge_scale * self._unit
            # The iterative-first tier preconditions the *unperturbed*
            # matrix: ``ridge_scale * mean diag`` is calibrated for
            # balanced matrices, and on badly row-scaled MNA systems it
            # can dwarf the small-scale equations outright.  The ridged
            # build stays as the backstop (and as the last-resort
            # behavior, where the ridge is what makes a numerically
            # singular factorization possible at all).
            ridges = [0.0, ridge] if self._policy.prefer_iterative else [ridge]
            error: Optional[Exception] = None
            for mu in ridges:
                a_mat = self._a
                if mu > 0.0:
                    a_mat = (a_mat + mu * sparse.identity(
                        a_mat.shape[0], dtype=a_mat.dtype, format="csc"
                    )).tocsc()
                try:
                    self._ilu = spilu(
                        a_mat,
                        drop_tol=self._policy.ilu_drop_tol,
                        fill_factor=self._policy.ilu_fill_factor,
                    )
                    break
                except (RuntimeError, ValueError) as exc:
                    error = exc
            if self._ilu is None:
                self.log.record("gmres_ilu", False, f"ILU failed: {error}")
                raise SingularMatrixError(
                    f"incomplete LU of {self._name} failed; the system is "
                    "numerically singular",
                    context={"name": self._name, "attempts": self.log.methods()},
                ) from error
        preconditioner = LinearOperator(
            self._a.shape, matvec=self._ilu.solve, dtype=self._a.dtype
        )
        x0 = self._warm.get(key)
        if x0 is not None and x0.shape != rhs.shape:
            x0 = None
        if self._policy.prefer_iterative:
            # Fast path of the iterative-first tier: preconditioned
            # refinement from the warm start.  With a strong ILU one
            # correction normally lands inside the componentwise
            # backward-error bound, making a transient-loop solve a
            # couple of matvecs instead of a full GMRES budget.
            x = x0 if x0 is not None else self._ilu.solve(rhs)
            for _ in range(4):
                if not np.all(np.isfinite(x)):
                    break
                if self._componentwise_ok(x, rhs):
                    self.log.record("ilu_refine", True)
                    self.method = "ilu_refine"
                    self._warm[key] = x
                    return x
                x = x + self._ilu.solve(rhs - self._a @ x)
            if np.all(np.isfinite(x)):
                x0 = x
        try:
            x, info = gmres(
                self._a,
                rhs,
                x0=x0,
                M=preconditioner,
                rtol=self._policy.gmres_rtol,
                atol=0.0,
                restart=self._policy.gmres_restart,
                maxiter=self._policy.gmres_maxiter,
            )
        except TypeError:  # scipy < 1.12 spells the tolerance `tol`
            x, info = gmres(
                self._a,
                rhs,
                x0=x0,
                M=preconditioner,
                tol=self._policy.gmres_rtol,
                atol=0.0,
                restart=self._policy.gmres_restart,
                maxiter=self._policy.gmres_maxiter,
            )
        # ``info > 0`` only means GMRES's *own* relative-residual target
        # was not met within the iteration budget.  On severely
        # ill-conditioned systems that target is unreachable in double
        # precision for *any* solver (the direct tiers hit the same
        # floor), so the iterative-first tier additionally accepts any
        # solution passing the componentwise backward-error bound.  The
        # *last-resort* use of this tier keeps the strict convergence
        # contract.
        if np.all(np.isfinite(x)) and (
            info == 0
            or (
                self._policy.prefer_iterative
                and self._componentwise_ok(x, rhs)
            )
        ):
            self.log.record("gmres_ilu", True)
            self.method = "gmres_ilu"
            self._warm[key] = x
            return x
        self.log.record("gmres_ilu", False, f"gmres info={info}")
        raise ConvergenceError(
            f"GMRES on {self._name} did not converge (info={info})",
            context={"name": self._name, "attempts": self.log.methods()},
        )


def factorize(
    a_mat: "sparse.spmatrix",
    policy: FallbackPolicy = DEFAULT_POLICY,
    name: str = "system",
    log: Optional[AttemptLog] = None,
) -> ResilientFactor:
    """Factorize a sparse system behind the escalation chain."""
    return ResilientFactor(a_mat.tocsc(), policy=policy, name=name, log=log)


def sparse_solve(
    a_mat: "sparse.spmatrix",
    rhs: np.ndarray,
    policy: FallbackPolicy = DEFAULT_POLICY,
    name: str = "system",
    log: Optional[AttemptLog] = None,
) -> np.ndarray:
    """One-shot resilient sparse solve (factorize + solve)."""
    return factorize(a_mat, policy=policy, name=name, log=log).solve(rhs)
