"""Numerical-health diagnostics: condition estimates and certificates.

A :class:`HealthReport` is the structured result of inspecting one
matrix: finiteness, symmetry, definiteness, a condition-number estimate,
and -- for the VPEC circuit matrix ``Ghat`` -- a *passivity certificate*
naming the cheapest property that proves the model passive:

- ``"diagonal-dominance"``: symmetric, non-negative diagonal, weakly
  diagonally dominant -- positive semi-definite by Gershgorin's circle
  theorem (an ``O(n^2)`` scan, no factorization);
- ``"eigenvalue"``: the smallest eigenvalue of the symmetrized matrix is
  non-negative up to a relative tolerance (``O(n^3)``, the fallback when
  dominance fails -- sign-flipped mutuals, aggressive sparsification);
- ``"cholesky"``: a Cholesky factorization succeeded (strict positive
  definiteness, used for ``L``-block SPD checks).

``certificate is None`` means no certificate could be established; the
``notes`` explain what failed.  :func:`assert_passive` turns that into a
typed :class:`~repro.health.errors.PassivityViolationError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import linalg, sparse

from repro.health.errors import PassivityViolationError

#: Relative tolerance used by the symmetry / dominance / eigenvalue
#: certificates (absorbs floating-point cancellation in the row sums).
CERT_RTOL = 1e-9


def _as_dense(matrix: Any) -> np.ndarray:
    if sparse.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=float)
    return np.asarray(matrix, dtype=float)


def condition_estimate(matrix: Any) -> float:
    """2-norm condition-number estimate of a dense (or sparse) matrix.

    Symmetric matrices use the eigenvalue ratio, general matrices the
    singular-value ratio.  Returns ``inf`` for a numerically singular
    matrix and ``nan`` when the matrix has non-finite entries (no
    decomposition is attempted on garbage).
    """
    dense = _as_dense(matrix)
    if dense.size == 0:
        return 0.0
    if not np.all(np.isfinite(dense)):
        return float("nan")
    scale = np.max(np.abs(dense))
    if scale == 0.0:
        return float("inf")
    try:
        if _symmetry_defect(dense) <= CERT_RTOL:
            magnitudes = np.abs(linalg.eigvalsh(dense))
        else:
            magnitudes = linalg.svdvals(dense)
    except linalg.LinAlgError:
        return float("nan")
    largest = float(np.max(magnitudes))
    smallest = float(np.min(magnitudes))
    if smallest == 0.0:
        return float("inf")
    return largest / smallest


def _symmetry_defect(dense: np.ndarray) -> float:
    scale = float(np.max(np.abs(dense))) or 1.0
    return float(np.max(np.abs(dense - dense.T))) / scale


@dataclass(frozen=True)
class HealthReport:
    """Structured result of one matrix health check.

    ``ok`` summarizes the check: the matrix is finite, symmetric, and a
    definiteness certificate was established.
    """

    name: str
    shape: Tuple[int, int]
    finite: bool
    symmetric: bool
    positive_definite: bool
    diagonally_dominant: bool
    condition: float
    min_eigenvalue: Optional[float] = None
    certificate: Optional[str] = None
    notes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return self.finite and self.symmetric and self.certificate is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "shape": list(self.shape),
            "finite": self.finite,
            "symmetric": self.symmetric,
            "positive_definite": self.positive_definite,
            "diagonally_dominant": self.diagonally_dominant,
            "condition": self.condition,
            "min_eigenvalue": self.min_eigenvalue,
            "certificate": self.certificate,
            "notes": list(self.notes),
            "ok": self.ok,
        }


def reports_to_json(
    reports: Sequence[HealthReport], indent: int = 2, **extra: Any
) -> str:
    """JSON document of several reports (the CI build artifact format)."""
    payload: Dict[str, Any] = dict(extra)
    payload["ok"] = all(r.ok for r in reports)
    payload["reports"] = [r.to_dict() for r in reports]
    return json.dumps(payload, indent=indent, sort_keys=False)


def check_spd(matrix: Any, name: str = "matrix") -> HealthReport:
    """SPD health check of an ``L`` block (or any matrix expected SPD).

    Establishes the ``"cholesky"`` certificate when the matrix is
    strictly positive definite; otherwise falls back to the eigenvalue
    bound so the report still carries ``min_eigenvalue`` for diagnosis.
    """
    dense = _as_dense(matrix)
    notes: List[str] = []
    finite = bool(np.all(np.isfinite(dense)))
    if not finite:
        notes.append("matrix has non-finite entries")
        return HealthReport(
            name=name,
            shape=dense.shape,
            finite=False,
            symmetric=False,
            positive_definite=False,
            diagonally_dominant=False,
            condition=float("nan"),
            notes=tuple(notes),
        )
    symmetric = _symmetry_defect(dense) <= CERT_RTOL
    if not symmetric:
        notes.append(f"symmetry defect {_symmetry_defect(dense):.2e}")
    dominant = _weakly_dominant(dense)
    positive_definite = False
    certificate = None
    min_eigenvalue: Optional[float] = None
    if symmetric:
        try:
            linalg.cho_factor(dense, lower=True, check_finite=False)
            positive_definite = True
            certificate = "cholesky"
        except linalg.LinAlgError:
            notes.append("Cholesky factorization failed (not SPD)")
        if not positive_definite:
            min_eigenvalue = float(np.min(linalg.eigvalsh(dense)))
            notes.append(f"min eigenvalue {min_eigenvalue:.3e}")
    return HealthReport(
        name=name,
        shape=dense.shape,
        finite=finite,
        symmetric=symmetric,
        positive_definite=positive_definite,
        diagonally_dominant=dominant,
        condition=condition_estimate(dense),
        min_eigenvalue=min_eigenvalue,
        certificate=certificate,
        notes=tuple(notes),
    )


def _weakly_dominant(dense: np.ndarray) -> bool:
    diag = np.diag(dense)
    off = np.sum(np.abs(dense), axis=1) - np.abs(diag)
    slack = CERT_RTOL * np.maximum(np.abs(diag), 1e-300)
    return bool(np.all(diag >= 0.0) and np.all(diag - off >= -slack))


def certify_passivity(
    ghat: Any, name: str = "Ghat", sign_structure: bool = False
) -> HealthReport:
    """Passivity certificate of a VPEC circuit matrix ``Ghat``.

    Tries the cheap Gershgorin (diagonal-dominance) certificate first
    and escalates to the eigenvalue bound only when dominance fails, so
    certifying a healthy sparsified model costs one ``O(n^2)`` scan.

    ``sign_structure`` additionally enforces the paper's Lemma 1 (every
    off-diagonal non-positive, every row sum non-negative -- i.e. all
    effective resistances positive); sign-flipped mutuals keep ``Ghat``
    positive semi-definite but break this, so the certificate is
    withheld when the check is requested and fails.
    """
    dense = _as_dense(ghat)
    notes: List[str] = []
    finite = bool(np.all(np.isfinite(dense)))
    if not finite:
        notes.append("matrix has non-finite entries")
        return HealthReport(
            name=name,
            shape=dense.shape,
            finite=False,
            symmetric=False,
            positive_definite=False,
            diagonally_dominant=False,
            condition=float("nan"),
            notes=tuple(notes),
        )
    symmetric = _symmetry_defect(dense) <= CERT_RTOL
    dominant = _weakly_dominant(dense)
    certificate = None
    positive_definite = False
    min_eigenvalue: Optional[float] = None
    if not symmetric:
        notes.append(f"symmetry defect {_symmetry_defect(dense):.2e}")
    elif dominant:
        certificate = "diagonal-dominance"
        positive_definite = bool(np.all(np.diag(dense) > 0.0))
    else:
        symmetrized = (dense + dense.T) / 2.0
        min_eigenvalue = float(np.min(linalg.eigvalsh(symmetrized)))
        scale = float(np.max(np.abs(symmetrized))) or 1.0
        if min_eigenvalue >= -CERT_RTOL * scale:
            certificate = "eigenvalue"
            positive_definite = min_eigenvalue > 0.0
            notes.append("not diagonally dominant; certified by eigenvalue bound")
        else:
            notes.append(f"min eigenvalue {min_eigenvalue:.3e} < 0 (not passive)")
    if certificate is not None and sign_structure:
        scale = float(np.max(np.abs(dense))) or 1.0
        off = dense[~np.eye(dense.shape[0], dtype=bool)]
        row_sums = np.sum(dense, axis=1)
        if off.size and float(np.max(off)) > CERT_RTOL * scale:
            certificate = None
            notes.append(
                "positive off-diagonal entries (negative coupling "
                "resistance, Lemma 1 violated)"
            )
        elif float(np.min(row_sums)) < -CERT_RTOL * scale:
            certificate = None
            notes.append(
                "negative row sum (negative ground resistance, "
                "Lemma 1 violated)"
            )
    return HealthReport(
        name=name,
        shape=dense.shape,
        finite=finite,
        symmetric=symmetric,
        positive_definite=positive_definite,
        diagonally_dominant=dominant,
        condition=condition_estimate(dense),
        min_eigenvalue=min_eigenvalue,
        certificate=certificate,
        notes=tuple(notes),
    )


def assert_passive(
    ghat: Any, name: str = "Ghat", sign_structure: bool = False
) -> HealthReport:
    """Certify ``ghat`` passive or raise :class:`PassivityViolationError`."""
    report = certify_passivity(ghat, name=name, sign_structure=sign_structure)
    if not report.ok:
        raise PassivityViolationError(
            f"{name} failed passivity certification: {'; '.join(report.notes)}",
            context=report.to_dict(),
        )
    return report
