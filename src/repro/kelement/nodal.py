"""The nodal K-element formulation and its DC pathology.

Section II-B, discussing [13]: "the current K element simulator is
based on nodal analysis, where the admittance form of the K element is
``Gamma = A_l L^-1 A_l^T / s`` ... Clearly, the Gamma matrix becomes
indefinite when s -> 0.  Therefore, it will lose correct dc
information."

This module constructs that admittance matrix explicitly so the claim
can be demonstrated numerically (see ``tests/kelement``): as the complex
frequency ``s`` approaches zero the nodal matrix blows up (the 1/s
factor) while its zero-space structure prevents recovering branch
currents -- in contrast to the MNA stamping of
:mod:`repro.kelement.model` and the VPEC model, both of which keep exact
DC operating points.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import sparse

from repro.extraction.parasitics import Parasitics
from repro.vpec.full import invert_spd


def inductive_incidence(
    parasitics: Parasitics,
) -> Tuple[sparse.csr_matrix, List[Tuple[int, int]]]:
    """Node-branch incidence matrix ``A_l`` of the inductive branches.

    One branch per filament, oriented along the positive axis; node ids
    are synthetic (two per filament, shared along each wire according to
    the skeleton's connectivity is not needed for the pathology
    demonstration -- the filaments' own end nodes suffice and keep the
    construction self-contained).
    """
    n = len(parasitics.system)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    pairs: List[Tuple[int, int]] = []
    for k in range(n):
        node_a, node_b = 2 * k, 2 * k + 1
        pairs.append((node_a, node_b))
        rows.extend((node_a, node_b))
        cols.extend((k, k))
        vals.extend((1.0, -1.0))
    a_l = sparse.coo_matrix((vals, (rows, cols)), shape=(2 * n, n)).tocsr()
    return a_l, pairs


def nodal_inductive_admittance(
    parasitics: Parasitics, s: complex
) -> np.ndarray:
    """The nodal K-element admittance ``Gamma(s) = A_l K A_l^T / s``.

    Defined for ``s != 0``; the interesting behavior is the divergence
    and rank deficiency as ``|s| -> 0``.
    """
    if s == 0:
        raise ZeroDivisionError(
            "Gamma(s) = A K A^T / s is undefined at s = 0 -- the DC "
            "pathology the paper criticizes"
        )
    blocks = parasitics.inductance_blocks
    n = len(parasitics.system)
    k_full = np.zeros((n, n))
    for indices, block in blocks.values():
        k_full[np.ix_(indices, indices)] = invert_spd(np.asarray(block))
    a_l, _ = inductive_incidence(parasitics)
    gamma = (a_l @ k_full @ a_l.T) / s
    return np.asarray(gamma.todense() if sparse.issparse(gamma) else gamma)
