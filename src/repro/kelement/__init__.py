"""The K-element (susceptance) interconnect model -- a literature baseline.

Public API
----------
- :func:`~repro.kelement.model.build_kelement` /
  :class:`~repro.kelement.model.KElementModel`;
- :func:`~repro.kelement.nodal.nodal_inductive_admittance` (the nodal
  formulation whose DC indefiniteness the paper criticizes).
"""

from repro.kelement.model import KElementModel, build_kelement
from repro.kelement.nodal import nodal_inductive_admittance

__all__ = ["KElementModel", "build_kelement", "nodal_inductive_admittance"]
