"""MNA-stamped K-element model of an inductive interconnect system.

Section II-B of the paper shows that eqs. (7)-(10) "can be used to
derive the K element (susceptance) based model in [10] and [11] from
first principles": the VPEC circuit matrix is the K matrix up to the
geometric factor ``l^2``.  The two models differ in *realization*:

- VPEC is a plain SPICE netlist (resistors + controlled sources);
- the K element needs a simulator extension (a matrix-coupled branch
  set), and its published *nodal* realization loses DC information
  (see :mod:`repro.kelement.nodal`).

This module builds the K-element model on the shared electrical
skeleton using this package's :class:`SusceptanceSet` MNA element, so
the baseline can be simulated and compared against PEEC and VPEC on the
same engine.  Sparsified K models reuse the exact matrices of the VPEC
sparsifications (``K' = S'`` per direction, sign-corrected for wire
traversal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy import sparse

from repro.circuit.netlist import Circuit
from repro.extraction.parasitics import Parasitics
from repro.peec.builder import ElectricalSkeleton, build_skeleton
from repro.vpec.effective import VpecNetwork
from repro.vpec.full import full_vpec_networks


@dataclass
class KElementModel:
    """A built K-element circuit plus bookkeeping."""

    circuit: Circuit
    skeleton: ElectricalSkeleton
    networks: List[VpecNetwork]
    set_names: List[str]

    @property
    def parasitics(self) -> Parasitics:
        return self.skeleton.parasitics


def build_kelement(
    parasitics: Parasitics,
    networks: Optional[List[VpecNetwork]] = None,
    title: Optional[str] = None,
) -> KElementModel:
    """Build the K-element model from (optionally sparsified) networks.

    Parameters
    ----------
    parasitics:
        Extraction results (provides the shared electrical skeleton).
    networks:
        Per-direction networks whose ``Ghat = D S D`` supplies the K
        matrices (``K = D^-1 Ghat D^-1``); defaults to the full
        inversion.  Pass truncated / windowed networks to build the
        sparsified K model the truncation literature [10]-[13] uses.
    """
    if networks is None:
        networks = full_vpec_networks(parasitics)
    system = parasitics.system
    skeleton = build_skeleton(parasitics, title or f"kelement:{system.name}")
    circuit = skeleton.circuit
    signs = skeleton.signs

    set_names: List[str] = []
    for group, network in enumerate(networks):
        # K in wire-forward branch orientation: K_wf = D_s S D_s, where
        # S = D_l^-1 Ghat D_l^-1 and D_s the traversal signs.
        lengths = network.lengths
        scale = np.array(
            [float(signs[i]) / length for i, length in zip(network.indices, lengths)]
        )
        diag = sparse.diags(scale)
        k_matrix = (diag @ network.ghat @ diag).tocsr()
        branches = tuple(
            skeleton.slot_nodes[i] for i in network.indices
        )
        name = f"KSET{group}"
        circuit.add_susceptance_set(branches, k_matrix, name=name)
        set_names.append(name)
    return KElementModel(
        circuit=circuit,
        skeleton=skeleton,
        networks=networks,
        set_names=set_names,
    )
