"""Two-layer crossbar routing: orthogonal buses on adjacent metal layers.

A standard Manhattan routing fabric: ``x_wires`` horizontal lines on the
lower layer and ``y_wires`` vertical lines on the upper layer.  The two
directions do not couple inductively (orthogonal currents -- the ``k``
decomposition of the paper), but every crossing couples *capacitively*
through the inter-layer dielectric, which is how switching activity on
one layer disturbs the other.

This generator exercises the model stack's multi-direction path on bus
structures: two independent inductance blocks, two VPEC magnetic
circuits, and the crossing-capacitance extraction of
:func:`repro.extraction.capacitance.extract_capacitances`.
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.bus import (
    DEFAULT_LENGTH,
    DEFAULT_SPACING,
    DEFAULT_THICKNESS,
    DEFAULT_WIDTH,
)
from repro.geometry.filament import Axis, Filament
from repro.geometry.system import FilamentSystem


def crossbar(
    x_wires: int,
    y_wires: int,
    length: float = DEFAULT_LENGTH,
    width: float = DEFAULT_WIDTH,
    thickness: float = DEFAULT_THICKNESS,
    spacing: float = DEFAULT_SPACING,
    layer_gap: float = 0.5e-6,
    name: Optional[str] = None,
) -> FilamentSystem:
    """An ``x_wires`` x ``y_wires`` two-layer crossbar.

    Lower-layer wires run along x (wires ``0 .. x_wires-1``); upper-layer
    wires run along y (wires ``x_wires .. x_wires+y_wires-1``) at a
    vertical dielectric gap of ``layer_gap``.  Both layers are centered
    over each other so every pair of orthogonal wires crosses once.

    Parameters mirror :func:`repro.geometry.bus.aligned_bus`.
    """
    if x_wires < 1 or y_wires < 1:
        raise ValueError("a crossbar needs at least one wire per layer")
    pitch = width + spacing
    filaments = []
    # Lower layer: lines along x, stacked in y, starting at y = 0.
    for k in range(x_wires):
        filaments.append(
            Filament(
                origin=(0.0, k * pitch, 0.0),
                length=length,
                width=width,
                thickness=thickness,
                axis=Axis.X,
                wire=k,
                segment=0,
            )
        )
    # Upper layer: lines along y, stacked in x, spanning the lower bus.
    x_span = (x_wires - 1) * pitch + width
    y_start = -(length - x_span) / 2.0
    z_top = thickness + layer_gap
    for k in range(y_wires):
        filaments.append(
            Filament(
                origin=(k * pitch, y_start, z_top),
                length=length,
                width=width,
                thickness=thickness,
                axis=Axis.Y,
                wire=x_wires + k,
                segment=0,
            )
        )
    label = name or f"crossbar_{x_wires}x{y_wires}"
    return FilamentSystem(filaments, name=label)
