"""Collections of filaments forming a multi-wire interconnect system."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.geometry.filament import Axis, Filament


def _merge_interval(
    intervals: List[Tuple[float, float]], new: Tuple[float, float]
) -> List[Tuple[float, float]]:
    """Union of a sorted disjoint interval list with one more interval."""
    lo, hi = new
    merged: List[Tuple[float, float]] = []
    placed = False
    for a, b in intervals:
        if b < lo or a > hi:
            if not placed and a > hi:
                merged.append((lo, hi))
                placed = True
            merged.append((a, b))
        else:
            lo, hi = min(lo, a), max(hi, b)
    if not placed:
        merged.append((lo, hi))
    merged.sort()
    return merged


def _uncovered_length(
    span: Tuple[float, float], intervals: List[Tuple[float, float]]
) -> float:
    """Length of ``span`` not covered by the disjoint ``intervals``."""
    lo, hi = span
    remaining = hi - lo
    for a, b in intervals:
        remaining -= max(0.0, min(hi, b) - max(lo, a))
    return remaining


class FilamentSystem:
    """An ordered collection of filaments plus wire connectivity.

    The system is the hand-off object between geometry generators
    (:mod:`repro.geometry.bus`, :mod:`repro.geometry.spiral`), the
    extraction layer (which consumes pairwise geometry) and the circuit
    builders (which consume wire connectivity: the filaments of one wire
    are electrically connected in series, in ``segment`` order).

    Parameters
    ----------
    filaments:
        The filaments, in any order; they are kept in the given order and
        indexed ``0 .. n-1``.
    name:
        Human-readable label used in netlist titles.
    """

    def __init__(self, filaments: Iterable[Filament], name: str = "system") -> None:
        self._filaments: List[Filament] = list(filaments)
        if not self._filaments:
            raise ValueError("a FilamentSystem needs at least one filament")
        self.name = name
        self._wires: Dict[int, List[int]] = {}
        for index, filament in enumerate(self._filaments):
            self._wires.setdefault(filament.wire, []).append(index)
        for wire, members in self._wires.items():
            members.sort(key=lambda i: self._filaments[i].segment)
            segments = [self._filaments[i].segment for i in members]
            if segments != list(range(len(members))):
                raise ValueError(
                    f"wire {wire} has segment indices {segments}; expected "
                    f"0..{len(members) - 1} without gaps"
                )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._filaments)

    def __iter__(self) -> Iterator[Filament]:
        return iter(self._filaments)

    def __getitem__(self, index: int) -> Filament:
        return self._filaments[index]

    @property
    def filaments(self) -> Sequence[Filament]:
        """The filaments in index order."""
        return tuple(self._filaments)

    # ------------------------------------------------------------------
    # Wire structure
    # ------------------------------------------------------------------
    @property
    def wire_ids(self) -> List[int]:
        """Sorted wire identifiers."""
        return sorted(self._wires)

    @property
    def num_wires(self) -> int:
        return len(self._wires)

    def wire_filaments(self, wire: int) -> List[int]:
        """Filament indices of a wire, in series (segment) order."""
        return list(self._wires[wire])

    def segments_per_wire(self) -> Dict[int, int]:
        """Number of series segments of each wire."""
        return {wire: len(members) for wire, members in self._wires.items()}

    # ------------------------------------------------------------------
    # Bulk geometry arrays (consumed by extraction)
    # ------------------------------------------------------------------
    def lengths(self) -> np.ndarray:
        """Filament lengths in meters, shape ``(n,)``."""
        return np.array([f.length for f in self._filaments])

    def axes(self) -> List[Axis]:
        """Current axis of each filament."""
        return [f.axis for f in self._filaments]

    def indices_by_axis(self) -> Dict[Axis, List[int]]:
        """Filament indices grouped by current direction.

        The VPEC formulation treats each spatial component ``k`` in
        ``x, y, z`` independently (mutual inductance between orthogonal
        filaments is zero), so extraction and inversion are performed per
        group.
        """
        groups: Dict[Axis, List[int]] = {}
        for index, filament in enumerate(self._filaments):
            groups.setdefault(filament.axis, []).append(index)
        return groups

    def uniform_segment_length(self, rel_tol: float = 1e-6) -> float:
        """The common filament length, if all filaments share one.

        Raises ``ValueError`` when lengths differ by more than ``rel_tol``
        relatively; used by builders that rely on the paper's uniform
        ``l`` assumption (the general builders use per-filament lengths).
        """
        lengths = self.lengths()
        l_ref = float(lengths[0])
        if np.any(np.abs(lengths - l_ref) > rel_tol * l_ref):
            raise ValueError("filament lengths are not uniform")
        return l_ref

    # ------------------------------------------------------------------
    # Adjacency (capacitive coupling and the localized-VPEC baseline)
    # ------------------------------------------------------------------
    def adjacent_pairs(self) -> List[Tuple[int, int]]:
        """Pairs of *adjacent* parallel filaments (lateral neighbors).

        Two parallel filaments are adjacent when their axial spans overlap
        and no third parallel filament shadows that overlap from laterally
        between them (the definition the paper uses both for short-range
        capacitive coupling and for the localized VPEC model of [15]).
        Pairs are returned with ``i < j``, each pair once.

        Coplanar groups (all the paper's structures: bus lines in one metal
        layer, spiral legs in one layer) use an O(n log n + output) sweep;
        general 3-D arrangements fall back to a pairwise blocker check.
        """
        pairs: List[Tuple[int, int]] = []
        for indices in self.indices_by_axis().values():
            pairs.extend(self._adjacent_in_group(indices))
        pairs = [(min(i, j), max(i, j)) for i, j in pairs]
        return sorted(set(pairs))

    def _adjacent_in_group(self, indices: Sequence[int]) -> List[Tuple[int, int]]:
        if len(indices) < 2:
            return []
        axis = self._filaments[indices[0]].axis.value
        perp = [k for k in range(3) if k != axis]
        coords = np.array(
            [[self._filaments[i].center[p] for p in perp] for i in indices]
        )
        scale = max(
            self._filaments[i].width + self._filaments[i].thickness for i in indices
        )
        for flat_dim in (0, 1):
            if np.ptp(coords[:, flat_dim]) < 1e-9 * max(scale, 1e-12):
                sweep_dim = 1 - flat_dim
                return self._adjacent_sweep(indices, coords[:, sweep_dim])
        return self._adjacent_blocker_scan(indices)

    def _adjacent_sweep(
        self, indices: Sequence[int], lateral: np.ndarray
    ) -> List[Tuple[int, int]]:
        """1-D visibility sweep for a coplanar parallel group.

        Filaments are sorted by their lateral coordinate; for each filament
        we scan outward, keeping the union of axial intervals already
        shadowed by closer filaments.  A farther filament is adjacent when
        it overlaps an unshadowed part of the axial span.
        """
        order = sorted(range(len(indices)), key=lambda k: lateral[k])
        pairs: List[Tuple[int, int]] = []
        for a_pos, a in enumerate(order):
            i = indices[a]
            f_i = self._filaments[i]
            lo_i, hi_i = f_i.axial_span
            shadow: List[Tuple[float, float]] = []
            for b in order[a_pos + 1 :]:
                j = indices[b]
                f_j = self._filaments[j]
                if abs(lateral[b] - lateral[a]) < 1e-15:
                    continue
                lo = max(lo_i, f_j.axial_span[0])
                hi = min(hi_i, f_j.axial_span[1])
                if hi - lo <= 0.0:
                    continue
                if _uncovered_length((lo, hi), shadow) > 1e-12 * (hi_i - lo_i):
                    pairs.append((i, j))
                    shadow = _merge_interval(shadow, (lo, hi))
                if _uncovered_length((lo_i, hi_i), shadow) <= 1e-12 * (hi_i - lo_i):
                    break
        return pairs

    def _adjacent_blocker_scan(self, indices: Sequence[int]) -> List[Tuple[int, int]]:
        pairs: List[Tuple[int, int]] = []
        for a_pos, i in enumerate(indices):
            for j in indices[a_pos + 1 :]:
                f_i, f_j = self._filaments[i], self._filaments[j]
                if f_i.lateral_distance_to(f_j) < 1e-15:
                    continue
                if self._axial_overlap(f_i, f_j) <= 0.0:
                    continue
                if not self._has_blocker(i, j, indices):
                    pairs.append((i, j))
        return pairs

    def _axial_overlap(self, f_i: Filament, f_j: Filament) -> float:
        lo_i, hi_i = f_i.axial_span
        lo_j, hi_j = f_j.axial_span
        return min(hi_i, hi_j) - max(lo_i, lo_j)

    def _has_blocker(self, i: int, j: int, candidates: Sequence[int]) -> bool:
        """True when some filament lies laterally between filaments i and j."""
        f_i, f_j = self._filaments[i], self._filaments[j]
        axis = f_i.axis.value
        perp = [k for k in range(3) if k != axis]
        c_i = f_i.center
        c_j = f_j.center
        direction = [c_j[p] - c_i[p] for p in perp]
        gap = math.hypot(*direction)
        if gap == 0.0:
            return False
        direction = [d / gap for d in direction]
        for k in candidates:
            if k in (i, j):
                continue
            f_k = self._filaments[k]
            if self._axial_overlap(f_i, f_k) <= 0.0 or self._axial_overlap(f_j, f_k) <= 0.0:
                continue
            c_k = f_k.center
            offset = [c_k[p] - c_i[p] for p in perp]
            along = sum(o * d for o, d in zip(offset, direction))
            if not (1e-12 < along < gap - 1e-12):
                continue
            across = math.sqrt(max(sum(o * o for o in offset) - along * along, 0.0))
            max_half_width = max(f_i.width, f_j.width, f_k.width)
            if across <= max_half_width:
                return True
        return False

    def crossing_pairs(self) -> List[Tuple[int, int, float, float]]:
        """Orthogonal in-plane crossings: ``(i, j, overlap_area, gap)``.

        Pairs one X-directed and one Y-directed filament whose plan-view
        footprints overlap, with ``gap`` the vertical face-to-face
        dielectric distance (crossings on the same layer -- gap <= 0 --
        are skipped: that would be a short, not a coupling).  Feeds the
        crossing-capacitance extraction for multi-layer routing.
        """
        groups = self.indices_by_axis()
        x_group = groups.get(Axis.X, [])
        y_group = groups.get(Axis.Y, [])
        crossings: List[Tuple[int, int, float, float]] = []
        for i in x_group:
            f_i = self._filaments[i]
            ix = f_i.axial_span
            iy = (f_i.origin[1], f_i.origin[1] + f_i.width)
            iz = (f_i.origin[2], f_i.origin[2] + f_i.thickness)
            for j in y_group:
                f_j = self._filaments[j]
                jx = (f_j.origin[0], f_j.origin[0] + f_j.width)
                jy = f_j.axial_span
                jz = (f_j.origin[2], f_j.origin[2] + f_j.thickness)
                dx = min(ix[1], jx[1]) - max(ix[0], jx[0])
                dy = min(iy[1], jy[1]) - max(iy[0], jy[0])
                if dx <= 0 or dy <= 0:
                    continue
                gap = max(jz[0] - iz[1], iz[0] - jz[1])
                if gap <= 0:
                    continue
                pair = (min(i, j), max(i, j))
                crossings.append((pair[0], pair[1], dx * dy, gap))
        return crossings

    # ------------------------------------------------------------------
    def validate_no_overlaps(self) -> None:
        """Raise ``ValueError`` if any two filament volumes intersect.

        O(n^2); intended for tests and small systems, not hot paths.
        """
        n = len(self._filaments)
        for i in range(n):
            for j in range(i + 1, n):
                if self._filaments[i].overlaps(self._filaments[j]):
                    raise ValueError(f"filaments {i} and {j} overlap")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FilamentSystem(name={self.name!r}, filaments={len(self)}, "
            f"wires={self.num_wires})"
        )
