"""Square (Manhattan) spiral-inductor geometry.

Section V-B of the paper applies *numerical windowing* to a three-turn
spiral inductor on a lossy substrate, discretized into 92 segments.  The
spiral is the irregular counterpart of the bus experiments: its legs have
different lengths and orientations, so coupling windows differ per wire and
geometric (uniform-window) sparsification does not apply.

The spiral is generated as a single wire (wire 0) whose filaments alternate
between the x and y axes, numbered in traversal order from the outer
terminal to the inner terminal.  Consecutive filaments share a centerline
corner point; the circuit builders recover the series connectivity from
those shared endpoints (current direction along a leg is captured by the
branch current's sign, matching FastHenry's convention of orienting every
branch along the positive axis).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.geometry.filament import Axis, Filament
from repro.geometry.system import FilamentSystem

#: Direction cycle of an inward square spiral: +x, +y, -x, -y.
_DIRECTIONS: Tuple[Tuple[int, int], ...] = ((1, 0), (0, 1), (-1, 0), (0, -1))


def _leg_lengths(turns: int, outer: float, pitch: float) -> List[float]:
    """Centerline leg lengths of an inward square spiral.

    The first three legs span the full outer dimension; afterwards each
    half-turn shrinks by one pitch, producing the familiar inward winding.
    """
    lengths: List[float] = []
    for leg in range(4 * turns):
        shrink = 0 if leg == 0 else (leg - 1) // 2
        length = outer - shrink * pitch
        if length <= pitch:
            break
        lengths.append(length)
    return lengths


def _distribute_segments(leg_lengths: List[float], total_segments: int) -> List[int]:
    """Split ``total_segments`` across legs proportionally to their length."""
    if total_segments < len(leg_lengths):
        raise ValueError(
            f"need at least one segment per leg: {len(leg_lengths)} legs, "
            f"{total_segments} segments requested"
        )
    total_length = sum(leg_lengths)
    counts = [max(1, round(total_segments * l / total_length)) for l in leg_lengths]
    # Nudge counts until they sum exactly to the request, adjusting the
    # legs with the most / least length per segment first.
    while sum(counts) != total_segments:
        if sum(counts) > total_segments:
            candidates = [i for i, c in enumerate(counts) if c > 1]
            worst = max(candidates, key=lambda i: counts[i] / leg_lengths[i])
            counts[worst] -= 1
        else:
            best = max(range(len(counts)), key=lambda i: leg_lengths[i] / counts[i])
            counts[best] += 1
    return counts


def square_spiral(
    turns: int = 3,
    outer_dimension: float = 200e-6,
    width: float = 2e-6,
    thickness: float = 1e-6,
    spacing: float = 2e-6,
    total_segments: int = 92,
    name: Optional[str] = None,
) -> FilamentSystem:
    """A square spiral inductor as a single-wire filament system.

    Parameters
    ----------
    turns:
        Number of full turns (the paper uses 3).
    outer_dimension:
        Outer centerline side length in meters.
    width, thickness:
        Trace cross section in meters.
    spacing:
        Edge-to-edge gap between adjacent turns in meters.
    total_segments:
        Total filament count after discretization (the paper's spiral has
        92); segments are distributed across legs proportionally to leg
        length, with at least one per leg.
    """
    if turns < 1:
        raise ValueError("a spiral needs at least one turn")
    pitch = width + spacing
    legs = _leg_lengths(turns, outer_dimension, pitch)
    if len(legs) < 4 * turns:
        raise ValueError(
            f"spiral parameters leave no room for {turns} turns (only "
            f"{len(legs)} legs fit): increase outer_dimension or decrease "
            "width/spacing"
        )
    counts = _distribute_segments(legs, total_segments)

    filaments: List[Filament] = []
    x, y = 0.0, 0.0
    segment_index = 0
    for leg, (length, pieces) in enumerate(zip(legs, counts)):
        dx, dy = _DIRECTIONS[leg % 4]
        piece = length / pieces
        for _ in range(pieces):
            nx, ny = x + dx * piece, y + dy * piece
            if dx != 0:
                axis = Axis.X
                origin = (min(x, nx), y - width / 2.0, 0.0)
                dims = (piece, width, thickness)
            else:
                axis = Axis.Y
                origin = (x - width / 2.0, min(y, ny), 0.0)
                dims = (piece, width, thickness)
            filaments.append(
                Filament(
                    origin=origin,
                    length=dims[0],
                    width=dims[1],
                    thickness=dims[2],
                    axis=axis,
                    wire=0,
                    segment=segment_index,
                )
            )
            segment_index += 1
            x, y = nx, ny
    label = name or f"spiral_{turns}t_{total_segments}seg"
    return FilamentSystem(filaments, name=label)


def spiral_path_points(system: FilamentSystem) -> List[Tuple[float, float, float]]:
    """Centerline corner points of a spiral, in traversal order.

    Convenience for plotting and for tests that verify connectivity: the
    returned list has ``len(system) + 1`` points and consecutive filaments
    share one point.
    """
    points: List[Tuple[float, float, float]] = []
    previous_end: Optional[Tuple[float, float, float]] = None
    for filament in system:
        candidates = (filament.start, filament.end)
        if previous_end is None:
            # Orient the first filament toward its successor later; start
            # from the endpoint farther from the second filament's span.
            points.append(candidates[0])
            previous_end = candidates[1]
            continue
        if _close(candidates[0], previous_end):
            points.append(candidates[0])
            previous_end = candidates[1]
        elif _close(candidates[1], previous_end):
            points.append(candidates[1])
            previous_end = candidates[0]
        else:
            # First filament was oriented backwards; flip retroactively.
            if len(points) == 1:
                points[0], previous_end = previous_end, points[0]
                if _close(candidates[0], previous_end):
                    points.append(candidates[0])
                    previous_end = candidates[1]
                    continue
                if _close(candidates[1], previous_end):
                    points.append(candidates[1])
                    previous_end = candidates[0]
                    continue
            raise ValueError("filaments do not form a connected path")
    points.append(previous_end)
    return points


def _close(a: Tuple[float, float, float], b: Tuple[float, float, float]) -> bool:
    return math.dist(a, b) < 1e-9
