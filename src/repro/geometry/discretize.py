"""Frequency-driven discretization rules.

The paper's experiment setting (Section II-C) discretizes conductors two
ways before extraction:

- *volume decomposition* according to the skin depth at the maximum
  operating frequency (10 GHz in all experiments), and
- *longitudinal segmentation* to one tenth of the wavelength at that
  frequency.

This module provides those rules plus the filament subdivision helper the
generators use.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List

from repro.constants import MU_0, SPEED_OF_LIGHT
from repro.geometry.filament import Filament


def skin_depth(resistivity: float, frequency: float, mu_r: float = 1.0) -> float:
    """Skin depth ``delta = sqrt(rho / (pi * f * mu))`` in meters.

    Parameters
    ----------
    resistivity:
        Conductor resistivity in ohm-meters (copper: 1.7e-8).
    frequency:
        Frequency in Hz; must be positive.
    mu_r:
        Relative permeability (1 for copper / aluminum).
    """
    if frequency <= 0:
        raise ValueError("skin depth requires a positive frequency")
    return math.sqrt(resistivity / (math.pi * frequency * MU_0 * mu_r))


def wavelength(frequency: float, eps_r: float = 1.0, mu_r: float = 1.0) -> float:
    """Electromagnetic wavelength in a medium, meters."""
    if frequency <= 0:
        raise ValueError("wavelength requires a positive frequency")
    return SPEED_OF_LIGHT / (frequency * math.sqrt(eps_r * mu_r))


def segments_per_wavelength_rule(
    length: float,
    max_frequency: float,
    eps_r: float = 1.0,
    fraction: float = 0.1,
) -> int:
    """Number of series segments so each is <= ``fraction`` of a wavelength.

    The paper segments longitudinally "by one-tenth of the wavelength at
    the maximum operating frequency"; at 10 GHz in low-k dielectric
    (eps_r = 2) a tenth-wavelength is ~2.1 mm, so the 1000 um bus lines of
    the experiments map to a single segment unless the caller requests
    finer splitting explicitly.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    max_segment = fraction * wavelength(max_frequency, eps_r)
    return max(1, math.ceil(length / max_segment))


def subdivide_filament(filament: Filament, pieces: int) -> List[Filament]:
    """Split a filament into ``pieces`` equal series segments.

    The returned filaments keep the parent's wire id; their ``segment``
    indices are ``pieces * parent.segment + 0 .. pieces-1`` so that
    subdividing every filament of a wire by the same factor preserves a
    gap-free segment numbering.
    """
    if pieces < 1:
        raise ValueError("pieces must be >= 1")
    if pieces == 1:
        return [filament]
    axis = filament.axis.value
    piece_length = filament.length / pieces
    result: List[Filament] = []
    for k in range(pieces):
        origin = list(filament.origin)
        origin[axis] += k * piece_length
        result.append(
            replace(
                filament,
                origin=tuple(origin),
                length=piece_length,
                segment=pieces * filament.segment + k,
            )
        )
    return result
