"""Rectangular current filaments.

A filament is the elementary conductor volume of the PEEC / VPEC
discretization: a rectangular bar carrying a spatially uniform current
density along a single coordinate axis.  All dimensions are in meters.

Orientation convention
----------------------
``origin`` is the corner of the bar with the minimal coordinate in every
direction.  ``length`` extends along ``axis``.  The cross section is spanned
by ``width`` and ``thickness``:

===========  ============  ================
``axis``     width along   thickness along
===========  ============  ================
``Axis.X``   y             z
``Axis.Y``   x             z
``Axis.Z``   x             y
===========  ============  ================

(width lies in the routing plane, thickness is the metal height, except for
vias along z where both span the plane).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Tuple


class Axis(enum.Enum):
    """Coordinate axis a filament's current flows along."""

    X = 0
    Y = 1
    Z = 2

    @property
    def unit(self) -> Tuple[float, float, float]:
        """Unit vector of the axis."""
        vec = [0.0, 0.0, 0.0]
        vec[self.value] = 1.0
        return tuple(vec)


#: Maps axis -> (index of width direction, index of thickness direction).
_CROSS_SECTION_AXES = {
    Axis.X: (1, 2),
    Axis.Y: (0, 2),
    Axis.Z: (0, 1),
}


@dataclass(frozen=True)
class Filament:
    """A rectangular conductor bar with uniform axial current density.

    Parameters
    ----------
    origin:
        Minimal-coordinate corner ``(x, y, z)`` in meters.
    length:
        Extent along :attr:`axis`, meters.
    width, thickness:
        Cross-section dimensions, meters (see module docstring for the
        orientation convention).
    axis:
        Current direction.
    wire:
        Index of the owning wire (net); filaments of one wire are connected
        in series by the circuit builders.
    segment:
        Position of this filament along its wire (0-based).
    """

    origin: Tuple[float, float, float]
    length: float
    width: float
    thickness: float
    axis: Axis = Axis.X
    wire: int = 0
    segment: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0 or self.width <= 0 or self.thickness <= 0:
            raise ValueError(
                "filament dimensions must be positive, got "
                f"length={self.length}, width={self.width}, "
                f"thickness={self.thickness}"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def cross_section_area(self) -> float:
        """Cross-section area in m^2."""
        return self.width * self.thickness

    @property
    def volume(self) -> float:
        """Conductor volume in m^3."""
        return self.length * self.cross_section_area

    @property
    def center(self) -> Tuple[float, float, float]:
        """Geometric center of the bar."""
        half = self._half_extents()
        return (
            self.origin[0] + half[0],
            self.origin[1] + half[1],
            self.origin[2] + half[2],
        )

    def _half_extents(self) -> Tuple[float, float, float]:
        extents = [0.0, 0.0, 0.0]
        extents[self.axis.value] = self.length / 2.0
        w_axis, t_axis = _CROSS_SECTION_AXES[self.axis]
        extents[w_axis] = self.width / 2.0
        extents[t_axis] = self.thickness / 2.0
        return tuple(extents)

    @property
    def start(self) -> Tuple[float, float, float]:
        """Centerline endpoint at the low-coordinate end."""
        center = self.center
        point = list(center)
        point[self.axis.value] -= self.length / 2.0
        return tuple(point)

    @property
    def end(self) -> Tuple[float, float, float]:
        """Centerline endpoint at the high-coordinate end."""
        center = self.center
        point = list(center)
        point[self.axis.value] += self.length / 2.0
        return tuple(point)

    @property
    def axial_span(self) -> Tuple[float, float]:
        """``(low, high)`` coordinates of the bar along its own axis."""
        low = self.origin[self.axis.value]
        return (low, low + self.length)

    # ------------------------------------------------------------------
    # Pairwise relations (used by extraction)
    # ------------------------------------------------------------------
    def is_parallel_to(self, other: "Filament") -> bool:
        """True when both filaments carry current along the same axis."""
        return self.axis is other.axis

    def lateral_distance_to(self, other: "Filament") -> float:
        """Center-to-center distance perpendicular to the common axis.

        Only meaningful for parallel filaments; raises otherwise.
        """
        if not self.is_parallel_to(other):
            raise ValueError("lateral distance is defined for parallel filaments")
        c_a, c_b = self.center, other.center
        axis = self.axis.value
        deltas = [c_b[i] - c_a[i] for i in range(3) if i != axis]
        return math.hypot(*deltas)

    def longitudinal_offset_to(self, other: "Filament") -> float:
        """Offset of the other filament's low end along the common axis.

        Zero means the filaments are aligned end-to-end at the same axial
        start coordinate.
        """
        if not self.is_parallel_to(other):
            raise ValueError("longitudinal offset is defined for parallel filaments")
        axis = self.axis.value
        return other.origin[axis] - self.origin[axis]

    def overlaps(self, other: "Filament") -> bool:
        """True when the two bars' volumes intersect.

        Exactly touching faces (abutting segments, cross-section tiles)
        do not count as overlap; a relative tolerance absorbs the
        floating-point noise of derived coordinates.
        """
        for i in range(3):
            lo_a, hi_a = self._interval(i)
            lo_b, hi_b = other._interval(i)
            tol = 1e-9 * ((hi_a - lo_a) + (hi_b - lo_b))
            if hi_a <= lo_b + tol or hi_b <= lo_a + tol:
                return False
        return True

    def _interval(self, axis_index: int) -> Tuple[float, float]:
        half = self._half_extents()[axis_index]
        center = self.center[axis_index]
        return (center - half, center + half)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def translated(self, dx: float = 0.0, dy: float = 0.0, dz: float = 0.0) -> "Filament":
        """A copy of this filament shifted by ``(dx, dy, dz)``."""
        ox, oy, oz = self.origin
        return replace(self, origin=(ox + dx, oy + dy, oz + dz))

    def with_wire(self, wire: int, segment: int) -> "Filament":
        """A copy with new wire / segment bookkeeping indices."""
        return replace(self, wire=wire, segment=segment)
