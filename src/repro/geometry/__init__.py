"""Conductor geometry substrate.

Interconnect structures are described as collections of rectangular
*filaments* (the magneto-quasi-static discretization used by FastHenry and
by the paper): each filament carries a uniform current density along one
coordinate axis and has a rectangular cross section.

Public API
----------
- :class:`~repro.geometry.filament.Axis`, :class:`~repro.geometry.filament.Filament`
- :class:`~repro.geometry.system.FilamentSystem`
- :func:`~repro.geometry.bus.aligned_bus`, :func:`~repro.geometry.bus.nonaligned_bus`
- :func:`~repro.geometry.spiral.square_spiral`
- :func:`~repro.geometry.discretize.skin_depth`,
  :func:`~repro.geometry.discretize.wavelength`,
  :func:`~repro.geometry.discretize.segments_per_wavelength_rule`
"""

from repro.geometry.bus import aligned_bus, nonaligned_bus, shielded_bus
from repro.geometry.crossbar import crossbar
from repro.geometry.discretize import (
    segments_per_wavelength_rule,
    skin_depth,
    subdivide_filament,
    wavelength,
)
from repro.geometry.filament import Axis, Filament
from repro.geometry.spiral import square_spiral
from repro.geometry.system import FilamentSystem

__all__ = [
    "Axis",
    "Filament",
    "FilamentSystem",
    "aligned_bus",
    "nonaligned_bus",
    "shielded_bus",
    "crossbar",
    "square_spiral",
    "skin_depth",
    "wavelength",
    "segments_per_wavelength_rule",
    "subdivide_filament",
]
