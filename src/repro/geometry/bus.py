"""Parallel-bus geometry generators.

The paper's experiments all use buses of parallel lines in one metal layer:

- Section II-C: 5-bit aligned bus, one segment per line, 1000 x 1 x 1 um
  lines with 2 um spacing;
- Section IV-A: 32-bit aligned bus with eight segments per line;
- Sections IV-B / V-A: 128-bit buses with one segment per line (the
  numerical-truncation bus is *nonaligned*);
- Sections V-A / VI: buses swept from 8 to 2048 bits.

Dimensions are given in meters.  Lines run along x; bit index grows along y.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.filament import Axis, Filament
from repro.geometry.system import FilamentSystem

#: Default line geometry of the paper's experiments (meters).
DEFAULT_LENGTH = 1000e-6
DEFAULT_WIDTH = 1e-6
DEFAULT_THICKNESS = 1e-6
DEFAULT_SPACING = 2e-6


def aligned_bus(
    bits: int,
    segments_per_line: int = 1,
    length: float = DEFAULT_LENGTH,
    width: float = DEFAULT_WIDTH,
    thickness: float = DEFAULT_THICKNESS,
    spacing: float = DEFAULT_SPACING,
    name: Optional[str] = None,
) -> FilamentSystem:
    """An aligned parallel bus: ``bits`` identical coplanar lines.

    Each line is split into ``segments_per_line`` equal series filaments.
    Wire ``b`` is bit ``b``; the victim-observation conventions of the
    paper (aggressor = bit 0, observed victim = bit 1 or the middle bit)
    are applied by the experiment drivers, not here.

    Parameters
    ----------
    bits:
        Number of bus lines (>= 1).
    segments_per_line:
        Series filaments per line (>= 1).
    length, width, thickness:
        Line dimensions in meters.
    spacing:
        Edge-to-edge space between neighboring lines in meters; the pitch
        is ``width + spacing``.
    """
    if bits < 1:
        raise ValueError("a bus needs at least one bit")
    if segments_per_line < 1:
        raise ValueError("segments_per_line must be >= 1")
    pitch = width + spacing
    segment_length = length / segments_per_line
    filaments = []
    for bit in range(bits):
        for seg in range(segments_per_line):
            filaments.append(
                Filament(
                    origin=(seg * segment_length, bit * pitch, 0.0),
                    length=segment_length,
                    width=width,
                    thickness=thickness,
                    axis=Axis.X,
                    wire=bit,
                    segment=seg,
                )
            )
    label = name or f"aligned_bus_{bits}x{segments_per_line}"
    return FilamentSystem(filaments, name=label)


def shielded_bus(
    signals: int,
    shields_every: int,
    length: float = DEFAULT_LENGTH,
    width: float = DEFAULT_WIDTH,
    thickness: float = DEFAULT_THICKNESS,
    spacing: float = DEFAULT_SPACING,
    shield_width: Optional[float] = None,
    name: Optional[str] = None,
) -> Tuple[FilamentSystem, List[int], List[int]]:
    """A bus with power/ground shield wires interleaved every N signals.

    The workload behind the *return-limited* inductance model (the
    paper's reference [8]): signal return currents are assumed to flow
    on the nearest shields, which is accurate when shields are dense and
    degrades as ``shields_every`` grows.

    Returns ``(system, signal_wires, shield_wires)``; wires are laid out
    as ``S g S S g S S ...`` with a shield before the first signal and
    after the last.

    Parameters
    ----------
    signals:
        Number of signal wires.
    shields_every:
        Signals between consecutive shields (>= 1).
    shield_width:
        Shield wire width (defaults to twice the signal width, a typical
        P/G sizing).
    """
    if signals < 1:
        raise ValueError("need at least one signal wire")
    if shields_every < 1:
        raise ValueError("shields_every must be >= 1")
    shield_w = shield_width if shield_width is not None else 2.0 * width
    filaments = []
    signal_wires: List[int] = []
    shield_wires: List[int] = []
    y = 0.0
    wire = 0

    def add(kind_width: float, is_shield: bool) -> None:
        nonlocal y, wire
        filaments.append(
            Filament(
                origin=(0.0, y, 0.0),
                length=length,
                width=kind_width,
                thickness=thickness,
                axis=Axis.X,
                wire=wire,
                segment=0,
            )
        )
        (shield_wires if is_shield else signal_wires).append(wire)
        y += kind_width + spacing
        wire += 1

    add(shield_w, True)
    for k in range(signals):
        add(width, False)
        if (k + 1) % shields_every == 0 and k + 1 < signals:
            add(shield_w, True)
    add(shield_w, True)
    label = name or f"shielded_bus_{signals}s_every{shields_every}"
    return FilamentSystem(filaments, name=label), signal_wires, shield_wires


def nonaligned_bus(
    bits: int,
    segments_per_line: int = 1,
    length: float = DEFAULT_LENGTH,
    width: float = DEFAULT_WIDTH,
    thickness: float = DEFAULT_THICKNESS,
    spacing: float = DEFAULT_SPACING,
    spacing_jitter: float = 0.5,
    offset_jitter: float = 0.0,
    seed: int = 2003,
    name: Optional[str] = None,
) -> FilamentSystem:
    """A *nonaligned* parallel bus (Section IV-B's 128-bit example).

    Lines remain parallel (along x) but lose the aligned bus's regularity:
    line-to-line spacing varies by up to ``spacing_jitter`` (relative) and,
    optionally, each line is shifted longitudinally by up to
    ``offset_jitter * length``.  The perturbations are deterministic for a
    given ``seed`` so experiments are reproducible.

    Because the regularity is gone, a uniform geometric truncating window
    no longer applies -- which is exactly why the paper uses this workload
    to demonstrate *numerical* truncation.

    ``offset_jitter`` defaults to zero: the strict diagonal dominance of
    ``Ghat`` (Theorem 2) empirically requires near-co-extensive parallel
    segments -- the paper's proof likewise "assumes that wires can be
    decomposed into short wires with similar length", and its own remedy
    for misaligned wires is finer segmentation.  Large longitudinal
    offsets measurably break dominance (the model stays SPD/passive, but
    the truncation guarantee weakens), so offsets are opt-in.
    """
    if bits < 1:
        raise ValueError("a bus needs at least one bit")
    if not 0 <= spacing_jitter < 1:
        raise ValueError("spacing_jitter must be in [0, 1)")
    if not 0 <= offset_jitter < 1:
        raise ValueError("offset_jitter must be in [0, 1)")
    rng = np.random.default_rng(seed)
    segment_length = length / segments_per_line
    filaments = []
    y = 0.0
    for bit in range(bits):
        x0 = float(rng.uniform(-offset_jitter, offset_jitter)) * length
        for seg in range(segments_per_line):
            filaments.append(
                Filament(
                    origin=(x0 + seg * segment_length, y, 0.0),
                    length=segment_length,
                    width=width,
                    thickness=thickness,
                    axis=Axis.X,
                    wire=bit,
                    segment=seg,
                )
            )
        gap = spacing * (1.0 + float(rng.uniform(-spacing_jitter, spacing_jitter)))
        y += width + gap
    label = name or f"nonaligned_bus_{bits}x{segments_per_line}"
    return FilamentSystem(filaments, name=label)
