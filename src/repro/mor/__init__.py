"""Moment-matching model order reduction (the paper's future work).

The paper closes with: "To further reduce the complexity of the
resulting sparsified VPEC models, the authors intend to develop model
order reduction for the VPEC model" (refs [16], [17]).  This package
provides that layer: a block-Arnoldi (PRIMA-style) projection of any
circuit's descriptor MNA form onto a small Krylov subspace, matching
the port transfer function's moments around an expansion point.

Public API
----------
- :func:`~repro.mor.prima.reduce_circuit` /
  :class:`~repro.mor.prima.ReducedModel`;
- :func:`~repro.mor.prima.block_arnoldi` (the projection basis builder).
"""

from repro.mor.prima import ReducedModel, block_arnoldi, reduce_circuit

__all__ = ["ReducedModel", "reduce_circuit", "block_arnoldi"]
