"""Block-Arnoldi (PRIMA-style) reduction of descriptor MNA systems.

Given a circuit in the simulator's descriptor form

    G x(t) + C x'(t) = B u(t),        y(t) = L^T x(t)

with inputs ``u`` = selected voltage-source values and outputs ``y`` =
selected node voltages, the reduction projects onto the block Krylov
subspace

    span{ A^k R : k = 0 .. q-1 },  A = (G + s0 C)^-1 C,  R = (G + s0 C)^-1 B

(orthonormalized by block QR with deflation).  The reduced model

    G~ = V^T G V,  C~ = V^T C V,  B~ = V^T B,  L~ = V^T L

matches the first ``q`` block moments of the transfer function
``H(s) = L^T (G + s C)^-1 B`` around ``s0`` [Odabasioglu et al., PRIMA,
TCAD 1998 -- the machinery behind the paper's refs 16-17].

Notes
-----
PRIMA's passivity proof needs the symmetric-definite RLC structure; the
general MNA descriptor built here (controlled sources, VPEC magnetic
blocks) does not satisfy it, so the guarantee carried by this module is
*moment matching / transfer accuracy*, verified against the full AC
solution in the tests.  For the RLC-only PEEC netlists the projection
coincides with classical PRIMA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

import numpy as np
from scipy.sparse.linalg import splu

from repro.circuit.mna import build_mna
from repro.circuit.netlist import Circuit

#: Default (real) expansion point, rad/s -- mid-band for GHz interconnect.
DEFAULT_S0 = 2.0 * np.pi * 1.0e9

#: Singular values below this (relative) are deflated from each block.
_DEFLATION_TOL = 1e-10


@dataclass
class ReducedModel:
    """A reduced-order port model ``(G~, C~, B~, L~)``.

    ``transfer`` evaluates ``H(s) = L~^T (G~ + s C~)^-1 B~`` -- shape
    ``(num_outputs, num_inputs)`` per frequency.
    """

    g: np.ndarray
    c: np.ndarray
    b: np.ndarray
    l: np.ndarray
    s0: float
    input_names: List[str]
    output_nodes: List[str]

    @property
    def order(self) -> int:
        """Number of reduced states."""
        return self.g.shape[0]

    def transfer_at(self, s: complex) -> np.ndarray:
        """Transfer matrix at one complex frequency ``s``."""
        solve = np.linalg.solve(self.g + s * self.c, self.b)
        return self.l.T @ solve

    def transfer(self, frequencies: Iterable[float]) -> np.ndarray:
        """Transfer matrices over ``j 2 pi f``; shape (nf, n_out, n_in)."""
        freqs = np.asarray(list(frequencies), dtype=float)
        result = np.empty(
            (freqs.size, self.l.shape[1], self.b.shape[1]), dtype=complex
        )
        for k, f in enumerate(freqs):
            result[k] = self.transfer_at(1j * 2.0 * np.pi * f)
        return result

    def transient(
        self,
        inputs: "Sequence[Callable[[float], float]]",
        t_stop: float,
        dt: float,
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Integrate the reduced system under time-domain inputs.

        Trapezoidal integration of ``G~ x + C~ x' = B~ u(t)`` from a DC
        start; returns ``(times, outputs)`` with outputs shaped
        ``(steps + 1, n_out)``.  This is what makes the macromodel a
        drop-in for the full netlist in a transient noise loop.
        """
        if len(inputs) != self.b.shape[1]:
            raise ValueError(
                f"need {self.b.shape[1]} input waveforms, got {len(inputs)}"
            )
        if t_stop <= 0 or dt <= 0:
            raise ValueError("t_stop and dt must be positive")
        steps = int(np.ceil(t_stop / dt))
        times = np.arange(steps + 1) * dt

        def u_at(t: float) -> np.ndarray:
            return np.array([u(t) for u in inputs])

        # DC start: G~ x0 = B~ u(0).
        x = np.linalg.solve(self.g, self.b @ u_at(0.0))
        lhs = self.g + (2.0 / dt) * self.c
        history = (2.0 / dt) * self.c - self.g
        lu_piv = None
        try:
            from scipy.linalg import lu_factor, lu_solve

            lu_piv = lu_factor(lhs)

            def solve(rhs: np.ndarray) -> np.ndarray:
                return lu_solve(lu_piv, rhs)

        except ImportError:  # pragma: no cover - scipy is a dependency

            def solve(rhs: np.ndarray) -> np.ndarray:
                return np.linalg.solve(lhs, rhs)

        outputs = np.empty((steps + 1, self.l.shape[1]))
        outputs[0] = self.l.T @ x
        u_now = u_at(0.0)
        for n in range(1, steps + 1):
            u_next = u_at(times[n])
            rhs = history @ x + self.b @ (u_now + u_next)
            x = solve(rhs)
            outputs[n] = self.l.T @ x
            u_now = u_next
        return times, outputs


def block_arnoldi(
    lu_solve,
    c_matrix,
    r0: np.ndarray,
    blocks: int,
) -> np.ndarray:
    """Orthonormal basis of the block Krylov subspace.

    Parameters
    ----------
    lu_solve:
        Callable applying ``(G + s0 C)^-1`` to a dense block.
    c_matrix:
        The (sparse) ``C`` matrix.
    r0:
        The starting block ``(G + s0 C)^-1 B``.
    blocks:
        Number of block moments to span (>= 1).
    """
    if blocks < 1:
        raise ValueError("need at least one block moment")
    basis: List[np.ndarray] = []
    block = _orthonormalize(r0, basis)
    for _ in range(blocks):
        if block.shape[1] == 0:
            break
        basis.append(block)
        block = lu_solve(c_matrix @ block)
        block = _orthonormalize(block, basis)
    if not basis:
        raise ValueError("starting block is numerically empty")
    return np.hstack(basis)


def _orthonormalize(block: np.ndarray, basis: List[np.ndarray]) -> np.ndarray:
    """Two-pass modified Gram-Schmidt against the basis, then QR deflate.

    Columns whose norm collapses during orthogonalization (the Krylov
    space has saturated) are dropped *before* QR -- re-normalizing them
    would inject numerical noise into the basis and destabilize the
    projected model.
    """
    block = np.array(block, dtype=float)
    if block.size == 0:
        return block
    original = np.linalg.norm(block, axis=0)
    for _ in range(2):
        for previous in basis:
            block -= previous @ (previous.T @ block)
    remaining = np.linalg.norm(block, axis=0)
    alive = remaining > _DEFLATION_TOL * np.maximum(original, 1e-300)
    block = block[:, alive]
    if block.shape[1] == 0:
        return block
    q, r = np.linalg.qr(block)
    keep = np.abs(np.diag(r)) > _DEFLATION_TOL * max(
        np.abs(np.diag(r)).max(), 1e-300
    )
    return q[:, keep]


def reduce_circuit(
    circuit: Circuit,
    inputs: Sequence[str],
    outputs: Sequence[str],
    order: int,
    s0: float = DEFAULT_S0,
) -> ReducedModel:
    """Reduce a circuit to a moment-matched port model.

    Parameters
    ----------
    circuit:
        Any circuit accepted by the simulator.
    inputs:
        Names of voltage sources acting as ports (their stimulus values
        become the inputs ``u``).
    outputs:
        Node names whose voltages form the outputs ``y``.
    order:
        Number of block moments to match; the reduced size is at most
        ``order * len(inputs)`` (deflation may shrink it).
    s0:
        Real expansion point in rad/s.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    if not inputs:
        raise ValueError("at least one input source is required")
    if not outputs:
        raise ValueError("at least one output node is required")
    system = build_mna(circuit)

    b_matrix = np.zeros((system.size, len(inputs)))
    for col, name in enumerate(inputs):
        b_matrix[system.branch_row(name), col] = 1.0
    l_matrix = np.zeros((system.size, len(outputs)))
    for col, node in enumerate(outputs):
        row = system.node_row(node)
        if row < 0:
            raise ValueError("ground is not a meaningful output")
        l_matrix[row, col] = 1.0

    # PRIMA's passivity/stability argument needs the *semidefinite* MNA
    # form: with branch equations negated, G + G^T >= 0 (conductances on
    # the node block, skew incidence coupling) and C = diag(caps, L) >= 0
    # for RLC circuits, and both properties survive the congruence
    # V^T (.) V.  The sign flip does not change the Krylov space (the
    # diagonal sign cancels inside (G + s0 C)^-1 S^-1 S B), only the
    # projected matrices -- i.e. it is exactly what keeps the reduced
    # model stable where the raw-MNA projection blows up.
    from scipy import sparse as _sparse

    signs = np.ones(system.size)
    signs[system.num_nodes :] = -1.0
    flip = _sparse.diags(signs).tocsc()
    g_mat = (flip @ system.G).tocsc()
    c_mat = (flip @ system.C).tocsc()
    b_flipped = flip @ b_matrix

    shifted = splu((g_mat + s0 * c_mat).tocsc())
    r0 = shifted.solve(b_flipped)
    v = block_arnoldi(shifted.solve, c_mat, r0, order)

    return ReducedModel(
        g=v.T @ (g_mat @ v),
        c=v.T @ (c_mat @ v),
        b=v.T @ b_flipped,
        l=v.T @ l_matrix,
        s0=s0,
        input_names=list(inputs),
        output_nodes=list(outputs),
    )
