"""Stable content hashing for cache keys.

A cache key must be a pure function of the *inputs* that determine the
cached value: the geometry (every filament's coordinates, dimensions,
axis, and wire bookkeeping), the extraction options, and -- for built
models -- the model spec plus the numeric parasitics themselves.  The
hash is a SHA-256 over a type-tagged canonical byte encoding:

- floats are encoded as their IEEE-754 bytes (``repr`` round-tripping is
  not needed; bit-exact inputs give bit-exact keys, and that is the
  contract the warm-cache equivalence tests rely on);
- numpy arrays contribute dtype, shape, and raw bytes;
- containers contribute their length plus each element, dicts in sorted
  key order;
- dataclasses and enums are destructured field by field.

Python's built-in ``hash`` is unsuitable (salted per process); pickle
bytes are unsuitable (protocol details can change across versions).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import struct
from typing import Any

import numpy as np

from repro.geometry.system import FilamentSystem


def _update(h: "hashlib._Hash", obj: Any) -> None:
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        data = obj.to_bytes((obj.bit_length() + 8) // 8 + 1, "little", signed=True)
        h.update(b"I" + len(data).to_bytes(4, "little") + data)
    elif isinstance(obj, float):
        h.update(b"F" + struct.pack("<d", obj))
    elif isinstance(obj, complex):
        h.update(b"X" + struct.pack("<dd", obj.real, obj.imag))
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        h.update(b"S" + len(data).to_bytes(4, "little") + data)
    elif isinstance(obj, bytes):
        h.update(b"Y" + len(obj).to_bytes(4, "little") + obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        _update(h, str(arr.dtype))
        _update(h, arr.shape)
        h.update(b"A" + arr.tobytes())
    elif isinstance(obj, np.generic):
        _update(h, obj.item())
    elif isinstance(obj, enum.Enum):
        _update(h, type(obj).__name__)
        _update(h, obj.name)
    elif isinstance(obj, dict):
        h.update(b"D" + len(obj).to_bytes(4, "little"))
        for key in sorted(obj, key=repr):
            _update(h, key)
            _update(h, obj[key])
    elif isinstance(obj, (list, tuple)):
        h.update(b"L" + len(obj).to_bytes(4, "little"))
        for item in obj:
            _update(h, item)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        _update(h, type(obj).__name__)
        for field in dataclasses.fields(obj):
            if not field.compare:
                continue  # e.g. Stimulus.transient callables
            _update(h, field.name)
            _update(h, getattr(obj, field.name))
    else:
        raise TypeError(
            f"cannot stably hash {type(obj).__name__}; add an encoding "
            "for it or pass a canonical representation"
        )


def stable_hash(*parts: Any) -> str:
    """Hex SHA-256 of the canonical encoding of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        _update(h, part)
    return h.hexdigest()


def system_fingerprint(system: FilamentSystem) -> str:
    """Content hash of a filament system (geometry + wire bookkeeping).

    Two systems with identical filaments in identical order (and the
    same name -- netlist titles embed it, so cached circuits do too)
    produce the same fingerprint.  The filaments are packed into one
    float array so the hash costs a single SHA-256 pass instead of a
    per-filament Python traversal -- this runs on every warm cache hit,
    so it must stay cheap for thousand-filament systems.
    """
    packed = np.array(
        [
            (
                *filament.origin,
                filament.length,
                filament.width,
                filament.thickness,
                float(filament.axis.value),
                float(filament.wire),
                float(filament.segment),
            )
            for filament in system
        ],
        dtype=np.float64,
    ).reshape(len(system), 9)
    h = hashlib.sha256()
    _update(h, system.name)
    _update(h, len(system))
    _update(h, packed)
    return h.hexdigest()
