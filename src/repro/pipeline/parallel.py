"""Process-pool fan-out with deterministic result ordering.

Independent model specs and sweep points are embarrassingly parallel:
each worker builds its geometry, extracts (or loads from the shared
on-disk cache), builds the model, and simulates -- no shared mutable
state.  Results come back in *input order* regardless of completion
order (``ProcessPoolExecutor.map`` preserves ordering), so a parallel
run is reproducible and byte-identical to the serial run of the same
job list; the equivalence tests assert exactly that.

Work functions must be module-level (picklable); per-call configuration
travels via ``functools.partial``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count used for ``jobs=None``: the CPU count (min 1)."""
    return max(os.cpu_count() or 1, 1)


#: Below this many items a pool is not worth its start-up cost.  The
#: historical behaviour (serialize single-item maps) is the default;
#: callers that *need* the pool exercised at small N (pool regression
#: tests, shared-memory assembly) pass ``serial_threshold=0``.
DEFAULT_SERIAL_THRESHOLD = 2


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
    chunksize: int = 1,
    serial_threshold: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving input order.

    Parameters
    ----------
    fn:
        A picklable (module-level or ``functools.partial``-wrapped)
        callable.
    items:
        The work list; each item is shipped to one worker.
    jobs:
        Worker processes.  ``None`` uses :func:`default_jobs`; ``1``
        runs serially in-process, which keeps small runs free of pool
        start-up cost and makes the serial path the natural baseline
        for the equivalence tests.
    chunksize:
        Items shipped per worker round-trip (forwarded to
        ``ProcessPoolExecutor.map``).  Large fine-grained work lists
        amortize pickling with ``chunksize > 1``; result order is
        input order either way.
    serial_threshold:
        Work lists shorter than this run serially in-process even when
        ``jobs > 1``.  ``None`` keeps the historical default
        (:data:`DEFAULT_SERIAL_THRESHOLD`: only single-item maps
        serialize); pass ``0`` to force the pool even for one item --
        silently serializing small N hides pool bugs (unpicklable work
        functions, shared-memory attach failures) from small tests.
    """
    items = list(items)
    workers = default_jobs() if jobs is None else int(jobs)
    if workers < 1:
        raise ValueError("jobs must be >= 1")
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    threshold = (
        DEFAULT_SERIAL_THRESHOLD if serial_threshold is None else int(serial_threshold)
    )
    if not items:
        return []
    if workers == 1 or len(items) < threshold:
        return [fn(item) for item in items]
    workers = min(workers, max(len(items), 1))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
