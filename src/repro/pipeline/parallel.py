"""Process-pool fan-out with deterministic result ordering.

Independent model specs and sweep points are embarrassingly parallel:
each worker builds its geometry, extracts (or loads from the shared
on-disk cache), builds the model, and simulates -- no shared mutable
state.  Results come back in *input order* regardless of completion
order (``ProcessPoolExecutor.map`` preserves ordering), so a parallel
run is reproducible and byte-identical to the serial run of the same
job list; the equivalence tests assert exactly that.

Work functions must be module-level (picklable); per-call configuration
travels via ``functools.partial``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count used for ``jobs=None``: the CPU count (min 1)."""
    return max(os.cpu_count() or 1, 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving input order.

    Parameters
    ----------
    fn:
        A picklable (module-level or ``functools.partial``-wrapped)
        callable.
    items:
        The work list; each item is shipped to one worker.
    jobs:
        Worker processes.  ``None`` uses :func:`default_jobs`; ``1`` (or
        fewer items than workers would help) runs serially in-process,
        which keeps small runs free of pool start-up cost and makes the
        serial path the natural baseline for the equivalence tests.
    """
    items = list(items)
    workers = default_jobs() if jobs is None else int(jobs)
    if workers < 1:
        raise ValueError("jobs must be >= 1")
    workers = min(workers, len(items))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
