"""Per-stage timing and counter instrumentation.

The pipeline's stages -- ``extract`` (geometry to parasitics),
``invert`` (the full ``O(N^3)`` inversion), ``sparsify`` (truncation or
window solves), ``stamp`` (netlist assembly), ``solve`` (AC / transient
linear solves) -- are wrapped in :func:`stage` context managers at the
point where the work happens.  When nothing is collecting, a stage is a
few-nanosecond no-op, so the instrumentation can live permanently inside
the hot paths.

Collection is scoped with :func:`collect`::

    with collect() as profile:
        parasitics = extract(aligned_bus(64))
        built = build_model(gw_spec(8), parasitics)
    print(profile.to_table())

The active profile is a :class:`contextvars.ContextVar`, so collection
composes with threads; worker processes each collect their own profile
and ship it back pickled (see :mod:`repro.pipeline.parallel`).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

#: The stage names the core pipeline emits (others are allowed; these are
#: the ones surfaced by ``--profile`` and asserted by the regression
#: tests).
CORE_STAGES = ("extract", "invert", "sparsify", "stamp", "solve")


@dataclass
class StageProfile:
    """Accumulated wall-clock seconds, call counts, and event counters.

    ``seconds[name]`` is the total (inclusive) wall time spent inside
    ``stage(name)`` blocks; ``calls[name]`` how many blocks ran;
    ``counters[name]`` free-form event tallies (cache hits, LU
    factorizations, swept frequency points, ...).
    """

    seconds: Dict[str, float] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    def add_time(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    def add_counter(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge(self, other: "StageProfile") -> None:
        """Fold another profile (e.g. from a worker process) into this one."""
        for name, value in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + value
        for name, value in other.calls.items():
            self.calls[name] = self.calls.get(name, 0) + value
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Mapping]:
        ordered = sorted(self.seconds, key=lambda n: -self.seconds[n])
        return {
            "stages": {
                name: {
                    "seconds": self.seconds[name],
                    "calls": self.calls.get(name, 0),
                }
                for name in ordered
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def to_table(self) -> str:
        """Human-readable stage table for terminal output."""
        lines = ["stage        seconds  calls"]
        for name in sorted(self.seconds, key=lambda n: -self.seconds[n]):
            lines.append(
                f"{name:<12} {self.seconds[name]:>7.4f}  {self.calls.get(name, 0):>5d}"
            )
        for name, value in sorted(self.counters.items()):
            lines.append(f"{name:<12} {value:>13d}")
        return "\n".join(lines)


_ACTIVE: ContextVar[Optional[StageProfile]] = ContextVar(
    "repro_stage_profile", default=None
)


def active_profile() -> Optional[StageProfile]:
    """The profile currently collecting, or ``None``."""
    return _ACTIVE.get()


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a pipeline stage (no-op unless a profile is collecting).

    Timing is inclusive: a ``solve`` stage nested inside a wider block
    contributes to both.  The core stages are disjoint by construction.
    """
    profile = _ACTIVE.get()
    if profile is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        profile.add_time(name, time.perf_counter() - start)


def add_counter(name: str, amount: int = 1) -> None:
    """Bump an event counter (no-op unless a profile is collecting)."""
    profile = _ACTIVE.get()
    if profile is not None:
        profile.add_counter(name, amount)


@contextmanager
def collect(
    into: Optional[StageProfile] = None,
) -> Iterator[StageProfile]:
    """Collect stage timings for the duration of the block.

    Nested ``collect`` blocks shadow the outer one (the inner block's
    stages are not double-counted); pass ``into`` to accumulate several
    blocks into one profile.
    """
    profile = into if into is not None else StageProfile()
    token = _ACTIVE.set(profile)
    try:
        yield profile
    finally:
        _ACTIVE.reset(token)
