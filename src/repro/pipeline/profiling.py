"""Per-stage timing and counter instrumentation.

The pipeline's stages -- ``extract`` (geometry to parasitics),
``invert`` (the full ``O(N^3)`` inversion), ``sparsify`` (truncation or
window solves), ``stamp`` (netlist assembly), ``solve`` (AC / transient
linear solves) -- are wrapped in :func:`stage` context managers at the
point where the work happens.  When nothing is collecting, a stage is a
few-nanosecond no-op, so the instrumentation can live permanently inside
the hot paths.

Collection is scoped with :func:`collect`::

    with collect() as profile:
        parasitics = extract(aligned_bus(64))
        built = build_model(gw_spec(8), parasitics)
    print(profile.to_table())

The active profile is a :class:`contextvars.ContextVar`, so collection
composes with threads; worker processes each collect their own profile
and ship it back pickled (see :mod:`repro.pipeline.parallel`).
"""

from __future__ import annotations

import json
import resource
import sys
import time
import tracemalloc
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Sequence

#: ``ru_maxrss`` is kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


def max_rss_bytes() -> int:
    """The process's lifetime peak resident set size, in bytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_UNIT

#: The stage names the core pipeline emits (others are allowed; these are
#: the ones surfaced by ``--profile`` and asserted by the regression
#: tests).
CORE_STAGES = ("extract", "invert", "sparsify", "stamp", "solve")


@dataclass
class StageProfile:
    """Accumulated wall-clock seconds, call counts, and event counters.

    ``seconds[name]`` is the total (inclusive) wall time spent inside
    ``stage(name)`` blocks; ``calls[name]`` how many blocks ran;
    ``counters[name]`` free-form event tallies (cache hits, LU
    factorizations, swept frequency points, ...).

    Memory is tracked per stage when available: ``max_rss_bytes[name]``
    is the process's peak resident set observed at any exit of
    ``stage(name)`` (a high-water mark -- it only ever grows within a
    process, so it answers "had the process ever been this big by the
    time the stage finished", which is the dense-vs-hierarchical
    comparison the bench suite reports); ``peak_alloc_bytes[name]`` is
    the peak Python-visible allocation *inside* the stage, collected
    only while :mod:`tracemalloc` is tracing (``repro --profile`` turns
    it on) and attributed to the innermost active stage.
    """

    seconds: Dict[str, float] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    max_rss_bytes: Dict[str, int] = field(default_factory=dict)
    peak_alloc_bytes: Dict[str, int] = field(default_factory=dict)
    #: Per-stage maximum over any single worker process's total, filled
    #: by :meth:`merge_workers`.  Aggregate ``seconds`` answers "how much
    #: CPU did the stage burn", the worker max answers "how long did the
    #: slowest worker hold the stage" -- the wall-clock-relevant number
    #: for a parallel stage.
    worker_max_seconds: Dict[str, float] = field(default_factory=dict)

    def add_time(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    def add_counter(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_memory(
        self, name: str, rss_bytes: int, alloc_bytes: Optional[int] = None
    ) -> None:
        """Record memory high-water marks of one stage exit (max-merge)."""
        self.max_rss_bytes[name] = max(
            self.max_rss_bytes.get(name, 0), int(rss_bytes)
        )
        if alloc_bytes is not None:
            self.peak_alloc_bytes[name] = max(
                self.peak_alloc_bytes.get(name, 0), int(alloc_bytes)
            )

    def merge(self, other: "StageProfile") -> None:
        """Fold another profile (e.g. from a worker process) into this one."""
        for name, value in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + value
        for name, value in other.calls.items():
            self.calls[name] = self.calls.get(name, 0) + value
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.max_rss_bytes.items():
            self.max_rss_bytes[name] = max(self.max_rss_bytes.get(name, 0), value)
        for name, value in other.peak_alloc_bytes.items():
            self.peak_alloc_bytes[name] = max(
                self.peak_alloc_bytes.get(name, 0), value
            )
        for name, value in other.worker_max_seconds.items():
            self.worker_max_seconds[name] = max(
                self.worker_max_seconds.get(name, 0.0), value
            )

    def merge_workers(self, profiles: "Sequence[StageProfile]") -> None:
        """Fold the profiles shipped back by a pool of worker processes.

        Seconds/calls/counters aggregate (total CPU across the pool)
        exactly like :meth:`merge`, but each stage additionally records
        the *maximum single-worker* total in ``worker_max_seconds`` --
        with ``J`` workers an aggregate of ``J x t`` seconds and a
        worker max of ``t`` is a perfectly balanced stage, while a
        worker max close to the aggregate means one straggler owned the
        stage.  ``repro --profile`` surfaces both.
        """
        for profile in profiles:
            if profile is None:
                continue
            self.merge(profile)
            for name, value in profile.seconds.items():
                self.worker_max_seconds[name] = max(
                    self.worker_max_seconds.get(name, 0.0), value
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Mapping]:
        ordered = sorted(self.seconds, key=lambda n: -self.seconds[n])
        stages = {}
        for name in ordered:
            entry: Dict[str, object] = {
                "seconds": self.seconds[name],
                "calls": self.calls.get(name, 0),
            }
            if name in self.max_rss_bytes:
                entry["max_rss_bytes"] = self.max_rss_bytes[name]
            if name in self.peak_alloc_bytes:
                entry["peak_alloc_bytes"] = self.peak_alloc_bytes[name]
            if name in self.worker_max_seconds:
                entry["worker_max_seconds"] = self.worker_max_seconds[name]
            stages[name] = entry
        return {
            "stages": stages,
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def to_table(self) -> str:
        """Human-readable stage table for terminal output."""
        show_memory = bool(self.max_rss_bytes or self.peak_alloc_bytes)
        show_workers = bool(self.worker_max_seconds)
        header = "stage        seconds  calls"
        if show_workers:
            header += "  worker_max"
        if show_memory:
            header += "   max_rss     peak_alloc"
        lines = [header]
        for name in sorted(self.seconds, key=lambda n: -self.seconds[n]):
            line = (
                f"{name:<12} {self.seconds[name]:>7.4f}  {self.calls.get(name, 0):>5d}"
            )
            if show_workers:
                worker = self.worker_max_seconds.get(name)
                text = "-" if worker is None else f"{worker:.4f}"
                line += f"  {text:>10}"
            if show_memory:
                rss = self.max_rss_bytes.get(name)
                alloc = self.peak_alloc_bytes.get(name)
                line += f"  {_format_bytes(rss):>8}  {_format_bytes(alloc):>13}"
            lines.append(line)
        for name, value in sorted(self.counters.items()):
            lines.append(f"{name:<12} {value:>13d}")
        return "\n".join(lines)


def _format_bytes(value: Optional[int]) -> str:
    if value is None:
        return "-"
    if value >= 1 << 30:
        return f"{value / (1 << 30):.2f}G"
    if value >= 1 << 20:
        return f"{value / (1 << 20):.1f}M"
    return f"{value / 1024:.0f}K"


_ACTIVE: ContextVar[Optional[StageProfile]] = ContextVar(
    "repro_stage_profile", default=None
)


def active_profile() -> Optional[StageProfile]:
    """The profile currently collecting, or ``None``."""
    return _ACTIVE.get()


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time a pipeline stage (no-op unless a profile is collecting).

    Timing is inclusive: a ``solve`` stage nested inside a wider block
    contributes to both.  The core stages are disjoint by construction.
    """
    profile = _ACTIVE.get()
    if profile is None:
        yield
        return
    tracing = tracemalloc.is_tracing()
    if tracing:
        # Peak attribution is per innermost stage: resetting the peak
        # here means an enclosing stage's recorded peak covers only the
        # allocation between its own entry/exit and its children's
        # boundaries.  The high-water mark of the whole run is still
        # exact -- it is the max over all stages.
        tracemalloc.reset_peak()
    start = time.perf_counter()
    try:
        yield
    finally:
        profile.add_time(name, time.perf_counter() - start)
        alloc_peak = tracemalloc.get_traced_memory()[1] if tracing else None
        profile.add_memory(name, max_rss_bytes(), alloc_peak)


def add_counter(name: str, amount: int = 1) -> None:
    """Bump an event counter (no-op unless a profile is collecting)."""
    profile = _ACTIVE.get()
    if profile is not None:
        profile.add_counter(name, amount)


@contextmanager
def collect(
    into: Optional[StageProfile] = None,
) -> Iterator[StageProfile]:
    """Collect stage timings for the duration of the block.

    Nested ``collect`` blocks shadow the outer one (the inner block's
    stages are not double-counted); pass ``into`` to accumulate several
    blocks into one profile.
    """
    profile = into if into is not None else StageProfile()
    token = _ACTIVE.set(profile)
    try:
        yield profile
    finally:
        _ACTIVE.reset(token)
