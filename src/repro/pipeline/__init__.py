"""Experiment pipeline: caching, parallel fan-out, stage profiling.

The production-scale plumbing shared by the CLI, the experiment drivers,
and the benchmark harness:

- :mod:`repro.pipeline.cache` -- content-addressed on-disk cache for
  extracted parasitics and built models (explicit invalidation, bit-exact
  warm hits);
- :mod:`repro.pipeline.hashing` -- stable content hashes the cache keys
  are built from;
- :mod:`repro.pipeline.parallel` -- process-pool ``parallel_map`` with
  deterministic result ordering;
- :mod:`repro.pipeline.profiling` -- per-stage wall-clock timing and
  event counters (``extract`` / ``invert`` / ``sparsify`` / ``stamp`` /
  ``solve``), surfaced by ``repro ... --profile``.
"""

from repro.pipeline.hashing import stable_hash, system_fingerprint
from repro.pipeline.parallel import default_jobs, parallel_map
from repro.pipeline.profiling import (
    CORE_STAGES,
    StageProfile,
    active_profile,
    add_counter,
    collect,
    stage,
)

# The cache symbols are loaded lazily: repro.pipeline.cache imports the
# extraction layer, which itself imports repro.pipeline.profiling -- an
# eager import here would turn that into a genuine circular import when
# the extraction layer is imported first.
_CACHE_EXPORTS = (
    "PipelineCache",
    "cached_extract",
    "resolve_cache",
    "default_cache_dir",
    "parasitics_key",
    "parasitics_fingerprint",
    "CACHE_VERSION",
    "CACHE_DIR_ENV",
)


def __getattr__(name: str):
    if name in _CACHE_EXPORTS:
        from repro.pipeline import cache

        return getattr(cache, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PipelineCache",
    "cached_extract",
    "resolve_cache",
    "default_cache_dir",
    "parasitics_key",
    "parasitics_fingerprint",
    "CACHE_VERSION",
    "CACHE_DIR_ENV",
    "stable_hash",
    "system_fingerprint",
    "parallel_map",
    "default_jobs",
    "StageProfile",
    "collect",
    "stage",
    "add_counter",
    "active_profile",
    "CORE_STAGES",
]
