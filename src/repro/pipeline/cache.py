"""Content-addressed on-disk cache for extraction and model building.

Every experiment driver used to re-extract the partial inductance matrix
and rebuild its models from scratch on each invocation.  This cache
makes those stages reusable across runs:

- **Keys** are content hashes (:mod:`repro.pipeline.hashing`) of the
  geometry fingerprint plus every option that influences the result,
  prefixed with a format version -- changing either produces a new key,
  so entries never go stale silently.  Bump :data:`CACHE_VERSION`
  whenever the *meaning* of stored values changes (new extraction
  physics, new model semantics).
- **Values** are pickles, written atomically (temp file + rename) so a
  crashed run can never leave a truncated entry behind.
- **Layout**: ``<root>/<kind>/<key[:2]>/<key>.pkl`` -- one file per
  entry, fanned out over 256 subdirectories.
- **Invalidation** is explicit: :meth:`PipelineCache.clear` (also
  surfaced as ``repro cache clear``), or simply delete the directory.
  ``--no-cache`` bypasses the cache entirely.

Loading a pickle returns bit-exact copies of the stored numpy arrays,
which is what makes the warm-cache equivalence guarantee ("cached
results are bitwise-identical to cold builds") hold by construction.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, TypeVar

import numpy as np

from repro.extraction.capacitance import CapacitanceModel
from repro.extraction.constants import COPPER_RESISTIVITY
from repro.extraction.hierarchical import DEFAULT_CONFIG, HierarchicalConfig, LazyInductance
from repro.extraction.parasitics import Parasitics, extract
from repro.geometry.system import FilamentSystem
from repro.pipeline.hashing import stable_hash, system_fingerprint
from repro.pipeline.profiling import add_counter

#: Format version prefixed into every key.  Bump to invalidate all
#: existing entries after a semantic change to cached values.
#: v2: Circuit pickles changed layout (columnar element stores).
#: v3: Parasitics pickles changed layout (lazy derived full matrix,
#:     hierarchical operator blocks).
CACHE_VERSION = 3

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

T = TypeVar("T")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, or ``~/.cache/repro-pipeline``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pipeline"


@dataclass
class CacheStats:
    """Hit/miss/write tallies of one :class:`PipelineCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0


@dataclass
class PipelineCache:
    """A content-addressed pickle store under one root directory.

    The object is cheap and picklable (it carries only the root path and
    process-local stats), so worker processes can reopen the same store.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    # Raw store
    # ------------------------------------------------------------------
    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def get(self, kind: str, key: str) -> Optional[Any]:
        """The stored value, or ``None`` on a miss (or unreadable entry)."""
        path = self._path(kind, key)
        # Any unpickling failure is a miss: a truncated or corrupted
        # entry raises whatever the garbage bytes decode to (ValueError,
        # UnpicklingError, EOFError, ImportError, ...), and the store
        # must recompute rather than crash.  The bad file is evicted so
        # it is rewritten by the recompute instead of failing every
        # future lookup of the same key.
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            add_counter("cache_misses")
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            else:
                self.stats.evictions += 1
                add_counter("cache_evictions")
            self.stats.misses += 1
            add_counter("cache_misses")
            return None
        self.stats.hits += 1
        add_counter("cache_hits")
        return value

    def put(self, kind: str, key: str, value: Any) -> None:
        """Store a value atomically (temp file + rename)."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        add_counter("cache_writes")

    def fetch(self, kind: str, key: str, builder: Callable[[], T]) -> T:
        """The cached value, building and storing it on a miss."""
        value = self.get(kind, key)
        if value is None:
            value = builder()
            self.put(kind, key, value)
        return value

    # ------------------------------------------------------------------
    # Inspection and invalidation
    # ------------------------------------------------------------------
    def entries(self, kind: Optional[str] = None) -> Dict[str, int]:
        """``{kind: entry count}`` for one kind or the whole store."""
        counts: Dict[str, int] = {}
        if not self.root.is_dir():
            return counts
        kinds = [kind] if kind else sorted(
            p.name for p in self.root.iterdir() if p.is_dir()
        )
        for name in kinds:
            counts[name] = len(list((self.root / name).glob("*/*.pkl")))
        return counts

    def size_bytes(self) -> int:
        """Total bytes of all stored entries."""
        if not self.root.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.root.glob("*/*/*.pkl"))

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete entries (one kind, or everything); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        pattern = f"{kind}/*/*.pkl" if kind else "*/*/*.pkl"
        for path in self.root.glob(pattern):
            path.unlink()
            removed += 1
        return removed


def resolve_cache(
    cache_dir: "Optional[str | Path]" = None, enabled: bool = True
) -> Optional[PipelineCache]:
    """CLI helper: a cache at the given (or default) root, or ``None``."""
    if not enabled:
        return None
    return PipelineCache(Path(cache_dir) if cache_dir else default_cache_dir())


# ----------------------------------------------------------------------
# Cached pipeline stages
# ----------------------------------------------------------------------
def parasitics_key(
    system: FilamentSystem,
    resistivity: float,
    frequency: float,
    capacitance_model: CapacitanceModel,
    gmd_correction: bool,
    method: str = "dense",
    hierarchical: Optional[HierarchicalConfig] = None,
) -> str:
    """Cache key of one extraction run.

    ``method``/``hierarchical`` participate in the key because they
    change the stored representation (dense ndarray blocks vs
    hierarchical operators with a given cutoff); the dense key is
    unchanged relative to the method-less signature.
    """
    parts: list = [
        "parasitics",
        CACHE_VERSION,
        system_fingerprint(system),
        resistivity,
        frequency,
        capacitance_model,
        gmd_correction,
    ]
    if method != "dense":
        parts.append(method)
        parts.append(hierarchical if hierarchical is not None else DEFAULT_CONFIG)
    return stable_hash(*parts)


def cached_extract(
    system: FilamentSystem,
    cache: Optional[PipelineCache] = None,
    resistivity: float = COPPER_RESISTIVITY,
    frequency: float = 0.0,
    capacitance_model: Optional[CapacitanceModel] = None,
    gmd_correction: bool = True,
    method: str = "dense",
    hierarchical: Optional[HierarchicalConfig] = None,
    jobs: Optional[int] = None,
) -> Parasitics:
    """:func:`repro.extraction.parasitics.extract` behind the cache.

    With ``cache=None`` this is exactly ``extract(...)``; with a cache,
    a warm hit skips extraction entirely and returns a bit-exact copy of
    the cold run's output.  ``jobs`` (parallel hierarchical assembly)
    deliberately does *not* enter the key: the parallel build is
    bit-identical to the serial one, so any worker count may serve any
    other's cached entry.
    """
    model = capacitance_model if capacitance_model is not None else CapacitanceModel()

    def build() -> Parasitics:
        return extract(
            system,
            resistivity=resistivity,
            frequency=frequency,
            capacitance_model=model,
            gmd_correction=gmd_correction,
            method=method,
            hierarchical=hierarchical,
            jobs=jobs,
        )

    if cache is None:
        return build()
    key = parasitics_key(
        system,
        resistivity,
        frequency,
        model,
        gmd_correction,
        method=method,
        hierarchical=hierarchical,
    )
    return cache.fetch("parasitics", key, build)


def parasitics_fingerprint(parasitics: Parasitics) -> str:
    """Content hash of extracted parasitics (for model-level keys).

    Hashes the numeric arrays themselves, so a model cached against one
    extraction is reused only when the numbers are bit-identical --
    regardless of which options produced them.  Index lists and the
    coupling dict are packed into arrays first: this runs on every warm
    model hit, and element-wise traversal of thousand-entry containers
    would otherwise rival the pickle load itself.  The full ``(n, n)``
    matrix is *not* hashed -- it is a derived view of the blocks, and
    pulling it into the hash would materialize it for hierarchical
    extractions; operator blocks contribute their flat storage arrays
    instead.
    """
    blocks = {
        axis.name: (
            np.asarray(indices, dtype=np.int64),
            block.fingerprint_payload()
            if isinstance(block, LazyInductance)
            else block,
        )
        for axis, (indices, block) in parasitics.inductance_blocks.items()
    }
    pairs = sorted(parasitics.coupling_capacitance)
    coupling_pairs = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
    coupling_values = np.asarray(
        [parasitics.coupling_capacitance[pair] for pair in pairs], dtype=np.float64
    )
    return stable_hash(
        system_fingerprint(parasitics.system),
        blocks,
        parasitics.resistance,
        parasitics.ground_capacitance,
        coupling_pairs,
        coupling_values,
    )
