"""Extraction facade: one call from geometry to a full parasitic set."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.extraction.capacitance import CapacitanceModel, extract_capacitances
from repro.extraction.constants import COPPER_RESISTIVITY
from repro.extraction.inductance import inductance_blocks
from repro.extraction.resistance import extract_resistances
from repro.geometry.filament import Axis
from repro.geometry.system import FilamentSystem
from repro.pipeline.profiling import add_counter, stage


@dataclass
class Parasitics:
    """Extracted parasitics of a filament system.

    Attributes
    ----------
    system:
        The geometry the parasitics were extracted from.
    inductance:
        Full partial inductance matrix, henries, shape (n, n); zero between
        orthogonal filaments.
    inductance_blocks:
        ``{axis: (filament indices, dense L block)}`` -- the per-direction
        matrices the VPEC inversion operates on.
    resistance:
        Per-filament series resistance, ohms, shape (n,).
    ground_capacitance:
        Per-filament capacitance to ground, farads, shape (n,).
    coupling_capacitance:
        ``{(i, j): C}`` adjacent-pair coupling capacitances, farads.
    """

    system: FilamentSystem
    inductance: np.ndarray
    inductance_blocks: Dict[Axis, Tuple[List[int], np.ndarray]]
    resistance: np.ndarray
    ground_capacitance: np.ndarray
    coupling_capacitance: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.system)
        if self.inductance.shape != (n, n):
            raise ValueError("inductance matrix shape does not match the system")
        if self.resistance.shape != (n,) or self.ground_capacitance.shape != (n,):
            raise ValueError("per-filament arrays must have one entry per filament")

    def validate(self) -> None:
        """Check every numeric array for NaN / infinity.

        Raises :class:`repro.health.errors.NonFiniteInputError` naming
        the offending quantity -- the health layer's first line of
        defense against corrupted extraction artifacts reaching the
        model builders.
        """
        from repro.health.solvers import require_finite

        require_finite(self.inductance, name="partial inductance matrix")
        for axis, (_, block) in self.inductance_blocks.items():
            require_finite(block, name=f"{axis.name}-direction inductance block")
        require_finite(self.resistance, name="resistance vector")
        require_finite(self.ground_capacitance, name="ground capacitance vector")
        values = np.array(list(self.coupling_capacitance.values()), dtype=float)
        require_finite(values, name="coupling capacitances")


def extract(
    system: FilamentSystem,
    resistivity: float = COPPER_RESISTIVITY,
    frequency: float = 0.0,
    capacitance_model: CapacitanceModel = CapacitanceModel(),
    gmd_correction: bool = True,
) -> Parasitics:
    """Extract R, L (full partial matrix), and C for a filament system.

    This is the substitute for the paper's FastHenry + FastCap-table flow:
    partial inductances from closed-form Grover/Neumann expressions,
    capacitances from the 2.5-D analytic model with adjacent-only coupling,
    resistances from geometry (optionally skin-corrected at ``frequency``).
    """
    with stage("extract"):
        add_counter("extracted_filaments", len(system))
        blocks = inductance_blocks(system, gmd_correction=gmd_correction)
        n = len(system)
        full = np.zeros((n, n))
        for indices, block in blocks.values():
            full[np.ix_(indices, indices)] = block
        ground, coupling = extract_capacitances(system, capacitance_model)
        return Parasitics(
            system=system,
            inductance=full,
            inductance_blocks=blocks,
            resistance=extract_resistances(system, resistivity, frequency),
            ground_capacitance=ground,
            coupling_capacitance=coupling,
        )
