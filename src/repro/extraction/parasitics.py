"""Extraction facade: one call from geometry to a full parasitic set."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.extraction.capacitance import CapacitanceModel, extract_capacitances
from repro.extraction.constants import COPPER_RESISTIVITY
from repro.extraction.hierarchical import (
    DEFAULT_CONFIG,
    HierarchicalConfig,
    LazyInductance,
    hierarchical_blocks,
)
from repro.extraction.inductance import inductance_blocks
from repro.extraction.resistance import extract_resistances
from repro.geometry.filament import Axis
from repro.geometry.system import FilamentSystem
from repro.pipeline.profiling import add_counter, stage


class Parasitics:
    """Extracted parasitics of a filament system.

    Attributes
    ----------
    system:
        The geometry the parasitics were extracted from.
    inductance:
        Full partial inductance matrix, henries, shape (n, n); zero between
        orthogonal filaments.  This is a *derived* view assembled lazily
        from ``inductance_blocks`` on first access (and cached), so
        holding a ``Parasitics`` does not double the inductance storage
        -- and hierarchical extractions never assemble it unless a
        dense-only consumer explicitly asks.
    inductance_blocks:
        ``{axis: (filament indices, L block)}`` -- the per-direction
        blocks the VPEC inversion operates on.  Each block is either a
        dense ndarray (``method="dense"``) or a
        :class:`~repro.extraction.hierarchical.LazyInductance` operator
        (``method="hierarchical"``).
    resistance:
        Per-filament series resistance, ohms, shape (n,).
    ground_capacitance:
        Per-filament capacitance to ground, farads, shape (n,).
    coupling_capacitance:
        ``{(i, j): C}`` adjacent-pair coupling capacitances, farads.
    """

    def __init__(
        self,
        system: FilamentSystem,
        inductance: Optional[np.ndarray] = None,
        inductance_blocks: Optional[
            Dict[Axis, Tuple[List[int], Any]]
        ] = None,
        resistance: Optional[np.ndarray] = None,
        ground_capacitance: Optional[np.ndarray] = None,
        coupling_capacitance: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> None:
        if inductance_blocks is None:
            raise TypeError("Parasitics requires inductance_blocks")
        if resistance is None or ground_capacitance is None:
            raise TypeError(
                "Parasitics requires resistance and ground_capacitance"
            )
        self.system = system
        self.inductance_blocks = inductance_blocks
        self.resistance = resistance
        self.ground_capacitance = ground_capacitance
        self.coupling_capacitance = (
            {} if coupling_capacitance is None else coupling_capacitance
        )
        self._inductance: Optional[np.ndarray] = None
        self._inductance_explicit = False
        if inductance is not None:
            self.inductance = inductance
        n = len(self.system)
        if self.resistance.shape != (n,) or self.ground_capacitance.shape != (n,):
            raise ValueError("per-filament arrays must have one entry per filament")

    # ------------------------------------------------------------------
    # Lazy full matrix
    # ------------------------------------------------------------------
    @property
    def inductance(self) -> np.ndarray:
        """Full partial inductance matrix, assembled on first access.

        For the common single-axis dense extraction the property aliases
        the axis block directly (zero copy, preserving the shared-memory
        zero-copy guarantee); otherwise the blocks are scattered into a
        freshly assembled ``(n, n)`` array, materializing hierarchical
        operators if present.  The result is cached on the instance but
        dropped on pickling unless it was explicitly assigned.
        """
        if self._inductance is None:
            self._inductance = self._assemble_full()
        return self._inductance

    @inductance.setter
    def inductance(self, value: np.ndarray) -> None:
        n = len(self.system)
        if value.shape != (n, n):
            raise ValueError("inductance matrix shape does not match the system")
        self._inductance = value
        self._inductance_explicit = True

    @property
    def has_dense_inductance(self) -> bool:
        """True when the full matrix has already been materialized."""
        return self._inductance is not None

    @property
    def is_hierarchical(self) -> bool:
        """True when any axis block is a lazy hierarchical operator."""
        return any(
            isinstance(block, LazyInductance)
            for _, block in self.inductance_blocks.values()
        )

    def _assemble_full(self) -> np.ndarray:
        n = len(self.system)
        blocks = list(self.inductance_blocks.values())
        if len(blocks) == 1:
            indices, block = blocks[0]
            if (
                isinstance(block, np.ndarray)
                and len(indices) == n
                and indices == list(range(n))
            ):
                return block
        add_counter("parasitics_dense_assemblies")
        full = np.zeros((n, n))
        for indices, block in blocks:
            full[np.ix_(indices, indices)] = np.asarray(block)
        return full

    # ------------------------------------------------------------------
    # Health / serialization
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every numeric array for NaN / infinity.

        Raises :class:`repro.health.errors.NonFiniteInputError` naming
        the offending quantity -- the health layer's first line of
        defense against corrupted extraction artifacts reaching the
        model builders.  Blocks are checked in place (hierarchical
        operators validate their stored factors), so validation never
        forces the full matrix into existence.
        """
        from repro.health.solvers import require_finite

        for axis, (_, block) in self.inductance_blocks.items():
            name = f"{axis.name}-direction inductance block"
            if isinstance(block, LazyInductance):
                block.validate_finite(name)
            else:
                require_finite(block, name=name)
        if self._inductance_explicit and self._inductance is not None:
            require_finite(self._inductance, name="partial inductance matrix")
        require_finite(self.resistance, name="resistance vector")
        require_finite(self.ground_capacitance, name="ground capacitance vector")
        values = np.array(list(self.coupling_capacitance.values()), dtype=float)
        require_finite(values, name="coupling capacitances")

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        # The derived cache is reassembled on demand; only an explicitly
        # assigned full matrix (baseline patches) survives pickling.
        if not state.get("_inductance_explicit"):
            state["_inductance"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:
        kind = "hierarchical" if self.is_hierarchical else "dense"
        return (
            f"Parasitics(system={self.system.name!r}, n={len(self.system)}, "
            f"blocks={kind})"
        )


def extract(
    system: FilamentSystem,
    resistivity: float = COPPER_RESISTIVITY,
    frequency: float = 0.0,
    capacitance_model: CapacitanceModel = CapacitanceModel(),
    gmd_correction: bool = True,
    method: str = "dense",
    hierarchical: Optional[HierarchicalConfig] = None,
    jobs: Optional[int] = None,
) -> Parasitics:
    """Extract R, L, and C for a filament system.

    This is the substitute for the paper's FastHenry + FastCap-table flow:
    partial inductances from closed-form Grover/Neumann expressions,
    capacitances from the 2.5-D analytic model with adjacent-only coupling,
    resistances from geometry (optionally skin-corrected at ``frequency``).

    ``method`` selects the inductance representation: ``"dense"`` builds
    the per-axis ndarray blocks (full pair evaluation; the full matrix
    itself stays a lazy view), ``"hierarchical"`` builds block low-rank
    :class:`~repro.extraction.hierarchical.LazyInductance` operators --
    the O(N b^2 + N log N) path that scales past 100k filaments.
    ``hierarchical`` overrides the operator tuning (leaf size,
    admissibility ``eta``, ACA ``cutoff``, rank cap).  ``jobs > 1``
    assembles hierarchical blocks through the shared-memory process
    pool; the result is bit-identical to the serial build, so the
    worker count never enters cache keys.
    """
    if method not in ("dense", "hierarchical"):
        raise ValueError(f"unknown extraction method: {method!r}")
    with stage("extract"):
        add_counter("extracted_filaments", len(system))
        blocks: Dict[Axis, Tuple[List[int], Any]]
        if method == "hierarchical":
            config = hierarchical if hierarchical is not None else DEFAULT_CONFIG
            blocks = dict(
                hierarchical_blocks(
                    system,
                    gmd_correction=gmd_correction,
                    config=config,
                    jobs=jobs,
                )
            )
        else:
            blocks = dict(inductance_blocks(system, gmd_correction=gmd_correction))
        ground, coupling = extract_capacitances(system, capacitance_model)
        return Parasitics(
            system=system,
            inductance_blocks=blocks,
            resistance=extract_resistances(system, resistivity, frequency),
            ground_capacitance=ground,
            coupling_capacitance=coupling,
        )
