"""Volume-filament decomposition: skin and proximity effects.

Section II-C / III-C of the paper: "the conductor is volume discretized
according to skin depth" and "when the frequency is beyond 10 GHz, the
volume filament [5] ... decomposition can be applied to consider the
skin and proximity effects."  This module implements that FastHenry-style
analysis: a conductor's cross section is subdivided into parallel
sub-filaments, each with its own resistance and partial self/mutual
inductance, and the frequency-dependent terminal impedance follows from
solving the filament impedance system

    (R + j w L) i = v * 1,        Z(w) = v / sum(i)

(all sub-filaments share the two end terminals, so they see the same
voltage and their currents add).  At low frequency the current spreads
uniformly (DC resistance); at high frequency it crowds into the rim
(R ~ sqrt(f), L drops toward the external inductance) -- the classical
skin-effect signature, which the closed-form rim model in
:mod:`repro.extraction.resistance` approximates and the tests
cross-validate against this reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.constants import COPPER_RESISTIVITY
from repro.extraction.inductance import partial_inductance_matrix
from repro.extraction.resistance import dc_resistance
from repro.geometry.discretize import skin_depth
from repro.geometry.filament import Filament
from repro.geometry.system import FilamentSystem


def subdivide_cross_section(
    filament: Filament, across_width: int, across_thickness: int
) -> List[Filament]:
    """Split a filament into a grid of parallel sub-filaments.

    The sub-filaments tile the cross section (``across_width`` columns by
    ``across_thickness`` rows), all spanning the parent's full length --
    the FastHenry volume-filament decomposition.  Wire/segment indices
    are inherited; callers managing connectivity should treat the group
    as electrically parallel.
    """
    if across_width < 1 or across_thickness < 1:
        raise ValueError("subdivision counts must be >= 1")
    sub_w = filament.width / across_width
    sub_t = filament.thickness / across_thickness
    w_axis, t_axis = {
        0: (1, 2),
        1: (0, 2),
        2: (0, 1),
    }[filament.axis.value]
    result: List[Filament] = []
    for iw in range(across_width):
        for it in range(across_thickness):
            origin = list(filament.origin)
            origin[w_axis] += iw * sub_w
            origin[t_axis] += it * sub_t
            result.append(
                replace(
                    filament,
                    origin=tuple(origin),
                    width=sub_w,
                    thickness=sub_t,
                )
            )
    return result


def counts_for_skin_depth(
    filament: Filament,
    frequency: float,
    resistivity: float = COPPER_RESISTIVITY,
    max_per_dimension: int = 8,
) -> Tuple[int, int]:
    """Sub-filament counts so each is at most one skin depth across."""
    if frequency <= 0:
        return (1, 1)
    delta = skin_depth(resistivity, frequency)
    across_w = min(max_per_dimension, max(1, int(np.ceil(filament.width / delta))))
    across_t = min(
        max_per_dimension, max(1, int(np.ceil(filament.thickness / delta)))
    )
    return across_w, across_t


@dataclass(frozen=True)
class ConductorImpedance:
    """Frequency-dependent series impedance of one conductor.

    Attributes
    ----------
    frequencies:
        Sweep points, Hz.
    resistance:
        Effective series resistance Re(Z), ohms.
    inductance:
        Effective series inductance Im(Z) / w, henries.
    sub_filaments:
        Number of volume filaments used.
    """

    frequencies: np.ndarray
    resistance: np.ndarray
    inductance: np.ndarray
    sub_filaments: int

    def at(self, frequency: float) -> complex:
        """Interpolated impedance at one frequency."""
        r = float(np.interp(frequency, self.frequencies, self.resistance))
        l = float(np.interp(frequency, self.frequencies, self.inductance))
        return r + 1j * 2.0 * np.pi * frequency * l


def conductor_impedance(
    filament: Filament,
    frequencies: "np.ndarray | List[float]",
    resistivity: float = COPPER_RESISTIVITY,
    across_width: Optional[int] = None,
    across_thickness: Optional[int] = None,
    neighbors: Tuple[Filament, ...] = (),
) -> ConductorImpedance:
    """Skin/proximity-aware impedance of a conductor via volume filaments.

    Parameters
    ----------
    filament:
        The conductor to analyze.
    frequencies:
        Sweep points in Hz (positive).
    across_width, across_thickness:
        Cross-section subdivision; defaults to the skin-depth rule at the
        highest sweep frequency.
    neighbors:
        Other conductors whose sub-filaments are shorted (forming return
        or co-current paths is the caller's business; here they are
        driven with zero volts, modeling grounded neighbors whose induced
        eddy currents produce the *proximity* effect on the victim).
    """
    freqs = np.asarray(list(frequencies), dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0):
        raise ValueError("frequencies must be positive")
    if across_width is None or across_thickness is None:
        auto_w, auto_t = counts_for_skin_depth(
            filament, float(freqs.max()), resistivity
        )
        across_width = across_width or auto_w
        across_thickness = across_thickness or auto_t

    subs = subdivide_cross_section(filament, across_width, across_thickness)
    own = len(subs)
    all_subs = [f.with_wire(0, s) for s, f in enumerate(subs)]
    for k, neighbor in enumerate(neighbors):
        n_w, n_t = counts_for_skin_depth(neighbor, float(freqs.max()), resistivity)
        all_subs.extend(
            f.with_wire(k + 1, s)
            for s, f in enumerate(subdivide_cross_section(neighbor, n_w, n_t))
        )
    system = FilamentSystem(all_subs, name="volume")
    L = partial_inductance_matrix(system)
    r_diag = np.array([dc_resistance(f, resistivity) for f in all_subs])

    resistance = np.empty(freqs.size)
    inductance = np.empty(freqs.size)
    ones = np.zeros(len(all_subs), dtype=complex)
    ones[:own] = 1.0
    for k, f in enumerate(freqs):
        omega = 2.0 * np.pi * f
        z_matrix = np.diag(r_diag).astype(complex) + 1j * omega * L
        currents = np.linalg.solve(z_matrix, ones)
        total = np.sum(currents[:own])
        z_eff = 1.0 / total
        resistance[k] = z_eff.real
        inductance[k] = z_eff.imag / omega
    return ConductorImpedance(
        frequencies=freqs,
        resistance=resistance,
        inductance=inductance,
        sub_filaments=own,
    )
