"""Closed-form partial inductance extraction (the FastHenry substitute).

The PEEC model assigns every filament a *partial self inductance* and every
pair of parallel filaments a *partial mutual inductance* -- the inductance
of the virtual loop each conductor forms with infinity.  FastHenry computes
these by multipole-accelerated volume integration; for the rectilinear
filaments of the paper's experiments the same quantities have classical
closed forms (Grover, "Inductance Calculations", 1962 -- the paper's
reference [22]; Ruehli 1972):

- self inductance of a rectangular bar:
  ``L = (mu0 l / 2 pi) [ ln(2l/(w+t)) + 1/2 + 0.2235 (w+t)/l ]``;
- mutual inductance of two parallel filaments from the Neumann double
  integral, with a geometric-mean-distance (GMD) correction for the finite
  cross section of closely spaced equal-width conductors;
- zero mutual between orthogonal filaments (the ``k = x, y, z`` components
  decouple, which is why the paper treats each direction separately).

Assembly is organized around deduplication rather than per-pair loops:

- *Lattice fast path*: when an axis group is a rigid translation lattice
  (identical cross sections on uniformly spaced coordinates -- every
  regular bus), the mutual inductance depends only on the integer
  displacement between grid positions.  One table of at most ``m`` unique
  displacements is evaluated and fanned out to all ``m^2`` entries with a
  single fancy-indexed gather, so a 1024-conductor bus assembles in
  milliseconds.
- *General path*: irregular geometries evaluate the upper triangle once
  (mirrored exactly, never the full ``m x m`` grid) with collinear pairs
  masked out *before* the Neumann evaluation instead of being computed at
  a placeholder distance and discarded.
- *GMD memoization*: close-pair GMD quadratures are deduplicated by a
  quantized ``(section_a, section_b, off_w, off_t)`` key ahead of
  evaluation, resolved through a module-level LRU cache that persists
  across extractions (``gmd_unique_evals`` / ``gmd_cache_hits`` profiling
  counters record the traffic), and scattered back with fancy indexing.

The kernels are numerically equivalent to evaluating every pair with the
scalar formulas below: bit-for-bit on the general path, and to better
than 1e-12 relative on the lattice path (whose representative
displacements differ from per-pair coordinate differences only by
floating-point rounding of the grid arithmetic; the lattice gate
:data:`_LATTICE_RTOL` is chosen so that bound holds).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.extraction.constants import MU_0
from repro.geometry.filament import Axis
from repro.geometry.system import FilamentSystem
from repro.pipeline.profiling import add_counter

#: Lateral distances below this (meters) are treated as collinear.
_COLLINEAR_TOL = 1e-12

ArrayLike = Union[float, np.ndarray]


def self_inductance_bar(
    length: ArrayLike, width: ArrayLike, thickness: ArrayLike
) -> ArrayLike:
    """Partial self inductance of a rectangular bar, henries.

    The Grover / Ruehli approximation, accurate to ~1% for bars longer
    than their cross-section dimensions (all the paper's structures are).
    Accepts scalars or equal-shaped arrays (the batched form assembles
    the matrix diagonal in one call).
    """
    length_arr = np.asarray(length, dtype=float)
    width_arr = np.asarray(width, dtype=float)
    thickness_arr = np.asarray(thickness, dtype=float)
    if (
        np.any(length_arr <= 0)
        or np.any(width_arr <= 0)
        or np.any(thickness_arr <= 0)
    ):
        raise ValueError("bar dimensions must be positive")
    ratio = (width_arr + thickness_arr) / length_arr
    result = (
        MU_0
        * length_arr
        / (2.0 * np.pi)
        * (np.log(2.0 / ratio) + 0.5 + 0.2235 * ratio)
    )
    if np.ndim(length) == 0 and np.ndim(width) == 0 and np.ndim(thickness) == 0:
        return float(result)
    return result


def _neumann_g(u: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Antiderivative kernel ``G(u) = u asinh(u/d) - sqrt(u^2 + d^2)``.

    ``G''(u) = 1 / sqrt(u^2 + d^2)``, so the Neumann double integral of two
    parallel filaments is a four-term combination of ``G``.  Even in ``u``.
    """
    return u * np.arcsinh(u / d) - np.hypot(u, d)


def mutual_parallel_filaments(
    length_a: float,
    length_b: float,
    lateral_distance: float,
    axial_offset: float = 0.0,
) -> float:
    """Mutual partial inductance of two parallel thin filaments, henries.

    Filament A spans ``[0, length_a]`` along the common axis; filament B
    spans ``[axial_offset, axial_offset + length_b]`` at perpendicular
    distance ``lateral_distance``.  Positive for co-directed currents.

    This is the exact Neumann-integral solution for thin filaments
    (Grover ch. 9); finite cross sections are handled by passing a GMD as
    the distance.
    """
    if lateral_distance <= _COLLINEAR_TOL:
        return mutual_collinear_filaments(length_a, length_b, axial_offset)
    result = _mutual_parallel_vec(
        np.asarray(length_a, dtype=float),
        np.asarray(length_b, dtype=float),
        np.asarray(lateral_distance, dtype=float),
        np.asarray(axial_offset, dtype=float),
    )
    return float(result)


def _mutual_parallel_vec(
    length_a: np.ndarray,
    length_b: np.ndarray,
    distance: np.ndarray,
    offset: np.ndarray,
) -> np.ndarray:
    """Vectorized Neumann mutual for parallel filaments (distance > 0)."""
    g = _neumann_g
    total = (
        g(offset + length_b, distance)
        + g(offset - length_a, distance)
        - g(offset, distance)
        - g(offset + length_b - length_a, distance)
    )
    return MU_0 / (4.0 * np.pi) * total


def mutual_collinear_filaments(
    length_a: ArrayLike, length_b: ArrayLike, axial_offset: ArrayLike
) -> ArrayLike:
    """Mutual inductance of two collinear thin filaments, henries.

    Filament A spans ``[0, length_a]``; filament B spans
    ``[axial_offset, axial_offset + length_b]`` on the same line.  The
    filaments must not overlap (a gap of zero -- abutting segments of one
    wire -- is allowed); overlapping collinear filaments have no finite
    thin-wire mutual and indicate a malformed geometry.

    Accepts scalars or equal-shaped arrays; the array form evaluates all
    collinear pairs of a block in one shot.
    """
    scalar = (
        np.ndim(length_a) == 0
        and np.ndim(length_b) == 0
        and np.ndim(axial_offset) == 0
    )
    result = _mutual_collinear_vec(
        np.asarray(length_a, dtype=float),
        np.asarray(length_b, dtype=float),
        np.asarray(axial_offset, dtype=float),
    )
    return float(result) if scalar else result


def _mutual_collinear_vec(
    length_a: np.ndarray, length_b: np.ndarray, offset: np.ndarray
) -> np.ndarray:
    """Vectorized collinear mutual (broadcasts over equal-shaped arrays)."""
    length_a, length_b, offset = np.broadcast_arrays(length_a, length_b, offset)
    gap = np.where(offset >= 0, offset - length_a, -(offset + length_b))
    limit = -_COLLINEAR_TOL * np.maximum(np.maximum(length_a, length_b), 1e-30)
    if np.any(gap < limit):
        raise ValueError("collinear filaments overlap; geometry is malformed")
    gap = np.maximum(gap, 0.0)

    def xlogx(x: np.ndarray) -> np.ndarray:
        positive = x > 0
        safe = np.where(positive, x, 1.0)
        return np.where(positive, x * np.log(safe), 0.0)

    total = (
        xlogx(length_a + length_b + gap)
        - xlogx(length_a + gap)
        - xlogx(length_b + gap)
        + xlogx(gap)
    )
    return MU_0 / (4.0 * np.pi) * total


def gmd_parallel_tapes(width: float, distance: float) -> float:
    """Geometric mean distance of two equal-width coplanar tapes.

    Grover's series for the GMD ``g`` of two parallel line segments of
    width ``w`` whose centers are ``d`` apart (d >= w, i.e. non-overlapping
    coplanar conductors)::

        ln g = ln d - (w/d)^2/12 - (w/d)^4/60 - (w/d)^6/168 - ...

    Using the GMD in place of the center distance captures the dominant
    finite-cross-section effect for closely spaced bus lines.
    """
    if distance <= 0:
        raise ValueError("distance must be positive")
    u2 = (width / distance) ** 2
    ln_g = np.log(distance) - u2 / 12.0 - u2**2 / 60.0 - u2**3 / 168.0
    return float(np.exp(ln_g))


#: Gauss-Legendre order per cross-section dimension for the numeric GMD.
_GMD_POINTS = 5

#: Pairs farther than this many max-cross-section-dimensions use the
#: centerline distance directly (the GMD correction is negligible there).
_GMD_CUTOFF = 6.0

#: Cached Gauss-Legendre rule (nodes scaled to [-1/2, 1/2]).
_GMD_NODES, _GMD_WEIGHTS = np.polynomial.legendre.leggauss(_GMD_POINTS)
_GMD_NODES = _GMD_NODES / 2.0
_GMD_WEIGHTS = _GMD_WEIGHTS / 2.0


def gmd_rectangles(
    width_a: float,
    thickness_a: float,
    width_b: float,
    thickness_b: float,
    offset_w: float,
    offset_t: float,
) -> float:
    """Geometric mean distance between two rectangular cross sections.

    ``ln g = (1 / A_a A_b) integral ln |r_a - r_b| dA_a dA_b`` evaluated
    by Gauss-Legendre quadrature; ``offset_w`` / ``offset_t`` are the
    center-to-center offsets along the width / thickness directions.

    Unlike the coplanar-tape series (:func:`gmd_parallel_tapes`), this
    handles *any* relative placement -- in particular tall, narrow
    conductors side by side, where the true GMD exceeds the centerline
    distance and a thin-filament mutual would overestimate the coupling
    (and break the diagonal dominance of ``L^-1``).
    """
    half = _GMD_NODES
    w_quad = _GMD_WEIGHTS

    ya = width_a * half
    za = thickness_a * half
    yb = offset_w + width_b * half
    zb = offset_t + thickness_b * half

    dy = ya[:, None, None, None] - yb[None, None, :, None]
    dz = za[None, :, None, None] - zb[None, None, None, :]
    log_r = 0.5 * np.log(dy**2 + dz**2)
    weight = (
        w_quad[:, None, None, None]
        * w_quad[None, :, None, None]
        * w_quad[None, None, :, None]
        * w_quad[None, None, None, :]
    )
    return float(np.exp(np.sum(weight * log_r)))


# ----------------------------------------------------------------------
# GMD memoization: quantized-key dedup + module-level LRU
# ----------------------------------------------------------------------

#: Coordinate quantum of the GMD cache key (meters): geometry matching to
#: better than a picometer shares one quadrature evaluation.
_GMD_KEY_QUANTUM = 1e12

#: Maximum number of distinct cross-section configurations kept warm
#: across extractions.  Regular layouts need a handful; the bound only
#: protects against pathological fully random geometry streams.
_GMD_CACHE_MAX = 65536

_GMD_CACHE: "OrderedDict[Tuple[int, ...], float]" = OrderedDict()


def clear_gmd_cache() -> None:
    """Drop the module-level GMD memoization (tests and cold benchmarks)."""
    _GMD_CACHE.clear()


def gmd_cache_size() -> int:
    """Number of GMD evaluations currently memoized."""
    return len(_GMD_CACHE)


def _gmd_grouped(
    width_a: np.ndarray,
    thickness_a: np.ndarray,
    width_b: np.ndarray,
    thickness_b: np.ndarray,
    off_w: np.ndarray,
    off_t: np.ndarray,
) -> np.ndarray:
    """GMDs of many close pairs, deduplicated *before* any quadrature runs.

    Pairs are grouped by the quantized ``(section_a, section_b, off_w,
    off_t)`` key (sections in canonical order -- the quadrature is
    symmetric under swapping the rectangles); each unique key is resolved
    through the module-level LRU cache, evaluating
    :func:`gmd_rectangles` once per miss with the representative (first
    occurrence) exact geometry, and the values are scattered back to all
    pairs with fancy indexing.
    """
    q = _GMD_KEY_QUANTUM
    sa_w = np.round(width_a * q).astype(np.int64)
    sa_t = np.round(thickness_a * q).astype(np.int64)
    sb_w = np.round(width_b * q).astype(np.int64)
    sb_t = np.round(thickness_b * q).astype(np.int64)
    swap = (sa_w > sb_w) | ((sa_w == sb_w) & (sa_t > sb_t))
    lo_w = np.where(swap, sb_w, sa_w)
    lo_t = np.where(swap, sb_t, sa_t)
    hi_w = np.where(swap, sa_w, sb_w)
    hi_t = np.where(swap, sa_t, sb_t)
    keys = np.stack(
        [
            lo_w,
            lo_t,
            hi_w,
            hi_t,
            np.round(off_w * q).astype(np.int64),
            np.round(off_t * q).astype(np.int64),
        ],
        axis=1,
    )
    _, first, inverse = np.unique(
        keys, axis=0, return_index=True, return_inverse=True
    )
    unique_values = np.empty(first.size)
    misses = 0
    for slot, rep in enumerate(first):
        key = tuple(int(v) for v in keys[rep])
        value = _GMD_CACHE.get(key)
        if value is None:
            value = gmd_rectangles(
                float(width_a[rep]),
                float(thickness_a[rep]),
                float(width_b[rep]),
                float(thickness_b[rep]),
                float(off_w[rep]),
                float(off_t[rep]),
            )
            if len(_GMD_CACHE) >= _GMD_CACHE_MAX:
                _GMD_CACHE.popitem(last=False)
            _GMD_CACHE[key] = value
            misses += 1
        else:
            _GMD_CACHE.move_to_end(key)
        unique_values[slot] = value
    add_counter("gmd_unique_evals", misses)
    add_counter("gmd_cache_hits", keys.shape[0] - misses)
    return unique_values[np.asarray(inverse).ravel()]


# ----------------------------------------------------------------------
# Block assembly
# ----------------------------------------------------------------------


def partial_inductance_matrix(
    system: FilamentSystem, gmd_correction: bool = True
) -> np.ndarray:
    """Full partial inductance matrix ``L`` of a filament system, henries.

    Shape ``(n, n)``, symmetric, with zero entries between orthogonal
    filaments.  Every parallel pair is included -- including collinear
    segments of the same line ("forward coupling"), matching the paper's
    experiment setting ("coupling between any pair of segments, including
    segments in a same line, is considered").

    Parameters
    ----------
    system:
        The discretized conductors.
    gmd_correction:
        Apply the tape-GMD correction to lateral distances of equal-width
        pairs (on by default; disable to get pure thin-filament coupling).
    """
    n = len(system)
    blocks = inductance_blocks(system, gmd_correction)
    if len(blocks) == 1:
        indices, block = next(iter(blocks.values()))
        if len(indices) == n and indices == list(range(n)):
            return block
    matrix = np.zeros((n, n))
    for indices, block in blocks.values():
        matrix[np.ix_(indices, indices)] = block
    return matrix


def inductance_blocks(
    system: FilamentSystem, gmd_correction: bool = True
) -> Dict[Axis, Tuple[List[int], np.ndarray]]:
    """Per-direction inductance blocks ``{axis: (indices, L_block)}``.

    The blocks are the matrices the VPEC inversion consumes: mutual
    inductance only exists between filaments sharing a current axis, so
    ``L`` is block-diagonal under this grouping.
    """
    blocks: Dict[Axis, Tuple[List[int], np.ndarray]] = {}
    for axis, indices in system.indices_by_axis().items():
        blocks[axis] = (indices, _axis_block(system, indices, axis, gmd_correction))
    return blocks


def axis_geometry(
    system: FilamentSystem, indices: List[int], axis: Axis
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-filament kernel inputs of one axis group.

    Returns ``(lengths, widths, thicknesses, starts, centers)`` where
    ``centers`` holds the two perpendicular center coordinates ordered
    (width direction, thickness direction) per the Filament orientation
    convention.  Shared by the dense assembly below and the hierarchical
    builder (:mod:`repro.extraction.hierarchical`), so both paths feed
    the Neumann/GMD kernels bit-identical inputs.
    """
    filaments = [system[i] for i in indices]
    lengths = np.array([f.length for f in filaments])
    widths = np.array([f.width for f in filaments])
    thicknesses = np.array([f.thickness for f in filaments])
    starts = np.array([f.axial_span[0] for f in filaments])
    axis_index = axis.value
    perp_axes = [k for k in range(3) if k != axis_index]
    centers = np.array([f.center for f in filaments])[:, perp_axes]
    return lengths, widths, thicknesses, starts, centers


def _axis_block(
    system: FilamentSystem,
    indices: List[int],
    axis: Axis,
    gmd_correction: bool,
) -> np.ndarray:
    lengths, widths, thicknesses, starts, centers = axis_geometry(
        system, indices, axis
    )
    m = lengths.size

    diagonal = np.asarray(
        self_inductance_bar(lengths, widths, thicknesses), dtype=float
    ).reshape(m)
    if m == 1:
        return diagonal.reshape(1, 1).copy()

    lattice = _lattice_structure(lengths, widths, thicknesses, starts, centers)
    if lattice is not None:
        block = _lattice_block(
            lattice, lengths[0], widths[0], thicknesses[0], centers, gmd_correction
        )
    else:
        block = _general_block(
            lengths, widths, thicknesses, starts, centers, gmd_correction
        )
    np.fill_diagonal(block, diagonal)
    return block


#: Relative (to the grid step) tolerance for accepting a coordinate set
#: as a uniform lattice.  Kept at the floating-point-noise scale so the
#: representative-displacement evaluation of the lattice fast path stays
#: within 1e-12 of the exact per-pair coordinate differences.
_LATTICE_RTOL = 1e-12


class _Lattice:
    """Uniform translation lattice of one axis group.

    ``codes`` are per-filament integer grid positions along (width
    direction, thickness direction, axial direction); ``deltas`` the
    per-dimension displacement tables ``u - u[0]`` built from the actual
    unique coordinate values (so a representative displacement carries the
    same bits as the per-pair coordinate differences on exactly generated
    grids, keeping threshold comparisons like the GMD cutoff consistent
    with the scalar path); ``shape`` the grid extents.  Mutual inductance
    between two lattice filaments depends only on the absolute
    displacement ``(|dky|, |dkz|, |dks|)``, which is what the table
    fan-out exploits.
    """

    __slots__ = ("codes", "deltas", "shape")

    def __init__(
        self,
        codes: np.ndarray,
        deltas: Tuple[np.ndarray, np.ndarray, np.ndarray],
        shape: Tuple[int, int, int],
    ) -> None:
        self.codes = codes
        self.deltas = deltas
        self.shape = shape


def _uniform_axis(values: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Grid codes and displacements of one coordinate, or ``None``.

    Accepts the coordinate set as a uniform lattice axis when its unique
    values form an arithmetic progression to within :data:`_LATTICE_RTOL`
    of the step.
    """
    unique = np.unique(values)
    if unique.size == 1:
        return np.zeros(values.size, dtype=np.int64), np.zeros(1)
    step = (unique[-1] - unique[0]) / (unique.size - 1)
    if step <= 0:
        return None
    ideal = unique[0] + step * np.arange(unique.size)
    if np.max(np.abs(unique - ideal)) > _LATTICE_RTOL * step:
        return None
    return np.searchsorted(unique, values), unique - unique[0]


def _lattice_structure(
    lengths: np.ndarray,
    widths: np.ndarray,
    thicknesses: np.ndarray,
    starts: np.ndarray,
    centers: np.ndarray,
) -> Optional[_Lattice]:
    """Detect a rigid translation lattice (identical bars on a grid)."""
    if (
        np.ptp(lengths) != 0.0
        or np.ptp(widths) != 0.0
        or np.ptp(thicknesses) != 0.0
    ):
        return None
    axes = []
    for values in (centers[:, 0], centers[:, 1], starts):
        result = _uniform_axis(values)
        if result is None:
            return None
        axes.append(result)
    codes = np.stack([a[0] for a in axes], axis=1)
    deltas = (axes[0][1], axes[1][1], axes[2][1])
    shape = (deltas[0].size, deltas[1].size, deltas[2].size)
    # Two filaments on one grid point would be overlapping geometry; let
    # the general path raise its malformed-geometry error.
    flat = (codes[:, 0] * shape[1] + codes[:, 1]) * shape[2] + codes[:, 2]
    if np.unique(flat).size != flat.size:
        return None
    return _Lattice(codes, deltas, shape)


def _lattice_block(
    lattice: _Lattice,
    length: float,
    width: float,
    thickness: float,
    centers: np.ndarray,
    gmd_correction: bool,
) -> np.ndarray:
    """Assemble a lattice group from its unique-displacement table.

    The table holds one mutual inductance per absolute grid displacement
    ``(|dky|, |dkz|, |dks|)`` -- at most ``m`` entries for an ``m``-point
    lattice -- evaluated with the same Neumann / GMD / collinear kernels
    as the general path; the full ``m x m`` block is then a single
    fancy-indexed gather.  (The offset enters the Neumann form evenly for
    equal-length filaments, so signed displacements fold onto absolute
    ones.)

    Displacement classes whose distance lands within float rounding of
    the GMD cutoff get a per-pair patch-up: the per-pair coordinate
    differences spread over a few ulps and can straddle the cutoff
    inside one class, so both the GMD-corrected and the raw-distance
    value are evaluated and each pair picks the side its own exact
    distance falls on -- matching the scalar path bit for bit.
    """
    ny, nz, ns = lattice.shape
    delta_y, delta_z, delta_s = lattice.deltas
    dky, dkz, dks = np.meshgrid(
        np.arange(ny), np.arange(nz), np.arange(ns), indexing="ij"
    )
    dky = dky.ravel()
    dkz = dkz.ravel()
    dks = dks.ravel()
    dy = delta_y[dky]
    dz = delta_z[dkz]
    offset = delta_s[dks]
    distance = np.hypot(dy, dz)
    table = np.zeros(dky.size)

    lateral = distance > _COLLINEAR_TOL
    eff = distance.copy()
    ambiguous = np.zeros(0, dtype=np.intp)
    if gmd_correction:
        dim = max(width, thickness)
        cutoff = _GMD_CUTOFF * dim
        close = lateral & (distance < cutoff)
        sel = np.nonzero(close)[0]
        if sel.size:
            section = np.full(sel.size, width)
            section_t = np.full(sel.size, thickness)
            eff[sel] = _gmd_grouped(
                section, section_t, section, section_t, dy[sel], dz[sel]
            )
        coord_mag = float(np.max(np.abs(centers))) if centers.size else 0.0
        boundary_tol = 64.0 * np.finfo(float).eps * (cutoff + coord_mag)
        ambiguous = np.nonzero(
            lateral & (np.abs(distance - cutoff) <= boundary_tol)
        )[0]
    full_length = np.full(dky.size, length)
    lat = np.nonzero(lateral)[0]
    table[lat] = _mutual_parallel_vec(
        full_length[lat], full_length[lat], eff[lat], offset[lat]
    )
    # Displacement (0, 0, ds > 0): collinear segments of one line.
    col = np.nonzero(~lateral & (dks > 0))[0]
    if col.size:
        table[col] = _mutual_collinear_vec(
            full_length[col], full_length[col], offset[col]
        )

    # Absolute-displacement flat index for every pair.  Dimensions of
    # extent 1 contribute nothing, so they are skipped -- a straight bus
    # needs exactly one |code_i - code_j| broadcast.
    codes = lattice.codes.astype(np.int32)
    idx: Optional[np.ndarray] = None
    for dim_index, (extent, stride) in enumerate(
        ((ny, nz * ns), (nz, ns), (ns, 1))
    ):
        if extent == 1:
            continue
        term = np.abs(codes[:, None, dim_index] - codes[None, :, dim_index])
        if stride != 1:
            term *= stride
        idx = term if idx is None else np.add(idx, term, out=idx)
    if idx is None:
        idx = np.zeros((codes.shape[0], codes.shape[0]), dtype=np.int32)
    # Fancy indexing casts non-native index dtypes on every gather; one
    # up-front cast keeps both the table gather and the boundary-mask
    # gather at native speed.
    idx = idx.astype(np.intp)
    add_counter("lattice_blocks")
    block = table[idx]

    if ambiguous.size:
        section = np.full(ambiguous.size, width)
        section_t = np.full(ambiguous.size, thickness)
        gmd_eff = _gmd_grouped(
            section, section_t, section, section_t, dy[ambiguous], dz[ambiguous]
        )
        value_close = np.zeros(table.size)
        value_far = np.zeros(table.size)
        value_close[ambiguous] = _mutual_parallel_vec(
            full_length[ambiguous],
            full_length[ambiguous],
            gmd_eff,
            offset[ambiguous],
        )
        value_far[ambiguous] = _mutual_parallel_vec(
            full_length[ambiguous],
            full_length[ambiguous],
            distance[ambiguous],
            offset[ambiguous],
        )
        amb_mask = np.zeros(table.size, dtype=bool)
        amb_mask[ambiguous] = True
        flat_members = np.flatnonzero(amb_mask[idx])
        ii, jj = np.divmod(flat_members, codes.shape[0])
        pair_distance = np.hypot(
            centers[ii, 0] - centers[jj, 0], centers[ii, 1] - centers[jj, 1]
        )
        cls = idx[ii, jj]
        block[ii, jj] = np.where(
            pair_distance < cutoff, value_close[cls], value_far[cls]
        )
    return block


def _general_block(
    lengths: np.ndarray,
    widths: np.ndarray,
    thicknesses: np.ndarray,
    starts: np.ndarray,
    centers: np.ndarray,
    gmd_correction: bool,
) -> np.ndarray:
    """Upper-triangle vectorized assembly for irregular geometries.

    Each unordered pair is evaluated exactly once and mirrored, with the
    collinear pairs masked out of the Neumann evaluation up front (the
    scalar path used to evaluate them at a placeholder distance and
    discard the result).
    """
    m = lengths.size
    rows, cols = np.triu_indices(m, k=1)
    dy = centers[rows, 0] - centers[cols, 0]
    dz = centers[rows, 1] - centers[cols, 1]
    distance = np.hypot(dy, dz)
    offset = starts[cols] - starts[rows]
    len_a = lengths[rows]
    len_b = lengths[cols]

    lateral = distance > _COLLINEAR_TOL
    eff = distance.copy()
    if gmd_correction:
        dims = np.maximum(widths, thicknesses)
        pair_dim = np.maximum(dims[rows], dims[cols])
        close = lateral & (distance < _GMD_CUTOFF * pair_dim)
        sel = np.nonzero(close)[0]
        if sel.size:
            eff[sel] = _gmd_grouped(
                widths[rows[sel]],
                thicknesses[rows[sel]],
                widths[cols[sel]],
                thicknesses[cols[sel]],
                np.abs(dy[sel]),
                np.abs(dz[sel]),
            )

    values = np.zeros(rows.size)
    lat = np.nonzero(lateral)[0]
    if lat.size:
        values[lat] = _mutual_parallel_vec(
            len_a[lat], len_b[lat], eff[lat], offset[lat]
        )
    col = np.nonzero(~lateral)[0]
    if col.size:
        values[col] = _mutual_collinear_vec(len_a[col], len_b[col], offset[col])

    block = np.zeros((m, m))
    block[rows, cols] = values
    block[cols, rows] = values
    return block
