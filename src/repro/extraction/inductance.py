"""Closed-form partial inductance extraction (the FastHenry substitute).

The PEEC model assigns every filament a *partial self inductance* and every
pair of parallel filaments a *partial mutual inductance* -- the inductance
of the virtual loop each conductor forms with infinity.  FastHenry computes
these by multipole-accelerated volume integration; for the rectilinear
filaments of the paper's experiments the same quantities have classical
closed forms (Grover, "Inductance Calculations", 1962 -- the paper's
reference [22]; Ruehli 1972):

- self inductance of a rectangular bar:
  ``L = (mu0 l / 2 pi) [ ln(2l/(w+t)) + 1/2 + 0.2235 (w+t)/l ]``;
- mutual inductance of two parallel filaments from the Neumann double
  integral, with a geometric-mean-distance (GMD) correction for the finite
  cross section of closely spaced equal-width conductors;
- zero mutual between orthogonal filaments (the ``k = x, y, z`` components
  decouple, which is why the paper treats each direction separately).

All routines are vectorized over filament pairs; a 2048-conductor bus
extracts in well under a second.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.extraction.constants import MU_0
from repro.geometry.filament import Axis
from repro.geometry.system import FilamentSystem

#: Lateral distances below this (meters) are treated as collinear.
_COLLINEAR_TOL = 1e-12


def self_inductance_bar(length: float, width: float, thickness: float) -> float:
    """Partial self inductance of a rectangular bar, henries.

    The Grover / Ruehli approximation, accurate to ~1% for bars longer
    than their cross-section dimensions (all the paper's structures are).
    """
    if min(length, width, thickness) <= 0:
        raise ValueError("bar dimensions must be positive")
    ratio = (width + thickness) / length
    return (
        MU_0
        * length
        / (2.0 * np.pi)
        * (np.log(2.0 / ratio) + 0.5 + 0.2235 * ratio)
    )


def _neumann_g(u: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Antiderivative kernel ``G(u) = u asinh(u/d) - sqrt(u^2 + d^2)``.

    ``G''(u) = 1 / sqrt(u^2 + d^2)``, so the Neumann double integral of two
    parallel filaments is a four-term combination of ``G``.  Even in ``u``.
    """
    return u * np.arcsinh(u / d) - np.hypot(u, d)


def mutual_parallel_filaments(
    length_a: float,
    length_b: float,
    lateral_distance: float,
    axial_offset: float = 0.0,
) -> float:
    """Mutual partial inductance of two parallel thin filaments, henries.

    Filament A spans ``[0, length_a]`` along the common axis; filament B
    spans ``[axial_offset, axial_offset + length_b]`` at perpendicular
    distance ``lateral_distance``.  Positive for co-directed currents.

    This is the exact Neumann-integral solution for thin filaments
    (Grover ch. 9); finite cross sections are handled by passing a GMD as
    the distance.
    """
    if lateral_distance <= _COLLINEAR_TOL:
        return mutual_collinear_filaments(length_a, length_b, axial_offset)
    result = _mutual_parallel_vec(
        np.asarray(length_a, dtype=float),
        np.asarray(length_b, dtype=float),
        np.asarray(lateral_distance, dtype=float),
        np.asarray(axial_offset, dtype=float),
    )
    return float(result)


def _mutual_parallel_vec(
    length_a: np.ndarray,
    length_b: np.ndarray,
    distance: np.ndarray,
    offset: np.ndarray,
) -> np.ndarray:
    """Vectorized Neumann mutual for parallel filaments (distance > 0)."""
    g = _neumann_g
    total = (
        g(offset + length_b, distance)
        + g(offset - length_a, distance)
        - g(offset, distance)
        - g(offset + length_b - length_a, distance)
    )
    return MU_0 / (4.0 * np.pi) * total


def mutual_collinear_filaments(
    length_a: float, length_b: float, axial_offset: float
) -> float:
    """Mutual inductance of two collinear thin filaments, henries.

    Filament A spans ``[0, length_a]``; filament B spans
    ``[axial_offset, axial_offset + length_b]`` on the same line.  The
    filaments must not overlap (a gap of zero -- abutting segments of one
    wire -- is allowed); overlapping collinear filaments have no finite
    thin-wire mutual and indicate a malformed geometry.
    """
    gap = axial_offset - length_a if axial_offset >= 0 else -(axial_offset + length_b)
    if gap < -_COLLINEAR_TOL * max(length_a, length_b, 1e-30):
        raise ValueError("collinear filaments overlap; geometry is malformed")
    gap = max(gap, 0.0)

    def xlogx(x: float) -> float:
        return x * np.log(x) if x > 0 else 0.0

    total = (
        xlogx(length_a + length_b + gap)
        - xlogx(length_a + gap)
        - xlogx(length_b + gap)
        + xlogx(gap)
    )
    return MU_0 / (4.0 * np.pi) * total


def gmd_parallel_tapes(width: float, distance: float) -> float:
    """Geometric mean distance of two equal-width coplanar tapes.

    Grover's series for the GMD ``g`` of two parallel line segments of
    width ``w`` whose centers are ``d`` apart (d >= w, i.e. non-overlapping
    coplanar conductors)::

        ln g = ln d - (w/d)^2/12 - (w/d)^4/60 - (w/d)^6/168 - ...

    Using the GMD in place of the center distance captures the dominant
    finite-cross-section effect for closely spaced bus lines.
    """
    if distance <= 0:
        raise ValueError("distance must be positive")
    u2 = (width / distance) ** 2
    ln_g = np.log(distance) - u2 / 12.0 - u2**2 / 60.0 - u2**3 / 168.0
    return float(np.exp(ln_g))


#: Gauss-Legendre order per cross-section dimension for the numeric GMD.
_GMD_POINTS = 5

#: Pairs farther than this many max-cross-section-dimensions use the
#: centerline distance directly (the GMD correction is negligible there).
_GMD_CUTOFF = 6.0


def gmd_rectangles(
    width_a: float,
    thickness_a: float,
    width_b: float,
    thickness_b: float,
    offset_w: float,
    offset_t: float,
) -> float:
    """Geometric mean distance between two rectangular cross sections.

    ``ln g = (1 / A_a A_b) integral ln |r_a - r_b| dA_a dA_b`` evaluated
    by Gauss-Legendre quadrature; ``offset_w`` / ``offset_t`` are the
    center-to-center offsets along the width / thickness directions.

    Unlike the coplanar-tape series (:func:`gmd_parallel_tapes`), this
    handles *any* relative placement -- in particular tall, narrow
    conductors side by side, where the true GMD exceeds the centerline
    distance and a thin-filament mutual would overestimate the coupling
    (and break the diagonal dominance of ``L^-1``).
    """
    nodes, weights = np.polynomial.legendre.leggauss(_GMD_POINTS)
    half = nodes / 2.0  # scaled to [-1/2, 1/2]
    w_quad = weights / 2.0

    ya = width_a * half
    za = thickness_a * half
    yb = offset_w + width_b * half
    zb = offset_t + thickness_b * half

    dy = ya[:, None, None, None] - yb[None, None, :, None]
    dz = za[None, :, None, None] - zb[None, None, None, :]
    log_r = 0.5 * np.log(dy**2 + dz**2)
    weight = (
        w_quad[:, None, None, None]
        * w_quad[None, :, None, None]
        * w_quad[None, None, :, None]
        * w_quad[None, None, None, :]
    )
    return float(np.exp(np.sum(weight * log_r)))


def partial_inductance_matrix(
    system: FilamentSystem, gmd_correction: bool = True
) -> np.ndarray:
    """Full partial inductance matrix ``L`` of a filament system, henries.

    Shape ``(n, n)``, symmetric, with zero entries between orthogonal
    filaments.  Every parallel pair is included -- including collinear
    segments of the same line ("forward coupling"), matching the paper's
    experiment setting ("coupling between any pair of segments, including
    segments in a same line, is considered").

    Parameters
    ----------
    system:
        The discretized conductors.
    gmd_correction:
        Apply the tape-GMD correction to lateral distances of equal-width
        pairs (on by default; disable to get pure thin-filament coupling).
    """
    n = len(system)
    matrix = np.zeros((n, n))
    for indices, block in inductance_blocks(system, gmd_correction).values():
        matrix[np.ix_(indices, indices)] = block
    return matrix


def inductance_blocks(
    system: FilamentSystem, gmd_correction: bool = True
) -> Dict[Axis, Tuple[List[int], np.ndarray]]:
    """Per-direction inductance blocks ``{axis: (indices, L_block)}``.

    The blocks are the matrices the VPEC inversion consumes: mutual
    inductance only exists between filaments sharing a current axis, so
    ``L`` is block-diagonal under this grouping.
    """
    blocks: Dict[Axis, Tuple[List[int], np.ndarray]] = {}
    for axis, indices in system.indices_by_axis().items():
        blocks[axis] = (indices, _axis_block(system, indices, axis, gmd_correction))
    return blocks


def _axis_block(
    system: FilamentSystem,
    indices: List[int],
    axis: Axis,
    gmd_correction: bool,
) -> np.ndarray:
    filaments = [system[i] for i in indices]
    m = len(filaments)
    lengths = np.array([f.length for f in filaments])
    widths = np.array([f.width for f in filaments])
    thicknesses = np.array([f.thickness for f in filaments])
    starts = np.array([f.axial_span[0] for f in filaments])
    axis_index = axis.value
    # Perpendicular axes ordered (width direction, thickness direction)
    # for every axis per the Filament orientation convention.
    perp_axes = [k for k in range(3) if k != axis_index]
    centers = np.array([[f.center[p] for p in perp_axes] for f in filaments])

    block = np.zeros((m, m))
    diag = np.array(
        [self_inductance_bar(f.length, f.width, f.thickness) for f in filaments]
    )
    np.fill_diagonal(block, diag)
    if m == 1:
        return block

    # Pairwise geometry, vectorized over the full m x m grid.
    delta = centers[:, None, :] - centers[None, :, :]
    distance = np.hypot(delta[:, :, 0], delta[:, :, 1])
    offset = starts[None, :] - starts[:, None]
    len_a = np.broadcast_to(lengths[:, None], (m, m))
    len_b = np.broadcast_to(lengths[None, :], (m, m))

    lateral = distance > _COLLINEAR_TOL
    eff_distance = np.where(lateral, distance, 1.0)
    if gmd_correction:
        _apply_gmd(
            eff_distance, lateral, distance, delta, widths, thicknesses
        )

    mutual = _mutual_parallel_vec(len_a, len_b, eff_distance, offset)
    off_diag = ~np.eye(m, dtype=bool)
    block[off_diag & lateral] = mutual[off_diag & lateral]
    return _finish_block(block, len_a, len_b, offset, off_diag, lateral)


def _apply_gmd(
    eff_distance: np.ndarray,
    lateral: np.ndarray,
    distance: np.ndarray,
    delta: np.ndarray,
    widths: np.ndarray,
    thicknesses: np.ndarray,
) -> None:
    """Replace close-pair distances with the rectangle-to-rectangle GMD.

    Only pairs within ``_GMD_CUTOFF`` times the larger cross-section
    dimension are corrected (farther out the correction is below the
    formula accuracy); repeated geometric configurations -- every regular
    bus -- hit a small memoization cache.
    """
    dims = np.maximum(widths, thicknesses)
    pair_dim = np.maximum(dims[:, None], dims[None, :])
    close = lateral & (distance < _GMD_CUTOFF * pair_dim)
    cache = {}
    rows, cols = np.nonzero(np.triu(close, k=1))
    for a, b in zip(rows, cols):
        section_a = (round(widths[a] * 1e12), round(thicknesses[a] * 1e12))
        section_b = (round(widths[b] * 1e12), round(thicknesses[b] * 1e12))
        off_w = abs(delta[a, b, 0])
        off_t = abs(delta[a, b, 1])
        key = (
            min(section_a, section_b),
            max(section_a, section_b),
            round(off_w * 1e12),
            round(off_t * 1e12),
        )
        gmd = cache.get(key)
        if gmd is None:
            gmd = gmd_rectangles(
                widths[a], thicknesses[a], widths[b], thicknesses[b], off_w, off_t
            )
            cache[key] = gmd
        eff_distance[a, b] = eff_distance[b, a] = gmd


def _finish_block(
    block: np.ndarray,
    len_a: np.ndarray,
    len_b: np.ndarray,
    offset: np.ndarray,
    off_diag: np.ndarray,
    lateral: np.ndarray,
) -> np.ndarray:

    collinear = off_diag & ~lateral
    for i, j in zip(*np.nonzero(collinear)):
        block[i, j] = mutual_collinear_filaments(
            float(len_a[i, j]), float(len_b[i, j]), float(offset[i, j])
        )
    # Enforce exact symmetry against floating-point asymmetry.
    return (block + block.T) / 2.0
