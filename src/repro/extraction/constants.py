"""Physical constants (re-exported from :mod:`repro.constants`)."""

from repro.constants import (
    COPPER_RESISTIVITY,
    DRIVER_RESISTANCE,
    EPS_0,
    LOAD_CAPACITANCE,
    LOW_K_EPS_R,
    MAX_FREQUENCY,
    MU_0,
    SPEED_OF_LIGHT,
    SUBSTRATE_RESISTIVITY,
)

__all__ = [
    "MU_0",
    "EPS_0",
    "SPEED_OF_LIGHT",
    "COPPER_RESISTIVITY",
    "LOW_K_EPS_R",
    "MAX_FREQUENCY",
    "DRIVER_RESISTANCE",
    "LOAD_CAPACITANCE",
    "SUBSTRATE_RESISTIVITY",
]
