"""Parasitic extraction substrate (FastHenry / FastCap substitute).

Public API
----------
- :func:`~repro.extraction.parasitics.extract` /
  :class:`~repro.extraction.parasitics.Parasitics` -- one-call extraction;
- :func:`~repro.extraction.inductance.partial_inductance_matrix`,
  :func:`~repro.extraction.inductance.inductance_blocks`,
  :func:`~repro.extraction.inductance.self_inductance_bar`,
  :func:`~repro.extraction.inductance.mutual_parallel_filaments`;
- :func:`~repro.extraction.hierarchical.hierarchical_blocks` /
  :class:`~repro.extraction.hierarchical.LazyInductance` /
  :class:`~repro.extraction.hierarchical.HierarchicalConfig` -- the
  block low-rank representation that scales past 100k filaments
  (``extract(..., method="hierarchical")``);
- :class:`~repro.extraction.capacitance.CapacitanceModel`,
  :func:`~repro.extraction.capacitance.extract_capacitances`;
- :func:`~repro.extraction.resistance.extract_resistances`;
- physical constants in :mod:`repro.extraction.constants`.
"""

from repro.extraction.capacitance import CapacitanceModel, extract_capacitances
from repro.extraction.constants import (
    COPPER_RESISTIVITY,
    DRIVER_RESISTANCE,
    EPS_0,
    LOAD_CAPACITANCE,
    LOW_K_EPS_R,
    MAX_FREQUENCY,
    MU_0,
    SPEED_OF_LIGHT,
)
from repro.extraction.hierarchical import (
    HierarchicalConfig,
    LazyInductance,
    hierarchical_blocks,
)
from repro.extraction.inductance import (
    gmd_parallel_tapes,
    inductance_blocks,
    mutual_collinear_filaments,
    mutual_parallel_filaments,
    partial_inductance_matrix,
    self_inductance_bar,
)
from repro.extraction.parasitics import Parasitics, extract
from repro.extraction.resistance import (
    dc_resistance,
    extract_resistances,
    skin_effect_resistance,
)
from repro.extraction.volume import (
    ConductorImpedance,
    conductor_impedance,
    counts_for_skin_depth,
    subdivide_cross_section,
)

__all__ = [
    "CapacitanceModel",
    "Parasitics",
    "extract",
    "extract_capacitances",
    "extract_resistances",
    "partial_inductance_matrix",
    "inductance_blocks",
    "hierarchical_blocks",
    "LazyInductance",
    "HierarchicalConfig",
    "self_inductance_bar",
    "mutual_parallel_filaments",
    "mutual_collinear_filaments",
    "gmd_parallel_tapes",
    "dc_resistance",
    "skin_effect_resistance",
    "ConductorImpedance",
    "conductor_impedance",
    "counts_for_skin_depth",
    "subdivide_cross_section",
    "MU_0",
    "EPS_0",
    "SPEED_OF_LIGHT",
    "COPPER_RESISTIVITY",
    "LOW_K_EPS_R",
    "MAX_FREQUENCY",
    "DRIVER_RESISTANCE",
    "LOAD_CAPACITANCE",
]
