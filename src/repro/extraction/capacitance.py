"""Analytic 2.5-D capacitance extraction (the FastCap / lookup substitute).

The paper extracts capacitance from a 2.5-D lookup table interpolated from
FastCap [18] and -- because capacitive coupling is short range -- keeps
*adjacent couplings only*.  We reproduce that model class analytically with
the widely used Sakurai-Tamaru fitted formulas for a conductor above a
ground plane:

- ground capacitance per unit length:
  ``C_g/l = eps [ w/h + 0.77 + 1.06 (w/h)^0.25 + 1.06 (t/h)^0.5 ]``;
- lateral coupling per unit length between parallel neighbors at
  edge-to-edge spacing ``s``:
  ``C_c/l = eps [ 0.03 w/h + 0.83 t/h - 0.07 (t/h)^0.222 ] (s/h)^-1.34``.

Coupling is only generated for pairs the geometry layer marks *adjacent*
(same definition the paper uses), over their axial overlap length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.extraction.constants import EPS_0, LOW_K_EPS_R
from repro.geometry.system import FilamentSystem


@dataclass(frozen=True)
class CapacitanceModel:
    """Technology parameters of the 2.5-D capacitance model.

    Parameters
    ----------
    eps_r:
        Relative dielectric constant (the paper uses low-k, eps_r = 2).
    height:
        Dielectric height between the wire bottom and the ground plane,
        meters.
    """

    eps_r: float = LOW_K_EPS_R
    height: float = 1e-6

    @property
    def permittivity(self) -> float:
        """Dielectric permittivity, F/m."""
        return EPS_0 * self.eps_r

    def ground_capacitance_per_length(self, width: float, thickness: float) -> float:
        """Sakurai-Tamaru area + fringe capacitance to ground, F/m."""
        if width <= 0 or thickness <= 0:
            raise ValueError("width and thickness must be positive")
        w_h = width / self.height
        t_h = thickness / self.height
        return self.permittivity * (
            w_h + 0.77 + 1.06 * w_h**0.25 + 1.06 * t_h**0.5
        )

    def crossing_capacitance(self, area: float, gap: float) -> float:
        """Inter-layer crossing capacitance: plate term plus 15% fringe.

        ``area`` is the plan-view crossing footprint, ``gap`` the
        face-to-face dielectric thickness.
        """
        if area <= 0 or gap <= 0:
            raise ValueError("area and gap must be positive")
        return 1.15 * self.permittivity * area / gap

    def coupling_capacitance_per_length(
        self, thickness: float, spacing: float, width: float
    ) -> float:
        """Sakurai-Tamaru lateral coupling capacitance, F/m.

        ``spacing`` is the edge-to-edge gap between the two conductors.
        """
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        w_h = width / self.height
        t_h = thickness / self.height
        s_h = spacing / self.height
        coefficient = 0.03 * w_h + 0.83 * t_h - 0.07 * t_h**0.222
        return self.permittivity * max(coefficient, 0.0) * s_h**-1.34


def extract_capacitances(
    system: FilamentSystem, model: CapacitanceModel = CapacitanceModel()
) -> Tuple[np.ndarray, Dict[Tuple[int, int], float]]:
    """Ground and coupling capacitances of a filament system.

    Returns
    -------
    ground:
        Array of per-filament capacitance to ground, farads, shape (n,).
    coupling:
        ``{(i, j): C}`` for each adjacent pair ``i < j`` (short-range
        coupling only, per the paper's setting), farads.
    """
    ground = np.array(
        [
            model.ground_capacitance_per_length(f.width, f.thickness) * f.length
            for f in system
        ]
    )
    coupling: Dict[Tuple[int, int], float] = {}
    for i, j in system.adjacent_pairs():
        f_i, f_j = system[i], system[j]
        overlap = min(f_i.axial_span[1], f_j.axial_span[1]) - max(
            f_i.axial_span[0], f_j.axial_span[0]
        )
        if overlap <= 0:
            continue
        gap = f_i.lateral_distance_to(f_j) - (f_i.width + f_j.width) / 2.0
        if gap <= 0:
            continue
        per_length = model.coupling_capacitance_per_length(
            thickness=min(f_i.thickness, f_j.thickness),
            spacing=gap,
            width=min(f_i.width, f_j.width),
        )
        coupling[(i, j)] = per_length * overlap
    # Inter-layer crossings (orthogonal wires): parallel-plate coupling
    # over the crossing footprint through the inter-layer dielectric.
    for i, j, area, gap in system.crossing_pairs():
        coupling[(i, j)] = coupling.get((i, j), 0.0) + model.crossing_capacitance(
            area, gap
        )
    return ground, coupling
