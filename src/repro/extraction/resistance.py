"""Series resistance extraction.

DC resistance follows directly from the conductor geometry; at the maximum
operating frequency the skin effect confines current to a rim of one skin
depth, which we model with the standard effective-area correction (the
volume-filament decomposition FastHenry uses resolves the same physics; a
closed-form rim model is adequate at the paper's 10 GHz / 1 um-scale cross
sections, where the skin depth ~0.66 um is comparable to the conductor
half-dimensions).
"""

from __future__ import annotations

import numpy as np

from repro.extraction.constants import COPPER_RESISTIVITY
from repro.geometry.discretize import skin_depth
from repro.geometry.filament import Filament
from repro.geometry.system import FilamentSystem


def dc_resistance(
    filament: Filament, resistivity: float = COPPER_RESISTIVITY
) -> float:
    """DC series resistance ``rho l / (w t)``, ohms."""
    return resistivity * filament.length / filament.cross_section_area


def skin_effect_resistance(
    filament: Filament,
    frequency: float,
    resistivity: float = COPPER_RESISTIVITY,
) -> float:
    """Series resistance with the skin-effect rim correction, ohms.

    The conducting cross section is reduced to the rim of one skin depth
    ``delta`` along each face: ``A_eff = w t - (w - 2 delta)(t - 2 delta)``
    when both inner dimensions remain positive, otherwise the full area
    (no crowding).  This reproduces the sqrt(f) high-frequency asymptote
    and reduces to the DC value at low frequency.
    """
    if frequency <= 0:
        return dc_resistance(filament, resistivity)
    delta = skin_depth(resistivity, frequency)
    inner_w = filament.width - 2.0 * delta
    inner_t = filament.thickness - 2.0 * delta
    area = filament.cross_section_area
    if inner_w > 0 and inner_t > 0:
        area -= inner_w * inner_t
    return resistivity * filament.length / area


def extract_resistances(
    system: FilamentSystem,
    resistivity: float = COPPER_RESISTIVITY,
    frequency: float = 0.0,
) -> np.ndarray:
    """Per-filament series resistances, ohms, shape (n,).

    ``frequency = 0`` gives DC values (the transient experiments); a
    positive frequency applies the skin-effect correction.
    """
    if frequency > 0:
        return np.array(
            [skin_effect_resistance(f, frequency, resistivity) for f in system]
        )
    return np.array([dc_resistance(f, resistivity) for f in system])
