"""Hierarchical block low-rank partial inductance (the 100k+ scale path).

The dense assembly in :mod:`repro.extraction.inductance` evaluates (or
at least stores) every pair, which caps end-to-end runs at a few
thousand filaments: O(N^2) memory for the block and O(N^2) pair work on
irregular geometries.  This module replaces the dense per-axis block
with a *hierarchical block low-rank* operator that is never
materialized:

- filaments are clustered by an axis-aligned bounding-box tree over
  their centerlines (recursive median bisection of the widest box
  dimension, so the tree is deterministic for a given geometry);
- *near-field* cluster pairs -- not well separated -- are evaluated
  exactly with the same Neumann/GMD kernels as the dense path, one
  dense block per leaf pair;
- *far-field* pairs satisfying the admissibility condition
  ``max(diam_a, diam_b) <= eta * dist(box_a, box_b)`` are compressed
  with partially pivoted adaptive cross approximation (ACA) under a
  user-set relative cutoff; blocks that refuse to compress fall back to
  dense evaluation, so the cutoff bounds the error but never the
  correctness.

Storage and build cost are O(N b^2 + N log N) instead of O(N^2); the
118k-filament runs in ``BENCH_extraction_scale.json`` fit in a few
hundred MB where the dense block alone would need tens of GB.

The result is exposed as a :class:`LazyInductance` operator with a
``gather(rows, cols)`` interface returning exact dense submatrices:
near-field entries verbatim (bit-identical to the pairwise dense path),
far-field entries re-expanded from their low-rank factors on demand.
``repro.vpec.windowing`` feeds its window solves and ``repro.noise``
its screening tier straight from the tree, so the full matrix never
exists at any point of the extract -> wVPEC -> noise-scan flow.

The operator is a plain bundle of flat numpy arrays (tree nodes, block
directory, two data pools), so it pickles compactly for the pipeline
cache and maps zero-copy through the shared-memory parasitics store.
"""

from __future__ import annotations

import atexit
import weakref
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.extraction.inductance import (
    _COLLINEAR_TOL,
    _GMD_CUTOFF,
    _gmd_grouped,
    _mutual_collinear_vec,
    _mutual_parallel_vec,
    axis_geometry,
    self_inductance_bar,
)
from repro.geometry.filament import Axis
from repro.geometry.system import FilamentSystem
from repro.pipeline.parallel import parallel_map
from repro.pipeline.profiling import (
    active_profile,
    add_counter,
    collect,
    stage,
)

#: Block kinds in the block directory (column 2 of ``block_table``).
#: ``_KIND_DENSE_SPILL`` is a dense block that lives in the *factor*
#: pool: an admissible pair whose ACA refused to converge.  The
#: parallel builder reserves factor-pool space per admissible block
#: before the workers run, so a fallback block lands in the reservation
#: it already owns (or, when even that is too small, rides back to the
#: owner and is appended during compaction) instead of fighting the
#: dense pool's precomputed layout.
_KIND_DENSE = 0
_KIND_LOWRANK = 1
_KIND_DENSE_SPILL = 2


@dataclass(frozen=True)
class HierarchicalConfig:
    """Tuning knobs of the hierarchical builder.

    ``leaf_size`` bounds cluster leaves (near-field dense blocks are at
    most ``leaf_size`` square).  ``eta`` is the admissibility parameter:
    a cluster pair is compressible when ``max(diam) <= eta * dist``;
    larger values compress more aggressively, smaller values keep more
    of the matrix exact.  ``cutoff`` is the relative Frobenius tolerance
    of the ACA factorization (``0`` disables compression entirely --
    every block is then evaluated exactly and ``gather`` is
    bit-identical to the dense pairwise path).  ``max_rank`` caps the
    ACA rank; a block that has not converged by then is stored dense.
    """

    leaf_size: int = 64
    eta: float = 2.0
    cutoff: float = 1e-8
    max_rank: int = 64

    def __post_init__(self) -> None:
        if self.leaf_size < 2:
            raise ValueError("leaf_size must be >= 2")
        if self.eta <= 0:
            raise ValueError("eta must be positive")
        if self.cutoff < 0:
            raise ValueError("cutoff must be non-negative")
        if self.max_rank < 1:
            raise ValueError("max_rank must be >= 1")

    @property
    def compress(self) -> bool:
        return self.cutoff > 0.0


DEFAULT_CONFIG = HierarchicalConfig()


# ----------------------------------------------------------------------
# Exact pairwise evaluator (bit-identical to the dense general path)
# ----------------------------------------------------------------------
class _PairEvaluator:
    """Exact Neumann/GMD entries for arbitrary index pairs of one axis.

    Works in *tree* coordinates (the arrays are permuted into cluster
    order up front); ``orig`` maps tree slots back to axis-local
    positions so each unordered pair is canonicalized exactly the way
    ``_general_block`` orders its upper triangle (low axis-local index
    first).  Every float operation -- ``hypot`` distance, GMD cutoff
    test, the shared GMD LRU, the Neumann/collinear kernels -- is the
    same elementwise sequence as the dense path, so entries agree bit
    for bit with the general (non-lattice) dense assembly.
    """

    __slots__ = (
        "lengths",
        "widths",
        "thicknesses",
        "starts",
        "centers",
        "orig",
        "dims",
        "diagonal",
        "gmd_correction",
    )

    def __init__(
        self,
        lengths: np.ndarray,
        widths: np.ndarray,
        thicknesses: np.ndarray,
        starts: np.ndarray,
        centers: np.ndarray,
        orig: np.ndarray,
        gmd_correction: bool,
    ) -> None:
        self.lengths = lengths
        self.widths = widths
        self.thicknesses = thicknesses
        self.starts = starts
        self.centers = centers
        self.orig = orig
        self.dims = np.maximum(widths, thicknesses)
        self.diagonal = np.asarray(
            self_inductance_bar(lengths, widths, thicknesses), dtype=float
        ).reshape(lengths.size)
        self.gmd_correction = gmd_correction

    def entries(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """``L`` entries of pairs ``(i, j)`` (tree coordinates)."""
        i = np.asarray(i, dtype=np.intp)
        j = np.asarray(j, dtype=np.intp)
        values = np.empty(i.size)
        diag = i == j
        if diag.any():
            values[diag] = self.diagonal[i[diag]]
        off = np.nonzero(~diag)[0]
        if off.size:
            values[off] = self._off_diagonal(i[off], j[off])
        return values

    def _off_diagonal(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        # Canonical pair order: low axis-local position first, exactly
        # like the upper-triangle enumeration of the dense path.
        swap = self.orig[i] > self.orig[j]
        a = np.where(swap, j, i)
        b = np.where(swap, i, j)
        centers = self.centers
        dy = centers[a, 0] - centers[b, 0]
        dz = centers[a, 1] - centers[b, 1]
        distance = np.hypot(dy, dz)
        offset = self.starts[b] - self.starts[a]
        len_a = self.lengths[a]
        len_b = self.lengths[b]

        lateral = distance > _COLLINEAR_TOL
        eff = distance.copy()
        if self.gmd_correction:
            pair_dim = np.maximum(self.dims[a], self.dims[b])
            close = lateral & (distance < _GMD_CUTOFF * pair_dim)
            sel = np.nonzero(close)[0]
            if sel.size:
                eff[sel] = _gmd_grouped(
                    self.widths[a[sel]],
                    self.thicknesses[a[sel]],
                    self.widths[b[sel]],
                    self.thicknesses[b[sel]],
                    np.abs(dy[sel]),
                    np.abs(dz[sel]),
                )

        values = np.zeros(a.size)
        lat = np.nonzero(lateral)[0]
        if lat.size:
            values[lat] = _mutual_parallel_vec(
                len_a[lat], len_b[lat], eff[lat], offset[lat]
            )
        col = np.nonzero(~lateral)[0]
        if col.size:
            values[col] = _mutual_collinear_vec(
                len_a[col], len_b[col], offset[col]
            )
        return values

    def block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Dense ``(len(rows), len(cols))`` block (tree coordinates)."""
        ii = np.repeat(np.asarray(rows, dtype=np.intp), len(cols))
        jj = np.tile(np.asarray(cols, dtype=np.intp), len(rows))
        add_counter("hier_kernel_entries", ii.size)
        return self.entries(ii, jj).reshape(len(rows), len(cols))

    def row(self, i: int, cols: np.ndarray) -> np.ndarray:
        cols = np.asarray(cols, dtype=np.intp)
        add_counter("hier_kernel_entries", cols.size)
        return self.entries(np.full(cols.size, i, dtype=np.intp), cols)

    def col(self, rows: np.ndarray, j: int) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.intp)
        add_counter("hier_kernel_entries", rows.size)
        return self.entries(rows, np.full(rows.size, j, dtype=np.intp))


# ----------------------------------------------------------------------
# Cluster tree
# ----------------------------------------------------------------------
def _build_cluster_tree(
    box_min: np.ndarray, box_max: np.ndarray, leaf_size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Median-bisection AABB tree over per-filament boxes.

    Returns ``(perm, node_lo, node_hi, node_left, node_right,
    node_box_min, node_box_max)``: ``perm[p]`` is the axis-local
    position stored at tree slot ``p``; each node covers the contiguous
    slot range ``[lo, hi)``; ``left/right`` are child node ids (-1 for
    leaves); the node boxes are unions of the member filament boxes.
    Splits bisect the widest dimension of the member centers at the
    median slot, with a stable argsort so the tree is deterministic.
    """
    n = box_min.shape[0]
    points = (box_min + box_max) / 2.0
    perm = np.arange(n, dtype=np.int64)
    lo_list: List[int] = []
    hi_list: List[int] = []
    left_list: List[int] = []
    right_list: List[int] = []
    # (lo, hi) ranges to process; parents patched once children exist.
    pending: List[Tuple[int, int, int]] = [(0, n, -1)]
    while pending:
        lo, hi, parent_slot = pending.pop()
        node = len(lo_list)
        lo_list.append(lo)
        hi_list.append(hi)
        left_list.append(-1)
        right_list.append(-1)
        if parent_slot >= 0:
            if left_list[parent_slot] == -1:
                left_list[parent_slot] = node
            else:
                right_list[parent_slot] = node
        if hi - lo <= leaf_size:
            continue
        members = perm[lo:hi]
        spread = np.ptp(points[members], axis=0)
        dim = int(np.argmax(spread))
        order = np.argsort(points[members, dim], kind="stable")
        perm[lo:hi] = members[order]
        mid = lo + (hi - lo) // 2
        # LIFO stack: push right first so the left child is numbered
        # first (pre-order), keeping the layout deterministic.
        pending.append((mid, hi, node))
        pending.append((lo, mid, node))
    node_lo = np.asarray(lo_list, dtype=np.int64)
    node_hi = np.asarray(hi_list, dtype=np.int64)
    node_left = np.asarray(left_list, dtype=np.int64)
    node_right = np.asarray(right_list, dtype=np.int64)
    m = node_lo.size
    node_box_min = np.empty((m, 3))
    node_box_max = np.empty((m, 3))
    sorted_min = box_min[perm]
    sorted_max = box_max[perm]
    # Children are numbered after their parent (pre-order), so a reverse
    # sweep can union child boxes; leaves reduce over their slot range.
    for node in range(m - 1, -1, -1):
        if node_left[node] == -1:
            node_box_min[node] = sorted_min[node_lo[node]:node_hi[node]].min(axis=0)
            node_box_max[node] = sorted_max[node_lo[node]:node_hi[node]].max(axis=0)
        else:
            left, right = node_left[node], node_right[node]
            node_box_min[node] = np.minimum(node_box_min[left], node_box_min[right])
            node_box_max[node] = np.maximum(node_box_max[left], node_box_max[right])
    return perm, node_lo, node_hi, node_left, node_right, node_box_min, node_box_max


def _box_distance(
    min_a: np.ndarray, max_a: np.ndarray, min_b: np.ndarray, max_b: np.ndarray
) -> float:
    gap = np.maximum(0.0, np.maximum(min_b - max_a, min_a - max_b))
    return float(np.sqrt(np.sum(gap * gap)))


def _box_diameter(min_box: np.ndarray, max_box: np.ndarray) -> float:
    extent = max_box - min_box
    return float(np.sqrt(np.sum(extent * extent)))


# ----------------------------------------------------------------------
# Adaptive cross approximation
# ----------------------------------------------------------------------
def _aca(
    evaluator: _PairEvaluator,
    rows: np.ndarray,
    cols: np.ndarray,
    tol: float,
    max_rank: int,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Partially pivoted ACA of one admissible block, or ``None``.

    Builds ``U (m, k)`` and ``V (k, n)`` with an estimated relative
    Frobenius error ``||A - U V||_F <= tol ||A||_F``.  Returns ``None``
    when the block refuses to converge within ``max_rank`` or the
    factors would not be smaller than the dense block -- the caller
    stores the exact dense block instead, so the tolerance only ever
    bounds the error of blocks that did compress.
    """
    m, n = rows.size, cols.size
    us: List[np.ndarray] = []
    vs: List[np.ndarray] = []
    used = np.zeros(m, dtype=bool)
    pivot_row = 0
    frob2 = 0.0
    converged = False
    steps = 0
    while steps < max_rank + m:
        steps += 1
        residual = evaluator.row(int(rows[pivot_row]), cols)
        for u, v in zip(us, vs):
            residual = residual - u[pivot_row] * v
        used[pivot_row] = True
        pivot_col = int(np.argmax(np.abs(residual)))
        pivot = residual[pivot_col]
        if pivot == 0.0:
            remaining = np.flatnonzero(~used)
            if remaining.size == 0:
                converged = True
                break
            pivot_row = int(remaining[0])
            continue
        v = residual / pivot
        u = evaluator.col(rows, int(cols[pivot_col]))
        for uu, vv in zip(us, vs):
            u = u - vv[pivot_col] * uu
        norm_u2 = float(u @ u)
        norm_v2 = float(v @ v)
        cross = 0.0
        for uu, vv in zip(us, vs):
            cross += float(u @ uu) * float(v @ vv)
        frob2 = max(frob2 + norm_u2 * norm_v2 + 2.0 * cross, norm_u2 * norm_v2)
        us.append(u)
        vs.append(v)
        if norm_u2 * norm_v2 <= tol * tol * frob2:
            converged = True
            break
        if len(us) >= max_rank:
            break
        candidates = np.abs(u)
        candidates[used] = -1.0
        pivot_row = int(np.argmax(candidates))
    if not converged or not us:
        return None
    rank = len(us)
    if rank * (m + n) >= m * n:
        return None
    return np.stack(us, axis=1), np.stack(vs, axis=0)


# ----------------------------------------------------------------------
# The operator
# ----------------------------------------------------------------------
class LazyInductance:
    """Hierarchical block low-rank view of one per-axis ``L`` block.

    Semantically a symmetric ``(n, n)`` matrix in the axis group's local
    index space, stored as a cluster tree plus a directory of dense
    near-field blocks and low-rank far-field factors over flat float
    pools -- the full matrix is never materialized unless
    :meth:`toarray` is explicitly asked for it.

    Everything lives in six flat numpy arrays plus a small config blob
    (see :meth:`columns`), which is what makes the operator pickle
    compactly for the pipeline cache and reconstruct zero-copy from
    shared-memory segments.
    """

    def __init__(
        self,
        n: int,
        perm: np.ndarray,
        node_lo: np.ndarray,
        node_hi: np.ndarray,
        node_left: np.ndarray,
        node_right: np.ndarray,
        block_table: np.ndarray,
        dense_data: np.ndarray,
        lr_data: np.ndarray,
        config: HierarchicalConfig,
    ) -> None:
        self.n = int(n)
        self.perm = perm
        self.node_lo = node_lo
        self.node_hi = node_hi
        self.node_left = node_left
        self.node_right = node_right
        self.block_table = block_table
        self.dense_data = dense_data
        self.lr_data = lr_data
        self.config = config
        self._rebuild_views()

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    def _rebuild_views(self) -> None:
        self.inv_perm = np.empty(self.n, dtype=np.int64)
        self.inv_perm[self.perm] = np.arange(self.n, dtype=np.int64)
        self._blocks: Dict[Tuple[int, int], Tuple[int, Any, Any]] = {}
        for row in range(self.block_table.shape[0]):
            a, b, kind, offset, rank = (
                int(v) for v in self.block_table[row, :5]
            )
            ra = int(self.node_hi[a] - self.node_lo[a])
            rb = int(self.node_hi[b] - self.node_lo[b])
            if kind == _KIND_DENSE:
                data = self.dense_data[offset:offset + ra * rb]
                self._blocks[(a, b)] = (kind, data.reshape(ra, rb), None)
            elif kind == _KIND_DENSE_SPILL:
                # Dense payload stored in the factor pool; downstream
                # consumers only ever see the normalized dense kind.
                data = self.lr_data[offset:offset + ra * rb]
                self._blocks[(a, b)] = (
                    _KIND_DENSE,
                    data.reshape(ra, rb),
                    None,
                )
            else:
                u = self.lr_data[offset:offset + ra * rank]
                v = self.lr_data[offset + ra * rank:offset + ra * rank + rank * rb]
                self._blocks[(a, b)] = (
                    kind,
                    u.reshape(ra, rank),
                    v.reshape(rank, rb),
                )
        # Leaf id of each tree slot, for the single-leaf gather shortcut.
        self._leaf_of = np.empty(self.n, dtype=np.int64)
        for node in range(self.node_lo.size):
            if self.node_left[node] == -1:
                self._leaf_of[self.node_lo[node]:self.node_hi[node]] = node

    # ------------------------------------------------------------------
    # Shape protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n, self.n)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        stats = self.compression_stats()
        return (
            f"LazyInductance(n={self.n}, blocks={len(self._blocks)}, "
            f"stored={stats['stored_bytes'] / 1e6:.1f}MB, "
            f"dense={stats['dense_bytes'] / 1e6:.1f}MB, "
            f"ratio={stats['compression_ratio']:.1f}x)"
        )

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------
    def gather(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Exact dense submatrix ``L[rows, cols]`` (axis-local indices).

        Near-field entries come verbatim from the stored dense blocks;
        far-field entries are re-expanded from their low-rank factors.
        Cost is proportional to the touched blocks, not to ``n``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        rows_t = self.inv_perm[rows]
        cols_t = self.inv_perm[cols]
        out = np.zeros((rows.size, cols.size))
        if rows.size == 0 or cols.size == 0:
            return out
        # Single-leaf shortcut: a window of spatial neighbors almost
        # always lands inside one leaf's diagonal dense block.
        leaf = self._leaf_of[rows_t[0]]
        if (
            rows.size == cols.size
            and (self._leaf_of[rows_t] == leaf).all()
            and (self._leaf_of[cols_t] == leaf).all()
        ):
            entry = self._blocks.get((int(leaf), int(leaf)))
            if entry is not None and entry[0] == _KIND_DENSE:
                lo = self.node_lo[leaf]
                out[:, :] = entry[1][np.ix_(rows_t - lo, cols_t - lo)]
                return out
        r_order = np.argsort(rows_t, kind="stable")
        c_order = np.argsort(cols_t, kind="stable")
        rs = rows_t[r_order]
        cs = cols_t[c_order]
        self._descend(rs, r_order, cs, c_order, out)
        return out

    def gather_stack(self, windows: np.ndarray) -> np.ndarray:
        """Symmetric gathers of many windows: ``(K, w, w)`` stack."""
        windows = np.asarray(windows, dtype=np.int64)
        count, width = windows.shape
        out = np.empty((count, width, width))
        for k in range(count):
            out[k] = self.gather(windows[k], windows[k])
        return out

    # ------------------------------------------------------------------
    # Operator application
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``L @ x`` without materializing ``L`` (axis-local order).

        One pass over the block directory: dense blocks contribute a
        GEMV, low-rank blocks two skinny GEMVs (``U (V x)``), and every
        off-diagonal block also applies its transpose so symmetry costs
        no extra storage.  Cost is proportional to the stored entries --
        ``O(N b + sum(rank * (ra + rb)))`` -- not ``N^2``.

        The block iteration order is the block-table order, which the
        planner fixes before any worker runs, so repeated applications
        -- and applications through serial- vs parallel-built operators
        of the same geometry -- are bit-identical.  Against the *dense*
        ``L @ x`` the result agrees to a few ulp even at ``cutoff=0``
        (every entry is then exact but the per-block summation grouping
        differs from one long dot product), and to ~``cutoff`` when
        compression is on.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {x.shape}")
        return self._apply(x)

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """``L @ X`` for a column stack (see :meth:`matvec`); the block
        pass is shared across columns, so batched right-hand sides cost
        one traversal."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] != self.n:
            raise ValueError(
                f"expected shape ({self.n}, k), got {x.shape}"
            )
        return self._apply(x)

    def _apply(self, x: np.ndarray) -> np.ndarray:
        xt = x[self.perm]
        yt = np.zeros_like(xt)
        node_lo, node_hi = self.node_lo, self.node_hi
        for (a, b), (kind, first, second) in self._blocks.items():
            lo_a, hi_a = node_lo[a], node_hi[a]
            lo_b, hi_b = node_lo[b], node_hi[b]
            if kind == _KIND_DENSE:
                yt[lo_a:hi_a] += first @ xt[lo_b:hi_b]
                if a != b:
                    yt[lo_b:hi_b] += first.T @ xt[lo_a:hi_a]
            else:
                yt[lo_a:hi_a] += first @ (second @ xt[lo_b:hi_b])
                if a != b:
                    yt[lo_b:hi_b] += second.T @ (first.T @ xt[lo_a:hi_a])
        out = np.empty_like(yt)
        out[self.perm] = yt
        return out

    def leaf_diagonal_blocks(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """The exact near-field diagonal: ``(lo, hi, block)`` per leaf.

        Tree coordinates (``perm`` maps slots back to axis-local
        indices); each block is the leaf's stored dense self-coupling.
        This is the material of the block-Jacobi preconditioner in
        :mod:`repro.health.iterative`.
        """
        for node in range(self.node_lo.size):
            if self.node_left[node] == -1:
                _, first, _ = self._blocks[(node, node)]
                yield int(self.node_lo[node]), int(self.node_hi[node]), first

    def _descend(
        self,
        rs: np.ndarray,
        r_order: np.ndarray,
        cs: np.ndarray,
        c_order: np.ndarray,
        out: np.ndarray,
    ) -> None:
        node_lo, node_hi = self.node_lo, self.node_hi
        node_left, node_right = self.node_left, self.node_right
        blocks = self._blocks
        stack: List[Tuple[int, int]] = [(0, 0)]
        while stack:
            a, b = stack.pop()
            ra0, ra1 = np.searchsorted(rs, (node_lo[a], node_hi[a]))
            cb0, cb1 = np.searchsorted(cs, (node_lo[b], node_hi[b]))
            direct = ra1 > ra0 and cb1 > cb0
            mirror = False
            if a != b:
                rb0, rb1 = np.searchsorted(rs, (node_lo[b], node_hi[b]))
                ca0, ca1 = np.searchsorted(cs, (node_lo[a], node_hi[a]))
                mirror = rb1 > rb0 and ca1 > ca0
            if not direct and not mirror:
                continue
            entry = blocks.get((a, b))
            if entry is None:
                # No block stored at this pair: split exactly the way
                # the builder did, so the descent reproduces the stored
                # partition key for key (diverging here would skip
                # stored blocks and recurse forever at childless pairs).
                if a == b:
                    left, right = int(node_left[a]), int(node_right[a])
                    stack.append((left, left))
                    stack.append((left, right))
                    stack.append((right, right))
                else:
                    leaf_a = node_left[a] == -1
                    leaf_b = node_left[b] == -1
                    kids_a = (
                        [a] if leaf_a else [int(node_left[a]), int(node_right[a])]
                    )
                    kids_b = (
                        [b] if leaf_b else [int(node_left[b]), int(node_right[b])]
                    )
                    if not leaf_a and not leaf_b:
                        size_a = int(node_hi[a] - node_lo[a])
                        size_b = int(node_hi[b] - node_lo[b])
                        if size_a >= size_b:
                            kids_b = [b]
                        else:
                            kids_a = [a]
                    for ka in kids_a:
                        for kb in kids_b:
                            stack.append(
                                (ka, kb)
                                if node_lo[ka] <= node_lo[kb]
                                else (kb, ka)
                            )
                continue
            kind, first, second = entry
            lo_a, lo_b = node_lo[a], node_lo[b]
            if direct:
                local_r = rs[ra0:ra1] - lo_a
                local_c = cs[cb0:cb1] - lo_b
                if kind == _KIND_DENSE:
                    values = first[np.ix_(local_r, local_c)]
                else:
                    values = first[local_r] @ second[:, local_c]
                out[np.ix_(r_order[ra0:ra1], c_order[cb0:cb1])] = values
            if mirror:
                local_i = rs[rb0:rb1] - lo_b
                local_j = cs[ca0:ca1] - lo_a
                if kind == _KIND_DENSE:
                    values = first[np.ix_(local_j, local_i)].T
                else:
                    values = (first[local_j] @ second[:, local_i]).T
                out[np.ix_(r_order[rb0:rb1], c_order[ca0:ca1])] = values

    # ------------------------------------------------------------------
    # Whole-matrix views
    # ------------------------------------------------------------------
    def toarray(self) -> np.ndarray:
        """Materialize the dense block (compat path for small systems)."""
        tree = np.zeros((self.n, self.n))
        for (a, b), (kind, first, second) in self._blocks.items():
            lo_a, hi_a = self.node_lo[a], self.node_hi[a]
            lo_b, hi_b = self.node_lo[b], self.node_hi[b]
            values = first if kind == _KIND_DENSE else first @ second
            tree[lo_a:hi_a, lo_b:hi_b] = values
            if a != b:
                tree[lo_b:hi_b, lo_a:hi_a] = values.T
        out = np.empty((self.n, self.n))
        out[np.ix_(self.perm, self.perm)] = tree
        return out

    def __array__(self, dtype: Optional[np.dtype] = None, copy: Optional[bool] = None) -> np.ndarray:
        dense = self.toarray()
        return dense if dtype is None else dense.astype(dtype)

    def diagonal(self) -> np.ndarray:
        """The partial self inductances, axis-local order."""
        tree_diag = np.empty(self.n)
        for (a, b), (kind, first, _) in self._blocks.items():
            if a == b and kind == _KIND_DENSE:
                lo, hi = self.node_lo[a], self.node_hi[a]
                tree_diag[lo:hi] = np.diagonal(first)
        out = np.empty(self.n)
        out[self.perm] = tree_diag
        return out

    def wire_sums(self, wire_of: np.ndarray, num_wires: int) -> np.ndarray:
        """Wire-aggregated inductance ``sum_{i in w1, j in w2} L[i, j]``.

        Equivalent to ``G @ L @ G.T`` with the 0/1 wire gather matrix
        ``G``, computed block by block without materializing either the
        matrix or the gather: dense blocks scatter-add row then column
        sums, low-rank blocks aggregate their factors first (exact for
        the factorization, so no extra approximation enters).
        """
        wire_of = np.asarray(wire_of, dtype=np.int64)
        wire_tree = wire_of[self.perm]
        out = np.zeros((num_wires, num_wires))
        # Per-block scratch stays block-sized: a block touches at most
        # as many wires as it has rows/columns, so aggregation happens
        # over the block's *local* wire sets and only the final
        # scatter-add touches the (num_wires, num_wires) output.
        for (a, b), (kind, first, second) in self._blocks.items():
            wr = wire_tree[self.node_lo[a]:self.node_hi[a]]
            wc = wire_tree[self.node_lo[b]:self.node_hi[b]]
            local_r, inv_r = np.unique(wr, return_inverse=True)
            local_c, inv_c = np.unique(wc, return_inverse=True)
            if kind == _KIND_DENSE:
                row_agg = np.zeros((local_r.size, wc.size))
                np.add.at(row_agg, inv_r, first)
                contribution = np.zeros((local_c.size, local_r.size))
                np.add.at(contribution, inv_c, row_agg.T)
                contribution = contribution.T
            else:
                u_agg = np.zeros((local_r.size, first.shape[1]))
                np.add.at(u_agg, inv_r, first)
                v_agg = np.zeros((local_c.size, second.shape[0]))
                np.add.at(v_agg, inv_c, second.T)
                contribution = u_agg @ v_agg.T
            out[np.ix_(local_r, local_c)] += contribution
            if a != b:
                out[np.ix_(local_c, local_r)] += contribution.T
        return out

    # ------------------------------------------------------------------
    # Introspection / health
    # ------------------------------------------------------------------
    def compression_stats(self) -> Dict[str, Any]:
        kinds = self.block_table[:, 2] if self.block_table.size else np.zeros(0)
        stored = (
            self.dense_data.nbytes
            + self.lr_data.nbytes
            + self.block_table.nbytes
            + self.perm.nbytes
            + self.node_lo.nbytes * 4
        )
        dense = 8 * self.n * self.n
        return {
            "n": self.n,
            "blocks": int(self.block_table.shape[0]),
            "dense_blocks": int(
                np.sum((kinds == _KIND_DENSE) | (kinds == _KIND_DENSE_SPILL))
            ),
            "lowrank_blocks": int(np.sum(kinds == _KIND_LOWRANK)),
            "spill_blocks": int(np.sum(kinds == _KIND_DENSE_SPILL)),
            "stored_bytes": int(stored),
            "dense_bytes": int(dense),
            "compression_ratio": dense / max(stored, 1),
        }

    def validate_finite(self, name: str) -> None:
        """Raise the health taxonomy's non-finite error on bad factors."""
        from repro.health.solvers import require_finite

        require_finite(self.dense_data, name=f"{name} (near-field blocks)")
        require_finite(self.lr_data, name=f"{name} (low-rank factors)")

    def fingerprint_payload(self) -> Tuple[Any, ...]:
        """Content identity for :func:`stable_hash` (no materialization)."""
        return (
            "hierarchical",
            self.n,
            self.perm,
            self.node_lo,
            self.node_hi,
            self.node_left,
            self.node_right,
            self.block_table,
            self.dense_data,
            self.lr_data,
            self.config,
        )

    # ------------------------------------------------------------------
    # Serialization (pickle + shared-memory columns)
    # ------------------------------------------------------------------
    def columns(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """``(meta, arrays)`` split for the shared-memory column store."""
        meta = {
            "n": self.n,
            "config": {
                "leaf_size": self.config.leaf_size,
                "eta": self.config.eta,
                "cutoff": self.config.cutoff,
                "max_rank": self.config.max_rank,
            },
        }
        arrays = {
            "perm": self.perm,
            "node_lo": self.node_lo,
            "node_hi": self.node_hi,
            "node_left": self.node_left,
            "node_right": self.node_right,
            "block_table": self.block_table,
            "dense_data": self.dense_data,
            "lr_data": self.lr_data,
        }
        return meta, arrays

    @classmethod
    def from_columns(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "LazyInductance":
        return cls(
            n=meta["n"],
            perm=arrays["perm"],
            node_lo=arrays["node_lo"],
            node_hi=arrays["node_hi"],
            node_left=arrays["node_left"],
            node_right=arrays["node_right"],
            block_table=arrays["block_table"],
            dense_data=arrays["dense_data"],
            lr_data=arrays["lr_data"],
            config=HierarchicalConfig(**meta["config"]),
        )

    def __getstate__(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        return self.columns()

    def __setstate__(
        self, state: Tuple[Dict[str, Any], Dict[str, np.ndarray]]
    ) -> None:
        meta, arrays = state
        rebuilt = LazyInductance.from_columns(meta, arrays)
        self.__dict__.update(rebuilt.__dict__)


def is_lazy_block(block: Any) -> bool:
    """True for hierarchical operator blocks (vs plain dense ndarrays)."""
    return isinstance(block, LazyInductance)


def dense_block(block: Any) -> np.ndarray:
    """A plain ndarray view of a block, materializing operators."""
    if isinstance(block, LazyInductance):
        return block.toarray()
    return np.asarray(block)


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def _filament_boxes(
    lengths: np.ndarray,
    widths: np.ndarray,
    thicknesses: np.ndarray,
    starts: np.ndarray,
    centers: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-filament AABBs in (width dir, thickness dir, axial) space."""
    n = lengths.size
    box_min = np.empty((n, 3))
    box_max = np.empty((n, 3))
    box_min[:, 0] = centers[:, 0] - widths / 2.0
    box_max[:, 0] = centers[:, 0] + widths / 2.0
    box_min[:, 1] = centers[:, 1] - thicknesses / 2.0
    box_max[:, 1] = centers[:, 1] + thicknesses / 2.0
    box_min[:, 2] = starts
    box_max[:, 2] = starts + lengths
    return box_min, box_max


#: Plan-row kinds (column 2 of a *plan* row, before evaluation): the
#: planner decides dense vs admissible; only the executed table knows
#: whether an admissible block actually compressed.
_PLAN_DENSE = 0
_PLAN_LOWRANK = 1


def _plan_blocks(
    node_lo: np.ndarray,
    node_hi: np.ndarray,
    node_left: np.ndarray,
    node_right: np.ndarray,
    nbox_min: np.ndarray,
    nbox_max: np.ndarray,
    diam: np.ndarray,
    config: HierarchicalConfig,
) -> Tuple[np.ndarray, int, int]:
    """The geometry-only half of the build: the block list with offsets.

    Traverses the cluster tree exactly like the original single-pass
    builder, but evaluates *nothing* -- it only decides, per emitted
    pair, dense (near field) or admissible (far field), and assigns
    every block its pool offset up front:

    - dense blocks get exact ``ra * rb`` slices of the dense pool;
    - admissible blocks get a ``cap * (ra + rb)`` *reservation* in the
      factor pool, where ``cap = min(max_rank, ra, rb)`` is the largest
      rank ACA may return.

    With offsets fixed before any kernel work, evaluation of the rows
    is embarrassingly parallel: workers write disjoint slices of two
    preallocated pools and never ship block payloads back.  Returns
    ``(plan, dense_total, lr_total)`` with plan rows
    ``(a, b, plan_kind, offset, cap)``.
    """
    rows: List[Tuple[int, int, int, int, int]] = []
    dense_total = 0
    lr_total = 0
    stack: List[Tuple[int, int]] = [(0, 0)]
    while stack:
        a, b = stack.pop()
        size_a = int(node_hi[a] - node_lo[a])
        size_b = int(node_hi[b] - node_lo[b])
        leaf_a = node_left[a] == -1
        leaf_b = node_left[b] == -1
        if a == b:
            if leaf_a:
                rows.append((a, a, _PLAN_DENSE, dense_total, 0))
                dense_total += size_a * size_a
            else:
                left, right = int(node_left[a]), int(node_right[a])
                stack.append((left, left))
                stack.append((left, right))
                stack.append((right, right))
            continue
        admissible = False
        if config.compress and min(size_a, size_b) >= 8:
            dist = _box_distance(
                nbox_min[a], nbox_max[a], nbox_min[b], nbox_max[b]
            )
            admissible = max(diam[a], diam[b]) <= config.eta * dist
        if admissible:
            cap = min(config.max_rank, size_a, size_b)
            rows.append((a, b, _PLAN_LOWRANK, lr_total, cap))
            lr_total += cap * (size_a + size_b)
            continue
        if leaf_a and leaf_b:
            rows.append((a, b, _PLAN_DENSE, dense_total, 0))
            dense_total += size_a * size_b
            continue
        kids_a = [a] if leaf_a else [int(node_left[a]), int(node_right[a])]
        kids_b = [b] if leaf_b else [int(node_left[b]), int(node_right[b])]
        # Only split the larger side when both have children, keeping
        # block counts (and descent work) low for unbalanced pairs.
        if not leaf_a and not leaf_b:
            if size_a >= size_b:
                kids_b = [b]
            else:
                kids_a = [a]
        for ka in kids_a:
            for kb in kids_b:
                stack.append((ka, kb) if node_lo[ka] <= node_lo[kb] else (kb, ka))
    plan = np.asarray(rows, dtype=np.int64).reshape(len(rows), 5)
    return plan, dense_total, lr_total


def _execute_plan_rows(
    evaluator: _PairEvaluator,
    node_lo: np.ndarray,
    node_hi: np.ndarray,
    plan: np.ndarray,
    dense_data: np.ndarray,
    lr_data: np.ndarray,
    tol: float,
) -> Tuple[np.ndarray, np.ndarray, Dict[int, np.ndarray]]:
    """Evaluate the blocks of ``plan`` into their preassigned slices.

    The one evaluation routine shared by the serial path (private
    arrays) and the pool workers (shared-memory pool views), which is
    what makes serial- and parallel-built operators bit-identical: the
    kernel call sequence per block is fixed by the plan row, regardless
    of which process runs it.

    Returns ``(kinds, ranks, spills)`` per plan row.  ``kinds`` uses
    the final block-table vocabulary; an admissible block whose ACA did
    not converge becomes :data:`_KIND_DENSE_SPILL` -- written into its
    factor-pool reservation when it fits (``ra * rb <= cap * (ra +
    rb)``, i.e. whenever ``min(ra, rb) <= cap``), otherwise returned in
    ``spills`` for the owner to append at compaction time.
    """
    count = plan.shape[0]
    kinds = np.empty(count, dtype=np.int64)
    ranks = np.zeros(count, dtype=np.int64)
    spills: Dict[int, np.ndarray] = {}
    for idx in range(count):
        a, b, plan_kind, offset, cap = (int(v) for v in plan[idx])
        rows = np.arange(node_lo[a], node_hi[a])
        cols = np.arange(node_lo[b], node_hi[b])
        if plan_kind == _PLAN_DENSE:
            block = evaluator.block(rows, cols)
            dense_data[offset:offset + block.size] = block.ravel()
            kinds[idx] = _KIND_DENSE
            add_counter("hier_dense_blocks")
            continue
        factors = _aca(evaluator, rows, cols, tol, cap)
        if factors is not None:
            u, v = factors
            lr_data[offset:offset + u.size] = u.ravel()
            lr_data[offset + u.size:offset + u.size + v.size] = v.ravel()
            kinds[idx] = _KIND_LOWRANK
            ranks[idx] = u.shape[1]
            add_counter("hier_lowrank_blocks")
            continue
        add_counter("hier_aca_fallbacks")
        block = evaluator.block(rows, cols)
        kinds[idx] = _KIND_DENSE_SPILL
        if block.size <= cap * (rows.size + cols.size):
            lr_data[offset:offset + block.size] = block.ravel()
        else:
            spills[idx] = block
            add_counter("hier_spill_blocks")
        add_counter("hier_dense_blocks")
    return kinds, ranks, spills


def _assemble_operator(
    n: int,
    perm: np.ndarray,
    node_lo: np.ndarray,
    node_hi: np.ndarray,
    node_left: np.ndarray,
    node_right: np.ndarray,
    config: HierarchicalConfig,
    plan: np.ndarray,
    kinds: np.ndarray,
    ranks: np.ndarray,
    spills: Dict[int, np.ndarray],
    dense_data: np.ndarray,
    lr_scratch: np.ndarray,
) -> LazyInductance:
    """Compact the executed plan into the final operator.

    The dense pool's planned layout is already exact, so ``dense_data``
    is adopted as-is (in the parallel path that is a zero-copy
    shared-memory view).  The factor pool is *reserved* per admissible
    block, so actual ranks leave gaps; those are squeezed out here into
    a private, tightly packed ``lr_data`` -- fingerprints hash the
    pools, and reservation gaps would otherwise hash nondeterministic
    garbage.  Spilled dense fallbacks are appended in plan order.
    """
    count = plan.shape[0]
    sizes_a = node_hi[plan[:, 0]] - node_lo[plan[:, 0]]
    sizes_b = node_hi[plan[:, 1]] - node_lo[plan[:, 1]]
    lr_sizes = np.where(
        kinds == _KIND_LOWRANK,
        ranks * (sizes_a + sizes_b),
        np.where(kinds == _KIND_DENSE_SPILL, sizes_a * sizes_b, 0),
    )
    lr_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(lr_sizes)]
    )
    lr_data = np.empty(int(lr_offsets[-1]))
    block_table = np.zeros((count, 5), dtype=np.int64)
    block_table[:, 0] = plan[:, 0]
    block_table[:, 1] = plan[:, 1]
    block_table[:, 2] = kinds
    block_table[:, 4] = np.where(kinds == _KIND_LOWRANK, ranks, 0)
    for idx in range(count):
        if kinds[idx] == _KIND_DENSE:
            block_table[idx, 3] = plan[idx, 3]
            continue
        out_offset = int(lr_offsets[idx])
        size = int(lr_sizes[idx])
        block_table[idx, 3] = out_offset
        spilled = spills.get(idx)
        if spilled is not None:
            lr_data[out_offset:out_offset + size] = spilled.ravel()
        else:
            src = int(plan[idx, 3])
            lr_data[out_offset:out_offset + size] = lr_scratch[src:src + size]
    return LazyInductance(
        n=n,
        perm=perm,
        node_lo=node_lo,
        node_hi=node_hi,
        node_left=node_left,
        node_right=node_right,
        block_table=block_table,
        dense_data=dense_data,
        lr_data=lr_data,
        config=config,
    )


# ----------------------------------------------------------------------
# Parallel assembly through shared-memory pools
# ----------------------------------------------------------------------
#: Per-worker attachment cache, keyed by segment name: a pool worker
#: maps the geometry segment (and builds its evaluator) once, then
#: reuses both across every chunk it executes.  Flushed through the
#: deferred-close-safe ``close`` paths at interpreter exit so a worker
#: shutting down with live evaluator views never trips an unraisable
#: ``BufferError`` out of ``SharedMemory.__del__``.
_ASSEMBLY_CACHE: Dict[str, Any] = {}


def _clear_assembly_cache() -> None:
    for entry in _ASSEMBLY_CACHE.values():
        target = entry[0] if isinstance(entry, tuple) else entry
        target.close()
    _ASSEMBLY_CACHE.clear()


atexit.register(_clear_assembly_cache)


def _attach_geometry(name: str) -> Tuple[Any, np.ndarray, np.ndarray, float]:
    entry = _ASSEMBLY_CACHE.get(name)
    if entry is None:
        from repro.service.shm import SharedColumnBlock

        block = SharedColumnBlock.attach(name)
        columns = block.arrays()
        evaluator = _PairEvaluator(
            columns["lengths"],
            columns["widths"],
            columns["thicknesses"],
            columns["starts"],
            columns["centers"],
            columns["orig"],
            bool(block.meta["gmd_correction"]),
        )
        entry = (
            block,
            evaluator,
            columns["node_lo"],
            columns["node_hi"],
            float(block.meta["cutoff"]),
        )
        _ASSEMBLY_CACHE[name] = entry
    _, evaluator, node_lo, node_hi, tol = entry
    return evaluator, node_lo, node_hi, tol


def _attach_pool(name: str) -> Any:
    pool = _ASSEMBLY_CACHE.get(name)
    if pool is None:
        from repro.service.shm import SharedArrayPool

        pool = SharedArrayPool.attach(name)
        _ASSEMBLY_CACHE[name] = pool
    return pool


def _assembly_chunk_worker(
    task: Tuple[str, str, str, np.ndarray, np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[int, np.ndarray], Any]:
    """Evaluate one chunk of plan rows (module-level, hence picklable).

    Everything bulky travels by name: the worker attaches the geometry
    segment and both pools, evaluates its rows *in place* into the
    pools' shared mappings, and returns only the per-row outcome
    vectors (kind, rank), rare oversized spill blocks, and its stage
    profile -- never the factor payloads themselves.
    """
    geometry_name, dense_name, lr_name, indices, rows = task
    evaluator, node_lo, node_hi, tol = _attach_geometry(geometry_name)
    dense_pool = _attach_pool(dense_name)
    lr_pool = _attach_pool(lr_name)
    with collect() as profile:
        with stage("hier_build_workers"):
            kinds, ranks, spills = _execute_plan_rows(
                evaluator,
                node_lo,
                node_hi,
                rows,
                dense_pool.data,
                lr_pool.data,
                tol,
            )
    return indices, kinds, ranks, spills, profile


def _balanced_chunks(
    plan: np.ndarray,
    node_lo: np.ndarray,
    node_hi: np.ndarray,
    pieces: int,
) -> List[np.ndarray]:
    """Split plan rows into contiguous chunks of roughly equal cost.

    Cost model: a dense block evaluates ``ra * rb`` kernel entries; an
    admissible block's ACA touches about ``2 * cap * (ra + rb)`` (rows
    plus columns, with recompression overhead).  Contiguous splits keep
    the executor's pool writes sequential per worker.
    """
    count = plan.shape[0]
    if count == 0:
        return []
    sizes_a = (node_hi[plan[:, 0]] - node_lo[plan[:, 0]]).astype(float)
    sizes_b = (node_hi[plan[:, 1]] - node_lo[plan[:, 1]]).astype(float)
    cost = np.where(
        plan[:, 2] == _PLAN_LOWRANK,
        2.0 * plan[:, 4] * (sizes_a + sizes_b),
        sizes_a * sizes_b,
    )
    cumulative = np.cumsum(cost)
    pieces = max(1, min(int(pieces), count))
    targets = cumulative[-1] * np.arange(1, pieces) / pieces
    cuts = np.searchsorted(cumulative, targets) + 1
    edges = np.unique(np.concatenate([[0], cuts, [count]]))
    return [
        np.arange(edges[i], edges[i + 1])
        for i in range(edges.size - 1)
        if edges[i + 1] > edges[i]
    ]


def _release_pool(pool: Any) -> None:
    pool.close()
    pool.unlink()


def _parallel_assemble(
    evaluator_arrays: Dict[str, np.ndarray],
    gmd_correction: bool,
    n: int,
    perm: np.ndarray,
    node_lo: np.ndarray,
    node_hi: np.ndarray,
    node_left: np.ndarray,
    node_right: np.ndarray,
    config: HierarchicalConfig,
    plan: np.ndarray,
    dense_total: int,
    lr_total: int,
    jobs: int,
) -> LazyInductance:
    """Fan the plan out over a process pool writing shared-memory pools.

    The owner publishes the (tree-ordered) geometry as a read-only
    column segment and preallocates the two data pools at their planned
    sizes; workers attach by name and write their rows' factors
    straight into the pools, so with ``10^5+`` blocks nothing block-
    sized is ever pickled in either direction.  The owner then adopts
    the dense pool zero-copy as the operator's near-field storage (the
    segment is released when the operator is garbage-collected) and
    compacts the reserved factor pool into a private array.
    """
    from repro.service.shm import SharedArrayPool, SharedColumnBlock

    geometry = SharedColumnBlock.create(
        meta={"gmd_correction": gmd_correction, "cutoff": config.cutoff},
        arrays=evaluator_arrays,
    )
    dense_pool = SharedArrayPool.create(dense_total)
    lr_pool = SharedArrayPool.create(lr_total)
    try:
        chunks = _balanced_chunks(plan, node_lo, node_hi, jobs * 4)
        tasks = [
            (geometry.name, dense_pool.name, lr_pool.name, chunk, plan[chunk])
            for chunk in chunks
        ]
        results = parallel_map(
            _assembly_chunk_worker, tasks, jobs=jobs, serial_threshold=0
        )
        count = plan.shape[0]
        kinds = np.empty(count, dtype=np.int64)
        ranks = np.zeros(count, dtype=np.int64)
        spills: Dict[int, np.ndarray] = {}
        profiles = []
        for indices, chunk_kinds, chunk_ranks, chunk_spills, profile in results:
            kinds[indices] = chunk_kinds
            ranks[indices] = chunk_ranks
            for local, block in chunk_spills.items():
                spills[int(indices[local])] = block
            profiles.append(profile)
        owner_profile = active_profile()
        if owner_profile is not None:
            owner_profile.merge_workers(profiles)
        add_counter("hier_parallel_chunks", len(tasks))
        dense_view = dense_pool.data
        dense_view.flags.writeable = False
        lr_scratch = lr_pool.data
        operator = _assemble_operator(
            n,
            perm,
            node_lo,
            node_hi,
            node_left,
            node_right,
            config,
            plan,
            kinds,
            ranks,
            spills,
            dense_view,
            lr_scratch,
        )
        del lr_scratch
        # The operator's near-field blocks are views into the dense
        # pool; tie the segment's lifetime to the operator (the close
        # defers -- leaking one mapping -- if views somehow outlive it).
        weakref.finalize(operator, _release_pool, dense_pool)
    except BaseException:
        dense_pool.close()
        dense_pool.unlink()
        raise
    finally:
        geometry.close()
        geometry.unlink()
        lr_pool.close()
        lr_pool.unlink()
    return operator


def build_axis_operator(
    system: FilamentSystem,
    indices: List[int],
    axis: Axis,
    gmd_correction: bool = True,
    config: HierarchicalConfig = DEFAULT_CONFIG,
    jobs: Optional[int] = None,
) -> LazyInductance:
    """The hierarchical operator of one axis group.

    ``jobs`` controls block assembly: ``None`` or ``1`` evaluates the
    plan serially in-process; ``jobs > 1`` fans the plan out over a
    process pool writing shared-memory pools (see
    :func:`_parallel_assemble`).  Both paths execute the identical
    plan, so the resulting operators are bit-identical -- the
    equivalence tests assert exactly that.
    """
    lengths, widths, thicknesses, starts, centers = axis_geometry(
        system, indices, axis
    )
    n = lengths.size
    box_min, box_max = _filament_boxes(
        lengths, widths, thicknesses, starts, centers
    )
    (
        perm,
        node_lo,
        node_hi,
        node_left,
        node_right,
        nbox_min,
        nbox_max,
    ) = _build_cluster_tree(box_min, box_max, config.leaf_size)
    diam = np.array(
        [_box_diameter(nbox_min[k], nbox_max[k]) for k in range(node_lo.size)]
    )
    plan, dense_total, lr_total = _plan_blocks(
        node_lo, node_hi, node_left, node_right, nbox_min, nbox_max, diam, config
    )
    workers = 1 if jobs is None else max(int(jobs), 1)
    if workers > 1 and plan.shape[0] > 1:
        operator = _parallel_assemble(
            {
                "lengths": lengths[perm],
                "widths": widths[perm],
                "thicknesses": thicknesses[perm],
                "starts": starts[perm],
                "centers": centers[perm],
                "orig": perm,
                "node_lo": node_lo,
                "node_hi": node_hi,
            },
            gmd_correction,
            n,
            perm,
            node_lo,
            node_hi,
            node_left,
            node_right,
            config,
            plan,
            dense_total,
            lr_total,
            workers,
        )
    else:
        evaluator = _PairEvaluator(
            lengths[perm],
            widths[perm],
            thicknesses[perm],
            starts[perm],
            centers[perm],
            perm,
            gmd_correction,
        )
        dense_data = np.empty(dense_total)
        lr_scratch = np.empty(lr_total)
        kinds, ranks, spills = _execute_plan_rows(
            evaluator, node_lo, node_hi, plan, dense_data, lr_scratch,
            config.cutoff,
        )
        operator = _assemble_operator(
            n,
            perm,
            node_lo,
            node_hi,
            node_left,
            node_right,
            config,
            plan,
            kinds,
            ranks,
            spills,
            dense_data,
            lr_scratch,
        )
    stats = operator.compression_stats()
    add_counter("hier_stored_bytes", stats["stored_bytes"])
    return operator


def hierarchical_blocks(
    system: FilamentSystem,
    gmd_correction: bool = True,
    config: HierarchicalConfig = DEFAULT_CONFIG,
    jobs: Optional[int] = None,
) -> Dict[Axis, Tuple[List[int], LazyInductance]]:
    """Per-direction hierarchical operators ``{axis: (indices, op)}``.

    The drop-in counterpart of
    :func:`repro.extraction.inductance.inductance_blocks` for systems
    too large to hold dense: same axis grouping, same index lists, but
    each block is a :class:`LazyInductance` instead of an ndarray.
    ``jobs > 1`` assembles each axis operator through the shared-memory
    process pool (content-identical to the serial build).
    """
    with stage("hier_build"):
        blocks: Dict[Axis, Tuple[List[int], LazyInductance]] = {}
        for axis, indices in system.indices_by_axis().items():
            blocks[axis] = (
                indices,
                build_axis_operator(
                    system, indices, axis, gmd_correction, config, jobs=jobs
                ),
            )
        return blocks


def iter_axis_blocks(
    parasitics_blocks: Dict[Axis, Tuple[List[int], Any]],
) -> Iterator[Tuple[Axis, List[int], Any]]:
    """Uniform iteration over dense-or-hierarchical block dicts."""
    for axis, (indices, block) in parasitics_blocks.items():
        yield axis, indices, block
