"""The design-space sweep suite (``BENCH_noise_sweep.json``).

Counterpart of :mod:`repro.bench.noise` for the sweep layer
(:mod:`repro.noise.sweep`): it runs one sign-off scenario family --
schedule densities over a segmented non-aligned bus with the paper's
noise-window (``nw``) VPEC model -- through both sign-off styles and
commits both timings:

- ``noise_sweep_family`` / variant ``sequential``: the status-quo flow,
  one fully cold sign-off per scenario -- fresh extraction, fresh
  inductive model build, own tiered scan (``cache=None`` everywhere).
  This is what running ``repro noise`` once per design point costs.
- ``noise_sweep_family`` / variant ``batched``: the same family as one
  :func:`~repro.noise.sweep.run_sweep` job with a fresh disk cache --
  scenarios share one extraction and one model build through the
  content-addressed cache, and their escalated victims merge into
  multi-RHS transient batches.

The committed ratio ``sequential / batched`` is the headline sweep
speedup.  The suite *raises* if the two flows disagree: escalation
decisions must match exactly, and per-victim peaks must agree to
:data:`_PEAK_RTOL`.  Peaks are not compared bit-for-bit here because
SuperLU's blocked multi-RHS triangular solves round differently from
its single-column path on large factors (observed relative differences
sit near 1e-10; the golden tests pin exact bit-identity in the
small-system regime where the kernels coincide).

The default family (``segments=20``, 24 densities) sizes the inductive
model so one build costs seconds -- the regime the sweep exists for.
CI smoke runs shrink it with ``segments=6`` / fewer densities; both
profiles' entries live in the committed trajectory.
"""

from __future__ import annotations

import tempfile
import time
from typing import List, Sequence

import numpy as np

from repro.bench.results import BenchResult, array_checksum
from repro.bench.runner import _best_time
from repro.experiments.runner import nw_spec
from repro.noise.engine import NoiseConfig, NoiseScanReport, run_noise_scan
from repro.noise.sweep import SweepGrid, run_sweep, sweep_report_checksum
from repro.pipeline.cache import PipelineCache, cached_extract

SWEEP_KERNELS = ("noise_sweep_family",)

#: Relative tolerance of the sequential-vs-batched peak comparison
#: (see the module docstring; observed differences are ~1e-10).
_PEAK_RTOL = 1e-6

#: Coupling threshold of the family's noise-window model.
_NW_THRESHOLD = 1.5e-4

#: Screen threshold fraction placing exactly one victim per scenario on
#: the simulate side of the boundary (the sweep's steady-state shape:
#: most victims screened out, a thin escalated band).
_THRESHOLD_FRACTION = 0.55


def sweep_grid(segments: int = 20, num_densities: int = 24) -> SweepGrid:
    """The bench family: a density sweep of a segmented 16-bit bus.

    Every scenario shares one geometry/model (the shared-cache leg of
    the speedup) and escalates exactly one victim (the batched-RHS
    leg); ``segments`` scales the inductive model-build cost cubically,
    ``num_densities`` the family size.
    """
    base = NoiseConfig(
        threshold_fraction=_THRESHOLD_FRACTION,
        period=600e-12,
        driver_resistance=150.0,
        dt=1e-12,
    )
    return SweepGrid(
        topologies=("nonaligned_bus",),
        widths=(16,),
        drivers=(150.0,),
        densities=tuple(np.round(np.linspace(1.5, 3.35, num_densities), 6)),
        segments=(segments,),
        base=base,
        model=nw_spec(_NW_THRESHOLD),
    )


def _sequential_scan(grid: SweepGrid) -> List[NoiseScanReport]:
    """One fully cold independent sign-off per scenario."""
    reports = []
    for scenario in grid.scenarios():
        parasitics = cached_extract(scenario.geometry().build(), cache=None)
        reports.append(
            run_noise_scan(
                parasitics,
                grid.model,
                scenario.config(grid.base),
                cache=None,
            )
        )
    return reports


def _scan_checksum(reports: Sequence[NoiseScanReport]) -> str:
    """Same digest formula as :func:`sweep_report_checksum`."""
    peaks = np.concatenate(
        [[v.effective_peak for v in report.victims] for report in reports]
    )
    escalated = np.concatenate(
        [[float(v.escalated) for v in report.victims] for report in reports]
    )
    return array_checksum(peaks, escalated)


def _assert_equivalent(
    sequential: Sequence[NoiseScanReport], batched
) -> None:
    """Raise unless both flows agree (decisions exact, peaks close)."""
    for scan, result in zip(sequential, batched.results):
        for theirs, ours in zip(scan.victims, result.report.victims):
            if theirs.escalated != ours.escalated:
                raise RuntimeError(
                    f"escalation decision diverged for scenario "
                    f"{result.scenario.label} wire {theirs.wire}: "
                    f"sequential {theirs.escalated}, batched {ours.escalated}"
                )
            if not np.isclose(
                ours.effective_peak, theirs.effective_peak, rtol=_PEAK_RTOL
            ):
                raise RuntimeError(
                    f"peak diverged for scenario {result.scenario.label} "
                    f"wire {theirs.wire}: sequential "
                    f"{theirs.effective_peak!r}, batched "
                    f"{ours.effective_peak!r}"
                )


def run_sweep_suite(
    segments: int = 20,
    num_densities: int = 24,
    repeats: int = 3,
) -> List[BenchResult]:
    """Execute the sweep bench; one :class:`BenchResult` per variant.

    The batched arm runs best-of-``repeats``, each repeat against a
    fresh (cold) disk cache in a temporary directory.  The sequential
    arm runs once: it is itself a sum of ``num_densities`` independent
    scans, so its relative timing variance is already far below a
    single run's.  One untimed extraction warms the process-global
    geometry caches so neither arm pays one-time setup.
    """
    grid = sweep_grid(segments=segments, num_densities=num_densities)
    scenarios = grid.scenarios()
    cached_extract(scenarios[0].geometry().build(), cache=None)

    begin = time.perf_counter()
    sequential = _sequential_scan(grid)
    sequential_seconds = time.perf_counter() - begin

    def batched_run():
        with tempfile.TemporaryDirectory() as tmp:
            return run_sweep(grid, parallel=1, cache=PipelineCache(tmp))

    batched_seconds, batched = _best_time(batched_run, repeats)
    _assert_equivalent(sequential, batched)

    size = len(scenarios)
    return [
        BenchResult(
            kernel="noise_sweep_family",
            variant="sequential",
            size=size,
            seconds=sequential_seconds,
            checksum=_scan_checksum(sequential),
        ),
        BenchResult(
            kernel="noise_sweep_family",
            variant="batched",
            size=size,
            seconds=batched_seconds,
            checksum=sweep_report_checksum(batched),
        ),
    ]
