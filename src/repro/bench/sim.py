"""The simulation-backend benchmark suite (``BENCH_sim.json``).

Counterpart of :mod:`repro.bench.runner` for the circuit layer: where
the kernel suite times extraction and windowing, this suite times the
*simulation side* -- netlist construction, MNA assembly, and the
transient/AC engines -- against the object-path seed references of
:mod:`repro.bench.reference`:

- ``peec_assembly_bus256``: full PEEC model build plus MNA assembly of
  the 256-bit Fig. 8 bus (columnar stores + per-class vectorized stamps
  vs one Python object and three list-appends per stamp);
- ``transient_bus64``: a fixed-step transient run on the 64-bit bus
  (batched incidence-matrix RHS + masked probe gather vs per-step
  Python RHS/probe loops);
- ``ac_sweep_bus64``: the AC frequency sweep (reused permuted-CSC
  structure + one sweep-wide probe gather vs per-point column
  re-permutation and scalar probe loops).

Checksums digest the assembled ``G``/``C`` matrices and the probe
waveforms, so the trajectory enforces that the columnar fast path and
the object path compute the same numbers, not just that it is fast.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.reference import (
    seed_ac_analysis,
    seed_build_mna,
    seed_build_peec,
    seed_transient_analysis,
)
from repro.bench.results import BenchResult, array_checksum
from repro.bench.runner import _best_time
from repro.circuit.ac import ac_analysis, logspace_frequencies
from repro.circuit.mna import build_mna
from repro.circuit.sources import step
from repro.circuit.transient import transient_analysis
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.peec.builder import attach_bus_testbench
from repro.peec.model import build_peec

SIM_KERNELS = (
    "peec_assembly_bus256",
    "transient_bus64",
    "ac_sweep_bus64",
)

#: Every sim kernel has an object-path seed variant.
SIM_SEED_KERNELS = SIM_KERNELS

#: Transient workload: the paper's standard excitation, 200 steps.
_T_STOP = 200e-12
_DT = 1e-12
_RISE = 10e-12

#: AC workload: 1 Hz .. 10 GHz, 10 points per decade (101 points).
_AC_POINTS_PER_DECADE = 10


def _mna_checksum(system) -> str:
    g = system.G.tocoo()
    c = system.C.tocoo()
    return array_checksum(
        np.asarray(g.todense()), np.asarray(c.todense())
    )


def _testbench_circuits(sim_size: int):
    """Columnar and seed-built simulation circuits (identical netlists)."""
    parasitics = extract(aligned_bus(sim_size))
    stimulus = step(1.0, rise_time=_RISE)

    model = build_peec(parasitics)
    attach_bus_testbench(model.skeleton, stimulus)
    victim = model.skeleton.ports[1].far

    seed_model = seed_build_peec(parasitics)
    attach_bus_testbench(seed_model.skeleton, stimulus)
    return model.circuit, seed_model.circuit, victim


def run_sim_suite(
    kernels: Optional[Sequence[str]] = None,
    size: int = 256,
    sim_size: int = 64,
    repeats: int = 3,
    include_seed: bool = False,
) -> List[BenchResult]:
    """Execute the sim suite; one :class:`BenchResult` per (kernel, variant).

    ``size`` scales the assembly workload and ``sim_size`` the
    transient/AC workloads (shrink both for tests); kernel names keep
    their canonical workload spellings, with the actual size recorded in
    the ``size`` field, exactly as :func:`repro.bench.runner.run_suite`
    does.
    """
    selected = tuple(kernels) if kernels is not None else SIM_KERNELS
    unknown = set(selected) - set(SIM_KERNELS)
    if unknown:
        raise ValueError(f"unknown kernels: {sorted(unknown)}")

    results: List[BenchResult] = []

    if "peec_assembly_bus256" in selected:
        parasitics = extract(aligned_bus(size))

        def columnar_assembly():
            return build_mna(build_peec(parasitics).circuit)

        def object_assembly():
            return seed_build_mna(seed_build_peec(parasitics).circuit)

        seconds, system = _best_time(columnar_assembly, repeats)
        results.append(
            BenchResult(
                kernel="peec_assembly_bus256",
                variant="columnar",
                size=size,
                seconds=seconds,
                checksum=_mna_checksum(system),
            )
        )
        if include_seed:
            seconds, system = _best_time(object_assembly, repeats)
            results.append(
                BenchResult(
                    kernel="peec_assembly_bus256",
                    variant="seed",
                    size=size,
                    seconds=seconds,
                    checksum=_mna_checksum(system),
                )
            )

    need_sim = {"transient_bus64", "ac_sweep_bus64"} & set(selected)
    if need_sim:
        circuit, seed_circuit, victim = _testbench_circuits(sim_size)

    if "transient_bus64" in selected:
        seconds, result = _best_time(
            lambda: transient_analysis(
                circuit, _T_STOP, _DT, probe_nodes=[victim]
            ),
            repeats,
        )
        results.append(
            BenchResult(
                kernel="transient_bus64",
                variant="columnar",
                size=sim_size,
                seconds=seconds,
                checksum=array_checksum(result.voltage(victim).v),
            )
        )
        if include_seed:
            seconds, (times, volt) = _best_time(
                lambda: seed_transient_analysis(
                    seed_circuit, _T_STOP, _DT, probe_nodes=[victim]
                ),
                repeats,
            )
            results.append(
                BenchResult(
                    kernel="transient_bus64",
                    variant="seed",
                    size=sim_size,
                    seconds=seconds,
                    checksum=array_checksum(volt[0]),
                )
            )

    if "ac_sweep_bus64" in selected:
        freqs = logspace_frequencies(
            1.0, 10e9, points_per_decade=_AC_POINTS_PER_DECADE
        )
        seconds, result = _best_time(
            lambda: ac_analysis(circuit, freqs, probe_nodes=[victim]),
            repeats,
        )
        response = np.asarray(result.node_voltages[victim])
        results.append(
            BenchResult(
                kernel="ac_sweep_bus64",
                variant="columnar",
                size=sim_size,
                seconds=seconds,
                checksum=array_checksum(response.real, response.imag),
            )
        )
        if include_seed:
            seconds, (_, volt) = _best_time(
                lambda: seed_ac_analysis(
                    seed_circuit, freqs, probe_nodes=[victim]
                ),
                repeats,
            )
            results.append(
                BenchResult(
                    kernel="ac_sweep_bus64",
                    variant="seed",
                    size=sim_size,
                    seconds=seconds,
                    checksum=array_checksum(volt[0].real, volt[0].imag),
                )
            )

    return results
