"""The service load-test suite (``BENCH_service.json``).

Counterpart of :mod:`repro.bench.noise` for :mod:`repro.service`: it
boots a real :class:`~repro.service.server.ServiceServer`, fires a
large mixed stream of extraction / simulation / noise-scan requests at
it over the JSON-lines TCP protocol, and commits the latency
distribution plus a result digest to the benchmark trajectory:

- ``service_mixed_load`` / variants ``p50``, ``p99``, ``per_request``,
  ``wall``: per-request latency percentiles, mean time per request
  (the inverse of throughput, so the regression gate's
  lower-is-better convention holds), and total wall time of the run.
  All four share one checksum: a digest of every *unique* request's
  content key paired with its result checksum, so a numerically wrong
  result fails ``--check`` no matter which of the N duplicates
  produced it.
- ``service_oneshot_equiv`` / variant ``direct``: the same unique
  workloads computed through :func:`repro.service.workers.oneshot_result`
  -- the exact one-shot CLI path, with no service, shared memory,
  sharding, or memo in the loop.  Its checksum uses the same digest
  formula, and the suite *raises* if the two digests differ, so
  "service results are checksum-identical to one-shot runs" is an
  executed property of every bench run, and the committed trajectory
  keeps both pinned.

The request stream interleaves duplicates deterministically (seeded
shuffle), so the run exercises the memo path, the shared-memory
extraction cache, and the sharded escalation tier together -- p50
reflects the memoized fast path, p99 the cold compute path.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.results import BenchResult
from repro.noise.engine import NoiseConfig
from repro.service.client import ServiceClient
from repro.service.jobs import GeometrySpec, JobRequest
from repro.service.server import AnalysisService, ServiceConfig, ServiceServer
from repro.service.workers import oneshot_result

SERVICE_KERNELS = (
    "service_mixed_load",
    "service_oneshot_equiv",
)

#: Deterministic interleaving seed of the request stream.
_STREAM_SEED = 2003

#: Client connections the load is spread across.
_CONNECTIONS = 4


def mixed_workloads(scale: int = 1) -> List[JobRequest]:
    """The unique requests behind the mixed load, smallest-first.

    ``scale`` multiplies the geometry sizes (1 keeps the suite fast
    enough for CI smoke runs while still covering every op, both bus
    generators, a spiral, and an escalating noise scan that exercises
    the sharded simulation tier).
    """
    s = max(int(scale), 1)
    escalating = NoiseConfig(threshold_fraction=0.1)
    return [
        JobRequest(op="extract", geometry=GeometrySpec("bus", 4 * s)),
        JobRequest(op="extract", geometry=GeometrySpec("bus", 8 * s)),
        JobRequest(op="extract", geometry=GeometrySpec("nonaligned_bus", 8 * s)),
        JobRequest(op="extract", geometry=GeometrySpec("spiral", 4 * s)),
        JobRequest(op="simulate", geometry=GeometrySpec("bus", 8 * s)),
        JobRequest(op="simulate", geometry=GeometrySpec("bus", 12 * s)),
        JobRequest(op="noise", geometry=GeometrySpec("bus", 8 * s)),
        JobRequest(op="noise", geometry=GeometrySpec("bus", 12 * s)),
        JobRequest(op="noise", geometry=GeometrySpec("nonaligned_bus", 8 * s)),
        JobRequest(
            op="noise",
            geometry=GeometrySpec("bus", 16 * s),
            noise=escalating,
        ),
    ]


def request_stream(
    workloads: Sequence[JobRequest], total: int
) -> List[JobRequest]:
    """``total`` requests cycling over ``workloads``, seeded-shuffled."""
    repeated = [workloads[i % len(workloads)] for i in range(total)]
    order = np.random.default_rng(_STREAM_SEED).permutation(total)
    return [repeated[i] for i in order]


def combined_checksum(pairs: Dict[str, str]) -> str:
    """Digest of unique ``request key -> result checksum`` pairs."""
    digest = hashlib.sha256()
    for key in sorted(pairs):
        digest.update(f"{key}={pairs[key]};".encode())
    return digest.hexdigest()


async def _drive_load(
    config: ServiceConfig,
    stream: Sequence[JobRequest],
    concurrency: int,
) -> Tuple[List[float], Dict[str, str], float]:
    """Fire the stream at a live server; returns latencies + digests."""
    service = AnalysisService(config)
    server = ServiceServer(service, config.host, config.port)
    host, port = await server.start()
    clients = [
        await ServiceClient.connect(host, port)
        for _ in range(min(_CONNECTIONS, max(concurrency, 1)))
    ]
    gate = asyncio.Semaphore(max(concurrency, 1))
    latencies: List[float] = [0.0] * len(stream)
    checksums: Dict[str, str] = {}

    async def one(index: int, request: JobRequest) -> None:
        async with gate:
            begin = time.perf_counter()
            reply = await clients[index % len(clients)].request(
                request.to_dict()
            )
            latencies[index] = time.perf_counter() - begin
        if reply.get("event") != "done":
            raise RuntimeError(
                f"request {index} ({request.op}) ended "
                f"{reply.get('event')!r}: {reply.get('error')}"
            )
        key = request.key()
        checksum = str(reply["checksum"])
        previous = checksums.setdefault(key, checksum)
        if previous != checksum:
            raise RuntimeError(
                f"nondeterministic result for {request.op} request "
                f"{key[:16]}: {previous} != {checksum}"
            )

    begin = time.perf_counter()
    try:
        await asyncio.gather(
            *(one(i, request) for i, request in enumerate(stream))
        )
        wall = time.perf_counter() - begin
    finally:
        for client in clients:
            await client.close()
        await server.close()
    return latencies, checksums, wall


def run_service_suite(
    requests: int = 1000,
    concurrency: int = 64,
    scale: int = 1,
    jobs: Optional[int] = None,
) -> List[BenchResult]:
    """Execute the load test; one :class:`BenchResult` per (kernel, variant).

    Raises if any request fails or if the service digest differs from
    the one-shot digest -- equivalence is part of the suite's contract,
    not merely of the committed trajectory.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    workloads = mixed_workloads(scale)
    stream = request_stream(workloads, requests)
    config = ServiceConfig(jobs=jobs, job_timeout=600.0)
    latencies, service_sums, wall = asyncio.run(
        _drive_load(config, stream, concurrency)
    )
    service_digest = combined_checksum(service_sums)
    ordered = np.sort(np.asarray(latencies))

    def percentile(q: float) -> float:
        return float(np.percentile(ordered, q))

    results = [
        BenchResult(
            kernel="service_mixed_load",
            variant=variant,
            size=requests,
            seconds=seconds,
            checksum=service_digest,
        )
        for variant, seconds in (
            ("p50", percentile(50.0)),
            ("p99", percentile(99.0)),
            ("per_request", wall / requests),
            ("wall", wall),
        )
    ]

    # Replay each unique request actually sent (with < len(workloads)
    # requests the stream covers only a prefix of the workload set).
    unique = {request.key(): request for request in stream}
    begin = time.perf_counter()
    direct_sums = {
        key: str(oneshot_result(request)["checksum"])
        for key, request in unique.items()
    }
    direct_seconds = time.perf_counter() - begin
    direct_digest = combined_checksum(direct_sums)
    if direct_digest != service_digest:
        mismatched = sorted(
            key[:16]
            for key in service_sums
            if service_sums[key] != direct_sums.get(key)
        )
        raise RuntimeError(
            "service results diverge from one-shot results for request "
            f"keys {mismatched}"
        )
    results.append(
        BenchResult(
            kernel="service_oneshot_equiv",
            variant="direct",
            size=len(unique),
            seconds=direct_seconds,
            checksum=direct_digest,
        )
    )
    return results
