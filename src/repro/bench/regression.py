"""Trajectory comparison: fresh benchmark runs vs the committed record.

The contract CI enforces: a *checksum mismatch* means the kernel now
computes something numerically different and fails the check; a *time
regression* beyond the tolerance only warns, because shared-runner
timing is noisy and the committed baseline may come from different
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bench.results import BenchResult

#: A fresh run slower than tolerance x the committed time warns.
DEFAULT_TIME_TOLERANCE = 1.5


@dataclass(frozen=True)
class Comparison:
    """Verdict for one fresh result against the committed trajectory."""

    result: BenchResult
    status: str  # "ok" | "new" | "time-regression" | "checksum-mismatch"
    message: str

    @property
    def is_failure(self) -> bool:
        return self.status == "checksum-mismatch"

    @property
    def is_warning(self) -> bool:
        return self.status == "time-regression"


@dataclass(frozen=True)
class RegressionReport:
    comparisons: Tuple[Comparison, ...]

    @property
    def failures(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.is_failure]

    @property
    def warnings(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.is_warning]

    @property
    def ok(self) -> bool:
        return not self.failures


def check_results(
    fresh: Sequence[BenchResult],
    committed: Sequence[BenchResult],
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> RegressionReport:
    """Compare fresh results against the committed trajectory.

    Entries match on ``(kernel, variant, size)``; when the trajectory
    holds several (a growing history), the most recent -- last -- entry
    is the baseline.
    """
    if time_tolerance <= 0:
        raise ValueError("time tolerance must be positive")
    baseline: Dict[tuple, BenchResult] = {}
    for entry in committed:
        baseline[entry.key] = entry  # later entries win

    comparisons: List[Comparison] = []
    for result in fresh:
        reference = baseline.get(result.key)
        if reference is None:
            comparisons.append(
                Comparison(result, "new", "no committed baseline")
            )
        elif result.checksum != reference.checksum:
            comparisons.append(
                Comparison(
                    result,
                    "checksum-mismatch",
                    f"output changed: {result.checksum[:12]} != "
                    f"committed {reference.checksum[:12]}",
                )
            )
        elif result.seconds > reference.seconds * time_tolerance:
            comparisons.append(
                Comparison(
                    result,
                    "time-regression",
                    f"{result.seconds * 1e3:.2f} ms vs committed "
                    f"{reference.seconds * 1e3:.2f} ms "
                    f"(tolerance {time_tolerance:g}x)",
                )
            )
        else:
            comparisons.append(
                Comparison(
                    result,
                    "ok",
                    f"{result.seconds * 1e3:.2f} ms, checksum match",
                )
            )
    return RegressionReport(tuple(comparisons))
