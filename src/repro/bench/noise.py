"""The noise-engine benchmark suite (``BENCH_noise.json``).

Counterpart of :mod:`repro.bench.sim` for the static noise engine:

- ``noise_screen_bus256``: the vectorized closed-form screening tier --
  pair estimates plus worst-case alignment for every victim of a
  256-bit bus under the default scattered schedule (extraction is an
  untimed shared fixture);
- ``noise_engine_bus64`` / variant ``tiered``: the full
  screen-then-simulate scan of the 64-bit acceptance workload;
- ``noise_engine_bus64`` / variant ``fullsim``: the same scan with the
  escalation threshold forced to zero, so *every* victim is simulated
  -- the no-screening reference whose runtime, divided by the tiered
  run's, is the committed screening-vs-simulation throughput ratio.

The two engine variants are never cross-compared by the regression
checker (different variants), so their different checksums are fine;
each variant's checksum pins its own per-victim peak vector.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro.bench.results import BenchResult, array_checksum
from repro.bench.runner import _best_time
from repro.extraction.parasitics import extract
from repro.geometry.bus import aligned_bus
from repro.noise.engine import NoiseConfig, run_noise_scan
from repro.noise.screening import screen_pairs
from repro.noise.windows import sensitive_windows, staggered_schedule
from repro.noise.worst_case import align_all

NOISE_KERNELS = (
    "noise_screen_bus256",
    "noise_engine_bus64",
)

#: Threshold fraction that forces every victim into the simulation
#: tier (the no-screening reference variant).
_FULLSIM_FRACTION = 1e-9


def _screen_workload(size: int, config: NoiseConfig):
    parasitics = extract(aligned_bus(size))

    def run():
        schedule = staggered_schedule(
            size, config.period, config.switch_width, config.schedule_seed
        )
        sensitive = sensitive_windows(schedule, config.period)
        estimates = screen_pairs(parasitics, config.screen_config)
        alignments = align_all(
            estimates.peak,
            estimates.area,
            schedule,
            sensitive,
            config.threshold,
        )
        return estimates, alignments

    return run


def _report_checksum(report) -> str:
    peaks = np.array([v.effective_peak for v in report.victims])
    escalated = np.array(
        [float(v.escalated) for v in report.victims]
    )
    return array_checksum(peaks, escalated)


def run_noise_suite(
    kernels: Optional[Sequence[str]] = None,
    size: int = 256,
    engine_size: int = 64,
    repeats: int = 3,
) -> List[BenchResult]:
    """Execute the noise suite; one :class:`BenchResult` per (kernel, variant).

    ``size`` scales the screening workload and ``engine_size`` the
    tiered-engine workload (shrink both for tests); kernel names keep
    their canonical workload spellings with the actual size in the
    ``size`` field, as the other suites do.  The engine kernels run
    once per measurement (no best-of-``repeats``): a scan is seconds
    long and its runtime variance is far below the regression gate.
    """
    selected = tuple(kernels) if kernels is not None else NOISE_KERNELS
    unknown = set(selected) - set(NOISE_KERNELS)
    if unknown:
        raise ValueError(f"unknown kernels: {sorted(unknown)}")

    config = NoiseConfig()
    results: List[BenchResult] = []

    if "noise_screen_bus256" in selected:
        workload = _screen_workload(size, config)
        seconds, (estimates, alignments) = _best_time(workload, repeats)
        totals = np.array([a.peak for a in alignments])
        results.append(
            BenchResult(
                kernel="noise_screen_bus256",
                variant="vectorized",
                size=size,
                seconds=seconds,
                checksum=array_checksum(estimates.peak, totals),
            )
        )

    if "noise_engine_bus64" in selected:
        parasitics = extract(aligned_bus(engine_size))
        seconds, report = _best_time(
            lambda: run_noise_scan(parasitics, config=config), 1
        )
        results.append(
            BenchResult(
                kernel="noise_engine_bus64",
                variant="tiered",
                size=engine_size,
                seconds=seconds,
                checksum=_report_checksum(report),
            )
        )
        fullsim_config = replace(
            config, threshold_fraction=_FULLSIM_FRACTION
        )
        seconds, report = _best_time(
            lambda: run_noise_scan(parasitics, config=fullsim_config), 1
        )
        results.append(
            BenchResult(
                kernel="noise_engine_bus64",
                variant="fullsim",
                size=engine_size,
                seconds=seconds,
                checksum=_report_checksum(report),
            )
        )

    return results
