"""The extraction-scale benchmark suite (``BENCH_extraction_scale.json``).

Counterpart of the kernel/sim/noise suites for the hierarchical
extraction path: where those pin per-kernel micro-performance, this one
pins the *scaling story* of ISSUE 9 -- dense vs hierarchical partial
inductance at growing filament counts, through the full consumer chain:

- ``extract_scale``: parasitic extraction of a segmented non-aligned
  bus.  Variants ``dense`` (full per-axis ndarray blocks) and
  ``hierarchical`` (block low-rank :class:`LazyInductance` operators).
  Each entry records wall time *and* the RSS high-water mark of the
  run (``peak_bytes``), because the hierarchical claim is a memory
  claim as much as a time claim.  Both variants share one checksum basis -- the
  per-filament self inductances plus R and Cg, quantities both paths
  compute bit-identically -- so the suite itself asserts dense/hier
  agreement on every run.
- ``window_solve_scale``: gwVPEC window selection + batched windowed
  inverse straight from the extraction result (dense fancy-indexed
  submatrices vs per-window tree gathers).
- ``noise_scan_scale``: the tiered noise scan on the same bus, sized so
  the closed-form screen resolves every victim -- the 100k-filament
  regime where the simulation tier must never materialize anything
  ``(n, n)``.

The non-aligned (jittered) bus is chosen deliberately: it defeats the
dense path's displacement-class lattice shortcut, so the dense baseline
pays the honest O(N^2) general-path cost that irregular layouts always
pay.  (On perfectly aligned lattices the dense fast path remains
excellent -- see docs/performance.md, "when dense still wins".)

The committed trajectory holds entries up to 100k+ filaments from a
full local run; CI re-runs only the small sizes (``--scale-sizes``) and
checks them against the same file -- absent sizes are simply not
compared, so the large-N history rides along without CI re-paying it.

:func:`error_vs_cutoff_study` is the Fig. 8-methodology artifact
generator: for a sweep of ACA cutoffs it measures far-field entry
error, screening-tier peak drift, and whether any screening or
peak-noise *decision* changes relative to the exact dense path.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.results import BenchResult, array_checksum
from repro.experiments.runner import ModelSpec
from repro.extraction.hierarchical import HierarchicalConfig, LazyInductance
from repro.extraction.parasitics import Parasitics, extract
from repro.geometry.bus import nonaligned_bus
from repro.geometry.system import FilamentSystem
from repro.noise.engine import NoiseConfig, run_noise_scan
from repro.vpec.windowing import geometric_windows, windowed_inverse

SCALE_KERNELS = (
    "extract_scale",
    "window_solve_scale",
    "noise_scan_scale",
    "parallel_assembly_scale",
)

#: Committed sizes of the full local run: two dense-feasible rungs, the
#: 100k+ hierarchical-only rung, and the 10^6-filament flagship (the
#: end-to-end extract -> wVPEC -> tiered-scan entry of ISSUE 10).
DEFAULT_SIZES = (4096, 16384, 102400, 1000000)

#: Largest size the dense path still runs at (time- and memory-wise);
#: above it only the hierarchical variant is measured.
DEFAULT_DENSE_LIMIT = 16384

#: Dense noise scans materialize the full matrix for wire aggregation;
#: past this size only the hierarchical scan variant runs.
_DENSE_SCAN_LIMIT = 4096

#: The worker-ladder kernel re-extracts once per worker count; past
#: this size the ladder is skipped so the flagship entry pays the
#: extraction cost exactly once.
_PARALLEL_SIZE_LIMIT = 102400

#: Default worker ladder of ``parallel_assembly_scale``.
DEFAULT_JOBS_LADDER = (1, 2, 4)

#: Bus spacing/threshold chosen so the closed-form screen resolves every
#: victim (zero escalations) -- the scan then exercises exactly the
#: tier that must scale, and its runtime is geometry-bound, not
#: simulation-bound.
_SCALE_SPACING = 4e-6
_SCALE_THRESHOLD = 0.3

_WINDOW = 8


def scale_geometry(n: int) -> FilamentSystem:
    """The suite's workload family: a segmented jittered bus of ~n filaments.

    Wires outnumber segments 16:1 (seg = sqrt(n/16)), so both the wire
    count (screening work) and the per-wire segmentation (axial
    compression opportunity) grow with n.
    """
    segments = max(1, int(round((n / 16.0) ** 0.5)))
    bits = max(2, int(round(n / segments)))
    return nonaligned_bus(
        bits=bits,
        segments_per_line=segments,
        spacing=_SCALE_SPACING,
        offset_jitter=0.3,
    )


def _read_status_kb(field: str) -> Optional[int]:
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def _reset_rss_peak() -> bool:
    """Reset the kernel's RSS high-water mark; False where unsupported."""
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
    except OSError:
        return False
    return True


def _timed_peak(workload) -> Tuple[float, int, Any]:
    """One execution: (seconds, peak incremental bytes, output).

    Timing is never instrumented.  Peak memory is the kernel's RSS
    high-water mark over the run (``VmHWM``, reset per workload) minus
    the resident baseline: real pages at zero overhead, so the
    dense/hierarchical time ratios are exactly what an uninstrumented
    run pays.  (tracemalloc would skew them: its per-allocation hook
    taxes the hierarchical path's many small block allocations several
    times harder than the dense path's few huge ones.)  Where /proc is
    unavailable the fallback times under tracemalloc -- python-level
    peaks, comparable only among themselves.
    """
    if _reset_rss_peak():
        baseline_kb = _read_status_kb("VmRSS") or 0
        start = time.perf_counter()
        output = workload()
        seconds = time.perf_counter() - start
        peak_kb = _read_status_kb("VmHWM") or baseline_kb
        return seconds, max(0, (peak_kb - baseline_kb) * 1024), output
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    baseline = tracemalloc.get_traced_memory()[0]
    start = time.perf_counter()
    output = workload()
    seconds = time.perf_counter() - start
    peak = max(0, tracemalloc.get_traced_memory()[1] - baseline)
    if not was_tracing:
        tracemalloc.stop()
    return seconds, peak, output


def _extract_checksum(parasitics: Parasitics) -> str:
    """Variant-independent digest: quantities both paths compute exactly."""
    diagonals = []
    for _, block in parasitics.inductance_blocks.values():
        if isinstance(block, LazyInductance):
            diagonals.append(block.diagonal())
        else:
            diagonals.append(np.diagonal(block))
    return array_checksum(
        np.concatenate(diagonals),
        parasitics.resistance,
        parasitics.ground_capacitance,
    )


def _window_solve(parasitics: Parasitics, solver: str = "direct"):
    sparse_inverses = []
    for indices, block in parasitics.inductance_blocks.values():
        windows = geometric_windows(parasitics.system, indices, _WINDOW)
        sparse_inverses.append(windowed_inverse(block, windows, solver=solver))
    return sparse_inverses


def _noise_scan(parasitics: Parasitics):
    return run_noise_scan(
        parasitics,
        spec=ModelSpec("gw", window=_WINDOW),
        config=NoiseConfig(threshold_fraction=_SCALE_THRESHOLD),
    )


def _scan_checksum(report) -> str:
    peaks = np.array([v.effective_peak for v in report.victims])
    escalated = np.array([float(v.escalated) for v in report.victims])
    return array_checksum(peaks, escalated)


def run_extraction_scale_suite(
    kernels: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    dense_limit: int = DEFAULT_DENSE_LIMIT,
    config: Optional[HierarchicalConfig] = None,
    jobs: Optional[int] = None,
    jobs_ladder: Optional[Sequence[int]] = None,
) -> List[BenchResult]:
    """Execute the scale suite; one result per (kernel, variant, size).

    Workloads are minutes-long at the large sizes, so each runs once
    (no best-of-N); the regression gate treats time as warn-only
    anyway.  Dense variants stop at ``dense_limit`` (extraction) and
    :data:`_DENSE_SCAN_LIMIT` (scan); the suite raises if the dense and
    hierarchical extraction checksums of a shared size disagree.

    ``jobs`` assembles the hierarchical extraction entries through the
    shared-memory worker pool (bit-identical output, so the committed
    checksums hold for any worker count; the *time* then measures the
    parallel build).  ``jobs_ladder`` selects the worker counts of the
    ``parallel_assembly_scale`` kernel, which re-runs the hierarchical
    extraction once per count and asserts every rung reproduces the
    serial checksum -- the worker-scaling curve of the trajectory.  The
    iterative window-solve variant (``hierarchical-iterative``) rides
    along whenever the window kernel is selected.
    """
    selected = tuple(kernels) if kernels is not None else SCALE_KERNELS
    unknown = set(selected) - set(SCALE_KERNELS)
    if unknown:
        raise ValueError(f"unknown kernels: {sorted(unknown)}")
    hier_config = config if config is not None else HierarchicalConfig()
    ladder = tuple(jobs_ladder) if jobs_ladder is not None else DEFAULT_JOBS_LADDER

    results: List[BenchResult] = []
    for requested in sizes:
        system = scale_geometry(requested)
        n = len(system)
        variants = ["hierarchical"] + (["dense"] if n <= dense_limit else [])
        checksums: Dict[str, str] = {}
        for variant in variants:
            kwargs: Dict[str, Any] = (
                {
                    "method": "hierarchical",
                    "hierarchical": hier_config,
                    "jobs": jobs,
                }
                if variant == "hierarchical"
                else {}
            )
            seconds, peak, parasitics = _timed_peak(
                lambda: extract(system, **kwargs)
            )
            checksums[variant] = _extract_checksum(parasitics)
            if "extract_scale" in selected:
                results.append(
                    BenchResult(
                        kernel="extract_scale",
                        variant=variant,
                        size=n,
                        seconds=seconds,
                        checksum=checksums[variant],
                        peak_bytes=peak,
                    )
                )
            if "window_solve_scale" in selected:
                solvers = ["direct"]
                if variant == "hierarchical":
                    solvers.append("iterative")
                for solver in solvers:
                    label = variant if solver == "direct" else f"{variant}-{solver}"
                    seconds, peak, inverses = _timed_peak(
                        lambda: _window_solve(parasitics, solver=solver)
                    )
                    results.append(
                        BenchResult(
                            kernel="window_solve_scale",
                            variant=label,
                            size=n,
                            seconds=seconds,
                            checksum=array_checksum(
                                *(s.diagonal() for s in inverses),
                                *(s.data for s in inverses),
                            ),
                            peak_bytes=peak,
                        )
                    )
            if "noise_scan_scale" in selected and (
                variant == "hierarchical" or n <= _DENSE_SCAN_LIMIT
            ):
                seconds, peak, report = _timed_peak(
                    lambda: _noise_scan(parasitics)
                )
                results.append(
                    BenchResult(
                        kernel="noise_scan_scale",
                        variant=variant,
                        size=n,
                        seconds=seconds,
                        checksum=_scan_checksum(report),
                        peak_bytes=peak,
                    )
                )
        if len(checksums) == 2 and checksums["dense"] != checksums["hierarchical"]:
            raise AssertionError(
                f"dense and hierarchical extraction disagree at n={n}: "
                f"{checksums['dense'][:12]} != {checksums['hierarchical'][:12]}"
            )
        if (
            "parallel_assembly_scale" in selected
            and n <= _PARALLEL_SIZE_LIMIT
        ):
            for workers in ladder:
                seconds, peak, parasitics = _timed_peak(
                    lambda: extract(
                        system,
                        method="hierarchical",
                        hierarchical=hier_config,
                        jobs=workers,
                    )
                )
                checksum = _extract_checksum(parasitics)
                serial = checksums.get("hierarchical", checksum)
                if checksum != serial:
                    raise AssertionError(
                        f"parallel assembly (jobs={workers}) diverged from "
                        f"the serial build at n={n}: {checksum[:12]} != "
                        f"{serial[:12]}"
                    )
                results.append(
                    BenchResult(
                        kernel="parallel_assembly_scale",
                        variant=f"jobs{workers}",
                        size=n,
                        seconds=seconds,
                        checksum=checksum,
                        peak_bytes=peak,
                    )
                )
    return results


# ----------------------------------------------------------------------
# Error vs cutoff (the paper's Fig. 8 methodology)
# ----------------------------------------------------------------------
def error_vs_cutoff_study(
    size: int = 4096,
    cutoffs: Sequence[float] = (1e-2, 1e-4, 1e-6, 1e-8),
    sample_windows: int = 64,
    seed: int = 2003,
) -> Dict[str, Any]:
    """Accuracy/compression trade-off of the ACA cutoff, as a JSON blob.

    For each cutoff the same bus is extracted hierarchically and
    compared against the exact dense path on three levels, mirroring
    the source paper's error-vs-window-size methodology (Fig. 8):

    - *entries*: max/mean relative error of random ``gather`` windows
      (near-field windows are exact by construction; random windows mix
      in far-field blocks, which is where the cutoff bites);
    - *screening*: relative drift of the closed-form screen's pair-peak
      matrix, and whether any victim's escalate/resolve decision flips;
    - *scan*: relative drift of the per-victim effective noise peaks,
      and whether any pass/fail decision flips.

    The committed artifact (benchmarks/results/
    extraction_error_vs_cutoff.json) demonstrates the acceptance
    property: at the default cutoff no screening or peak-noise decision
    differs from the dense path.
    """
    from repro.noise.screening import ScreenConfig, screen_pairs

    system = scale_geometry(size)
    n = len(system)
    dense = extract(system)
    dense_screen = screen_pairs(
        dense, ScreenConfig()
    )
    dense_report = _noise_scan(dense)
    dense_peaks = np.array([v.effective_peak for v in dense_report.victims])
    dense_decisions = [bool(v.escalated) for v in dense_report.victims]
    dense_failing = {v.wire for v in dense_report.failing()}

    rng = np.random.default_rng(seed)
    rows: List[Dict[str, Any]] = []
    for cutoff in cutoffs:
        hier_config = HierarchicalConfig(cutoff=cutoff)
        hier = extract(system, method="hierarchical", hierarchical=hier_config)

        entry_errors: List[float] = []
        for (indices, block), (_, exact_block) in zip(
            hier.inductance_blocks.values(), dense.inductance_blocks.values()
        ):
            m = len(indices)
            width = min(_WINDOW * 2, m)
            scale = float(np.abs(np.asarray(exact_block)).max())
            for _ in range(sample_windows):
                members = rng.choice(m, size=width, replace=False)
                approx = block.gather(members, members)
                exact = np.asarray(exact_block)[np.ix_(members, members)]
                entry_errors.append(
                    float(np.abs(approx - exact).max()) / scale
                )

        hier_screen = screen_pairs(hier, ScreenConfig())
        screen_scale = float(np.abs(dense_screen.peak).max())
        screen_drift = (
            float(np.abs(hier_screen.peak - dense_screen.peak).max())
            / screen_scale
        )

        hier_report = _noise_scan(hier)
        hier_peaks = np.array(
            [v.effective_peak for v in hier_report.victims]
        )
        hier_decisions = [bool(v.escalated) for v in hier_report.victims]
        hier_failing = {v.wire for v in hier_report.failing()}
        peak_scale = float(np.abs(dense_peaks).max())
        per_axis = [
            block.compression_stats()
            for _, block in hier.inductance_blocks.values()
        ]
        stored = sum(s["stored_bytes"] for s in per_axis)
        exact = sum(s["dense_bytes"] for s in per_axis)
        rows.append(
            {
                "cutoff": cutoff,
                "max_entry_rel_error": max(entry_errors),
                "mean_entry_rel_error": float(np.mean(entry_errors)),
                "screen_peak_rel_drift": screen_drift,
                "scan_peak_rel_drift": float(
                    np.abs(hier_peaks - dense_peaks).max() / peak_scale
                ),
                "screening_decisions_unchanged": hier_decisions
                == dense_decisions,
                "failing_set_unchanged": hier_failing == dense_failing,
                "stored_bytes": stored,
                "compression_ratio": exact / max(stored, 1),
            }
        )
    return {
        "system": system.name,
        "filaments": n,
        "window": _WINDOW,
        "sample_windows": sample_windows,
        "default_cutoff": HierarchicalConfig().cutoff,
        "dense_bytes": 8 * n * n,
        "cutoffs": rows,
    }
