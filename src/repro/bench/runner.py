"""The micro-kernel benchmark suite.

Each kernel times one hot path on a canonical workload -- the paper's
uniform 1024-line bus by default -- and checksums its numerical output,
so a run is comparable across commits *and* machines (wall time within a
tolerance, checksum exactly; see :mod:`repro.bench.regression`).

Kernels:

- ``extraction_bus1024``: warm partial inductance extraction of the
  aligned bus (the GMD cache is primed by an untimed call, matching the
  steady-state cost inside the experiment pipeline);
- ``windowed_inverse_bus1024_b8``: the wVPEC sparse approximate inverse
  with geometric windows of size 8;
- ``geometric_windows_bus1024_b8``: window selection itself;
- ``symmetrize_windows_bus1024``: the membership-union pass.

Passing ``include_seed=True`` also measures the scalar reference
variants from :mod:`repro.bench.reference` where one exists, producing
the "before" rows of the trajectory.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.reference import (
    scalar_partial_inductance,
    scalar_windowed_inverse,
)
from repro.bench.results import BenchResult, array_checksum
from repro.extraction.inductance import partial_inductance_matrix
from repro.geometry.bus import aligned_bus
from repro.vpec.windowing import (
    geometric_windows,
    symmetrize_windows,
    windowed_inverse,
)

DEFAULT_KERNELS = (
    "extraction_bus1024",
    "windowed_inverse_bus1024_b8",
    "geometric_windows_bus1024_b8",
    "symmetrize_windows_bus1024",
)

#: Kernels with a scalar reference variant.
SEED_KERNELS = ("extraction_bus1024", "windowed_inverse_bus1024_b8")


def _best_time(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Minimum wall time over ``repeats`` runs and the last result."""
    best = np.inf
    result: object = None
    for _ in range(max(1, repeats)):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return best, result


def _windows_checksum(windows: Sequence[np.ndarray]) -> str:
    sizes = np.array([np.asarray(w).size for w in windows], dtype=float)
    if len(windows) == 0:
        return array_checksum(sizes)
    return array_checksum(sizes, np.concatenate([np.asarray(w) for w in windows]))


def run_suite(
    kernels: Optional[Sequence[str]] = None,
    size: int = 1024,
    window: int = 8,
    repeats: int = 3,
    include_seed: bool = False,
) -> List[BenchResult]:
    """Execute the suite and return one :class:`BenchResult` per kernel.

    ``size`` and ``window`` shrink the workload for tests; kernel names
    in the results always reflect the canonical (documented) workload
    names so trajectories stay comparable, which is why non-default
    sizes are recorded in the ``size`` field.
    """
    selected = tuple(kernels) if kernels is not None else DEFAULT_KERNELS
    unknown = set(selected) - set(DEFAULT_KERNELS)
    if unknown:
        raise ValueError(f"unknown kernels: {sorted(unknown)}")

    system = aligned_bus(size)
    indices = list(range(size))
    results: List[BenchResult] = []

    # Shared fixtures: the extraction output feeds the windowing kernels.
    block = partial_inductance_matrix(system)  # also primes the GMD cache
    windows = geometric_windows(system, indices, window)

    if "extraction_bus1024" in selected:
        seconds, matrix = _best_time(
            lambda: partial_inductance_matrix(system), repeats
        )
        results.append(
            BenchResult(
                kernel="extraction_bus1024",
                variant="vectorized",
                size=size,
                seconds=seconds,
                checksum=array_checksum(matrix),
            )
        )
        if include_seed:
            seconds, matrix = _best_time(
                lambda: scalar_partial_inductance(system), repeats
            )
            results.append(
                BenchResult(
                    kernel="extraction_bus1024",
                    variant="seed",
                    size=size,
                    seconds=seconds,
                    checksum=array_checksum(matrix),
                )
            )

    if "windowed_inverse_bus1024_b8" in selected:
        seconds, s_prime = _best_time(
            lambda: windowed_inverse(block, windows), repeats
        )
        results.append(
            BenchResult(
                kernel="windowed_inverse_bus1024_b8",
                variant="vectorized",
                size=size,
                seconds=seconds,
                checksum=array_checksum(s_prime.toarray()),
            )
        )
        if include_seed:
            seconds, s_prime = _best_time(
                lambda: scalar_windowed_inverse(block, windows), repeats
            )
            results.append(
                BenchResult(
                    kernel="windowed_inverse_bus1024_b8",
                    variant="seed",
                    size=size,
                    seconds=seconds,
                    checksum=array_checksum(s_prime.toarray()),
                )
            )

    if "geometric_windows_bus1024_b8" in selected:
        seconds, built = _best_time(
            lambda: geometric_windows(system, indices, window), repeats
        )
        results.append(
            BenchResult(
                kernel="geometric_windows_bus1024_b8",
                variant="vectorized",
                size=size,
                seconds=seconds,
                checksum=_windows_checksum(built),
            )
        )

    if "symmetrize_windows_bus1024" in selected:
        asymmetric = [w[w <= m] for m, w in enumerate(windows)]
        seconds, built = _best_time(
            lambda: symmetrize_windows(asymmetric), repeats
        )
        results.append(
            BenchResult(
                kernel="symmetrize_windows_bus1024",
                variant="vectorized",
                size=size,
                seconds=seconds,
                checksum=_windows_checksum(built),
            )
        )

    return results
