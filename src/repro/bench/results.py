"""Benchmark records and the ``BENCH_kernels.json`` trajectory format.

Schema (version 1)::

    {
      "schema": 1,
      "entries": [
        {"kernel": "extraction_bus1024", "variant": "seed", "size": 1024,
         "seconds": 0.158, "checksum": "2f6c..."},
        ...
      ]
    }

``kernel`` names a micro-kernel from :mod:`repro.bench.runner`,
``variant`` distinguishes implementations of the same computation
("seed" is the scalar reference path, "vectorized" the current kernels),
``seconds`` is the best wall time over the runner's repeats, and
``checksum`` digests the numerical output (see :func:`array_checksum`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

SCHEMA_VERSION = 1

#: Significant digits kept per summary statistic before hashing.  Eight
#: digits tolerate BLAS/libm ulp jitter across machines while still
#: catching any real numerical change.
_CHECKSUM_DIGITS = 8


def array_checksum(*arrays: np.ndarray) -> str:
    """Platform-tolerant digest of one or more numerical outputs.

    Hashes rounded summary statistics (size, sum, absolute sum, min,
    max, 2-norm) rather than raw bytes, so two machines whose LAPACK
    differs in the last ulp agree on the checksum but a wrong kernel
    does not.
    """
    digest = hashlib.sha256()
    for array in arrays:
        flat = np.asarray(array, dtype=float).ravel()
        if flat.size == 0:
            digest.update(b"empty;")
            continue
        absolute_sum = float(np.abs(flat).sum())
        stats = (
            float(flat.sum()),
            absolute_sum,
            float(flat.min()),
            float(flat.max()),
            float(np.linalg.norm(flat)),
        )
        # A stat that cancels to rounding noise (e.g. the sum of a
        # symmetric array) would hash its noise bits; snap it to zero
        # relative to the array's overall scale instead.
        floor = absolute_sum * 10.0 ** (-_CHECKSUM_DIGITS - 4)
        digest.update(str(flat.size).encode())
        for value in stats:
            if abs(value) < floor:
                value = 0.0
            digest.update(f"{value:.{_CHECKSUM_DIGITS}e};".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class BenchResult:
    """One timed kernel execution: what ran, how fast, what it computed.

    ``peak_bytes`` (optional) records the peak memory of one execution
    (RSS high-water delta where the platform supports it, tracemalloc
    peak otherwise -- see ``bench.extraction_scale``).  Like ``seconds`` it
    is machine-dependent telemetry, not identity: it rides in the
    trajectory entry but is excluded from :attr:`key`, so regressions in
    it warn rather than fail.
    """

    kernel: str
    variant: str
    size: int
    seconds: float
    checksum: str
    peak_bytes: Optional[int] = None

    @property
    def key(self) -> tuple:
        """Identity for trajectory comparisons (timing excluded)."""
        return (self.kernel, self.variant, self.size)

    def to_entry(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "kernel": self.kernel,
            "variant": self.variant,
            "size": self.size,
            "seconds": self.seconds,
            "checksum": self.checksum,
        }
        if self.peak_bytes is not None:
            entry["peak_bytes"] = self.peak_bytes
        return entry

    @classmethod
    def from_entry(cls, entry: Dict[str, object]) -> "BenchResult":
        peak = entry.get("peak_bytes")
        return cls(
            kernel=str(entry["kernel"]),
            variant=str(entry["variant"]),
            size=int(entry["size"]),  # type: ignore[arg-type]
            seconds=float(entry["seconds"]),  # type: ignore[arg-type]
            checksum=str(entry["checksum"]),
            peak_bytes=None if peak is None else int(peak),  # type: ignore[arg-type]
        )


def load_trajectory(path: Union[str, Path]) -> List[BenchResult]:
    """Read a trajectory file; missing file reads as an empty trajectory."""
    path = Path(path)
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trajectory schema {schema!r} in {path} "
            f"(expected {SCHEMA_VERSION})"
        )
    return [BenchResult.from_entry(entry) for entry in payload["entries"]]


def save_trajectory(
    path: Union[str, Path], results: Sequence[BenchResult]
) -> None:
    payload = {
        "schema": SCHEMA_VERSION,
        "entries": [result.to_entry() for result in results],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
