"""Scalar reference kernels: the pre-vectorization ("seed") hot paths.

These reproduce the per-pair Python loops the extraction and windowing
kernels shipped with before PR 4, using the same closed-form primitives
as the vectorized paths.  They exist for two reasons: the benchmark
trajectory keeps honest "before" entries that any machine can re-measure
(``repro bench --with-seed``), and the equivalence test suite has an
executable specification to diff the vectorized kernels against.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.extraction.inductance import (
    _COLLINEAR_TOL,
    _GMD_CUTOFF,
    _mutual_parallel_vec,
    gmd_rectangles,
    mutual_collinear_filaments,
    mutual_parallel_filaments,
    self_inductance_bar,
)
from repro.geometry.system import FilamentSystem


def scalar_partial_inductance(
    system: FilamentSystem, gmd_correction: bool = True
) -> np.ndarray:
    """Seed-path partial inductance matrix: per-pair Python loops.

    Mirrors the pre-vectorization ``_axis_block`` / ``_apply_gmd`` /
    ``_finish_block`` structure: the full ``m x m`` mutual grid is
    evaluated (collinear pairs at a placeholder distance, discarded
    afterwards), close pairs get a per-pair GMD loop with a local
    memoization dict, and collinear couplings are filled one scalar call
    at a time.
    """
    n = len(system)
    matrix = np.zeros((n, n))
    for axis, indices in system.indices_by_axis().items():
        block = _scalar_axis_block(system, indices, axis, gmd_correction)
        matrix[np.ix_(indices, indices)] = block
    return matrix


def _scalar_axis_block(system, indices, axis, gmd_correction):
    filaments = [system[i] for i in indices]
    m = len(filaments)
    lengths = np.array([f.length for f in filaments])
    widths = np.array([f.width for f in filaments])
    thicknesses = np.array([f.thickness for f in filaments])
    starts = np.array([f.axial_span[0] for f in filaments])
    perp_axes = [k for k in range(3) if k != axis.value]
    centers = np.array([f.center for f in filaments])[:, perp_axes]

    block = np.zeros((m, m))
    diag = np.array(
        [self_inductance_bar(f.length, f.width, f.thickness) for f in filaments]
    )
    np.fill_diagonal(block, diag)
    if m == 1:
        return block

    delta = centers[:, None, :] - centers[None, :, :]
    distance = np.hypot(delta[:, :, 0], delta[:, :, 1])
    offset = starts[None, :] - starts[:, None]
    len_a = np.broadcast_to(lengths[:, None], (m, m))
    len_b = np.broadcast_to(lengths[None, :], (m, m))

    lateral = distance > _COLLINEAR_TOL
    eff_distance = np.where(lateral, distance, 1.0)
    if gmd_correction:
        _scalar_apply_gmd(
            eff_distance, lateral, distance, delta, widths, thicknesses
        )

    mutual = _mutual_parallel_vec(len_a, len_b, eff_distance, offset)
    off_diag = ~np.eye(m, dtype=bool)
    block[off_diag & lateral] = mutual[off_diag & lateral]

    collinear = off_diag & ~lateral
    for i, j in zip(*np.nonzero(collinear)):
        block[i, j] = mutual_collinear_filaments(
            float(len_a[i, j]), float(len_b[i, j]), float(offset[i, j])
        )
    return (block + block.T) / 2.0


def _scalar_apply_gmd(
    eff_distance, lateral, distance, delta, widths, thicknesses
):
    dims = np.maximum(widths, thicknesses)
    pair_dim = np.maximum(dims[:, None], dims[None, :])
    close = lateral & (distance < _GMD_CUTOFF * pair_dim)
    cache: Dict[tuple, float] = {}
    rows, cols = np.nonzero(np.triu(close, k=1))
    for a, b in zip(rows, cols):
        section_a = (round(widths[a] * 1e12), round(thicknesses[a] * 1e12))
        section_b = (round(widths[b] * 1e12), round(thicknesses[b] * 1e12))
        off_w = abs(delta[a, b, 0])
        off_t = abs(delta[a, b, 1])
        key = (
            min(section_a, section_b),
            max(section_a, section_b),
            round(off_w * 1e12),
            round(off_t * 1e12),
        )
        gmd = cache.get(key)
        if gmd is None:
            gmd = gmd_rectangles(
                widths[a], thicknesses[a], widths[b], thicknesses[b], off_w, off_t
            )
            cache[key] = gmd
        eff_distance[a, b] = eff_distance[b, a] = gmd


def scalar_windowed_inverse(
    block: np.ndarray,
    windows: Sequence[np.ndarray],
    merge: str = "max",
) -> sparse.csr_matrix:
    """Seed-path windowed inverse: batched solves, dict-of-lists merge.

    Every window is solved (no stencil dedup) and the eq. 18 merge runs
    through a per-pair Python dict, as the pre-vectorization
    ``windowed_inverse`` did.
    """
    n = block.shape[0]
    normalized = [np.asarray(w, dtype=int) for w in windows]
    diagonal = np.zeros(n)
    estimates: Dict[Tuple[int, int], List[float]] = {}
    by_size: Dict[int, List[int]] = {}
    for m, window in enumerate(normalized):
        by_size.setdefault(window.size, []).append(m)
    for size, aggressors in by_size.items():
        stack = np.array([normalized[m] for m in aggressors])
        subs = block[stack[:, :, None], stack[:, None, :]]
        rhs = np.zeros((len(aggressors), size))
        for row, m in enumerate(aggressors):
            rhs[row, int(np.nonzero(normalized[m] == m)[0][0])] = 1.0
        solutions = np.linalg.solve(subs, rhs[:, :, None])[:, :, 0]
        for row, m in enumerate(aggressors):
            for position, neighbor in enumerate(normalized[m]):
                value = float(solutions[row, position])
                if neighbor == m:
                    diagonal[m] = value
                else:
                    key = (min(m, int(neighbor)), max(m, int(neighbor)))
                    estimates.setdefault(key, []).append(value)

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for m in range(n):
        rows.append(m)
        cols.append(m)
        vals.append(diagonal[m])
    for (a, b), values in estimates.items():
        if merge == "max":
            value = max(values)
        elif merge == "min":
            value = min(values)
        else:
            value = sum(values) / len(values)
        if value != 0.0:
            rows.extend((a, b))
            cols.extend((b, a))
            vals.extend((value, value))
    return sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()


def scalar_record(
    volt: np.ndarray,
    curr: np.ndarray,
    step: int,
    x: np.ndarray,
    node_rows: np.ndarray,
    branch_rows: np.ndarray,
) -> None:
    """Seed-path transient sample recording: one Python loop per probe."""
    for pos, row in enumerate(node_rows):
        volt[pos, step] = x[row] if row >= 0 else 0.0
    for pos, row in enumerate(branch_rows):
        curr[pos, step] = x[row]


# Re-export the scalar closed forms so equivalence tests can reach every
# reference primitive through one module.
__all__ = [
    "scalar_partial_inductance",
    "scalar_windowed_inverse",
    "scalar_record",
    "mutual_parallel_filaments",
    "mutual_collinear_filaments",
    "self_inductance_bar",
    "gmd_rectangles",
]
