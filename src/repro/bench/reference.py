"""Scalar reference kernels: the pre-vectorization ("seed") hot paths.

These reproduce the per-pair Python loops the extraction and windowing
kernels shipped with before PR 4, using the same closed-form primitives
as the vectorized paths.  They exist for two reasons: the benchmark
trajectory keeps honest "before" entries that any machine can re-measure
(``repro bench --with-seed``), and the equivalence test suite has an
executable specification to diff the vectorized kernels against.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.extraction.inductance import (
    _COLLINEAR_TOL,
    _GMD_CUTOFF,
    _mutual_parallel_vec,
    gmd_rectangles,
    mutual_collinear_filaments,
    mutual_parallel_filaments,
    self_inductance_bar,
)
from repro.geometry.system import FilamentSystem


def scalar_partial_inductance(
    system: FilamentSystem, gmd_correction: bool = True
) -> np.ndarray:
    """Seed-path partial inductance matrix: per-pair Python loops.

    Mirrors the pre-vectorization ``_axis_block`` / ``_apply_gmd`` /
    ``_finish_block`` structure: the full ``m x m`` mutual grid is
    evaluated (collinear pairs at a placeholder distance, discarded
    afterwards), close pairs get a per-pair GMD loop with a local
    memoization dict, and collinear couplings are filled one scalar call
    at a time.
    """
    n = len(system)
    matrix = np.zeros((n, n))
    for axis, indices in system.indices_by_axis().items():
        block = _scalar_axis_block(system, indices, axis, gmd_correction)
        matrix[np.ix_(indices, indices)] = block
    return matrix


def _scalar_axis_block(system, indices, axis, gmd_correction):
    filaments = [system[i] for i in indices]
    m = len(filaments)
    lengths = np.array([f.length for f in filaments])
    widths = np.array([f.width for f in filaments])
    thicknesses = np.array([f.thickness for f in filaments])
    starts = np.array([f.axial_span[0] for f in filaments])
    perp_axes = [k for k in range(3) if k != axis.value]
    centers = np.array([f.center for f in filaments])[:, perp_axes]

    block = np.zeros((m, m))
    diag = np.array(
        [self_inductance_bar(f.length, f.width, f.thickness) for f in filaments]
    )
    np.fill_diagonal(block, diag)
    if m == 1:
        return block

    delta = centers[:, None, :] - centers[None, :, :]
    distance = np.hypot(delta[:, :, 0], delta[:, :, 1])
    offset = starts[None, :] - starts[:, None]
    len_a = np.broadcast_to(lengths[:, None], (m, m))
    len_b = np.broadcast_to(lengths[None, :], (m, m))

    lateral = distance > _COLLINEAR_TOL
    eff_distance = np.where(lateral, distance, 1.0)
    if gmd_correction:
        _scalar_apply_gmd(
            eff_distance, lateral, distance, delta, widths, thicknesses
        )

    mutual = _mutual_parallel_vec(len_a, len_b, eff_distance, offset)
    off_diag = ~np.eye(m, dtype=bool)
    block[off_diag & lateral] = mutual[off_diag & lateral]

    collinear = off_diag & ~lateral
    for i, j in zip(*np.nonzero(collinear)):
        block[i, j] = mutual_collinear_filaments(
            float(len_a[i, j]), float(len_b[i, j]), float(offset[i, j])
        )
    return (block + block.T) / 2.0


def _scalar_apply_gmd(
    eff_distance, lateral, distance, delta, widths, thicknesses
):
    dims = np.maximum(widths, thicknesses)
    pair_dim = np.maximum(dims[:, None], dims[None, :])
    close = lateral & (distance < _GMD_CUTOFF * pair_dim)
    cache: Dict[tuple, float] = {}
    rows, cols = np.nonzero(np.triu(close, k=1))
    for a, b in zip(rows, cols):
        section_a = (round(widths[a] * 1e12), round(thicknesses[a] * 1e12))
        section_b = (round(widths[b] * 1e12), round(thicknesses[b] * 1e12))
        off_w = abs(delta[a, b, 0])
        off_t = abs(delta[a, b, 1])
        key = (
            min(section_a, section_b),
            max(section_a, section_b),
            round(off_w * 1e12),
            round(off_t * 1e12),
        )
        gmd = cache.get(key)
        if gmd is None:
            gmd = gmd_rectangles(
                widths[a], thicknesses[a], widths[b], thicknesses[b], off_w, off_t
            )
            cache[key] = gmd
        eff_distance[a, b] = eff_distance[b, a] = gmd


def scalar_windowed_inverse(
    block: np.ndarray,
    windows: Sequence[np.ndarray],
    merge: str = "max",
) -> sparse.csr_matrix:
    """Seed-path windowed inverse: batched solves, dict-of-lists merge.

    Every window is solved (no stencil dedup) and the eq. 18 merge runs
    through a per-pair Python dict, as the pre-vectorization
    ``windowed_inverse`` did.
    """
    n = block.shape[0]
    normalized = [np.asarray(w, dtype=int) for w in windows]
    diagonal = np.zeros(n)
    estimates: Dict[Tuple[int, int], List[float]] = {}
    by_size: Dict[int, List[int]] = {}
    for m, window in enumerate(normalized):
        by_size.setdefault(window.size, []).append(m)
    for size, aggressors in by_size.items():
        stack = np.array([normalized[m] for m in aggressors])
        subs = block[stack[:, :, None], stack[:, None, :]]
        rhs = np.zeros((len(aggressors), size))
        for row, m in enumerate(aggressors):
            rhs[row, int(np.nonzero(normalized[m] == m)[0][0])] = 1.0
        solutions = np.linalg.solve(subs, rhs[:, :, None])[:, :, 0]
        for row, m in enumerate(aggressors):
            for position, neighbor in enumerate(normalized[m]):
                value = float(solutions[row, position])
                if neighbor == m:
                    diagonal[m] = value
                else:
                    key = (min(m, int(neighbor)), max(m, int(neighbor)))
                    estimates.setdefault(key, []).append(value)

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for m in range(n):
        rows.append(m)
        cols.append(m)
        vals.append(diagonal[m])
    for (a, b), values in estimates.items():
        if merge == "max":
            value = max(values)
        elif merge == "min":
            value = min(values)
        else:
            value = sum(values) / len(values)
        if value != 0.0:
            rows.extend((a, b))
            cols.extend((b, a))
            vals.extend((value, value))
    return sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()


def _seed_oriented_paths(parasitics):
    """The pre-vectorization wire-traversal resolver (scalar loops).

    Frozen copy of the original ``repro.peec.builder._oriented_paths``:
    per-endpoint Python quantization and 27-cell grid probing, one
    ``math.dist`` at a time.  Kept verbatim so the seed bench variant
    prices the old geometry walk, not today's array version.
    """
    import math

    tol = 1e-9
    system = parasitics.system
    signs = np.ones(len(system))
    endpoints: List[Tuple[int, int]] = [(-1, -1)] * len(system)
    points: List[Tuple[float, float, float]] = []
    grid: Dict[Tuple[int, int, int], int] = {}

    def point_id(p: Tuple[float, float, float]) -> int:
        base = tuple(int(round(c / (tol / 2.0))) for c in p)
        for dx in (0, -1, 1):
            for dy in (0, -1, 1):
                for dz in (0, -1, 1):
                    key = (base[0] + dx, base[1] + dy, base[2] + dz)
                    pid = grid.get(key)
                    if pid is not None and math.dist(p, points[pid]) < tol:
                        return pid
        points.append(p)
        grid[base] = len(points) - 1
        return len(points) - 1

    def wire_orientation(members) -> List[bool]:
        if len(members) == 1:
            return [True]

        def touches(point, filament) -> bool:
            return (
                math.dist(point, filament.start) < tol
                or math.dist(point, filament.end) < tol
            )

        orientation: List[bool] = []
        first, second = system[members[0]], system[members[1]]
        if touches(first.end, second):
            orientation.append(True)
            cursor = first.end
        elif touches(first.start, second):
            orientation.append(False)
            cursor = first.start
        else:
            raise ValueError(
                f"wire {first.wire}: segments 0 and 1 do not share an endpoint"
            )
        for filament_index in members[1:]:
            f = system[filament_index]
            if math.dist(f.start, cursor) < tol:
                orientation.append(True)
                cursor = f.end
            elif math.dist(f.end, cursor) < tol:
                orientation.append(False)
                cursor = f.start
            else:
                raise ValueError(
                    f"wire {f.wire}: segment {f.segment} does not touch the "
                    "previous segment"
                )
        return orientation

    for wire in system.wire_ids:
        members = system.wire_filaments(wire)
        orientation = wire_orientation(members)
        for filament_index, forward in zip(members, orientation):
            f = system[filament_index]
            first, second = (f.start, f.end) if forward else (f.end, f.start)
            signs[filament_index] = 1.0 if forward else -1.0
            endpoints[filament_index] = (point_id(first), point_id(second))
    return list(range(len(points))), signs, endpoints


def _seed_pair_endpoints(system, i, j, ends_i, ends_j):
    """Frozen copy of the original scalar ``_pair_endpoints``."""
    import math

    f_i, f_j = system[i], system[j]
    straight = math.dist(f_i.start, f_j.start) + math.dist(f_i.end, f_j.end)
    crossed = math.dist(f_i.start, f_j.end) + math.dist(f_i.end, f_j.start)
    if straight <= crossed:
        return [(ends_i[0], ends_j[0]), (ends_i[1], ends_j[1])]
    return [(ends_i[0], ends_j[1]), (ends_i[1], ends_j[0])]


def seed_build_peec(parasitics) -> "object":
    """Seed-path PEEC construction: one scalar ``add`` per element.

    Reproduces the pre-columnar builders exactly -- per-filament
    ``add_resistor`` / ``add_capacitor`` / ``add_inductor`` calls and the
    nested per-pair mutual-inductance loop -- so the bench trajectory
    keeps an honest object-path "before" cost for the netlist layer.
    The emitted circuit is element-for-element identical to the columnar
    one (same names, nodes, values, per-class order).
    """
    from repro.circuit.netlist import Circuit
    from repro.peec.builder import ElectricalSkeleton
    from repro.peec.builder import WirePorts
    from repro.peec.model import PeecModel

    system = parasitics.system
    circuit = Circuit(f"peec:{system.name}")
    _, signs, endpoints = _seed_oriented_paths(parasitics)

    node_names: Dict[int, str] = {}

    def node_name(pid: int) -> str:
        if pid not in node_names:
            node_names[pid] = f"n{pid}"
        return node_names[pid]

    slot_nodes: List[Tuple[str, str]] = []
    ground_cap: Dict[str, float] = {}
    for index in range(len(system)):
        pid_in, pid_out = endpoints[index]
        n_in, n_out = node_name(pid_in), node_name(pid_out)
        mid = f"x{index}"
        circuit.add_resistor(
            n_in, mid, float(parasitics.resistance[index]), name=f"R{index}"
        )
        slot_nodes.append((mid, n_out))
        half_c = float(parasitics.ground_capacitance[index]) / 2.0
        ground_cap[n_in] = ground_cap.get(n_in, 0.0) + half_c
        ground_cap[n_out] = ground_cap.get(n_out, 0.0) + half_c

    for node, value in ground_cap.items():
        if value > 0:
            circuit.add_capacitor(node, "0", value, name=f"Cg_{node}")

    def geometric_ends(index: int) -> Tuple[int, int]:
        forward = endpoints[index]
        return forward if signs[index] > 0 else (forward[1], forward[0])

    for (i, j), value in parasitics.coupling_capacitance.items():
        pairs = _seed_pair_endpoints(
            system, i, j, geometric_ends(i), geometric_ends(j)
        )
        for pos, (pid_a, pid_b) in enumerate(pairs):
            circuit.add_capacitor(
                node_name(pid_a),
                node_name(pid_b),
                value / 2.0,
                name=f"Cc_{i}_{j}_{pos}",
            )

    ports: Dict[int, WirePorts] = {}
    for wire in system.wire_ids:
        members = system.wire_filaments(wire)
        ports[wire] = WirePorts(
            near=node_name(endpoints[members[0]][0]),
            far=node_name(endpoints[members[-1]][1]),
        )
    skeleton = ElectricalSkeleton(
        circuit=circuit,
        parasitics=parasitics,
        slot_nodes=slot_nodes,
        signs=signs,
        ports=ports,
    )

    inductance = parasitics.inductance
    inductor_names: List[str] = []
    for index, (slot_a, slot_b) in enumerate(slot_nodes):
        name = f"Lf{index}"
        circuit.add_inductor(
            slot_a, slot_b, float(inductance[index, index]), name=name
        )
        inductor_names.append(name)

    mutual_count = 0
    for _, (indices, block) in parasitics.inductance_blocks.items():
        block_size = len(indices)
        for a in range(block_size):
            i = indices[a]
            for b_pos in range(a + 1, block_size):
                j = indices[b_pos]
                value = float(block[a, b_pos]) * float(signs[i] * signs[j])
                if value == 0.0:
                    continue
                circuit.add_mutual(
                    inductor_names[i],
                    inductor_names[j],
                    value,
                    name=f"K{i}_{j}",
                )
                mutual_count += 1

    return PeecModel(
        circuit=circuit,
        skeleton=skeleton,
        inductor_names=inductor_names,
        mutual_count=mutual_count,
    )


class _SeedTripletBuilder:
    """The pre-columnar triplet accumulator (one ``add`` per entry)."""

    def __init__(self) -> None:
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[float] = []

    def add(self, row: int, col: int, value: float) -> None:
        if row < 0 or col < 0:
            return
        self.rows.append(row)
        self.cols.append(col)
        self.vals.append(value)

    def matrix(self, size: int) -> sparse.csc_matrix:
        return sparse.coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=(size, size)
        ).tocsc()


def seed_build_mna(circuit):
    """Seed-path MNA assembly: walk elements, three list-appends per stamp.

    The pre-columnar ``build_mna`` verbatim: every element is visited as
    a materialized record and stamped through Python-level ``add``
    calls.  Returns the same :class:`~repro.circuit.mna.MnaSystem` type
    as the vectorized assembler (so the analysis engines accept it), and
    its matrices match the vectorized ones to summation-order rounding.
    """
    from repro.circuit.elements import (
        CCCS,
        CCVS,
        VCCS,
        VCVS,
        Capacitor,
        CurrentSource,
        Inductor,
        MutualInductance,
        Resistor,
        SusceptanceSet,
        VoltageSource,
    )
    from repro.circuit.mna import MnaSystem

    num_nodes = circuit.num_nodes
    branch_index: Dict[str, int] = {}
    next_row = num_nodes
    for element in circuit:
        if isinstance(element, (Inductor, VoltageSource, VCVS, CCVS)):
            branch_index[element.name] = next_row
            next_row += 1
        elif isinstance(element, SusceptanceSet):
            for k in range(len(element.branches)):
                branch_index[element.branch_name(k)] = next_row
                next_row += 1
    size = next_row

    g = _SeedTripletBuilder()
    c = _SeedTripletBuilder()
    voltage_rows: List[Tuple[int, object]] = []
    current_injections: List[Tuple[int, int, object]] = []
    source_names: List[str] = []
    current_names: List[str] = []
    current_stimuli: List[object] = []
    idx = circuit.node_index

    for element in circuit:
        if isinstance(element, Resistor):
            conductance = 1.0 / element.value
            n1, n2 = idx(element.n1), idx(element.n2)
            g.add(n1, n1, conductance)
            g.add(n2, n2, conductance)
            g.add(n1, n2, -conductance)
            g.add(n2, n1, -conductance)
        elif isinstance(element, Capacitor):
            n1, n2 = idx(element.n1), idx(element.n2)
            c.add(n1, n1, element.value)
            c.add(n2, n2, element.value)
            c.add(n1, n2, -element.value)
            c.add(n2, n1, -element.value)
        elif isinstance(element, Inductor):
            n1, n2 = idx(element.n1), idx(element.n2)
            row = branch_index[element.name]
            g.add(n1, row, 1.0)
            g.add(n2, row, -1.0)
            g.add(row, n1, 1.0)
            g.add(row, n2, -1.0)
            c.add(row, row, -element.value)
        elif isinstance(element, MutualInductance):
            row1 = branch_index[element.inductor1]
            row2 = branch_index[element.inductor2]
            c.add(row1, row2, -element.value)
            c.add(row2, row1, -element.value)
        elif isinstance(element, VoltageSource):
            n1, n2 = idx(element.n1), idx(element.n2)
            row = branch_index[element.name]
            g.add(n1, row, 1.0)
            g.add(n2, row, -1.0)
            g.add(row, n1, 1.0)
            g.add(row, n2, -1.0)
            voltage_rows.append((row, element.stimulus))
            source_names.append(element.name)
        elif isinstance(element, CurrentSource):
            current_injections.append(
                (idx(element.n1), idx(element.n2), element.stimulus)
            )
            current_names.append(element.name)
            current_stimuli.append(element.stimulus)
        elif isinstance(element, VCVS):
            n1, n2 = idx(element.n1), idx(element.n2)
            nc1, nc2 = idx(element.nc1), idx(element.nc2)
            row = branch_index[element.name]
            g.add(n1, row, 1.0)
            g.add(n2, row, -1.0)
            g.add(row, n1, 1.0)
            g.add(row, n2, -1.0)
            g.add(row, nc1, -element.gain)
            g.add(row, nc2, element.gain)
        elif isinstance(element, VCCS):
            n1, n2 = idx(element.n1), idx(element.n2)
            nc1, nc2 = idx(element.nc1), idx(element.nc2)
            g.add(n1, nc1, element.gain)
            g.add(n1, nc2, -element.gain)
            g.add(n2, nc1, -element.gain)
            g.add(n2, nc2, element.gain)
        elif isinstance(element, CCCS):
            n1, n2 = idx(element.n1), idx(element.n2)
            ctrl = branch_index[element.control]
            g.add(n1, ctrl, element.gain)
            g.add(n2, ctrl, -element.gain)
        elif isinstance(element, CCVS):
            n1, n2 = idx(element.n1), idx(element.n2)
            row = branch_index[element.name]
            ctrl = branch_index[element.control]
            g.add(n1, row, 1.0)
            g.add(n2, row, -1.0)
            g.add(row, n1, 1.0)
            g.add(row, n2, -1.0)
            g.add(row, ctrl, -element.gain)
        elif isinstance(element, SusceptanceSet):
            rows = [
                branch_index[element.branch_name(k)]
                for k in range(len(element.branches))
            ]
            nodes = [(idx(a), idx(b)) for a, b in element.branches]
            for row, (n1, n2) in zip(rows, nodes):
                g.add(n1, row, 1.0)
                g.add(n2, row, -1.0)
                c.add(row, row, -1.0)
            k_matrix = element.k_matrix
            if sparse.issparse(k_matrix):
                coo = k_matrix.tocoo()
                entries = zip(coo.row, coo.col, coo.data)
            else:
                dense = np.asarray(k_matrix)
                nz = np.nonzero(dense)
                entries = zip(nz[0], nz[1], dense[nz])
            for m, n_pos, value in entries:
                row = rows[int(m)]
                n1, n2 = nodes[int(n_pos)]
                g.add(row, n1, float(value))
                g.add(row, n2, -float(value))
        else:  # pragma: no cover - the element union is closed
            raise TypeError(f"unknown element type {type(element).__name__}")

    return MnaSystem(
        circuit=circuit,
        num_nodes=num_nodes,
        size=size,
        G=g.matrix(size),
        C=c.matrix(size),
        branch_index=branch_index,
        voltage_rows=voltage_rows,
        current_injections=current_injections,
        stimuli=[stim for _, stim in voltage_rows] + current_stimuli,
        source_index={
            name: column
            for column, name in enumerate(source_names + current_names)
        },
    )


def seed_transient_analysis(
    circuit,
    t_stop: float,
    dt: float,
    probe_nodes: Sequence[str],
    method: str = "trapezoidal",
):
    """Seed-path transient run: per-step Python RHS and probe loops.

    The pre-batching time loop -- ``rhs_transient`` rebuilt at every
    step, one scalar probe gather per sample -- over the seed assembler's
    matrices.  Returns ``(times, volt)`` with one waveform row per probe
    node.
    """
    from repro.circuit.dc import solve_dc
    from repro.health.solvers import factorize

    system = seed_build_mna(circuit)
    nodes = list(probe_nodes)
    node_rows = np.array([system.node_row(n) for n in nodes], dtype=int)
    branch_rows = np.array([], dtype=int)

    steps = int(np.ceil(t_stop / dt))
    times = np.arange(steps + 1) * dt
    x = solve_dc(system)

    volt = np.empty((len(nodes), steps + 1))
    curr = np.empty((0, steps + 1))
    g_mat = system.G.tocsc()
    c_mat = system.C.tocsc()
    if method == "trapezoidal":
        c_scaled = (2.0 / dt) * c_mat
        history = c_scaled - g_mat
    else:
        c_scaled = (1.0 / dt) * c_mat
        history = c_scaled
    lhs = factorize(
        (g_mat + c_scaled).tocsc(), name=f"seed transient LHS ({method})"
    )
    scalar_record(volt, curr, 0, x, node_rows, branch_rows)
    b_now = system.rhs_transient(0.0)
    for n in range(1, steps + 1):
        b_next = system.rhs_transient(times[n])
        if method == "trapezoidal":
            rhs = history @ x + b_now + b_next
        else:
            rhs = history @ x + b_next
        x = lhs.solve(rhs)
        scalar_record(volt, curr, n, x, node_rows, branch_rows)
        b_now = b_next
    return times, volt


def seed_ac_analysis(
    circuit,
    frequencies: Sequence[float],
    probe_nodes: Sequence[str],
):
    """Seed-path AC sweep: per-point column re-permutation, probe loops.

    Each sweep point after the first re-runs the fancy-indexed
    ``a_mat[:, perm_c].tocsc()`` slice (the pre-optimization
    ``SweepSolver`` behavior) and gathers probes one scalar ``solution
    [row]`` at a time.  Returns ``(freqs, volt)``.
    """
    from scipy.sparse import csc_matrix
    from scipy.sparse.linalg import splu

    system = seed_build_mna(circuit)
    freqs = np.asarray(list(frequencies), dtype=float)
    nodes = list(probe_nodes)
    node_rows = [system.node_row(n) for n in nodes]
    rhs = system.rhs_ac()

    g_csc = system.G.tocsc().astype(complex)
    c_csc = system.C.tocsc().astype(complex)
    union = (g_csc + c_csc).tocsc()
    union.sort_indices()
    g_aligned = (g_csc + union * 0).tocsc()
    g_aligned.sort_indices()
    c_aligned = (c_csc + union * 0).tocsc()
    c_aligned.sort_indices()
    aligned = np.array_equal(
        g_aligned.indptr, union.indptr
    ) and np.array_equal(
        g_aligned.indices, union.indices
    ) and np.array_equal(
        c_aligned.indptr, union.indptr
    ) and np.array_equal(c_aligned.indices, union.indices)

    perm_c = None
    volt = np.empty((len(nodes), freqs.size), dtype=complex)
    for k, freq in enumerate(freqs):
        omega = 2.0 * np.pi * freq
        if aligned:
            a_mat = csc_matrix(
                (g_aligned.data + 1j * omega * c_aligned.data,
                 union.indices, union.indptr),
                shape=union.shape,
            )
        else:
            a_mat = (g_csc + 1j * omega * c_csc).tocsc()
        if not aligned:
            solution = splu(a_mat).solve(rhs)
        elif perm_c is None:
            lu = splu(a_mat)
            perm_c = lu.perm_c.copy()
            solution = lu.solve(rhs)
        else:
            permuted = a_mat[:, perm_c].tocsc()
            lu = splu(permuted, permc_spec="NATURAL")
            y = lu.solve(rhs)
            solution = np.empty_like(y)
            solution[perm_c] = y
        for row_pos, row in enumerate(node_rows):
            volt[row_pos, k] = solution[row] if row >= 0 else 0.0
    return freqs, volt


def scalar_record(
    volt: np.ndarray,
    curr: np.ndarray,
    step: int,
    x: np.ndarray,
    node_rows: np.ndarray,
    branch_rows: np.ndarray,
) -> None:
    """Seed-path transient sample recording: one Python loop per probe."""
    for pos, row in enumerate(node_rows):
        volt[pos, step] = x[row] if row >= 0 else 0.0
    for pos, row in enumerate(branch_rows):
        curr[pos, step] = x[row]


# Re-export the scalar closed forms so equivalence tests can reach every
# reference primitive through one module.
__all__ = [
    "scalar_partial_inductance",
    "scalar_windowed_inverse",
    "scalar_record",
    "seed_build_peec",
    "seed_build_mna",
    "seed_transient_analysis",
    "seed_ac_analysis",
    "mutual_parallel_filaments",
    "mutual_collinear_filaments",
    "self_inductance_bar",
    "gmd_rectangles",
]
