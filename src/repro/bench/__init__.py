"""Benchmark-regression subsystem: a machine-readable perf trajectory.

The paper's headline claim is wall-clock (``O(N b^3)`` window
construction beating the ``O(N^3)`` inversion), so kernel performance is
a tracked artifact here, not folklore: :mod:`repro.bench.runner` times
the micro-kernel suite, :mod:`repro.bench.results` records each run as a
:class:`~repro.bench.results.BenchResult` (kernel, size, wall time, and
a checksum of the numerical output), and
:mod:`repro.bench.regression` compares fresh runs against the committed
``BENCH_kernels.json`` trajectory -- time regressions warn, checksum
mismatches fail.  ``repro bench`` is the CLI entry point.
"""

from repro.bench.reference import (
    scalar_partial_inductance,
    scalar_windowed_inverse,
)
from repro.bench.regression import Comparison, RegressionReport, check_results
from repro.bench.results import (
    SCHEMA_VERSION,
    BenchResult,
    array_checksum,
    load_trajectory,
    save_trajectory,
)
from repro.bench.runner import DEFAULT_KERNELS, run_suite
from repro.bench.sim import SIM_KERNELS, run_sim_suite

# The noise and service suites live in repro.bench.noise and
# repro.bench.service and are imported directly (the service suite
# depends on repro.service, whose workers depend on
# repro.bench.results -- importing it here would be circular).

__all__ = [
    "SIM_KERNELS",
    "run_sim_suite",
    "SCHEMA_VERSION",
    "BenchResult",
    "Comparison",
    "DEFAULT_KERNELS",
    "RegressionReport",
    "array_checksum",
    "check_results",
    "load_trajectory",
    "run_suite",
    "save_trajectory",
    "scalar_partial_inductance",
    "scalar_windowed_inverse",
]
