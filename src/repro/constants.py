"""Physical constants and the paper's default technology parameters.

Kept at the package top level so both the geometry and extraction layers
can use them without circular imports; :mod:`repro.extraction.constants`
re-exports everything for API symmetry.
"""

import math

#: Vacuum permeability, H/m.
MU_0 = 4.0e-7 * math.pi

#: Vacuum permittivity, F/m.
EPS_0 = 8.8541878128e-12

#: Speed of light in vacuum, m/s.
SPEED_OF_LIGHT = 299_792_458.0

#: Copper resistivity used throughout the paper's experiments, ohm-m.
COPPER_RESISTIVITY = 1.7e-8

#: Low-k dielectric constant of the paper's experiment setting.
LOW_K_EPS_R = 2.0

#: Maximum operating frequency of all experiments, Hz.
MAX_FREQUENCY = 10.0e9

#: Driver resistance modeling interconnect drivers (Section II-C), ohms.
DRIVER_RESISTANCE = 120.0

#: Receiver loading capacitance (Section II-C), farads.
LOAD_CAPACITANCE = 10.0e-15

#: Heavily doped lossy-substrate resistivity of the spiral experiment, ohm-m.
SUBSTRATE_RESISTIVITY = 1.0e-5

#: Supply rail of all experiments (the paper's unit-step stimulus), volts.
VDD = 1.0
